//! # mvrobust
//!
//! Robustness checking and optimal isolation-level allocation for
//! multiversion transaction workloads, reproducing *Allocating Isolation
//! Levels to Transactions in a Multiversion Setting* (Vandevoort, Ketsman &
//! Neven, PODS 2023).
//!
//! This facade crate re-exports the workspace crates:
//!
//! - [`model`] — transactions, multiversion schedules, dependencies,
//!   serialization graphs, conflict serializability (paper §2.1–§2.2).
//! - [`isolation`] — RC / SI / SSI semantics, mixed allocations, and
//!   schedule validators (paper §2.3).
//! - [`robustness`] — the robustness decision procedure (Algorithm 1),
//!   counterexample witnesses (Theorem 3.2), the optimal allocator
//!   (Algorithm 2) and the {RC, SI} variants (paper §3–§5).
//! - [`sim`] — an MVCC execution simulator honouring per-transaction
//!   isolation levels, standing in for Postgres/Oracle.
//! - [`workloads`] — random, TPC-C, SmallBank and paper-example workloads.
//! - [`service`] — the online allocation daemon: a workload registry on
//!   the incremental `add_txn`/`remove_txn` engine, a line-JSON TCP
//!   server, and the matching client (`mvrobust serve` / `client`).
//!
//! ## Quickstart
//!
//! ```
//! use mvrobust::model::parse_transactions;
//! use mvrobust::isolation::{Allocation, IsolationLevel};
//! use mvrobust::robustness::{is_robust, optimal_allocation};
//! use std::sync::Arc;
//!
//! let txns = Arc::new(parse_transactions("
//!     T1: R[x] W[y]
//!     T2: R[y] W[x]
//! ").unwrap());
//!
//! // The classic write-skew pair is not robust against all-SI…
//! let all_si = Allocation::uniform(&txns, IsolationLevel::SnapshotIsolation);
//! assert!(!is_robust(&txns, &all_si).robust());
//!
//! // …but the optimal allocation finds the cheapest safe assignment.
//! let best = optimal_allocation(&txns);
//! assert!(is_robust(&txns, &best).robust());
//! ```

pub use mvisolation as isolation;
pub use mvmodel as model;
pub use mvrobustness as robustness;
pub use mvservice as service;
pub use mvsim as sim;
pub use mvtemplates as templates;
pub use mvworkloads as workloads;
