//! Integration tests for the beyond-the-paper extensions, exercised
//! through the `mvrobust` facade: the static-SDG baseline, constrained
//! allocation, template auditing and anomaly labelling.

use mvrobust::isolation::phenomena::{all_anomalies, write_skews, Anomaly};
use mvrobust::isolation::{Allocation, IsolationLevel};
use mvrobust::model::parse_transactions;
use mvrobust::robustness::allocate::optimal_allocation_in_box;
use mvrobust::robustness::sdg::static_si_robust;
use mvrobust::robustness::stats::WorkloadReport;
use mvrobust::robustness::{is_robust, optimal_allocation, RobustnessChecker};
use mvrobust::templates::{audit, optimal_template_allocation, smallbank_templates};

#[test]
fn checker_reuse_matches_free_functions() {
    let txns = parse_transactions(
        "
        T1: R[x] W[y]
        T2: R[y] W[x]
        T3: R[z] W[z]
        ",
    )
    .unwrap();
    let checker = RobustnessChecker::new(&txns);
    for spec in [
        "T1=SI T2=SI T3=SI",
        "T1=SSI T2=SSI T3=RC",
        "T1=RC T2=RC T3=RC",
    ] {
        let a = Allocation::parse(spec).unwrap();
        assert_eq!(
            checker.is_robust(&a).robust(),
            is_robust(&txns, &a).robust(),
            "checker disagrees at {spec}"
        );
    }
}

#[test]
fn sdg_baseline_through_facade() {
    let skew = parse_transactions("T1: R[x] W[y]\nT2: R[y] W[x]").unwrap();
    assert!(!static_si_robust(&skew).certified());
    let safe = parse_transactions("T1: R[x] W[x]\nT2: R[x] W[x]").unwrap();
    assert!(static_si_robust(&safe).certified());
}

#[test]
fn box_allocation_with_impossible_pin() {
    let txns = parse_transactions("T1: R[x] W[y]\nT2: R[y] W[x]").unwrap();
    let lo = Allocation::uniform_rc(&txns);
    let hi = Allocation::parse("T1=SI T2=SSI").unwrap();
    assert_eq!(optimal_allocation_in_box(&txns, &lo, &hi), None);
    let hi = Allocation::uniform_ssi(&txns);
    let a = optimal_allocation_in_box(&txns, &lo, &hi).unwrap();
    assert_eq!(a, optimal_allocation(&txns));
}

#[test]
fn template_audit_through_facade() {
    let sb = smallbank_templates();
    let best = optimal_template_allocation(&sb, 2, 2);
    assert!(audit(&sb, &best, 2, 2).robust);
    // Matches the per-transaction canonical-mix optimum level-by-level
    // (Balance/TransactSavings/WriteCheck → SSI; the others → SI).
    assert_eq!(
        best,
        vec![
            IsolationLevel::SSI,
            IsolationLevel::SI,
            IsolationLevel::SSI,
            IsolationLevel::SI,
            IsolationLevel::SSI,
        ]
    );
}

#[test]
fn witness_schedules_get_anomaly_labels() {
    // The SI write-skew witness must be labelled as a write skew.
    let txns = mvrobust::workloads::paper::write_skew_txns();
    let si = Allocation::uniform_si(&txns);
    let (_, schedule) = mvrobust::robustness::witness::counterexample_schedule(&txns, &si).unwrap();
    let skews = write_skews(&schedule);
    assert_eq!(skews.len(), 1);
    assert!(matches!(skews[0], Anomaly::WriteSkew { .. }));
    assert!(!all_anomalies(&schedule).is_empty());
}

#[test]
fn workload_report_on_benchmarks() {
    let tpcc = mvrobust::workloads::tpcc::Tpcc::canonical_mix();
    let report = WorkloadReport::analyze(&tpcc);
    assert!(report.robust_si);
    assert!(!report.robust_rc);
    assert_eq!(report.optimal_counts().2, 0, "TPC-C never needs SSI");
    // The static baseline certifies TPC-C too — the famous case.
    assert!(report.static_si.certified());
    let shown = report.to_string();
    assert!(shown.contains("certified"));
}
