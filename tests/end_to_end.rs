//! Cross-crate integration: parse → analyze → allocate → simulate →
//! export → re-validate, plus the paper's worked examples exercised
//! through the public facade.

use mvrobust::isolation::{allowed_under, dangerous_structures, Allocation, IsolationLevel};
use mvrobust::model::serializability::is_conflict_serializable;
use mvrobust::model::{parse_transactions, SerializationGraph, TxnId};
use mvrobust::robustness::witness::counterexample_schedule;
use mvrobust::robustness::{is_robust, optimal_allocation, oracle_is_robust};
use mvrobust::sim::{run_jobs, Job, SimConfig, SsiMode};
use mvrobust::workloads::paper;
use std::sync::Arc;

/// The full pipeline on a textual workload.
#[test]
fn parse_allocate_simulate_validate() {
    let txns = Arc::new(
        parse_transactions(
            "
            T1: R[a] W[b]
            T2: R[b] W[a]
            T3: R[c] W[c]
            T4: R[c] W[c]
            T5: R[a] R[b] R[c]
            ",
        )
        .unwrap(),
    );
    // Analysis: the a/b pair is write skew (needs SSI), the c pair is a
    // lost update (SI suffices), T5 is a reader.
    let best = optimal_allocation(&txns);
    assert!(is_robust(&txns, &best).robust());
    assert_eq!(best.level(TxnId(1)), IsolationLevel::SSI);
    assert_eq!(best.level(TxnId(2)), IsolationLevel::SSI);
    assert_eq!(best.level(TxnId(3)), IsolationLevel::SI);
    assert_eq!(best.level(TxnId(4)), IsolationLevel::SI);

    // The oracle agrees — checked on the tractable c-pair sub-workload
    // (the full five-transaction set has ~10⁸ interleavings).
    let sub = Arc::new(parse_transactions("T3: R[c] W[c]\nT4: R[c] W[c]").unwrap());
    assert!(oracle_is_robust(&sub, &Allocation::uniform_si(&sub)));
    assert!(!oracle_is_robust(&sub, &Allocation::uniform_rc(&sub)));

    // Simulate under the optimum in both SSI modes: always serializable.
    let jobs: Vec<Job> = txns
        .iter()
        .map(|t| Job::new(t.ops().to_vec(), best.level(t.id())))
        .collect();
    for mode in [SsiMode::Exact, SsiMode::Conservative] {
        for seed in 0..10 {
            let engine = run_jobs(
                &jobs,
                SimConfig::default()
                    .with_seed(seed)
                    .with_concurrency(5)
                    .with_ssi_mode(mode),
            );
            let exported = engine.trace.export().unwrap();
            assert!(allowed_under(&exported.schedule, &exported.allocation));
            assert!(is_conflict_serializable(&exported.schedule));
        }
    }
}

/// Figure 2 / Figure 3 / Example 2.5 through the facade.
#[test]
fn figure_2_and_3_reproduced() {
    let s = paper::figure_2_schedule();
    assert!(!is_conflict_serializable(&s));
    let g = SerializationGraph::of(&s);
    assert!(g.has_edge(TxnId(2), TxnId(4)));
    assert!(g.has_edge(TxnId(4), TxnId(2)));
    assert!(g.has_edge(TxnId(3), TxnId(4)));
    assert!(!g.is_acyclic());
    // Example 2.5's dangerous structure T1 → T2 → T3.
    let ds = dangerous_structures(&s, |_| true);
    assert!(ds
        .iter()
        .any(|d| d.t1 == TxnId(1) && d.t2 == TxnId(2) && d.t3 == TxnId(3)));
}

/// Example 2.6's three allocation verdicts.
#[test]
fn example_2_6_reproduced() {
    let s = paper::example_2_6_schedule();
    assert!(!allowed_under(&s, &Allocation::uniform_si(s.txns())));
    assert!(!allowed_under(
        &s,
        &Allocation::parse("T1=RC T2=SI").unwrap()
    ));
    assert!(allowed_under(
        &s,
        &Allocation::parse("T1=SI T2=RC").unwrap()
    ));
}

/// Example 5.2: SI-allowed but not RC-allowed.
#[test]
fn example_5_2_reproduced() {
    let s = paper::example_5_2_schedule();
    assert!(allowed_under(&s, &Allocation::uniform_si(s.txns())));
    assert!(!allowed_under(&s, &Allocation::uniform_rc(s.txns())));
}

/// The witness pipeline agrees with the oracle on every uniform level for
/// the paper's write-skew pair.
#[test]
fn write_skew_full_stack() {
    let txns = paper::write_skew_txns();
    for lvl in IsolationLevel::ALL {
        let alloc = Allocation::uniform(&txns, lvl);
        let fast = is_robust(&txns, &alloc).robust();
        assert_eq!(fast, oracle_is_robust(&txns, &alloc));
        match counterexample_schedule(&txns, &alloc) {
            Some((spec, s)) => {
                assert!(!fast);
                assert!(!is_conflict_serializable(&s));
                assert_eq!(spec.t1, TxnId(1));
            }
            None => assert!(fast),
        }
    }
}

/// Robustness of the figure-2 transaction *set* (not schedule): since the
/// figure exhibits a non-serializable schedule allowed under
/// {T4 ↦ RC, T2 ↦ SI/SSI, …}, no allocation with T4 at RC can be robust…
/// unless the dangerous interleaving is excluded some other way. Verify
/// Algorithm 1 against the oracle for several mixed allocations.
#[test]
fn figure_2_txns_robustness_matrix() {
    let txns = paper::figure_2_txns();
    // Non-robust allocations: the oracle terminates quickly (it stops at
    // the first bad interleaving), so compare directly.
    for alloc_spec in [
        "T1=RC T2=RC T3=RC T4=RC",
        "T1=SI T2=SI T3=SI T4=SI",
        "T1=SSI T2=SSI T3=SSI T4=RC",
        "T1=RC T2=SI T3=SI T4=RC",
    ] {
        let a = Allocation::parse(alloc_spec).unwrap();
        assert_eq!(
            is_robust(&txns, &a).robust(),
            oracle_is_robust(&txns, &a),
            "algorithm/oracle disagree at {alloc_spec}"
        );
    }
    // All-SSI is robust; asserting that via the oracle would scan all
    // ~900k interleavings (the optimal-allocation test below pays that
    // cost once already), so use Algorithm 1 here.
    let ssi = Allocation::uniform_ssi(&txns);
    assert!(is_robust(&txns, &ssi).robust());
    // The figure's schedule itself witnesses non-robustness for any
    // allocation it is allowed under; spot-check one.
    let a = Allocation::parse("T1=SI T2=SI T3=SI T4=RC").unwrap();
    let s = paper::figure_2_schedule();
    assert!(allowed_under(&s, &a));
    assert!(!is_conflict_serializable(&s));
    assert!(!is_robust(&txns, &a).robust());
}

/// The optimal allocation of the figure-2 transactions, pinned, with the
/// oracle confirming robustness.
#[test]
fn figure_2_optimal_allocation() {
    let txns = paper::figure_2_txns();
    let best = optimal_allocation(&txns);
    assert!(is_robust(&txns, &best).robust());
    assert!(oracle_is_robust(&txns, &best));
    for t in txns.ids() {
        for &lower in best.level(t).lower_levels() {
            assert!(!is_robust(&txns, &best.with(t, lower)).robust());
        }
    }
}
