//! Property-based tests of the paper's theorems and propositions, using
//! proptest-generated workloads.
//!
//! | property                                   | paper reference    |
//! |--------------------------------------------|--------------------|
//! | serializable ⟺ SeG acyclic (constructive)  | Theorem 2.2        |
//! | witness schedules verify                   | Theorem 3.2 (2→1)  |
//! | robustness is upward closed                | Proposition 4.1(1) |
//! | pointwise meet of robust allocations robust| Proposition 4.1(2) |
//! | the optimum is unique / order-independent  | Proposition 4.2    |
//! | Algorithm 2's result is robust and optimal | Theorem 4.3        |
//! | robust(𝒜_RC) ⇒ robust(𝒜_SI)               | Proposition 5.1    |
//! | {RC,SI}-allocatable ⟺ robust(𝒜_SI)        | Proposition 5.4    |

use mvrobust::isolation::{Allocation, IsolationLevel};
use mvrobust::model::dependency::conflict_equivalent;
use mvrobust::model::serializability::{equivalent_serial_schedule, is_conflict_serializable};
use mvrobust::model::{Op, Schedule, Transaction, TransactionSet, TxnId};
use mvrobust::robustness::witness::counterexample_schedule;
use mvrobust::robustness::{
    is_robust, optimal_allocation, optimal_allocation_rc_si, robustly_allocatable_rc_si,
};
use proptest::prelude::*;
use std::sync::Arc;

/// Strategy: a workload of `1..=n_txns` transactions, each with
/// `1..=max_ops` operations over `n_objects` objects (read-before-write
/// per object enforced by dedup).
fn workloads(
    n_txns: usize,
    max_ops: usize,
    n_objects: u32,
) -> impl Strategy<Value = Arc<TransactionSet>> {
    prop::collection::vec(
        prop::collection::vec((0..n_objects, prop::bool::ANY), 1..=max_ops),
        1..=n_txns,
    )
    .prop_map(|txn_specs| {
        let mut txns = Vec::new();
        for (i, spec) in txn_specs.into_iter().enumerate() {
            let mut ops: Vec<Op> = Vec::new();
            for (obj, write) in spec {
                let op = if write {
                    Op::write(mvrobust::model::Object(obj))
                } else {
                    Op::read(mvrobust::model::Object(obj))
                };
                if !ops.contains(&op) {
                    // Keep reads before writes on the same object.
                    if op.is_write() {
                        ops.push(op);
                    } else if let Some(pos) = ops
                        .iter()
                        .position(|o| o.is_write() && o.object == op.object)
                    {
                        ops.insert(pos, op);
                    } else {
                        ops.push(op);
                    }
                }
            }
            txns.push(Transaction::new(TxnId(i as u32 + 1), ops).expect("deduped"));
        }
        Arc::new(TransactionSet::new(txns).expect("unique ids"))
    })
}

/// Strategy: an allocation for an existing workload (levels indexed 0..3).
fn allocation_for(txns: &TransactionSet, levels: Vec<u8>) -> Allocation {
    txns.ids()
        .zip(levels.into_iter().cycle())
        .map(|(t, l)| {
            let lvl = match l % 3 {
                0 => IsolationLevel::RC,
                1 => IsolationLevel::SI,
                _ => IsolationLevel::SSI,
            };
            (t, lvl)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 2.2, constructively: for any serial execution of any
    /// workload, the schedule is serializable and the reconstructed
    /// serial schedule is conflict-equivalent.
    #[test]
    fn serial_schedules_serializable(txns in workloads(5, 4, 4), perm in any::<u64>()) {
        let mut order: Vec<TxnId> = txns.ids().collect();
        // Cheap deterministic shuffle from `perm`.
        let n = order.len();
        let mut x = perm;
        for i in (1..n).rev() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (x >> 33) as usize % (i + 1));
        }
        let s = Schedule::single_version_serial(Arc::clone(&txns), &order).unwrap();
        prop_assert!(is_conflict_serializable(&s));
        let eq = equivalent_serial_schedule(&s).unwrap();
        prop_assert!(conflict_equivalent(&s, &eq));
    }

    /// Theorem 3.2 (2)→(1): whenever Algorithm 1 reports non-robustness,
    /// the materialized witness is allowed under the allocation and not
    /// serializable.
    #[test]
    fn witnesses_always_verify(txns in workloads(4, 3, 3), lv in prop::collection::vec(0u8..3, 1..=4)) {
        let alloc = allocation_for(&txns, lv);
        if let Some((_, s)) = counterexample_schedule(&txns, &alloc) {
            // counterexample_schedule panics internally if verification
            // fails; double-check the headline property.
            prop_assert!(!is_conflict_serializable(&s));
            prop_assert!(mvrobust::isolation::allowed_under(&s, &alloc));
        }
    }

    /// Proposition 4.1(1): raising levels preserves robustness.
    #[test]
    fn robustness_upward_closed(txns in workloads(4, 3, 3), lv in prop::collection::vec(0u8..3, 1..=4), raise_idx in any::<usize>()) {
        let alloc = allocation_for(&txns, lv);
        prop_assume!(is_robust(&txns, &alloc).robust());
        let ids: Vec<TxnId> = txns.ids().collect();
        let t = ids[raise_idx % ids.len()];
        for lvl in IsolationLevel::ALL {
            if lvl > alloc.level(t) {
                prop_assert!(is_robust(&txns, &alloc.with(t, lvl)).robust());
            }
        }
    }

    /// Proposition 4.1(2): if 𝒜 and 𝒜′ are robust, so is 𝒜′[T ↦ 𝒜(T)].
    #[test]
    fn robust_allocations_exchange_levels(
        txns in workloads(4, 3, 3),
        lv1 in prop::collection::vec(0u8..3, 1..=4),
        lv2 in prop::collection::vec(0u8..3, 1..=4),
        pick in any::<usize>(),
    ) {
        let a = allocation_for(&txns, lv1);
        let b = allocation_for(&txns, lv2);
        prop_assume!(is_robust(&txns, &a).robust() && is_robust(&txns, &b).robust());
        let ids: Vec<TxnId> = txns.ids().collect();
        let t = ids[pick % ids.len()];
        prop_assert!(is_robust(&txns, &b.with(t, a.level(t))).robust());
    }

    /// Theorem 4.3: Algorithm 2's output is robust and no single
    /// transaction can be lowered (pointwise minimality — with
    /// Proposition 4.2's uniqueness, this is optimality).
    #[test]
    fn optimum_is_robust_and_minimal(txns in workloads(4, 3, 3)) {
        let a = optimal_allocation(&txns);
        prop_assert!(is_robust(&txns, &a).robust());
        for t in txns.ids() {
            for &lower in a.level(t).lower_levels() {
                prop_assert!(!is_robust(&txns, &a.with(t, lower)).robust());
            }
        }
    }

    /// Proposition 4.2 (uniqueness), observed through order independence:
    /// refining transactions in reverse order reaches the same optimum.
    #[test]
    fn optimum_is_order_independent(txns in workloads(4, 3, 3)) {
        let forward = optimal_allocation(&txns);
        // Reverse-order refinement.
        let mut alloc = Allocation::uniform_ssi(&txns);
        let mut ids: Vec<TxnId> = txns.ids().collect();
        ids.reverse();
        for t in ids {
            for &lvl in alloc.level(t).lower_levels() {
                let cand = alloc.with(t, lvl);
                if is_robust(&txns, &cand).robust() {
                    alloc = cand;
                    break;
                }
            }
        }
        prop_assert_eq!(forward, alloc);
    }

    /// Proposition 5.1: robust against 𝒜_RC ⇒ robust against 𝒜_SI.
    #[test]
    fn rc_robustness_implies_si_robustness(txns in workloads(4, 3, 4)) {
        if is_robust(&txns, &Allocation::uniform_rc(&txns)).robust() {
            prop_assert!(is_robust(&txns, &Allocation::uniform_si(&txns)).robust());
        }
    }

    /// Proposition 5.4 + Theorem 5.5: {RC, SI}-allocatability coincides
    /// with robustness against 𝒜_SI, and when it holds the computed
    /// optimum is robust, SSI-free and minimal.
    #[test]
    fn rc_si_allocatability(txns in workloads(4, 3, 3)) {
        let si_robust = is_robust(&txns, &Allocation::uniform_si(&txns)).robust();
        prop_assert_eq!(robustly_allocatable_rc_si(&txns), si_robust);
        match optimal_allocation_rc_si(&txns) {
            None => prop_assert!(!si_robust),
            Some(a) => {
                prop_assert!(si_robust);
                prop_assert!(is_robust(&txns, &a).robust());
                prop_assert!(a.iter().all(|(_, l)| l <= IsolationLevel::SI));
                for t in txns.ids() {
                    for &lower in a.level(t).lower_levels() {
                        prop_assert!(!is_robust(&txns, &a.with(t, lower)).robust());
                    }
                }
            }
        }
    }

    /// The {RC, SI, SSI} optimum is pointwise ≤ any robust allocation the
    /// search stumbles on (uniqueness, seen from below).
    #[test]
    fn optimum_below_every_robust_allocation(txns in workloads(4, 3, 3), lv in prop::collection::vec(0u8..3, 1..=4)) {
        let candidate = allocation_for(&txns, lv);
        prop_assume!(is_robust(&txns, &candidate).robust());
        let optimum = optimal_allocation(&txns);
        prop_assert!(optimum.le(&candidate), "optimum {} vs robust {}", optimum, candidate);
    }
}
