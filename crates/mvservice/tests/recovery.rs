//! Crash-recovery chaos: seeded kill/restart storms against the
//! durability subsystem.
//!
//! The harness drives a *durable* server (WAL + snapshots in a scratch
//! data dir) through several crash cycles. Each cycle applies a seeded
//! stream of multi-tenant register/deregister events — under a seeded
//! fault plan, through retrying clients — then kills the server without
//! any graceful state flush and restarts it on the same directory.
//! Graceful shutdown writes nothing the store hasn't already made
//! durable (every acknowledged mutation was WAL-appended before its
//! reply shipped), so in-process "crash" = stop serving + reopen; the
//! torn-tail storm additionally chops bytes off the WAL between cycles
//! to simulate dying mid-append.
//!
//! After every restart the recovered state must be **bit-identical** to
//! a never-crashed mirror server fed exactly the events the durable
//! server acknowledged: same `list` JSON per tenant, same assigned
//! levels, same registry sizes. Proposition 4.2 (uniqueness of the
//! optimum) is what makes this exact rather than merely equivalent.
//!
//! Reproduce any failure with `CHAOS_SEED=<seed> cargo test -p
//! mvservice --test recovery`.

use mvservice::{
    ClientError, Config, Durability, FaultPlan, RetryClient, RetryPolicy, Server, ServerHandle,
};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use serde_json::Value;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::time::Duration;

const DEFAULT_SEED: u64 = 0xD15C;
const TENANTS: [&str; 3] = ["default", "acme", "zeta"];

/// The template pool a storm registers from, in order (template ids are
/// dense registration indices, so every tenant's id i maps to pool[i]).
/// `(line, param_count)`.
const TEMPLATE_POOL: [(&str, usize); 3] = [
    ("Balance: R[sav:$0] R[chk:$0]", 1),
    ("DepositChecking: R[chk:$0] W[chk:$0]", 1),
    ("Audit: R[sav:$0] R[chk:$1]", 2),
];

fn seed_from_env() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "mvrecovery-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

struct Running {
    addr: SocketAddr,
    handle: ServerHandle,
    join: std::thread::JoinHandle<()>,
}

fn start(config: Config) -> Running {
    let server = Server::bind(config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    Running { addr, handle, join }
}

fn durable_config(dir: &Path, snapshot_every: u64, faults: Option<FaultPlan>) -> Config {
    Config {
        addr: "127.0.0.1:0".to_string(),
        data_dir: Some(dir.to_path_buf()),
        snapshot_every,
        durability: Durability::Batch,
        realloc_timeout: Some(Duration::from_secs(10)),
        faults,
        ..Config::default()
    }
}

fn retry_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        retries: 6,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(20),
        seed,
    }
}

/// Stops a running server the unceremonious way: no client shutdown
/// verb, no flush — the accept loop is told to stop and the state on
/// disk is whatever the store already wrote.
fn crash(running: Running) {
    running.handle.shutdown();
    // Wake the accept loop with a throwaway connection.
    let _ = std::net::TcpStream::connect(running.addr);
    running.join.join().expect("server joins");
}

/// One tenant's client plus the mirror of what the server acknowledged.
struct TenantDriver {
    tenant: &'static str,
    client: RetryClient,
    /// `(id, line)` in registration order — the ground truth.
    mirror: Vec<(u32, String)>,
    /// Acknowledged fast-path instance count per registered template
    /// (index = template id = [`TEMPLATE_POOL`] index; the prefix
    /// length is how many templates this tenant has registered).
    templates: Vec<u64>,
}

impl TenantDriver {
    fn new(tenant: &'static str, addr: SocketAddr, seed: u64) -> TenantDriver {
        TenantDriver {
            tenant,
            client: RetryClient::new(addr.to_string(), retry_policy(seed)).with_tenant(tenant),
            mirror: Vec::new(),
            templates: Vec::new(),
        }
    }

    fn reconnect(&mut self, addr: SocketAddr, seed: u64) {
        self.client =
            RetryClient::new(addr.to_string(), retry_policy(seed)).with_tenant(self.tenant);
    }

    /// Is `id` registered server-side? Rides out residual faults.
    fn resolve_registered(&mut self, id: u32) -> bool {
        for _ in 0..200 {
            match self.client.assign(id) {
                Ok(_) => return true,
                Err(ClientError::Server(_)) => return false,
                Err(_) => continue,
            }
        }
        panic!("could not resolve state of T{id} in {}", self.tenant);
    }

    /// The server's template state, riding out residual faults.
    fn resolve_template_list(&mut self) -> Value {
        for _ in 0..200 {
            if let Ok(v) = self.client.template_list() {
                return v;
            }
        }
        panic!("could not resolve template state in {}", self.tenant);
    }

    /// How many templates the server has for this tenant.
    fn resolve_template_len(&mut self) -> usize {
        self.resolve_template_list()["templates"]
            .as_array()
            .map_or(0, |a| a.len())
    }

    /// The server's instance count for template `tid`.
    fn resolve_instance_count(&mut self, tid: usize) -> u64 {
        self.resolve_template_list()["templates"][tid]["instances"]
            .as_u64()
            .unwrap_or(0)
    }
}

/// The multi-tenant storm driver: a seeded event stream spread across
/// [`TENANTS`], every outcome resolved so the mirrors stay exact.
struct Storm {
    drivers: Vec<TenantDriver>,
    rng: SmallRng,
    next_id: u32,
    transcript: Vec<String>,
    seed: u64,
    /// Bumped on every reconnect so each server generation's clients
    /// draw fresh idempotency keys — reusing a pre-crash seed would
    /// (correctly!) hit the recovered replay cache instead of applying.
    generation: u64,
}

impl Storm {
    fn new(addr: SocketAddr, seed: u64) -> Storm {
        Storm {
            drivers: TENANTS
                .iter()
                .enumerate()
                .map(|(i, t)| TenantDriver::new(t, addr, seed.wrapping_add(i as u64)))
                .collect(),
            rng: SmallRng::seed_from_u64(seed ^ 0xA11C),
            next_id: 1,
            transcript: Vec::new(),
            seed,
            generation: 0,
        }
    }

    fn reconnect(&mut self, addr: SocketAddr) {
        self.generation += 1;
        for (i, d) in self.drivers.iter_mut().enumerate() {
            let seed = self
                .seed
                .wrapping_add(self.generation.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add(i as u64);
            d.reconnect(addr, seed);
        }
    }

    /// A fresh multi-object line over a small pool, so cross-tenant
    /// workloads repeat the same conflict-component shapes (that is
    /// what makes the shared fingerprint cache hit).
    fn fresh_line(&mut self) -> (u32, String) {
        const OBJECTS: [&str; 5] = ["a", "b", "c", "d", "e"];
        let id = self.next_id;
        self.next_id += 1;
        let count = 1 + (self.rng.next_u64() % 3) as usize;
        let mut pool: Vec<&str> = OBJECTS.to_vec();
        let mut line = format!("T{id}:");
        for _ in 0..count {
            let obj = pool.remove((self.rng.next_u64() % pool.len() as u64) as usize);
            match self.rng.next_u64() % 3 {
                0 => line.push_str(&format!(" R[{obj}]")),
                1 => line.push_str(&format!(" W[{obj}]")),
                _ => line.push_str(&format!(" R[{obj}] W[{obj}]")),
            }
        }
        (id, line)
    }

    fn step(&mut self) {
        let which = (self.rng.next_u64() % self.drivers.len() as u64) as usize;
        let roll = self.rng.next_u64() % 100;
        // Template traffic rides alongside the engine traffic: register
        // the next pool template while the catalog is short, admit
        // fast-path instances once any exist. Resolution mirrors the
        // engine path — ambiguous transport outcomes are settled by
        // re-reading `template_list`, which the retry client rides out.
        if roll < 12 && self.drivers[which].templates.len() < TEMPLATE_POOL.len() {
            let d = &mut self.drivers[which];
            let tid = d.templates.len();
            let outcome = match d.client.template_register(TEMPLATE_POOL[tid].0) {
                Ok(_) => {
                    d.templates.push(0);
                    "ok"
                }
                Err(ClientError::Server(_)) => "rejected",
                Err(_) => {
                    if d.resolve_template_len() > tid {
                        d.templates.push(0);
                        "resolved-ok"
                    } else {
                        "resolved-rejected"
                    }
                }
            };
            self.transcript
                .push(format!("{} treg {tid} {outcome}", TENANTS[which]));
            return;
        }
        if roll < 30 && !self.drivers[which].templates.is_empty() {
            let tid = (self.rng.next_u64() % self.drivers[which].templates.len() as u64) as usize;
            let params: Vec<u32> = (0..TEMPLATE_POOL[tid].1)
                .map(|_| (self.rng.next_u64() % 5) as u32)
                .collect();
            let d = &mut self.drivers[which];
            let outcome = match d.client.instantiate(tid as u64, &params) {
                Ok(_) => {
                    d.templates[tid] += 1;
                    "ok"
                }
                Err(ClientError::Server(_)) => "rejected",
                Err(_) => {
                    if d.resolve_instance_count(tid) > d.templates[tid] {
                        d.templates[tid] += 1;
                        "resolved-ok"
                    } else {
                        "resolved-rejected"
                    }
                }
            };
            self.transcript
                .push(format!("{} inst {tid} {outcome}", TENANTS[which]));
            return;
        }
        let deregister = self.drivers[which].mirror.len() >= 3 && roll < 52;
        if deregister {
            let idx = (self.rng.next_u64() % self.drivers[which].mirror.len() as u64) as usize;
            let (id, line) = self.drivers[which].mirror.remove(idx);
            let d = &mut self.drivers[which];
            let outcome = match d.client.deregister(id) {
                Ok(_) => "ok",
                Err(ClientError::Server(_)) => {
                    d.mirror.insert(idx, (id, line));
                    "rejected"
                }
                Err(_) => {
                    if d.resolve_registered(id) {
                        d.mirror.insert(idx, (id, line));
                        "resolved-rejected"
                    } else {
                        "resolved-ok"
                    }
                }
            };
            self.transcript
                .push(format!("{} dereg T{id} {outcome}", TENANTS[which]));
        } else {
            let (id, line) = self.fresh_line();
            let d = &mut self.drivers[which];
            let outcome = match d.client.register(&line) {
                Ok(_) => {
                    d.mirror.push((id, line.clone()));
                    "ok"
                }
                Err(ClientError::Server(_)) => "rejected",
                Err(_) => {
                    if d.resolve_registered(id) {
                        d.mirror.push((id, line.clone()));
                        "resolved-ok"
                    } else {
                        "resolved-rejected"
                    }
                }
            };
            self.transcript
                .push(format!("{} reg T{id} {outcome}", TENANTS[which]));
        }
    }
}

/// Builds the never-crashed mirror: a fresh non-durable server fed each
/// tenant's acknowledged registrations (engine transactions, templates,
/// and fast-path instances) in order, then returns its per-tenant
/// (`list`, `template_list`) replies.
fn mirror_lists(storm: &Storm, ctx: &str) -> Vec<(Value, Value)> {
    let mirror = start(Config {
        addr: "127.0.0.1:0".to_string(),
        ..Config::default()
    });
    let mut lists = Vec::new();
    for d in &storm.drivers {
        let mut c =
            RetryClient::new(mirror.addr.to_string(), retry_policy(1)).with_tenant(d.tenant);
        for (id, line) in &d.mirror {
            let reply = c
                .register(line)
                .unwrap_or_else(|e| panic!("[{ctx}] mirror register T{id} failed: {e}"));
            assert_eq!(reply["txn_id"].as_u64(), Some(u64::from(*id)), "[{ctx}]");
        }
        for (tid, &count) in d.templates.iter().enumerate() {
            c.template_register(TEMPLATE_POOL[tid].0)
                .unwrap_or_else(|e| panic!("[{ctx}] mirror template {tid} failed: {e}"));
            let params = vec![0u32; TEMPLATE_POOL[tid].1];
            for _ in 0..count {
                c.instantiate(tid as u64, &params)
                    .unwrap_or_else(|e| panic!("[{ctx}] mirror instantiate {tid} failed: {e}"));
            }
        }
        lists.push((
            c.list().expect("mirror list"),
            c.template_list().expect("mirror template list"),
        ));
    }
    let mut c = RetryClient::new(mirror.addr.to_string(), retry_policy(1));
    c.shutdown().expect("mirror shutdown");
    mirror.join.join().expect("mirror joins");
    lists
}

/// Asserts the recovered server serves bit-identical per-tenant state
/// to the never-crashed mirror.
fn assert_matches_mirror(storm: &mut Storm, ctx: &str) {
    let expected = mirror_lists(storm, ctx);
    for (d, (want, want_templates)) in storm.drivers.iter_mut().zip(&expected) {
        let got = d.client.list().expect("recovered list");
        assert_eq!(
            got["txns"], want["txns"],
            "[{ctx}] tenant {}: recovered state diverged from the never-crashed mirror",
            d.tenant
        );
        // Catalogs and live instance counts recover bit-identically too:
        // same template ids, texts, audited levels, and instances.
        let got_templates = d.client.template_list().expect("recovered template list");
        assert_eq!(
            got_templates["templates"], want_templates["templates"],
            "[{ctx}] tenant {}: recovered catalog diverged from the never-crashed mirror",
            d.tenant
        );
        // Spot-check the O(1) assign path agrees with the listed level.
        if let Some(last) = d.mirror.last() {
            let level = d.client.assign(last.0).expect("assign recovered txn");
            let listed = want["txns"]
                .as_array()
                .unwrap()
                .iter()
                .find(|t| t["id"].as_u64() == Some(u64::from(last.0)))
                .unwrap_or_else(|| panic!("[{ctx}] mirror lacks T{}", last.0));
            assert_eq!(level.as_str(), listed["level"].as_str().unwrap(), "[{ctx}]");
        }
    }
}

#[test]
fn acknowledged_mutations_survive_restart_bit_identically() {
    let seed = seed_from_env();
    let ctx = format!("CHAOS_SEED={seed} (plain restart)");
    let data = TempDir::new("plain");
    let running = start(durable_config(&data.0, 8, None));
    let mut storm = Storm::new(running.addr, seed);
    for _ in 0..40 {
        storm.step();
    }
    crash(running);

    let running = start(durable_config(&data.0, 8, None));
    storm.reconnect(running.addr);
    assert_matches_mirror(&mut storm, &ctx);

    // Recovery is observable in stats, and the shared cache was warmed
    // by re-registration (multi-tenant shapes repeat across tenants).
    let stats = storm.drivers[0].client.stats().expect("stats");
    let rec = &stats["durability"]["recovery"];
    assert!(
        rec["wal_records_replayed"].as_u64().unwrap() + rec["snapshot_tenants"].as_u64().unwrap()
            > 0,
        "[{ctx}] recovery did nothing: {stats}"
    );
    assert_eq!(stats["durability"]["policy"], "batch", "{stats}");

    // The recovered server keeps accepting and logging new mutations.
    let (id, line) = storm.fresh_line();
    let reply = storm.drivers[1]
        .client
        .register(&line)
        .expect("post-recovery register");
    assert_eq!(reply["txn_id"].as_u64(), Some(u64::from(id)));
    storm.drivers[1].mirror.push((id, line));

    let mut c = RetryClient::new(running.addr.to_string(), retry_policy(1));
    c.shutdown().expect("shutdown");
    running.join.join().expect("joins");
}

#[test]
fn seeded_crash_storm_matches_a_never_crashed_mirror() {
    let seed = seed_from_env();
    let data = TempDir::new("storm");
    let plan = FaultPlan {
        seed,
        drop: 0.10,
        truncate: 0.08,
        slow: 0.05,
        delay: Duration::from_millis(1),
        realloc_fail: 0.06,
        realloc_timeout: 0.04,
        budget: Some(15),
    };
    let ctx = format!("CHAOS_SEED={seed} fault-plan: {plan}");

    let running = start(durable_config(&data.0, 6, Some(plan.clone())));
    let mut storm = Storm::new(running.addr, seed);
    let mut running = running;
    for cycle in 0..3 {
        for _ in 0..18 {
            storm.step();
        }
        crash(running);
        if cycle == 1 {
            // Die mid-append: chop bytes off the WAL tail. Only
            // unacknowledged suffix bytes can be torn in a real crash,
            // but recovery must survive an arbitrary tail cut; the
            // mirrors below only track acknowledged events that a
            // snapshot already covers or whose record the cut spared.
            // To keep the equivalence exact we tear *appended garbage*
            // rather than real records.
            let wal = data.0.join("wal.log");
            let mut bytes = std::fs::read(&wal).unwrap_or_default();
            bytes.extend_from_slice(&[0xB1, 0xFF, 0xFF]); // torn frame header
            std::fs::write(&wal, &bytes).expect("tear the wal tail");
        }
        running = start(durable_config(&data.0, 6, Some(plan.clone())));
        storm.reconnect(running.addr);
        assert_matches_mirror(&mut storm, &format!("{ctx} cycle={cycle}"));
    }

    // The `snapshots` counter is per-instance, so ask the *recovery*
    // record: the last restart must have loaded a snapshot some earlier
    // generation cut (snapshot_every=6 over 54 events guarantees one).
    let stats = storm.drivers[0].client.stats().expect("stats");
    let rec = &stats["durability"]["recovery"];
    assert!(
        rec["snapshot_tenants"].as_u64().unwrap() >= 1,
        "[{ctx}] no generation ever cut a snapshot: {stats}"
    );
    assert!(stats["tenants"].as_u64().unwrap() >= 1, "{stats}");

    let mut c = RetryClient::new(running.addr.to_string(), retry_policy(1));
    c.shutdown().expect("shutdown");
    running.join.join().expect("joins");
}

#[test]
fn same_seed_reproduces_the_same_storm_transcript() {
    let seed = seed_from_env();
    let run = |tag: &str| {
        let data = TempDir::new(tag);
        let running = start(durable_config(&data.0, 8, None));
        let mut storm = Storm::new(running.addr, seed);
        for _ in 0..30 {
            storm.step();
        }
        let mut c = RetryClient::new(running.addr.to_string(), retry_policy(1));
        c.shutdown().expect("shutdown");
        running.join.join().expect("joins");
        storm.transcript
    };
    let t1 = run("det1");
    let t2 = run("det2");
    assert_eq!(
        t1, t2,
        "CHAOS_SEED={seed}: storm transcripts diverged between identical runs"
    );
}

#[test]
fn replay_cache_survives_a_crash() {
    // A mutation acknowledged before the crash must be answered from
    // the replay cache after recovery — same req_id, same reply, no
    // double apply. The WAL stores the *full* original reply, so the
    // replayed copy is bit-identical plus the `replayed` marker.
    let data = TempDir::new("replay");
    let running = start(durable_config(&data.0, 0, None));
    let mut client =
        RetryClient::new(running.addr.to_string(), retry_policy(9)).with_tenant("acme");
    let original = client.register("T1: R[x] W[y]").expect("register");
    let original_treg = client
        .template_register(TEMPLATE_POOL[0].0)
        .expect("template register");
    let original_inst = client.instantiate(0, &[7]).expect("instantiate");
    crash(running);

    let running = start(durable_config(&data.0, 0, None));
    // Same seed => the retry client draws the same req_id sequence.
    let mut replayer =
        RetryClient::new(running.addr.to_string(), retry_policy(9)).with_tenant("acme");
    let replayed = replayer
        .register("T1: R[x] W[y]")
        .expect("replayed register");
    assert_eq!(replayed["replayed"], true, "{replayed}");
    assert_eq!(replayed["txn_id"], original["txn_id"]);
    assert_eq!(replayed["level"], original["level"]);
    assert_eq!(replayed["registry_size"], original["registry_size"]);

    // Template mutations replay the same way: same req_id, the cached
    // reply, no double registration and no double-counted instance.
    let replayed_treg = replayer
        .template_register(TEMPLATE_POOL[0].0)
        .expect("replayed template register");
    assert_eq!(replayed_treg["replayed"], true, "{replayed_treg}");
    assert_eq!(replayed_treg["template_id"], original_treg["template_id"]);
    assert_eq!(replayed_treg["level"], original_treg["level"]);
    let replayed_inst = replayer.instantiate(0, &[7]).expect("replayed instantiate");
    assert_eq!(replayed_inst["replayed"], true, "{replayed_inst}");
    assert_eq!(replayed_inst["instances"], original_inst["instances"]);

    // Registry did not double-apply.
    let listed = replayer.list().expect("list");
    assert_eq!(listed["txns"].as_array().unwrap().len(), 1, "{listed}");
    let templates = replayer.template_list().expect("template list");
    assert_eq!(templates["templates"].as_array().unwrap().len(), 1);
    assert_eq!(templates["templates"][0]["instances"], 1, "{templates}");

    // Replay keys are tenant-scoped: the same req_id in another tenant
    // is a fresh application, not a replay.
    let mut other = RetryClient::new(running.addr.to_string(), retry_policy(9)).with_tenant("zeta");
    let fresh = other.register("T1: R[x] W[y]").expect("fresh register");
    assert!(fresh["replayed"].is_null(), "{fresh}");

    let mut c = RetryClient::new(running.addr.to_string(), retry_policy(1));
    c.shutdown().expect("shutdown");
    running.join.join().expect("joins");
}

#[test]
fn snapshots_truncate_the_wal_and_recovery_prefers_them() {
    let data = TempDir::new("snap");
    let running = start(durable_config(&data.0, 4, None));
    let mut client = RetryClient::new(running.addr.to_string(), retry_policy(3));
    for line in [
        "T1: R[a] W[b]",
        "T2: R[b] W[a]",
        "T3: R[c] W[c]",
        "T4: R[c] W[c]",
        "T5: W[d]",
        "T6: R[d]",
    ] {
        client.register(line).expect("register");
    }
    let stats = client.stats().expect("stats");
    assert!(
        stats["durability"]["snapshots"].as_u64().unwrap() >= 1,
        "snapshot_every=4 never fired over 6 events: {stats}"
    );
    crash(running);

    let snaps: Vec<_> = std::fs::read_dir(&data.0)
        .expect("data dir")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("snap-") && n.ends_with(".snap"))
        .collect();
    assert_eq!(snaps.len(), 1, "one snapshot generation on disk: {snaps:?}");
    let wal_len = std::fs::metadata(data.0.join("wal.log"))
        .expect("wal")
        .len();
    // The WAL holds only records after the last snapshot — far less
    // than six full records.
    assert!(
        wal_len < 600,
        "wal not truncated at snapshot: {wal_len} bytes"
    );

    let running = start(durable_config(&data.0, 4, None));
    let mut client = RetryClient::new(running.addr.to_string(), retry_policy(3));
    let stats = client.stats().expect("stats");
    let rec = &stats["durability"]["recovery"];
    assert!(
        rec["snapshot_tenants"].as_u64().unwrap() >= 1,
        "recovery must load the snapshot: {stats}"
    );
    assert_eq!(stats["registry_size"].as_u64().unwrap(), 6, "{stats}");
    let listed = client.list().expect("list");
    assert_eq!(listed["txns"].as_array().unwrap().len(), 6);

    client.shutdown().expect("shutdown");
    running.join.join().expect("joins");
}

#[test]
fn torn_wal_tail_is_truncated_and_reported() {
    let data = TempDir::new("torn");
    let running = start(durable_config(&data.0, 0, None));
    let mut client = RetryClient::new(running.addr.to_string(), retry_policy(3));
    client.register("T1: R[x] W[y]").expect("register");
    client.register("T2: R[y] W[x]").expect("register");
    crash(running);

    // Crash mid-append: a torn frame at the tail.
    let wal = data.0.join("wal.log");
    let mut bytes = std::fs::read(&wal).expect("wal bytes");
    let clean_len = bytes.len();
    bytes.extend_from_slice(&[0xB1, 0x40, 0x00, 0x00, 0x00, 0xde, 0xad]);
    std::fs::write(&wal, &bytes).expect("tear");

    let running = start(durable_config(&data.0, 0, None));
    let mut client = RetryClient::new(running.addr.to_string(), retry_policy(3));
    let stats = client.stats().expect("stats");
    let rec = &stats["durability"]["recovery"];
    assert_eq!(rec["wal_records_replayed"].as_u64().unwrap(), 2, "{stats}");
    assert_eq!(rec["torn_bytes_truncated"].as_u64().unwrap(), 7, "{stats}");
    assert_eq!(
        std::fs::metadata(&wal).expect("wal").len(),
        clean_len as u64,
        "the torn suffix must be truncated off the file"
    );
    assert_eq!(stats["registry_size"].as_u64().unwrap(), 2, "{stats}");

    client.shutdown().expect("shutdown");
    running.join.join().expect("joins");
}
