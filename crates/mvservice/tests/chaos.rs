//! Chaos harness: seeded fault schedules against a live socket.
//!
//! A deterministic driver throws a stream of register/deregister events
//! at a server configured with a [`FaultPlan`] (connection drops,
//! truncated reply frames, slow replies, forced reallocation failures
//! and timeouts), through a [`RetryClient`] with idempotent request
//! ids. Every few events — and again after the fault budget is spent —
//! the harness asserts the service's core invariants:
//!
//! 1. the served allocation is **robust** (Algorithm 1 re-verifies it
//!    from scratch), and
//! 2. it is **bit-identical** to a batch [`Allocator::optimal`] run
//!    over exactly the transactions that were applied, and
//! 3. the server neither poisons a lock nor leaks a thread (the final
//!    `stats` round-trip and `Server::run`'s join-before-return prove
//!    both).
//!
//! Everything is a pure function of the seed: the fault schedule, the
//! event stream, the retry backoff, and the request ids. Reproduce any
//! failure with `CHAOS_SEED=<seed> cargo test -p mvservice --test
//! chaos`; assertion messages embed the seed and the fault plan.

use mvisolation::{Allocation, IsolationLevel};
use mvmodel::{parse_transaction_line, TransactionSet};
use mvrobustness::{is_robust, Allocator};
use mvservice::{
    Client, ClientError, CodecKind, Config, FaultPlan, RetryClient, RetryPolicy, Server,
    ServerHandle,
};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use std::time::Duration;

/// Default seed; override with `CHAOS_SEED=<u64>`.
const DEFAULT_SEED: u64 = 0xC4A05;

fn seed_from_env() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

fn start_server(
    config: Config,
) -> (
    std::net::SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<()>,
) {
    let server = Server::bind(config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, join)
}

fn retry_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        retries: 6,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(20),
        seed,
    }
}

/// The driver: a single-threaded client plus a mirror of what *must*
/// be registered (kept exact by resolving every ambiguous outcome).
struct Driver {
    client: RetryClient,
    /// `(id, line)` in registration order.
    mirror: Vec<(u32, String)>,
    /// One entry per event — compared across runs for determinism.
    transcript: Vec<String>,
    next_id: u32,
    rng: SmallRng,
    ctx: String,
}

impl Driver {
    fn new(addr: std::net::SocketAddr, seed: u64, ctx: String, codec: CodecKind) -> Driver {
        Driver {
            client: RetryClient::with_codec(addr.to_string(), retry_policy(seed), codec),
            mirror: Vec::new(),
            transcript: Vec::new(),
            next_id: 1,
            rng: SmallRng::seed_from_u64(seed ^ 0xD21F),
            ctx,
        }
    }

    /// A fresh transaction line over a small shared object pool, so the
    /// workload keeps real conflict structure (write skew, lost-update
    /// pairs) as it churns. Objects within one transaction are distinct
    /// (the model allows at most one read and one write per object).
    fn fresh_line(&mut self) -> (u32, String) {
        const OBJECTS: [&str; 6] = ["a", "b", "c", "d", "e", "f"];
        let id = self.next_id;
        self.next_id += 1;
        let count = 1 + (self.rng.next_u64() % 3) as usize;
        let mut pool: Vec<&str> = OBJECTS.to_vec();
        let mut line = format!("T{id}:");
        for _ in 0..count {
            let obj = pool.remove((self.rng.next_u64() % pool.len() as u64) as usize);
            match self.rng.next_u64() % 3 {
                0 => line.push_str(&format!(" R[{obj}]")),
                1 => line.push_str(&format!(" W[{obj}]")),
                _ => line.push_str(&format!(" R[{obj}] W[{obj}]")),
            }
        }
        (id, line)
    }

    /// Is `id` registered on the server? Retries through residual
    /// faults — terminates because the fault budget is finite.
    fn resolve_registered(&mut self, id: u32) -> bool {
        for _ in 0..200 {
            match self.client.assign(id) {
                Ok(_) => return true,
                Err(ClientError::Server(_)) => return false,
                Err(_) => continue,
            }
        }
        panic!("[{}] could not resolve state of T{id}", self.ctx);
    }

    /// One chaos event: mostly registrations, sometimes a deregistration
    /// of a random live transaction. The mirror is updated to exactly
    /// what the server applied.
    fn step(&mut self) {
        let deregister = self.mirror.len() >= 4 && self.rng.next_u64() % 100 < 35;
        if deregister {
            let idx = (self.rng.next_u64() % self.mirror.len() as u64) as usize;
            let (id, line) = self.mirror.remove(idx);
            let outcome = match self.client.deregister(id) {
                Ok(_) => "ok",
                Err(ClientError::Server(_)) => {
                    // Rejected (degraded realloc rolled it back): still
                    // registered.
                    self.mirror.insert(idx, (id, line));
                    "rejected"
                }
                Err(_) => {
                    // Retries exhausted mid-fault-storm: ask the server
                    // what actually happened.
                    if self.resolve_registered(id) {
                        self.mirror.insert(idx, (id, line));
                        "resolved-rejected"
                    } else {
                        "resolved-ok"
                    }
                }
            };
            self.transcript.push(format!("dereg T{id} {outcome}"));
        } else {
            let (id, line) = self.fresh_line();
            let outcome = match self.client.register(&line) {
                Ok(_) => {
                    self.mirror.push((id, line.clone()));
                    "ok"
                }
                Err(ClientError::Server(_)) => "rejected",
                Err(_) => {
                    if self.resolve_registered(id) {
                        self.mirror.push((id, line.clone()));
                        "resolved-ok"
                    } else {
                        "resolved-rejected"
                    }
                }
            };
            self.transcript.push(format!("reg T{id} {outcome}"));
        }
    }

    /// The batch `TransactionSet` equivalent of the mirror, built the
    /// same way the registry builds its own set.
    fn mirror_set(&self) -> TransactionSet {
        let mut set = TransactionSet::default();
        for (_, line) in &self.mirror {
            let parsed = parse_transaction_line(line, &mut set).expect("mirror lines parse");
            set.insert(parsed).expect("mirror ids are unique");
        }
        set
    }

    /// The core invariants: the served allocation covers exactly the
    /// applied transactions, Algorithm 1 re-verifies it as robust, and
    /// it is bit-identical to a from-scratch `Allocator::optimal`.
    fn verify(&mut self) {
        let listed = loop {
            match self.client.list() {
                Ok(v) => break v,
                Err(ClientError::Server(m)) => panic!("[{}] list rejected: {m}", self.ctx),
                Err(_) => continue,
            }
        };
        let ctx = &self.ctx;
        let served: Vec<(u32, IsolationLevel)> = listed["txns"]
            .as_array()
            .unwrap_or_else(|| panic!("[{ctx}] list reply lacks txns"))
            .iter()
            .map(|t| {
                (
                    t["id"].as_u64().expect("listed id") as u32,
                    t["level"]
                        .as_str()
                        .expect("listed level")
                        .parse()
                        .expect("level parses"),
                )
            })
            .collect();

        let mut served_ids: Vec<u32> = served.iter().map(|(id, _)| *id).collect();
        served_ids.sort_unstable();
        let mut mirror_ids: Vec<u32> = self.mirror.iter().map(|(id, _)| *id).collect();
        mirror_ids.sort_unstable();
        assert_eq!(
            served_ids, mirror_ids,
            "[{ctx}] served transaction set diverged from the applied set"
        );

        let set = self.mirror_set();
        let allocation =
            Allocation::from_pairs(served.iter().map(|&(id, l)| (mvmodel::TxnId(id), l)));

        // Invariant 1: Algorithm 1 re-verifies the served allocation.
        if !set.is_empty() {
            assert!(
                is_robust(&set, &allocation).robust(),
                "[{ctx}] served allocation {allocation} is not robust"
            );
        }

        // Invariant 2: bit-identical to the batch optimum.
        let (expected, _) = Allocator::new(&set).optimal();
        for (id, level) in served {
            assert_eq!(
                level,
                expected.level(mvmodel::TxnId(id)),
                "[{ctx}] T{id} diverged from the batch optimum"
            );
        }
    }

    /// Shuts the server down, riding out any residual faults.
    fn shutdown(&mut self, handle: &ServerHandle) {
        for _ in 0..200 {
            match self.client.shutdown() {
                Ok(()) => return,
                // The shutdown may have applied even though the reply
                // was eaten.
                Err(_) if handle.is_shutting_down() => return,
                Err(_) => continue,
            }
        }
        panic!("[{}] server never acknowledged shutdown", self.ctx);
    }
}

/// Runs `events` chaos events against a fresh server over the given
/// wire codec; returns the transcript and the server's fault log.
fn run_scenario(
    seed: u64,
    events: usize,
    codec: CodecKind,
) -> (Vec<String>, Vec<mvservice::InjectedFault>) {
    let plan = FaultPlan {
        seed,
        drop: 0.12,
        truncate: 0.10,
        slow: 0.08,
        delay: Duration::from_millis(2),
        realloc_fail: 0.08,
        realloc_timeout: 0.06,
        budget: Some(25),
    };
    let ctx = format!(
        "CHAOS_SEED={seed} codec={} fault-plan: {plan}",
        codec.as_str()
    );
    let (addr, handle, join) = start_server(Config {
        addr: "127.0.0.1:0".to_string(),
        realloc_timeout: Some(Duration::from_secs(10)),
        faults: Some(plan),
        ..Config::default()
    });

    let mut driver = Driver::new(addr, seed, ctx.clone(), codec);
    for round in 0..events {
        driver.step();
        if (round + 1) % 10 == 0 {
            driver.verify();
        }
    }

    // Post-recovery: one more mutation round-trip (rides out any budget
    // that is left), then the full invariant check and a stats probe —
    // a poisoned registry or metrics lock would fail here.
    let (id, line) = driver.fresh_line();
    loop {
        match driver.client.register(&line) {
            Ok(_) => {
                driver.mirror.push((id, line.clone()));
                break;
            }
            Err(ClientError::Server(m)) => {
                assert!(
                    m.contains("last-known-good"),
                    "[{ctx}] unexpected rejection: {m}"
                );
            }
            Err(_) => {
                if driver.resolve_registered(id) {
                    driver.mirror.push((id, line.clone()));
                    break;
                }
            }
        }
    }
    driver.verify();

    let stats = driver
        .client
        .stats()
        .unwrap_or_else(|e| panic!("[{ctx}] stats failed post-recovery: {e}"));
    assert!(
        stats["failed_reallocs"].as_u64().is_some(),
        "[{ctx}] stats lacks failed_reallocs"
    );
    assert!(
        stats["faults_injected"].as_u64().is_some(),
        "[{ctx}] stats lacks faults_injected"
    );

    driver.shutdown(&handle);
    join.join().expect("server joins all workers and returns");
    driver.transcript.push(format!(
        "final: {} txns, {} faults, retries={}",
        driver.mirror.len(),
        handle.faults_injected(),
        driver.client.retry_stats().retries,
    ));
    (driver.transcript, handle.fault_log())
}

#[test]
fn chaos_rounds_preserve_robustness_and_the_batch_optimum() {
    let seed = seed_from_env();
    let (transcript, fault_log) = run_scenario(seed, 60, CodecKind::Line);
    assert!(
        !fault_log.is_empty(),
        "CHAOS_SEED={seed}: the plan injected nothing — chaos run was vacuous"
    );
    // At least some events must have survived the storm.
    assert!(
        transcript.iter().any(|t| t.ends_with(" ok")),
        "CHAOS_SEED={seed}: no event ever succeeded: {transcript:?}"
    );
}

#[test]
fn same_seed_reproduces_the_same_schedule_and_outcomes() {
    let seed = seed_from_env();
    let (t1, f1) = run_scenario(seed, 30, CodecKind::Line);
    let (t2, f2) = run_scenario(seed, 30, CodecKind::Line);
    assert_eq!(
        f1, f2,
        "CHAOS_SEED={seed}: fault schedules diverged between identical runs"
    );
    assert_eq!(
        t1, t2,
        "CHAOS_SEED={seed}: event outcomes diverged between identical runs"
    );
    // A different seed produces a genuinely different schedule.
    let (_, f3) = run_scenario(seed ^ 0x5EED_5EED, 30, CodecKind::Line);
    assert_ne!(
        f1, f3,
        "different seeds should not replay the same fault schedule"
    );
}

#[test]
fn line_and_binary_codecs_replay_identical_chaos_schedules() {
    // The same seed, driven once over line-JSON and once over binary
    // frames, must produce the same transcript (event outcomes, retry
    // resolutions) and the same fault-injection log: the codec is pure
    // framing, invisible to replay, coalescing, and fault semantics.
    let seed = seed_from_env();
    let (t_line, f_line) = run_scenario(seed, 30, CodecKind::Line);
    let (t_frame, f_frame) = run_scenario(seed, 30, CodecKind::Frame);
    assert_eq!(
        f_line, f_frame,
        "CHAOS_SEED={seed}: fault schedules diverged between codecs"
    );
    assert_eq!(
        t_line, t_frame,
        "CHAOS_SEED={seed}: event outcomes diverged between codecs"
    );
}

#[test]
fn truncated_reply_is_replayed_not_double_applied() {
    // Exactly one fault: the very first request's reply is cut
    // mid-frame *after* the mutation applied. The retry must be served
    // from the idempotency cache, not applied again.
    let plan = FaultPlan {
        seed: 1,
        truncate: 1.0,
        budget: Some(1),
        ..FaultPlan::default()
    };
    let (addr, handle, join) = start_server(Config {
        addr: "127.0.0.1:0".to_string(),
        faults: Some(plan),
        ..Config::default()
    });
    let mut client = RetryClient::new(addr.to_string(), retry_policy(7));
    let reply = client.register("T1: R[x] W[y]").expect("retried register");
    assert_eq!(reply["ok"], true);
    assert_eq!(
        reply["replayed"], true,
        "the retry must hit the replay cache: {reply}"
    );
    assert_eq!(reply["registry_size"], 1u64, "double-applied: {reply}");
    assert_eq!(client.retry_stats().reconnects, 1);

    let listed = client.list().expect("list");
    assert_eq!(listed["txns"].as_array().expect("txns").len(), 1);
    let stats = client.stats().expect("stats");
    assert_eq!(stats["replays"], 1u64);
    assert_eq!(stats["requests"]["register"], 2u64);

    client.shutdown().expect("shutdown");
    drop(handle);
    join.join().expect("server thread");
}

#[test]
fn dropped_request_is_applied_exactly_once_by_the_retry() {
    // The first request is eaten *before* executing; the retry applies
    // it for the first time — no replay marker, no double apply.
    let plan = FaultPlan {
        seed: 1,
        drop: 1.0,
        budget: Some(1),
        ..FaultPlan::default()
    };
    let (addr, _handle, join) = start_server(Config {
        addr: "127.0.0.1:0".to_string(),
        faults: Some(plan),
        ..Config::default()
    });
    let mut client = RetryClient::new(addr.to_string(), retry_policy(7));
    let reply = client.register("T1: R[x] W[y]").expect("retried register");
    assert_eq!(reply["ok"], true);
    assert!(
        reply["replayed"].is_null(),
        "first application must not be marked replayed: {reply}"
    );
    assert_eq!(reply["registry_size"], 1u64);
    client.shutdown().expect("shutdown");
    join.join().expect("server thread");
}

#[test]
fn degraded_registry_reports_staleness_and_recovers() {
    // Exactly one forced reallocation failure: the first mutation is
    // rejected with the degradation error, later ones succeed and clear
    // the flag.
    let plan = FaultPlan {
        seed: 1,
        realloc_fail: 1.0,
        budget: Some(1),
        ..FaultPlan::default()
    };
    let (addr, _handle, join) = start_server(Config {
        addr: "127.0.0.1:0".to_string(),
        faults: Some(plan),
        ..Config::default()
    });
    let mut client = Client::connect(addr).expect("connect");

    let reply = client
        .raw(r#"{"op":"register","txn":"T1: R[x] W[y]"}"#)
        .expect("reply");
    assert_eq!(reply["ok"], false);
    let msg = reply["error"].as_str().expect("error message");
    assert!(msg.contains("last-known-good"), "{msg}");
    assert_eq!(reply["stale"], true, "degraded error must be marked stale");

    let stats = client.stats().expect("stats");
    assert_eq!(stats["degraded"], true);
    assert_eq!(stats["failed_reallocs"], 1u64);
    assert_eq!(
        stats["registry_size"], 0u64,
        "failed mutation must not apply"
    );

    // Recovery: the budget is spent, so this one runs clean.
    let reply = client.register("T1: R[x] W[y]").expect("register");
    assert_eq!(reply["ok"], true);
    assert!(reply["stale"].is_null(), "recovered replies are not stale");
    let stats = client.stats().expect("stats");
    assert_eq!(stats["degraded"], false);
    assert_eq!(stats["failed_reallocs"], 1u64);
    assert_eq!(stats["registry_size"], 1u64);

    client.shutdown().expect("shutdown");
    join.join().expect("server thread");
}
