//! Randomized equivalence for template-catalog admission.
//!
//! The O(1) fast path (`TemplateCatalog::admit`, served as the
//! `instantiate` verb) must be *indistinguishable in outcome* from the
//! full template audit: every admitted instance gets exactly the level
//! `optimal_template_allocation` assigns its template, and every live
//! population drawn from the bounded envelope re-verifies robust under
//! Algorithm 1 at those levels. The sampling respects the envelope —
//! per (template, argument-tuple) multiplicity at most `COPIES` over a
//! `DOMAIN`-sized set of (arbitrary) concrete values — which is the
//! soundness boundary §S19 documents: within it the catalog's audit
//! certificate covers the population, outside it no claim is made.
//!
//! Reproduce any failure with
//! `ADMIT_SEED=<seed> cargo test -p mvservice --test template_admission`.

use mvisolation::{Allocation, IsolationLevel};
use mvrobustness::reverify;
use mvservice::{Config, RetryClient, RetryPolicy, Server};
use mvtemplates::{optimal_template_allocation, smallbank_templates, TemplateCatalog, TemplateSet};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use std::time::Duration;

const DEFAULT_SEED: u64 = 0xAD31;
const COPIES: usize = 2;
const DOMAIN: u32 = 2;

fn seed_from_env() -> u64 {
    std::env::var("ADMIT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

fn repro(seed: u64) -> String {
    format!("reproduce with: ADMIT_SEED={seed} cargo test -p mvservice --test template_admission")
}

/// A seeded population inside the audited envelope: `DOMAIN` distinct
/// concrete parameter values (arbitrary u32s — the audit is closed
/// under renaming), then an independent multiplicity in `0..=COPIES`
/// for every (template, tuple) pair.
fn bounded_population(set: &TemplateSet, rng: &mut SmallRng) -> Vec<(usize, Vec<u32>)> {
    let mut values: Vec<u32> = Vec::new();
    while values.len() < DOMAIN as usize {
        let v = (rng.next_u64() % u64::from(u32::MAX)) as u32;
        if !values.contains(&v) {
            values.push(v);
        }
    }
    let mut instances = Vec::new();
    for tid in 0..set.len() {
        let k = set.get(tid).expect("tid < len").param_count();
        let tuples = (DOMAIN as usize).pow(k as u32);
        for tuple in 0..tuples {
            let mut args = Vec::with_capacity(k);
            let mut rest = tuple;
            for _ in 0..k {
                args.push(values[rest % DOMAIN as usize]);
                rest /= DOMAIN as usize;
            }
            let multiplicity = rng.next_u64() as usize % (COPIES + 1);
            for _ in 0..multiplicity {
                instances.push((tid, args.clone()));
            }
        }
    }
    instances
}

/// Builds a catalog by registering SmallBank one template at a time,
/// returning it plus the whole-set audited allocation it must match.
fn smallbank_catalog() -> (TemplateCatalog, Vec<IsolationLevel>) {
    let set = smallbank_templates();
    let mut catalog = TemplateCatalog::new(COPIES, DOMAIN);
    for i in 0..set.len() {
        catalog
            .register(set.get(i).expect("i < len").clone())
            .expect("smallbank registers");
    }
    let audited = optimal_template_allocation(&set, COPIES, DOMAIN);
    (catalog, audited)
}

#[test]
fn fast_path_levels_match_the_full_audit_and_stay_robust() {
    let seed = seed_from_env();
    let ctx = repro(seed);
    let (catalog, audited) = smallbank_catalog();
    assert_eq!(catalog.levels(), &audited[..], "{ctx}");

    let mut rng = SmallRng::seed_from_u64(seed);
    for round in 0..5 {
        let population = bounded_population(catalog.templates(), &mut rng);
        // Pointwise: every admission returns the audited level.
        let mut admitted = Vec::with_capacity(population.len());
        for (tid, args) in &population {
            let level = catalog
                .admit(*tid, args)
                .unwrap_or_else(|e| panic!("[{ctx}] round {round}: admit failed: {e}"));
            assert_eq!(level, audited[*tid], "[{ctx}] round {round} template {tid}");
            admitted.push(level);
        }
        if population.is_empty() {
            continue;
        }
        // The live set — materialized as concrete transactions at the
        // admitted levels — re-verifies robust under Algorithm 1.
        let (txns, origin) = catalog
            .templates()
            .instantiate(&population)
            .unwrap_or_else(|e| panic!("[{ctx}] round {round}: instantiate failed: {e}"));
        let alloc: Allocation = txns
            .ids()
            .enumerate()
            .map(|(i, t)| (t, audited[origin[i]]))
            .collect();
        if let Err(split) = reverify(&txns, &alloc) {
            panic!(
                "[{ctx}] round {round}: a {}-instance population inside the audited \
                 envelope is NOT robust at the admitted levels: {split:?}",
                txns.len()
            );
        }
    }
}

#[test]
fn same_seed_runs_are_bit_identical() {
    let seed = seed_from_env();
    let run = || {
        let (catalog, _) = smallbank_catalog();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut transcript = Vec::new();
        for _ in 0..3 {
            for (tid, args) in bounded_population(catalog.templates(), &mut rng) {
                let level = catalog.admit(tid, &args).expect("in-envelope admit");
                transcript.push(format!("t{tid}{args:?} -> {level}"));
            }
        }
        transcript
    };
    assert_eq!(
        run(),
        run(),
        "{}: admission transcripts diverged",
        repro(seed)
    );
}

/// The served fast path agrees with the in-process catalog: every
/// `instantiate` reply carries the audited level, and none of it ever
/// reaches the allocator (`registry_size` stays 0).
#[test]
fn served_admission_matches_the_audited_allocation() {
    let seed = seed_from_env();
    let ctx = repro(seed);
    let (catalog, audited) = smallbank_catalog();

    let server = Server::bind(Config {
        addr: "127.0.0.1:0".to_string(),
        ..Config::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let join = std::thread::spawn(move || server.run().expect("run"));
    let policy = RetryPolicy {
        retries: 4,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(10),
        seed,
    };
    let mut client = RetryClient::new(addr.to_string(), policy);

    for tid in 0..catalog.len() {
        let t = catalog.templates().get(tid).expect("tid < len");
        let reply = client
            .template_register(&t.render())
            .unwrap_or_else(|e| panic!("[{ctx}] template_register {tid}: {e}"));
        assert_eq!(reply["template_id"].as_u64(), Some(tid as u64), "{ctx}");
    }
    // Levels can shift while the catalog grows; only the final state is
    // comparable. `template_list` must agree with the whole-set audit.
    let listed = client.template_list().expect("template_list");
    for (tid, want) in audited.iter().enumerate() {
        let got = listed["templates"][tid]["level"].as_str().unwrap();
        assert_eq!(got, want.as_str(), "[{ctx}] template {tid}: {listed}");
    }

    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5E12);
    let mut admissions = 0u64;
    for (tid, args) in bounded_population(catalog.templates(), &mut rng) {
        let reply = client
            .instantiate(tid as u64, &args)
            .unwrap_or_else(|e| panic!("[{ctx}] instantiate t{tid}{args:?}: {e}"));
        assert_eq!(
            reply["level"].as_str(),
            Some(audited[tid].as_str()),
            "[{ctx}] served level diverged from the audit: {reply}"
        );
        admissions += 1;
    }

    let stats = client.stats().expect("stats");
    assert_eq!(
        stats["registry_size"].as_u64(),
        Some(0),
        "[{ctx}] fast-path admission leaked into the allocator: {stats}"
    );
    assert_eq!(
        stats["admission"]["fast_path"].as_u64(),
        Some(admissions),
        "{ctx}"
    );
    assert_eq!(stats["admission"]["delta"].as_u64(), Some(0), "{ctx}");

    client.shutdown().expect("shutdown");
    join.join().expect("joins");
}
