//! End-to-end test over a real TCP socket: a server thread serves the
//! SmallBank workload; a client registers every transaction, asserts
//! the served assignments equal `Allocator::optimal` on the same set,
//! mutates the workload, and asserts the reassignments match a fresh
//! full recomputation. Also exercises the protocol's error handling
//! (bad input never drops the connection) and graceful shutdown.

use mvmodel::fmt as mvfmt;
use mvrobustness::Allocator;
use mvservice::{
    Client, ClientError, CodecKind, Config, CoreKind, FaultPlan, RetryClient, RetryPolicy, Server,
};
use mvworkloads::SmallBank;
use std::time::Duration;

/// Starts a server on an ephemeral port; returns its address and the
/// join handle of the serving thread.
fn start_server(config: Config) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind(config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

/// The SmallBank canonical mix as wire-format lines.
fn smallbank_lines() -> Vec<String> {
    let txns = SmallBank::canonical_mix();
    txns.iter().map(|t| mvfmt::transaction(&txns, t)).collect()
}

#[test]
fn smallbank_assignments_match_full_allocator() {
    let (addr, server) = start_server(Config {
        addr: "127.0.0.1:0".to_string(),
        ..Config::default()
    });
    let mut client = Client::connect(addr).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    client.ping().expect("ping");

    // Register the full canonical mix, one transaction at a time.
    for line in smallbank_lines() {
        let reply = client.register(&line).expect("register");
        assert_eq!(reply["ok"], true);
    }

    // Every served assignment equals the from-scratch optimum.
    let txns = SmallBank::canonical_mix();
    let (expected, _) = Allocator::new(&txns).optimal();
    for (id, level) in expected.iter() {
        assert_eq!(
            client.assign(id.0).expect("assign"),
            level,
            "serving mismatch for {id}"
        );
    }

    // The registry view agrees too.
    let listed = client.list().expect("list");
    let listed = listed["txns"].as_array().expect("txns array").clone();
    assert_eq!(listed.len(), txns.len());
    for entry in &listed {
        let id = mvmodel::TxnId(entry["id"].as_u64().unwrap() as u32);
        assert_eq!(entry["level"], expected.level(id).as_str());
    }

    // Mutate: drop one transaction, add a new one, and compare against
    // a fresh full run over the mutated set.
    let drop_id = txns.ids().next().expect("non-empty mix");
    let dereg = client.deregister(drop_id.0).expect("deregister");
    assert_eq!(dereg["ok"], true);

    let new_line = "T90: R[checking_1] W[checking_1]";
    let reg = client.register(new_line).expect("register new");
    assert_eq!(reg["txn_id"], 90u64);

    let mut mutated = SmallBank::canonical_mix();
    mutated.remove(drop_id);
    let parsed = mvmodel::parse_transaction_line(new_line, &mut mutated).expect("parse");
    // Re-intern against the mutated set exactly as the registry does.
    mutated.insert(parsed).expect("insert");
    let (expected, _) = Allocator::new(&mutated).optimal();
    for (id, level) in expected.iter() {
        assert_eq!(
            client.assign(id.0).expect("assign after mutation"),
            level,
            "post-mutation mismatch for {id}"
        );
    }
    // The dropped transaction no longer assigns.
    match client.assign(drop_id.0) {
        Err(ClientError::Server(msg)) => assert!(msg.contains("not registered"), "{msg}"),
        other => panic!("expected a server error, got {other:?}"),
    }

    // Stats reflect the traffic.
    let stats = client.stats().expect("stats");
    assert_eq!(stats["registry_size"], expected.iter().count() as u64);
    assert_eq!(stats["levels"], "rc-si-ssi");
    assert!(stats["requests"]["register"].as_u64().unwrap() >= 6);
    assert!(stats["requests"]["assign"].as_u64().unwrap() >= 5);
    assert!(stats["errors"].as_u64().unwrap() >= 1);
    assert!(stats["last_realloc"]["probes"].as_u64().is_some());
    assert!(stats["latency_us"]["p99"].as_u64().unwrap() > 0);

    client.shutdown().expect("shutdown");
    server.join().expect("server thread");
}

#[test]
fn bad_input_gets_error_replies_without_dropping_the_connection() {
    let (addr, server) = start_server(Config {
        addr: "127.0.0.1:0".to_string(),
        ..Config::default()
    });
    let mut client = Client::connect(addr).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");

    // A parade of malformed input, all answered on the same connection.
    for bad in [
        "this is not json",
        "[1,2,3]",
        "{}",
        r#"{"op":"warp"}"#,
        r#"{"op":"assign"}"#,
        r#"{"op":"register","txn":"T1 missing colon"}"#,
        r#"{"op":"deregister","txn_id":12}"#,
    ] {
        let reply = client.raw(bad).expect("reply on same connection");
        assert_eq!(reply["ok"], false, "input {bad:?} should fail");
        assert!(
            reply["error"].as_str().is_some(),
            "error message missing for {bad:?}"
        );
    }

    // The connection still works for real requests afterwards.
    let reply = client.register("T1: R[x] W[x]").expect("register");
    assert_eq!(reply["ok"], true);
    assert_eq!(reply["level"], "RC");

    // Duplicate registration is a structured error, not a hangup.
    let reply = client.raw(r#"{"op":"register","txn":"T1: W[q]"}"#).unwrap();
    assert_eq!(reply["ok"], false);
    assert!(reply["error"].as_str().unwrap().contains("already"));

    client.shutdown().expect("shutdown");
    server.join().expect("server thread");
}

#[test]
fn rc_si_mode_reports_unallocatable_adds() {
    let (addr, server) = start_server(Config {
        addr: "127.0.0.1:0".to_string(),
        levels: "rc-si".parse().expect("level set"),
        ..Config::default()
    });
    let mut client = Client::connect(addr).expect("connect");
    client.register("T1: R[x] W[y]").expect("register");
    // The write-skew partner is not {RC, SI}-allocatable.
    match client.register("T2: R[y] W[x]") {
        Err(ClientError::Server(msg)) => assert!(msg.contains("rc-si"), "{msg}"),
        other => panic!("expected a server error, got {other:?}"),
    }
    // The registry rolled back and keeps serving.
    assert_eq!(
        client.assign(1).expect("assign"),
        mvisolation::IsolationLevel::RC
    );
    let stats = client.stats().expect("stats");
    assert_eq!(stats["registry_size"], 1u64);
    assert_eq!(stats["levels"], "rc-si");

    client.shutdown().expect("shutdown");
    server.join().expect("server thread");
}

#[test]
fn binary_codec_serves_identical_assignments_alongside_line_clients() {
    let (addr, server) = start_server(Config {
        addr: "127.0.0.1:0".to_string(),
        ..Config::default()
    });
    // Two clients on one server, one per codec, interleaving requests.
    let mut line = Client::connect_with(addr, CodecKind::Line).expect("line connect");
    let mut frame = Client::connect_with(addr, CodecKind::Frame).expect("frame connect");
    line.set_timeout(Some(Duration::from_secs(30))).unwrap();
    frame.set_timeout(Some(Duration::from_secs(30))).unwrap();

    for (i, wire_line) in smallbank_lines().iter().enumerate() {
        let client = if i % 2 == 0 { &mut frame } else { &mut line };
        let reply = client.register(wire_line).expect("register");
        assert_eq!(reply["ok"], true);
    }

    let txns = SmallBank::canonical_mix();
    let (expected, _) = Allocator::new(&txns).optimal();
    for (id, level) in expected.iter() {
        // Both codecs serve the same allocation.
        assert_eq!(frame.assign(id.0).expect("frame assign"), level);
        assert_eq!(line.assign(id.0).expect("line assign"), level);
    }

    // The stats verb surfaces the connection gauge and per-codec
    // counters, and both codecs saw traffic.
    let stats = frame.stats().expect("stats");
    assert!(
        stats["connections"]["open"].as_u64().unwrap() >= 2,
        "two live clients must show in the gauge: {stats}"
    );
    assert!(stats["connections"]["total"].as_u64().unwrap() >= 2);
    assert!(stats["codec_line"].as_u64().unwrap() > 0, "{stats}");
    assert!(stats["codec_frame"].as_u64().unwrap() > 0, "{stats}");

    frame.shutdown().expect("shutdown");
    server.join().expect("server thread");
}

#[test]
fn threaded_core_serves_the_same_protocol() {
    let (addr, server) = start_server(Config {
        addr: "127.0.0.1:0".to_string(),
        core: CoreKind::Threaded,
        ..Config::default()
    });
    for kind in [CodecKind::Line, CodecKind::Frame] {
        let mut client = Client::connect_with(addr, kind).expect("connect");
        client.set_timeout(Some(Duration::from_secs(30))).unwrap();
        client.ping().expect("ping");
        let reply = client
            .register(&format!(
                "T{}: R[x] W[y]",
                100 + (kind == CodecKind::Frame) as u32
            ))
            .expect("register");
        assert_eq!(reply["ok"], true);
    }
    let mut client = Client::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert!(stats["codec_line"].as_u64().unwrap() > 0);
    assert!(stats["codec_frame"].as_u64().unwrap() > 0);
    client.shutdown().expect("shutdown");
    server.join().expect("server thread");
}

/// Runs the truncated-reply replay scenario over one codec and returns
/// `(req_id, replayed, registry_size)` from the retried reply.
fn replay_over(codec: CodecKind) -> (u64, bool, u64) {
    let plan = FaultPlan {
        seed: 1,
        truncate: 1.0,
        budget: Some(1),
        ..FaultPlan::default()
    };
    let (addr, server) = start_server(Config {
        addr: "127.0.0.1:0".to_string(),
        faults: Some(plan),
        ..Config::default()
    });
    let policy = RetryPolicy {
        retries: 6,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(20),
        seed: 7,
    };
    let mut client = RetryClient::with_codec(addr.to_string(), policy, codec);
    let reply = client.register("T1: R[x] W[y]").expect("retried register");
    let out = (
        reply["req_id"].as_u64().expect("req_id echo"),
        reply["replayed"] == true,
        reply["registry_size"].as_u64().expect("registry_size"),
    );
    client.shutdown().expect("shutdown");
    server.join().expect("server thread");
    out
}

#[test]
fn replay_semantics_are_bit_identical_across_codecs() {
    // The same retry policy seed must derive the same idempotency key,
    // hit the replay cache the same way, and leave the same registry —
    // whether the truncated reply was a JSON line or a binary frame.
    let (id_line, replayed_line, size_line) = replay_over(CodecKind::Line);
    let (id_frame, replayed_frame, size_frame) = replay_over(CodecKind::Frame);
    assert_eq!(id_line, id_frame, "req_id keys diverged across codecs");
    assert!(replayed_line && replayed_frame, "both retries must replay");
    assert_eq!(size_line, 1, "line run double-applied");
    assert_eq!(size_frame, 1, "frame run double-applied");
}

#[test]
fn server_handle_stops_the_server() {
    let server = Server::bind(Config {
        addr: "127.0.0.1:0".to_string(),
        ..Config::default()
    })
    .expect("bind");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("run"));
    assert!(!handle.is_shutting_down());
    handle.shutdown();
    join.join().expect("server stops on handle shutdown");
}
