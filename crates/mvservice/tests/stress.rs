//! Concurrency stress: several client threads hammer one server with
//! register / assign / deregister traffic. Asserts:
//!
//! - no request ever gets a transport error or a malformed reply —
//!   every reply is a JSON object with an `ok` field;
//! - structured errors occur only where the workload makes them legal
//!   (assigning a transaction the same thread already deregistered);
//! - every successful `assign` reply is a level of the then-current
//!   allocation — i.e. a legal level string for the configured menu;
//! - after the dust settles the registry size equals exactly the
//!   registrations minus deregistrations, and the surviving allocation
//!   equals a fresh full recomputation.

use mvrobustness::Allocator;
use mvservice::{Client, ClientError, Config, Server};
use std::time::Duration;

const THREADS: u32 = 6;
const OBJECTS: u32 = 4;

#[test]
fn concurrent_clients_never_break_the_service() {
    let server = Server::bind(Config {
        addr: "127.0.0.1:0".to_string(),
        ..Config::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let server_thread = std::thread::spawn(move || server.run().expect("run"));

    let workers: Vec<_> = (0..THREADS)
        .map(|w| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client
                    .set_timeout(Some(Duration::from_secs(60)))
                    .expect("timeout");
                // Each worker owns a disjoint id range; objects are
                // shared across workers so reallocations interact.
                let base = 1000 * (w + 1);
                let mut registered: Vec<u32> = Vec::new();
                for i in 0..10u32 {
                    let id = base + i;
                    let obj_a = (w + i) % OBJECTS;
                    let obj_b = (w + i + 1) % OBJECTS;
                    let line = format!("T{id}: R[o{obj_a}] W[o{obj_b}]");
                    let reply = client.register(&line).expect("register never errors");
                    assert_eq!(reply["ok"], true);
                    registered.push(id);

                    // Assign something this thread knows is registered.
                    let probe = registered[(i as usize) / 2];
                    let level = client.assign(probe).expect("assign registered id");
                    assert!(
                        ["RC", "SI", "SSI"].contains(&level.as_str()),
                        "level {level} outside the menu"
                    );

                    // Every third step, retire the oldest transaction.
                    if i % 3 == 2 {
                        let victim = registered.remove(0);
                        let reply = client.deregister(victim).expect("deregister");
                        assert_eq!(reply["ok"], true);
                        // Assigning it afterwards is a *structured* error.
                        match client.assign(victim) {
                            Err(ClientError::Server(msg)) => {
                                assert!(msg.contains("not registered"), "{msg}")
                            }
                            Ok(_) => panic!("assign of deregistered T{victim} succeeded"),
                            Err(other) => panic!("transport error on legal request: {other}"),
                        }
                    }
                }
                registered
            })
        })
        .collect();

    let mut surviving: Vec<u32> = Vec::new();
    for w in workers {
        surviving.extend(w.join().expect("worker panicked"));
    }
    surviving.sort_unstable();

    // Registry size converged to registrations minus deregistrations.
    let mut client = Client::connect(addr).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    let stats = client.stats().expect("stats");
    assert_eq!(stats["registry_size"], surviving.len() as u64);
    assert_eq!(stats["errors"], u64::from(THREADS * 3));

    // The served allocation equals a fresh full recomputation of the
    // surviving workload.
    let listed = client.list().expect("list");
    let listed = listed["txns"].as_array().expect("array").clone();
    let ids: Vec<u32> = listed
        .iter()
        .map(|t| t["id"].as_u64().unwrap() as u32)
        .collect();
    assert_eq!(ids, surviving, "served ids diverge from client bookkeeping");

    let text: String = listed
        .iter()
        .map(|t| format!("{}\n", t["text"].as_str().unwrap()))
        .collect();
    let txns = mvmodel::parse_transactions(&text).expect("round-trip parse");
    let (expected, _) = Allocator::new(&txns).optimal();
    for t in &listed {
        let id = mvmodel::TxnId(t["id"].as_u64().unwrap() as u32);
        assert_eq!(
            t["level"],
            expected.level(id).as_str(),
            "served level diverges from full recomputation for {id}"
        );
    }

    client.shutdown().expect("shutdown");
    server_thread.join().expect("server thread");
}
