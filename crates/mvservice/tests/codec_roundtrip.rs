//! Property tests for the binary frame codec: `encode ∘ decode = id`
//! on arbitrary JSON values, under arbitrary read fragmentation, and
//! exactly at the frame-size boundaries {0, 1, max−1, max, max+1}.
//!
//! The generator grows values from a seeded [`SmallRng`] so every
//! failure reproduces from the printed seed.

use mvservice::{
    encode_payload, encode_raw_frame, CodecAccept, CodecKind, FrameBuf, FrameError, Payload,
    MAX_FRAME,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use serde_json::{Map, Value};

/// A random JSON value, depth-bounded so generation terminates.
fn random_value(rng: &mut SmallRng, depth: u32) -> Value {
    let pick = if depth >= 3 {
        rng.random_range(0..6u32) // scalars only at the leaves
    } else {
        rng.random_range(0..8u32)
    };
    match pick {
        0 => Value::Null,
        1 => Value::from(rng.random_range(0..2u32) == 1),
        2 => Value::from(rng.next_u64()),
        3 => Value::from(-(rng.random_range(1..i64::MAX))),
        4 => Value::from(f64::from_bits(
            0x3FF0_0000_0000_0000 | (rng.next_u64() >> 12),
        )),
        5 => Value::String(random_string(rng)),
        6 => {
            let n = rng.random_range(0..5u32);
            Value::Array((0..n).map(|_| random_value(rng, depth + 1)).collect())
        }
        _ => {
            let n = rng.random_range(0..5u32);
            let mut map = Map::new();
            for i in 0..n {
                map.insert(
                    format!("k{i}_{}", random_string(rng)),
                    random_value(rng, depth + 1),
                );
            }
            Value::Object(map)
        }
    }
}

/// Mixed ASCII/Unicode strings, including empties and JSON specials.
fn random_string(rng: &mut SmallRng) -> String {
    const POOL: &[&str] = &[
        "",
        "x",
        "txn",
        "R[x] W[y]",
        "päyload",
        "→",
        "\"quoted\"",
        "\\back\\",
        "\n",
        "\t",
        "nul\u{0}byte",
        "🦀",
        "long-ish-token-with-dashes",
    ];
    let n = rng.random_range(0..4u32);
    (0..n)
        .map(|_| POOL[rng.random_range(0..POOL.len() as u64) as usize])
        .collect()
}

/// Pushes `wire` into a fresh auto-sniffing FrameBuf in random chunks
/// and returns every decoded payload.
fn decode_chunked(rng: &mut SmallRng, wire: &[u8]) -> Vec<Value> {
    let mut fb = FrameBuf::new(CodecAccept::Auto);
    let mut out = Vec::new();
    let mut at = 0;
    while at < wire.len() {
        let n = rng.random_range(1..64usize).min(wire.len() - at);
        fb.push(&wire[at..at + n]);
        at += n;
        loop {
            match fb.next_payload().expect("valid wire bytes decode") {
                Some(Payload::Frame(v)) => out.push(v),
                Some(Payload::Line(_)) => panic!("binary wire sniffed as line"),
                None => break,
            }
        }
    }
    assert!(!fb.has_partial(), "whole frames must leave no residue");
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]

    /// encode ∘ decode = id for a single frame, fed whole.
    #[test]
    fn prop_frame_round_trips(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let v = random_value(&mut rng, 0);
        let mut wire = Vec::new();
        encode_payload(CodecKind::Frame, &v, &mut wire);
        let mut fb = FrameBuf::new(CodecAccept::Auto);
        fb.push(&wire);
        prop_assert_eq!(fb.next_payload().unwrap(), Some(Payload::Frame(v)));
        prop_assert_eq!(fb.next_payload().unwrap(), None);
    }

    /// A pipelined run of frames survives arbitrary read fragmentation
    /// (every split point, including mid-header and mid-payload, is
    /// reachable from some seed).
    #[test]
    fn prop_split_frames_round_trip(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let count = rng.random_range(1..6usize);
        let values: Vec<Value> = (0..count).map(|_| random_value(&mut rng, 0)).collect();
        let mut wire = Vec::new();
        for v in &values {
            encode_payload(CodecKind::Frame, v, &mut wire);
        }
        let decoded = decode_chunked(&mut rng, &wire);
        prop_assert_eq!(decoded, values);
    }
}

#[test]
fn boundary_len_zero_is_a_structured_payload_error() {
    let mut wire = Vec::new();
    encode_raw_frame(&[], &mut wire);
    let mut fb = FrameBuf::new(CodecAccept::Auto);
    fb.push(&wire);
    match fb.next_payload() {
        Err(FrameError::BadPayload(_)) => {}
        other => panic!("empty payload must be a payload error, got {other:?}"),
    }
}

#[test]
fn boundary_len_one_decodes_the_smallest_value() {
    // Tag 0x00 = null: the shortest legal payload.
    let mut wire = Vec::new();
    encode_raw_frame(&[0x00], &mut wire);
    let mut fb = FrameBuf::new(CodecAccept::Auto);
    fb.push(&wire);
    assert_eq!(
        fb.next_payload().unwrap(),
        Some(Payload::Frame(Value::Null))
    );
}

/// A string payload of exactly `total` bytes: TAG_STR (1) + u32 length
/// (4) + the character bytes.
fn string_payload(total: usize) -> Vec<u8> {
    assert!(total >= 5);
    let body = total - 5;
    let mut p = Vec::with_capacity(total);
    p.push(0x06);
    p.extend_from_slice(&(body as u32).to_le_bytes());
    p.extend(std::iter::repeat_n(b's', body));
    p
}

#[test]
fn boundary_len_max_minus_one_and_max_round_trip() {
    for total in [MAX_FRAME - 1, MAX_FRAME] {
        let payload = string_payload(total);
        let mut wire = Vec::new();
        encode_raw_frame(&payload, &mut wire);
        let mut fb = FrameBuf::new(CodecAccept::Auto);
        fb.push(&wire);
        match fb.next_payload().unwrap() {
            Some(Payload::Frame(Value::String(s))) => {
                assert_eq!(s.len(), total - 5, "payload of {total} bytes");
            }
            other => panic!("expected a string frame at {total} bytes, got {other:?}"),
        }
    }
}

#[test]
fn boundary_len_max_plus_one_is_rejected_from_the_header_alone() {
    // Only the header needs to arrive — the declared length condemns
    // the frame before any payload is buffered.
    let mut fb = FrameBuf::new(CodecAccept::Auto);
    let mut header = vec![mvservice::FRAME_MAGIC];
    header.extend_from_slice(&((MAX_FRAME + 1) as u32).to_le_bytes());
    fb.push(&header);
    match fb.next_payload() {
        Err(FrameError::Oversized { len, kind }) => {
            assert_eq!(len, MAX_FRAME + 1);
            assert_eq!(kind, CodecKind::Frame);
        }
        other => panic!("expected Oversized, got {other:?}"),
    }
}

#[test]
fn partial_frame_at_eof_is_a_clean_drop() {
    let mut wire = Vec::new();
    encode_payload(
        CodecKind::Frame,
        &serde_json::from_str::<Value>(r#"{"op":"ping"}"#).unwrap(),
        &mut wire,
    );
    // Cut the frame anywhere before its end: EOF must yield nothing.
    for cut in [1, 3, wire.len() / 2, wire.len() - 1] {
        let mut fb = FrameBuf::new(CodecAccept::Auto);
        fb.push(&wire[..cut]);
        assert_eq!(fb.next_payload().unwrap(), None, "cut at {cut}");
        assert_eq!(fb.eof_residual().unwrap(), None, "cut at {cut}");
    }
}

#[test]
fn codec_negotiation_is_per_connection_and_sticky() {
    // A line connection never flips to frames mid-stream: a stray 0xB1
    // inside a line is just a byte; a 0xB1 *first* byte means frames.
    let mut fb = FrameBuf::new(CodecAccept::Auto);
    fb.push(b"{\"op\":\"ping\"}\n");
    assert!(matches!(fb.next_payload().unwrap(), Some(Payload::Line(_))));
    assert_eq!(fb.kind(), Some(CodecKind::Line));
    let mut frame = Vec::new();
    encode_payload(
        CodecKind::Frame,
        &serde_json::from_str::<Value>(r#"{"op":"ping"}"#).unwrap(),
        &mut frame,
    );
    fb.push(&frame);
    // The frame bytes are not valid UTF-8 JSON lines — the connection
    // errors rather than silently switching codecs.
    assert!(fb.next_payload().is_err() || fb.kind() == Some(CodecKind::Line));
}
