//! Satellite: the template-level audit round-trips through the service
//! path. `mvtemplates::audit` certifies a per-template allocation
//! against the bounded instantiation *offline*; here the same bounded
//! SmallBank set is admitted transaction-by-transaction through the
//! delta API of a live server, and the audit verdict is checked against
//! the per-instance outcomes the service actually produced:
//!
//! - the service's optimum is the pointwise-least robust allocation
//!   (Prop 4.2), so each instance's assigned level must sit at or below
//!   its template's audited level;
//! - the allocation the service hands out must itself pass Algorithm 1,
//!   agreeing with the audit's `robust = true`;
//! - and in the other direction, a template assignment the audit
//!   *refutes* (all-RC) must be refuted by the instances too: at least
//!   one admitted instance is pinned above RC.

use mvisolation::{Allocation, IsolationLevel};
use mvmodel::OpKind;
use mvrobustness::is_robust;
use mvservice::{Client, CodecKind, Config, Server};
use mvtemplates::{audit, optimal_template_allocation, smallbank_templates};

const COPIES: usize = 1;
const DOMAIN: u32 = 2;

#[test]
fn template_audit_verdict_matches_service_assigned_instances() {
    let set = smallbank_templates();
    let levels = optimal_template_allocation(&set, COPIES, DOMAIN);
    let verdict = audit(&set, &levels, COPIES, DOMAIN);
    assert!(
        verdict.robust,
        "optimal template allocation must audit robust"
    );
    assert!(verdict.counterexample.is_none());

    let (txns, origin) = set
        .bounded_instantiation(COPIES, DOMAIN)
        .expect("bounded SmallBank instantiation is well-formed");
    assert_eq!(verdict.instances, txns.len());

    // Render each instance as a wire line (instance i holds TxnId i+1,
    // per `instantiate`'s id assignment).
    let lines: Vec<String> = txns
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let ops: Vec<String> = t
                .ops()
                .iter()
                .map(|op| {
                    let tag = match op.kind {
                        OpKind::Read => 'R',
                        OpKind::Write => 'W',
                    };
                    format!("{tag}[{}]", txns.object_name(op.object))
                })
                .collect();
            format!("T{}: {}", i + 1, ops.join(" "))
        })
        .collect();

    // Admit the whole bounded set through a live server's delta API,
    // in a dedicated tenant so the path under test is the namespaced one.
    let server = Server::bind(Config {
        addr: "127.0.0.1:0".to_string(),
        ..Config::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("local addr");
    let join = std::thread::spawn(move || server.run().expect("server run"));
    let mut client = Client::connect_with(addr.to_string(), CodecKind::Line)
        .expect("connect")
        .with_tenant("audit");
    for line in &lines {
        let reply = client.register(line).expect("register");
        assert_eq!(reply["ok"], true, "rejected: {line}");
    }

    // Per-instance outcomes: the service optimum is pointwise least
    // among robust allocations, so it can never exceed the audited
    // per-template level.
    let mut service_levels = Vec::with_capacity(lines.len());
    for i in 0..lines.len() {
        let level = client.assign(i as u32 + 1).expect("assign");
        assert!(
            level <= levels[origin[i]],
            "instance T{} ({}): service assigned {level}, above audited template level {}",
            i + 1,
            set.get(origin[i]).unwrap().name(),
            levels[origin[i]]
        );
        service_levels.push(level);
    }

    // The service's allocation must re-verify under Algorithm 1 —
    // per-instance outcomes agreeing with the audit's robust verdict.
    let alloc: Allocation = txns.ids().zip(service_levels.iter().copied()).collect();
    assert!(
        is_robust(&txns, &alloc).robust(),
        "service allocation failed the offline robustness check"
    );

    // Refutation direction: all-RC fails the audit, and the instances
    // admitted through the service agree — at least one sits above RC
    // (were they all RC-allocatable, the least optimum would be all-RC).
    let all_rc = vec![IsolationLevel::ReadCommitted; set.len()];
    let refuted = audit(&set, &all_rc, COPIES, DOMAIN);
    assert!(!refuted.robust, "all-RC SmallBank must not audit robust");
    assert!(refuted.counterexample.is_some());
    assert!(
        service_levels
            .iter()
            .any(|&l| l > IsolationLevel::ReadCommitted),
        "audit refutes all-RC but the service allocated everything RC"
    );

    client.shutdown().expect("shutdown");
    join.join().expect("server joins");
}
