//! Protocol fuzzing: a seeded random frame mutator fired at a live
//! server socket.
//!
//! Every mutated frame — truncated JSON, interleaved garbage bytes,
//! raw binary junk, embedded newlines, oversized lines — must produce
//! either a structured `{"ok": false, …}` error reply or a clean
//! connection drop. The server must never panic, never hang, and must
//! keep serving well-formed requests afterwards. Reproduce with
//! `FUZZ_SEED=<seed> cargo test -p mvservice --test fuzz_protocol`.

use mvservice::{
    encode_payload, Client, CodecKind, Config, FrameBuf, Payload, Server, FRAME_MAGIC, MAX_FRAME,
};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use serde_json::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

const DEFAULT_SEED: u64 = 0xF022;

fn seed_from_env() -> u64 {
    std::env::var("FUZZ_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

fn start_server() -> (SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind(Config {
        addr: "127.0.0.1:0".to_string(),
        // Short stall budget so partial-frame probes resolve quickly.
        request_timeout: Duration::from_millis(300),
        ..Config::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (addr, join)
}

/// Well-formed frames the mutator starts from.
fn base_frames() -> Vec<String> {
    vec![
        r#"{"op":"ping"}"#.to_string(),
        r#"{"op":"stats"}"#.to_string(),
        r#"{"op":"list"}"#.to_string(),
        r#"{"op":"assign","txn_id":3}"#.to_string(),
        r#"{"op":"register","txn":"T1: R[x] W[y]"}"#.to_string(),
        r#"{"op":"register","txn":"T2: R[y] W[x]","req_id":77}"#.to_string(),
        r#"{"op":"deregister","txn_id":1,"req_id":9}"#.to_string(),
        r#"{"op":"template_register","template":"Balance: R[sav:$0] R[chk:$0]"}"#.to_string(),
        // An out-of-range template id: must come back as a structured
        // error reply, never a server panic (TemplateSet::get is
        // Option-returning, not indexing).
        r#"{"op":"instantiate","template_id":7,"params":[0]}"#.to_string(),
        r#"{"op":"template_list"}"#.to_string(),
    ]
}

/// One seeded mutation: truncation, garbage splices, byte flips,
/// frame interleaving, or pure binary junk.
fn mutate(rng: &mut SmallRng, base: &str) -> Vec<u8> {
    let mut bytes = base.as_bytes().to_vec();
    match rng.next_u64() % 5 {
        0 => {
            // Truncate mid-frame.
            let at = (rng.next_u64() % bytes.len().max(1) as u64) as usize;
            bytes.truncate(at);
        }
        1 => {
            // Splice garbage (any bytes, newlines included) inside.
            let at = (rng.next_u64() % (bytes.len() + 1) as u64) as usize;
            let n = 1 + (rng.next_u64() % 24) as usize;
            let garbage: Vec<u8> = (0..n).map(|_| (rng.next_u64() % 256) as u8).collect();
            bytes.splice(at..at, garbage);
        }
        2 => {
            // Flip a handful of bytes in place.
            for _ in 0..1 + rng.next_u64() % 8 {
                let at = (rng.next_u64() % bytes.len().max(1) as u64) as usize;
                if at < bytes.len() {
                    bytes[at] = (rng.next_u64() % 256) as u8;
                }
            }
        }
        3 => {
            // Two frames interleaved with garbage between them.
            let frames = base_frames();
            let mut other = frames[(rng.next_u64() % frames.len() as u64) as usize]
                .as_bytes()
                .to_vec();
            bytes.push(b'\n');
            for _ in 0..rng.next_u64() % 12 {
                bytes.push((rng.next_u64() % 256) as u8);
            }
            bytes.push(b'\n');
            bytes.append(&mut other);
        }
        _ => {
            // Pure binary junk, no JSON skeleton at all.
            let n = 1 + (rng.next_u64() % 200) as usize;
            bytes = (0..n).map(|_| (rng.next_u64() % 256) as u8).collect();
        }
    }
    bytes
}

/// Ships one mutated frame on its own connection and collects every
/// reply line until the server closes or stops sending. Returns the
/// reply lines (possibly none — a clean drop).
fn fire(addr: SocketAddr, frame: &[u8]) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    writer.write_all(frame).expect("write frame");
    writer.write_all(b"\n").ok();
    // Half-close: the server sees EOF after the frame, so it can never
    // sit waiting for more bytes — a hang here is a server bug.
    stream.shutdown(Shutdown::Write).ok();
    let mut replies = Vec::new();
    let mut reader = BufReader::new(stream);
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => replies.push(line.trim().to_string()),
            // Timeout => the server hung without closing: fail loudly.
            Err(e) => panic!("read stalled on frame {frame:?}: {e}"),
        }
    }
    replies
}

#[test]
fn mutated_frames_get_structured_errors_or_clean_drops() {
    let seed = seed_from_env();
    let (addr, join) = start_server();
    let mut rng = SmallRng::seed_from_u64(seed);
    let bases = base_frames();
    for round in 0..150u32 {
        let base = &bases[(rng.next_u64() % bases.len() as u64) as usize];
        let frame = mutate(&mut rng, base);
        for reply in fire(addr, &frame) {
            if reply.is_empty() {
                continue;
            }
            let v: serde_json::Value = serde_json::from_str(&reply).unwrap_or_else(|e| {
                panic!(
                    "FUZZ_SEED={seed} round {round}: reply {reply:?} to frame \
                     {frame:?} is not JSON: {e}"
                )
            });
            assert!(
                v["ok"].as_bool().is_some(),
                "FUZZ_SEED={seed} round {round}: reply {reply:?} lacks ok"
            );
            if v["ok"] == false {
                assert!(
                    v["error"].as_str().is_some(),
                    "FUZZ_SEED={seed} round {round}: error reply without message"
                );
            }
        }
        // The server survived: it still answers a well-formed ping.
        if round % 25 == 0 {
            let mut probe = Client::connect(addr).expect("server still accepts");
            probe.ping().expect("server still answers");
        }
    }

    // After the storm the service is fully functional.
    let mut client = Client::connect(addr).expect("connect");
    client.ping().expect("ping");
    let reply = client.register("T50: R[q] W[q]").expect("register");
    assert_eq!(reply["ok"], true);
    let stats = client.stats().expect("stats");
    assert!(
        stats["requests"]["invalid"].as_u64().unwrap() > 0,
        "the fuzzer should have produced at least one invalid request"
    );
    client.shutdown().expect("shutdown");
    join.join().expect("server thread");
}

#[test]
fn oversized_line_gets_an_error_then_the_connection_closes() {
    let (addr, join) = start_server();
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    // ~2x the cap, in one line.
    let big = vec![b'a'; 2 * MAX_FRAME];
    writer.write_all(&big).expect("write oversized");
    writer.write_all(b"\n").expect("newline");
    writer.flush().expect("flush");
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read reply");
    let v: serde_json::Value = serde_json::from_str(reply.trim()).expect("structured reply");
    assert_eq!(v["ok"], false);
    assert!(
        v["error"].as_str().unwrap().contains("exceeds"),
        "unexpected error: {v}"
    );
    // The connection is closed afterwards — no unbounded buffering.
    let mut rest = String::new();
    assert_eq!(reader.read_to_string(&mut rest).expect("eof"), 0);

    let mut client = Client::connect(addr).expect("connect");
    client.ping().expect("server unaffected");
    client.shutdown().expect("shutdown");
    join.join().expect("server thread");
}

/// Encodes `line` (well-formed JSON) as one binary frame.
fn binary_frame(line: &str) -> Vec<u8> {
    let v: Value = serde_json::from_str(line).expect("base frames are valid JSON");
    let mut out = Vec::new();
    encode_payload(CodecKind::Frame, &v, &mut out);
    out
}

/// One seeded binary-frame mutation: truncated header or payload,
/// corrupted magic, declared length ≠ actual, flipped payload bytes.
fn mutate_binary(rng: &mut SmallRng, wire: &[u8]) -> Vec<u8> {
    let mut bytes = wire.to_vec();
    match rng.next_u64() % 5 {
        0 => {
            // Truncate anywhere — inside the 5-byte header included.
            let at = (rng.next_u64() % bytes.len() as u64) as usize;
            bytes.truncate(at);
        }
        1 => {
            // Bad magic: anything that isn't 0xB1 (and isn't `{`, which
            // would legitimately sniff as a line).
            let mut m = (rng.next_u64() % 256) as u8;
            if m == FRAME_MAGIC || m == b'{' {
                m = 0xFF;
            }
            bytes[0] = m;
        }
        2 => {
            // Declared length > actual: the frame never completes — the
            // stall budget must fire (or EOF must be a clean drop).
            let declared = u32::from_le_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]);
            let grown = declared + 1 + (rng.next_u64() % 64) as u32;
            bytes[1..5].copy_from_slice(&grown.min(MAX_FRAME as u32).to_le_bytes());
        }
        3 => {
            // Declared length < actual: decode sees trailing or
            // truncated garbage — a structured payload error.
            let declared = u32::from_le_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]);
            let shrunk = (rng.next_u64() % u64::from(declared).max(1)) as u32;
            bytes[1..5].copy_from_slice(&shrunk.to_le_bytes());
        }
        _ => {
            // Flip payload bytes, header intact.
            for _ in 0..1 + rng.next_u64() % 8 {
                let at = 5 + (rng.next_u64() % (bytes.len() - 5).max(1) as u64) as usize;
                if at < bytes.len() {
                    bytes[at] = (rng.next_u64() % 256) as u8;
                }
            }
        }
    }
    bytes
}

/// Ships a valid binary ping (validating the connection as
/// frame-speaking) followed by `mutated`, half-closes, and collects
/// every binary reply until the server closes. A stall panics.
fn fire_binary(addr: SocketAddr, mutated: &[u8]) -> Vec<Value> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    writer
        .write_all(&binary_frame(r#"{"op":"ping"}"#))
        .expect("write ping frame");
    writer.write_all(mutated).expect("write mutated frame");
    writer.flush().expect("flush");
    stream.shutdown(Shutdown::Write).ok();
    let mut reader = stream;
    let mut fb = FrameBuf::with_kind(CodecKind::Frame);
    let mut replies = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match fb.next_payload() {
            Ok(Some(Payload::Frame(v))) => {
                replies.push(v);
                continue;
            }
            Ok(Some(Payload::Line(l))) => panic!("line reply {l:?} on a binary connection"),
            Ok(None) => {}
            Err(e) => panic!("undecodable reply to {mutated:?}: {}", e.message()),
        }
        match reader.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => fb.push(&buf[..n]),
            Err(e) => panic!("read stalled on frame {mutated:?}: {e}"),
        }
    }
    replies
}

#[test]
fn mutated_binary_frames_get_structured_errors_or_clean_drops() {
    let seed = seed_from_env() ^ 0xB1B1;
    let (addr, join) = start_server();
    let mut rng = SmallRng::seed_from_u64(seed);
    let bases: Vec<Vec<u8>> = base_frames().iter().map(|l| binary_frame(l)).collect();
    for round in 0..120u32 {
        let base = &bases[(rng.next_u64() % bases.len() as u64) as usize];
        let mutated = mutate_binary(&mut rng, base);
        let replies = fire_binary(addr, &mutated);
        assert!(
            !replies.is_empty(),
            "FUZZ_SEED={seed} round {round}: the leading ping got no reply"
        );
        assert_eq!(
            replies[0]["ok"], true,
            "FUZZ_SEED={seed} round {round}: ping must succeed before the mutation lands"
        );
        for v in &replies[1..] {
            assert!(
                v["ok"].as_bool().is_some(),
                "FUZZ_SEED={seed} round {round}: reply {v} lacks ok"
            );
            if v["ok"] == false {
                assert!(
                    v["error"].as_str().is_some(),
                    "FUZZ_SEED={seed} round {round}: error reply without message"
                );
            }
        }
        if round % 25 == 0 {
            let mut probe =
                Client::connect_with(addr, CodecKind::Frame).expect("server still accepts");
            probe.ping().expect("server still answers frames");
        }
    }

    // After the storm the service works on both codecs.
    for (i, kind) in [CodecKind::Line, CodecKind::Frame].into_iter().enumerate() {
        let mut client = Client::connect_with(addr, kind).expect("connect");
        client.ping().expect("ping");
        let reply = client
            .register(&format!("T6{i}: R[q] W[q]"))
            .expect("register");
        assert_eq!(reply["ok"], true);
    }
    let mut client = Client::connect(addr).expect("connect");
    client.shutdown().expect("shutdown");
    join.join().expect("server thread");
}

#[test]
fn oversized_binary_frame_gets_the_same_structured_error() {
    let (addr, join) = start_server();
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    writer
        .write_all(&binary_frame(r#"{"op":"ping"}"#))
        .expect("write ping frame");
    // A header declaring 2x the cap — rejected before any payload.
    let mut header = vec![FRAME_MAGIC];
    header.extend_from_slice(&((2 * MAX_FRAME) as u32).to_le_bytes());
    writer.write_all(&header).expect("write oversized header");
    writer.flush().expect("flush");
    stream.shutdown(Shutdown::Write).ok();

    let mut reader = stream;
    let mut fb = FrameBuf::with_kind(CodecKind::Frame);
    let mut buf = [0u8; 4096];
    let mut replies: Vec<Value> = Vec::new();
    loop {
        match fb.next_payload().expect("server replies are well-formed") {
            Some(Payload::Frame(v)) => {
                replies.push(v);
                continue;
            }
            Some(Payload::Line(l)) => panic!("line reply {l:?} on a binary connection"),
            None => {}
        }
        match reader.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => fb.push(&buf[..n]),
            Err(e) => panic!("read stalled: {e}"),
        }
    }
    assert_eq!(
        replies.len(),
        2,
        "ping reply + structured error: {replies:?}"
    );
    assert_eq!(replies[0]["ok"], true);
    assert_eq!(replies[1]["ok"], false);
    assert!(
        replies[1]["error"].as_str().unwrap().contains("exceeds"),
        "oversized frames use the same error shape as oversized lines: {}",
        replies[1]
    );

    let mut client = Client::connect(addr).expect("connect");
    client.ping().expect("server unaffected");
    client.shutdown().expect("shutdown");
    join.join().expect("server thread");
}

#[test]
fn junk_behind_the_magic_byte_is_a_clean_drop_not_a_binary_error() {
    // A *line* probe whose junk happens to start with 0xB1 sniffs as
    // binary; with no validated frame on the connection the server
    // must drop cleanly rather than answer with binary bytes the probe
    // cannot parse.
    let (addr, join) = start_server();
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    let mut junk = vec![FRAME_MAGIC];
    junk.extend_from_slice(&3u32.to_le_bytes());
    junk.extend_from_slice(b"zzz");
    writer.write_all(&junk).expect("write junk");
    writer.flush().expect("flush");
    stream.shutdown(Shutdown::Write).ok();
    let mut reader = stream;
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("clean close");
    assert!(
        rest.is_empty(),
        "junk-sniffed connections close silently, got {rest:?}"
    );

    let mut client = Client::connect(addr).expect("connect");
    client.ping().expect("server unaffected");
    client.shutdown().expect("shutdown");
    join.join().expect("server thread");
}

#[test]
fn stalled_partial_binary_frame_times_out_with_a_frame_error() {
    let (addr, join) = start_server();
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    writer
        .write_all(&binary_frame(r#"{"op":"ping"}"#))
        .expect("write ping frame");
    // Half a header, then silence — the 300ms stall budget must fire.
    writer
        .write_all(&[FRAME_MAGIC, 0x10, 0x00])
        .expect("partial");
    writer.flush().expect("flush");

    let mut reader = stream;
    let mut fb = FrameBuf::with_kind(CodecKind::Frame);
    let mut buf = [0u8; 4096];
    let mut replies: Vec<Value> = Vec::new();
    while replies.len() < 2 {
        match fb.next_payload().expect("server replies are well-formed") {
            Some(Payload::Frame(v)) => {
                replies.push(v);
                continue;
            }
            Some(Payload::Line(l)) => panic!("line reply {l:?} on a binary connection"),
            None => {}
        }
        match reader.read(&mut buf) {
            Ok(0) => panic!("closed before the stall error arrived: {replies:?}"),
            Ok(n) => fb.push(&buf[..n]),
            Err(e) => panic!("read stalled: {e}"),
        }
    }
    assert_eq!(replies[0]["ok"], true);
    assert_eq!(replies[1]["ok"], false);
    assert!(
        replies[1]["error"].as_str().unwrap().contains("timed out"),
        "unexpected error: {}",
        replies[1]
    );

    let mut client = Client::connect(addr).expect("connect");
    client.ping().expect("server unaffected");
    client.shutdown().expect("shutdown");
    join.join().expect("server thread");
}

#[test]
fn stalled_partial_frame_times_out_with_an_error() {
    let (addr, join) = start_server();
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    // A partial frame, then silence — the 300ms stall budget must fire.
    writer.write_all(br#"{"op":"pi"#).expect("write partial");
    writer.flush().expect("flush");
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read reply");
    let v: serde_json::Value = serde_json::from_str(reply.trim()).expect("structured reply");
    assert_eq!(v["ok"], false);
    assert!(
        v["error"].as_str().unwrap().contains("timed out"),
        "unexpected error: {v}"
    );

    let mut client = Client::connect(addr).expect("connect");
    client.ping().expect("server unaffected");
    client.shutdown().expect("shutdown");
    join.join().expect("server thread");
}
