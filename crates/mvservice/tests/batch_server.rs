//! End-to-end tests of group-commit coalescing over a real TCP socket:
//! a server running with `batch_max > 1` must serve bit-identical
//! allocations and per-event verdicts to the inline path, coalesce
//! pipelined mutations into engine batches, answer per-event retries
//! from the replay cache (exactly-once, keyed per event — not per
//! batch), and degrade whole batches gracefully when reallocation
//! cannot complete.

use mvmodel::fmt as mvfmt;
use mvrobustness::Allocator;
use mvservice::{BatchOp, Client, Config, RetryClient, RetryPolicy, Server};
use mvworkloads::SmallBank;
use std::time::Duration;

fn start_server(config: Config) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind(config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

fn batching_config(batch_max: usize) -> Config {
    Config {
        addr: "127.0.0.1:0".to_string(),
        batch_max,
        // A long window makes one pipelined burst coalesce into one
        // drain deterministically; the drain fires early the moment the
        // queue reaches `batch_max`, so this adds no latency when full.
        batch_delay: Duration::from_millis(500),
        ..Config::default()
    }
}

fn smallbank_lines() -> Vec<String> {
    let txns = SmallBank::canonical_mix();
    txns.iter().map(|t| mvfmt::transaction(&txns, t)).collect()
}

/// The whole SmallBank mix shipped as one pipelined batch must coalesce
/// into engine batches and serve exactly the from-scratch optimum.
#[test]
fn coalesced_batch_serves_the_exact_optimum() {
    let lines = smallbank_lines();
    let (addr, server) = start_server(batching_config(lines.len()));
    let mut client = RetryClient::new(addr.to_string(), RetryPolicy::default());
    client.set_timeout(Some(Duration::from_secs(30)));

    let ops: Vec<BatchOp> = lines.iter().cloned().map(BatchOp::Register).collect();
    let replies = client.send_batch(&ops).expect("batch applies");
    assert_eq!(replies.len(), lines.len());
    for (r, line) in replies.iter().zip(&lines) {
        assert_eq!(r["ok"], true, "line {line:?} rejected: {r}");
    }

    let txns = SmallBank::canonical_mix();
    let (expected, _) = Allocator::new(&txns).optimal();
    for (id, level) in expected.iter() {
        assert_eq!(
            client.assign(id.0).expect("assign"),
            level,
            "serving mismatch for {id}"
        );
    }

    let stats = client.stats().expect("stats");
    assert_eq!(stats["registry_size"], txns.len() as u64);
    let batch = &stats["batch"];
    assert_eq!(
        batch["coalesced_events"],
        lines.len() as u64,
        "every mutation must go through the coalescing queue: {stats}"
    );
    let drains = batch["drains"].as_u64().expect("drains counter");
    assert!(drains >= 1 && drains <= lines.len() as u64, "{stats}");
    assert!(
        batch["size_p99"].as_u64().expect("size p99") > 1,
        "one pipelined burst should coalesce into a multi-event drain: {stats}"
    );
    assert!(
        stats["last_realloc"]["batch_events"]
            .as_u64()
            .expect("batch_events")
            >= 1,
        "{stats}"
    );

    client.shutdown().expect("shutdown");
    server.join().expect("server thread");
}

/// Per-event verdicts inside a coalesced batch match the single-event
/// semantics: rejected events roll back individually, the rest land.
#[test]
fn mixed_batch_reports_per_event_verdicts() {
    let (addr, server) = start_server(batching_config(8));
    let mut client = RetryClient::new(addr.to_string(), RetryPolicy::default());
    client.set_timeout(Some(Duration::from_secs(30)));

    let replies = client
        .send_batch(&[
            BatchOp::Register("T1: R[x] W[y]".to_string()),
            BatchOp::Register("T1: W[q]".to_string()), // duplicate id
            BatchOp::Register("T2: R[y] W[x]".to_string()),
            BatchOp::Deregister(9), // never registered
        ])
        .expect("batch ships");
    assert_eq!(replies[0]["ok"], true);
    assert_eq!(replies[0]["txn_id"], 1u64);
    assert_eq!(replies[1]["ok"], false);
    assert!(
        replies[1]["error"].as_str().unwrap().contains("already"),
        "{}",
        replies[1]
    );
    assert_eq!(replies[2]["ok"], true);
    // The write-skew partner raises both to SSI; the level in the reply
    // is the post-batch truth.
    assert_eq!(replies[2]["level"], "SSI");
    assert_eq!(replies[3]["ok"], false);
    assert!(
        replies[3]["error"]
            .as_str()
            .unwrap()
            .contains("not registered"),
        "{}",
        replies[3]
    );
    let stats = client.stats().expect("stats");
    assert_eq!(stats["registry_size"], 2u64);

    client.shutdown().expect("shutdown");
    server.join().expect("server thread");
}

/// The replay cache is keyed per event: a retried pipeline replays each
/// applied event individually (exactly-once), and the replay counter
/// advances per event — identical to the single-event path.
#[test]
fn batch_retries_replay_per_event() {
    let (addr, server) = start_server(batching_config(8));
    let mut client = Client::connect(addr).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");

    let lines: Vec<String> = (1..=4)
        .map(|i| {
            format!(
                r#"{{"op":"register","txn":"T{i}: R[x{i}] W[x{i}]","req_id":{}}}"#,
                100 + i
            )
        })
        .collect();
    let first = client.pipeline(&lines).expect("first attempt");
    for r in &first {
        assert_eq!(r["ok"], true, "{r}");
        assert!(r["replayed"].is_null(), "fresh events are not replays: {r}");
    }
    // The "lost reply" retry: the identical pipeline again.
    let second = client.pipeline(&lines).expect("retry");
    for r in &second {
        assert_eq!(r["ok"], true, "{r}");
        assert_eq!(r["replayed"], true, "retried events replay: {r}");
    }
    // Replies match across attempts by req_id (modulo the marker).
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a["req_id"], b["req_id"]);
        assert_eq!(a["txn_id"], b["txn_id"]);
    }
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats["registry_size"], 4u64,
        "replays must not double-apply"
    );
    assert_eq!(
        stats["replays"], 4u64,
        "one replay counted per event, not per batch"
    );

    client.shutdown().expect("shutdown");
    server.join().expect("server thread");
}

/// Two events with the same idempotency key inside one drain: the first
/// applies, the duplicate is deferred to the next drain and answered
/// from the replay cache.
#[test]
fn duplicate_req_id_within_one_drain_applies_once() {
    let (addr, server) = start_server(batching_config(8));
    let mut client = Client::connect(addr).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");

    let line = r#"{"op":"register","txn":"T1: R[x] W[x]","req_id":7}"#.to_string();
    let replies = client.pipeline(&[line.clone(), line]).expect("pipeline");
    assert_eq!(replies.len(), 2);
    assert!(replies.iter().all(|r| r["ok"] == true), "{replies:?}");
    let replayed = replies.iter().filter(|r| r["replayed"] == true).count();
    assert_eq!(
        replayed, 1,
        "exactly one of the two is a replay: {replies:?}"
    );
    let stats = client.stats().expect("stats");
    assert_eq!(stats["registry_size"], 1u64);

    client.shutdown().expect("shutdown");
    server.join().expect("server thread");
}

/// A reallocation that cannot complete degrades the *whole* batch: every
/// event gets the structured degradation error with `stale: true`, one
/// failure is recorded per batch (one reallocation attempt), and the
/// last-known-good allocation keeps serving.
#[test]
fn degraded_batch_reports_stale_on_every_event() {
    let (addr, server) = start_server(Config {
        // Every reallocation times out instantly: the batch rolls back.
        realloc_timeout: Some(Duration::ZERO),
        ..batching_config(8)
    });
    let mut client = RetryClient::new(addr.to_string(), RetryPolicy::default());
    client.set_timeout(Some(Duration::from_secs(30)));

    let replies = client
        .send_batch(&[
            BatchOp::Register("T1: R[x] W[y]".to_string()),
            BatchOp::Register("T2: R[y] W[x]".to_string()),
            BatchOp::Register("T3: R[z]".to_string()),
        ])
        .expect("batch ships (the replies are errors, not transport failures)");
    for r in &replies {
        assert_eq!(r["ok"], false, "{r}");
        assert_eq!(r["stale"], true, "degraded replies are marked stale: {r}");
        assert!(
            r["error"].as_str().unwrap().contains("last-known-good"),
            "{r}"
        );
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats["registry_size"], 0u64, "nothing applied");
    assert_eq!(stats["degraded"], true);
    assert_eq!(
        stats["failed_reallocs"], 1u64,
        "a coalesced batch is one reallocation attempt: {stats}"
    );

    client.shutdown().expect("shutdown");
    server.join().expect("server thread");
}

/// `send_batch` composes with a non-coalescing server (`batch_max = 1`):
/// the inline path echoes `req_id`s too, so reply matching still works.
#[test]
fn send_batch_works_against_an_inline_server() {
    let (addr, server) = start_server(Config {
        addr: "127.0.0.1:0".to_string(),
        ..Config::default()
    });
    let mut client = RetryClient::new(addr.to_string(), RetryPolicy::default());
    client.set_timeout(Some(Duration::from_secs(30)));

    let replies = client
        .send_batch(&[
            BatchOp::Register("T1: R[x] W[y]".to_string()),
            BatchOp::Register("T2: R[y] W[x]".to_string()),
            BatchOp::Deregister(1),
        ])
        .expect("batch applies inline");
    assert!(replies.iter().all(|r| r["ok"] == true), "{replies:?}");
    let stats = client.stats().expect("stats");
    assert_eq!(stats["registry_size"], 1u64);
    assert_eq!(
        stats["batch"]["coalesced_events"], 0u64,
        "no coalescing queue exists at batch_max = 1: {stats}"
    );

    client.shutdown().expect("shutdown");
    server.join().expect("server thread");
}
