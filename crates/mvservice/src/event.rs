//! The event-driven socket core: one nonblocking readiness-polled
//! loop owning every connection.
//!
//! One thread runs [`run_event_loop`]. It owns the listener, a waker
//! fd (the dispatcher's doorbell for completed batch replies), and
//! every connection's full state:
//!
//! - a [`FrameBuf`] holding buffered read bytes and codec parse state
//!   (sniffed per connection: line-JSON or binary frames);
//! - a write backlog (`write_buf`/`write_pos`) that absorbs replies
//!   the socket can't take yet, flushed on `POLLOUT` readiness;
//! - backpressure: while a connection's backlog exceeds
//!   [`WRITE_BACKPRESSURE`], the loop stops *reading* from it — a slow
//!   consumer throttles its own pipeline instead of growing the
//!   server's memory;
//! - the stall clock for partial frames (same request-timeout
//!   semantics as the threaded core).
//!
//! Requests decode and execute exactly as on the threaded core
//! ([`process_payload`] is shared), so replay, coalescing, and
//! fault-injection semantics are bit-identical. Mutations parked for
//! the group-commit dispatcher come back through the shared
//! [`Completions`] queue: the dispatcher pushes replies and rings the
//! waker; the poll wait returns; the loop encodes each reply in its
//! connection's codec and queues the bytes. No sleep ticks anywhere —
//! the loop blocks in the kernel until a socket, the listener, or the
//! waker is actually ready (the wait timeout exists only to poll the
//! shutdown flag and the stall clocks).
//!
//! Readiness comes from a persistent [`Poller`] (epoll on Linux):
//! connections register once at accept and only re-register when their
//! interest actually changes (backlog appears/drains, backpressure
//! trips, discard starts). A tick therefore costs O(ready fds +
//! changed interests), not O(open connections) — the property that
//! holds 1k-connection throughput at 10k connections (B14). Stall and
//! discard deadlines live in a small side set (`timed`) scanned each
//! tick; membership tracks exactly the connections with a partial
//! frame or an active discard, which is O(1) in steady state.

use crate::codec::{encode_payload, CodecKind, DrainPlan, FrameBuf, FrameError};
use crate::poll::{self, PollEvent, Poller};
use crate::protocol::error_reply;
use crate::server::{
    process_payload, stall_message, truncated_bytes, ReplyRoute, RequestAction, Shared,
};
use serde_json::Value;
use std::collections::{HashMap, HashSet};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Poll-wait timeout: how often the loop re-checks the shutdown flag
/// and partial-frame stalls when nothing is ready.
const POLL_WAIT: Duration = Duration::from_millis(25);

/// Write-backlog watermark (bytes) past which the loop stops reading
/// from a connection until its backlog drains.
const WRITE_BACKPRESSURE: usize = 256 * 1024;

/// Per-read scratch size. Reads loop until `WouldBlock`, so one pass
/// drains however much the socket has regardless of this size.
const READ_CHUNK: usize = 16 * 1024;

/// One connection's complete state, owned by the loop.
struct Conn {
    stream: TcpStream,
    /// Monotone connection index: the fault coordinate, the completion
    /// routing key, and the `conns` map key.
    key: u64,
    /// Per-connection request sequence number (fault coordinate).
    seq: u64,
    /// Frames decoded so far (frame-codec error policy keys off it).
    decoded: u64,
    fb: FrameBuf,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// `Some(t)` while a partial frame is buffered.
    partial_since: Option<Instant>,
    /// Close once the write backlog drains (EOF seen, fatal framing
    /// error answered, shutdown acknowledged, …).
    close_after_flush: bool,
    /// Close abruptly once the backlog drains (injected truncate).
    kill_after_flush: bool,
    /// Stop delivering completions (a truncate already cut the wire).
    dead_to_completions: bool,
    /// In-flight request bytes still to swallow before the close, so
    /// the peer sees a FIN (and the error reply) instead of an RST.
    discard: DrainPlan,
    /// Gives up on the discard if the peer never finishes sending.
    discard_deadline: Option<Instant>,
    /// Interest mask currently registered with the poller; rewritten
    /// only when the desired mask diverges.
    reg_read: bool,
    reg_write: bool,
}

impl Conn {
    fn backlog(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    /// The interest mask this connection's state calls for right now.
    fn desired_interest(&self) -> (bool, bool) {
        let read = (!self.close_after_flush && self.backlog() < WRITE_BACKPRESSURE)
            || self.discard != DrainPlan::None;
        let write = self.backlog() > 0;
        (read, write)
    }

    /// True while the stall/discard clocks need this connection in the
    /// per-tick timer scan.
    fn needs_timer(&self) -> bool {
        (self.fb.has_partial() && !self.close_after_flush) || self.discard != DrainPlan::None
    }

    fn queue_reply(&mut self, codec: CodecKind, reply: &Value) {
        encode_payload(codec, reply, &mut self.write_buf);
    }

    /// Nonblocking flush of the backlog. Returns `false` when the
    /// connection died mid-write.
    fn flush(&mut self) -> bool {
        while self.write_pos < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => return false,
                Ok(n) => self.write_pos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        if self.write_pos == self.write_buf.len() {
            self.write_buf.clear();
            self.write_pos = 0;
        } else if self.write_pos > (1 << 16) {
            self.write_buf.drain(..self.write_pos);
            self.write_pos = 0;
        }
        true
    }
}

/// Poller token for the listening socket (connection keys are a
/// monotone counter from zero, so the top of the u64 range is free).
const TOKEN_LISTENER: u64 = u64::MAX;
/// Poller token for the dispatcher's doorbell.
const TOKEN_WAKER: u64 = u64::MAX - 1;

/// Runs the event loop until shutdown. See the module docs for the
/// state machine; the caller (`Server::run`) joins the dispatcher.
pub(crate) fn run_event_loop(listener: &TcpListener, shared: &Arc<Shared>) -> std::io::Result<()> {
    // `Server::run` already set the listener nonblocking.
    let (waker, mut wake_rx) = poll::waker()?;
    shared.completions.set_waker(waker);
    let mut poller = Poller::new()?;
    poller.add(listener.as_raw_fd(), TOKEN_LISTENER, true, false)?;
    poller.add(wake_rx.fd(), TOKEN_WAKER, true, false)?;
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    // Connections whose state may have changed this tick: their
    // registered interest is reconciled (and closes reaped) at the end.
    let mut touched: Vec<u64> = Vec::new();
    // Connections with a running stall or discard clock.
    let mut timed: HashSet<u64> = HashSet::new();
    // Scratch reused across ticks.
    let mut events: Vec<PollEvent> = Vec::new();
    loop {
        if shared.stopping() {
            final_flush(&mut conns, shared);
            return Ok(());
        }

        poller.wait(&mut events, POLL_WAIT);

        let mut accept_ready = false;
        for ev in &events {
            match ev.token {
                TOKEN_LISTENER => accept_ready = true,
                // Dispatcher doorbell: the wake bytes drain here, the
                // completions themselves a few lines down (they are
                // also drained unconditionally — a completion pushed
                // between wait and drain needs no second tick).
                TOKEN_WAKER => wake_rx.drain(),
                _ => {}
            }
        }

        // Deliver completed batch replies into their connections'
        // backlogs.
        for done in shared.completions.drain() {
            let Some(conn) = conns.get_mut(&done.key) else {
                continue; // connection died while its reply was parked
            };
            if conn.dead_to_completions {
                continue;
            }
            let codec = conn.fb.kind().unwrap_or(CodecKind::Line);
            if done.truncate {
                conn.write_buf
                    .extend_from_slice(&truncated_bytes(codec, &done.reply));
                conn.kill_after_flush = true;
                conn.close_after_flush = true;
                conn.dead_to_completions = true;
            } else {
                conn.queue_reply(codec, &done.reply);
            }
            touched.push(done.key);
        }

        // Accept every pending connection (level-triggered: drain until
        // WouldBlock so one tick never leaves a backlog).
        if accept_ready {
            loop {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        stream.set_nodelay(true).ok();
                        let key = shared.conns.fetch_add(1, Ordering::SeqCst);
                        if poller.add(stream.as_raw_fd(), key, true, false).is_err() {
                            continue; // fd exhaustion mid-registration
                        }
                        shared.metrics.conn_opened();
                        conns.insert(
                            key,
                            Conn {
                                stream,
                                key,
                                seq: 0,
                                decoded: 0,
                                fb: FrameBuf::new(shared.codec),
                                write_buf: Vec::new(),
                                write_pos: 0,
                                partial_since: None,
                                close_after_flush: false,
                                kill_after_flush: false,
                                dead_to_completions: false,
                                discard: DrainPlan::None,
                                discard_deadline: None,
                                reg_read: true,
                                reg_write: false,
                            },
                        );
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    // Transient accept failures (EMFILE, aborted
                    // handshakes): drop this one, keep serving.
                    Err(_) => break,
                }
            }
        }

        // Per-connection I/O for the ready fds only.
        for ev in &events {
            let Some(conn) = conns.get_mut(&ev.token) else {
                continue; // listener/waker token, or already reaped
            };
            let mut alive = true;
            if ev.writable && conn.backlog() > 0 {
                alive = conn.flush();
            }
            if alive && conn.discard != DrainPlan::None {
                if ev.readable || ev.hangup {
                    alive = handle_discard(conn);
                }
            } else if alive && (ev.readable || ev.hangup) && !conn.close_after_flush {
                alive = handle_readable(conn, shared);
            }
            if !alive {
                conn.close_after_flush = true;
                conn.kill_after_flush = true;
                conn.write_buf.clear();
                conn.write_pos = 0;
                conn.discard = DrainPlan::None;
            }
            touched.push(ev.token);
        }

        // Stall and discard clocks (poll granularity): scan only the
        // connections that actually have one running.
        for key in timed.iter() {
            let Some(conn) = conns.get_mut(key) else {
                continue;
            };
            if conn.fb.has_partial() && !conn.close_after_flush {
                let since = *conn.partial_since.get_or_insert_with(Instant::now);
                if since.elapsed() > shared.request_timeout {
                    let codec = conn.fb.kind().unwrap_or(CodecKind::Line);
                    let reply = error_reply(stall_message(codec));
                    conn.queue_reply(codec, &reply);
                    conn.close_after_flush = true;
                    touched.push(*key);
                }
            }
            if conn.discard != DrainPlan::None
                && matches!(conn.discard_deadline, Some(d) if Instant::now() >= d)
            {
                conn.discard = DrainPlan::None;
                touched.push(*key);
            }
        }

        // Reconcile every touched connection: reap closed ones, keep
        // the timer set current, rewrite diverged interest masks.
        for key in touched.drain(..) {
            let Some(conn) = conns.get_mut(&key) else {
                continue;
            };
            // Optimistic flush: a freshly queued reply almost always
            // fits the socket buffer, so try now instead of paying an
            // epoll_ctl plus a tick of latency to hear POLLOUT. Skip
            // when write interest is already registered — the socket
            // was genuinely full last time.
            if conn.backlog() > 0 && !conn.reg_write && !conn.flush() {
                conn.close_after_flush = true;
                conn.kill_after_flush = true;
                conn.write_buf.clear();
                conn.write_pos = 0;
                conn.discard = DrainPlan::None;
            }
            if conn.close_after_flush && conn.backlog() == 0 && conn.discard == DrainPlan::None {
                if conn.kill_after_flush {
                    let _ = conn.stream.shutdown(Shutdown::Both);
                }
                poller.remove(conn.stream.as_raw_fd());
                conns.remove(&key);
                timed.remove(&key);
                shared.metrics.conn_closed();
                continue;
            }
            if conn.needs_timer() {
                timed.insert(key);
            } else {
                timed.remove(&key);
            }
            let (read, write) = conn.desired_interest();
            if (read, write) != (conn.reg_read, conn.reg_write) {
                poller.modify(conn.stream.as_raw_fd(), key, read, write);
                conn.reg_read = read;
                conn.reg_write = write;
            }
        }
    }
}

/// Swallows in-flight bytes of an errored oversized request until its
/// drain plan is satisfied (or `WouldBlock`/EOF). Returns `false` when
/// the connection is gone.
fn handle_discard(conn: &mut Conn) -> bool {
    let mut scratch = [0u8; READ_CHUNK];
    loop {
        let want = match conn.discard {
            DrainPlan::None => return true,
            DrainPlan::UntilNewline | DrainPlan::UntilEof => scratch.len(),
            DrainPlan::Bytes(left) => scratch.len().min(left),
        };
        match conn.stream.read(&mut scratch[..want]) {
            Ok(0) => {
                conn.discard = DrainPlan::None;
                return true;
            }
            Ok(n) => match conn.discard {
                DrainPlan::UntilNewline => {
                    if scratch[..n].contains(&b'\n') {
                        conn.discard = DrainPlan::None;
                    }
                }
                DrainPlan::UntilEof => {}
                DrainPlan::Bytes(left) => {
                    conn.discard = match left - n {
                        0 => DrainPlan::None,
                        rest => DrainPlan::Bytes(rest),
                    };
                }
                DrainPlan::None => return true,
            },
            Err(e) if e.kind() == ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
}

/// Reads a connection until `WouldBlock`, decoding and processing every
/// complete frame. Returns `false` when the connection is gone.
fn handle_readable(conn: &mut Conn, shared: &Shared) -> bool {
    let mut scratch = [0u8; READ_CHUNK];
    loop {
        match conn.stream.read(&mut scratch) {
            Ok(0) => {
                // EOF. Answer a final unterminated line, then flush out.
                match conn.fb.eof_residual() {
                    Ok(Some(payload)) => {
                        let codec = conn.fb.kind().unwrap_or(CodecKind::Line);
                        shared.metrics.codec_request(codec);
                        let key = conn.key;
                        let action = process_payload(shared, &payload, conn.key, conn.seq, || {
                            ReplyRoute::Loop { key }
                        });
                        apply_action(conn, codec, action);
                    }
                    Ok(None) => {}
                    Err(e) => queue_frame_error(conn, shared, &e),
                }
                conn.close_after_flush = true;
                return true;
            }
            Ok(n) => {
                conn.fb.push(&scratch[..n]);
                decode_frames(conn, shared);
                if conn.close_after_flush {
                    return true;
                }
                // Backpressure: a pipelining client whose replies are
                // backing up stops being read until the backlog drains.
                if conn.backlog() >= WRITE_BACKPRESSURE {
                    return true;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
}

/// Decodes every complete frame currently buffered, stopping early
/// once the connection is marked for close.
fn decode_frames(conn: &mut Conn, shared: &Shared) {
    loop {
        match conn.fb.next_payload() {
            Ok(Some(payload)) => {
                conn.partial_since = None;
                conn.decoded += 1;
                let codec = conn.fb.kind().expect("kind is sniffed once decoding");
                shared.metrics.codec_request(codec);
                let key = conn.key;
                let action = process_payload(shared, &payload, conn.key, conn.seq, || {
                    ReplyRoute::Loop { key }
                });
                conn.seq += 1;
                apply_action(conn, codec, action);
                if conn.close_after_flush {
                    return;
                }
            }
            Ok(None) => {
                if conn.fb.has_partial() {
                    conn.partial_since.get_or_insert_with(Instant::now);
                } else {
                    conn.partial_since = None;
                }
                return;
            }
            Err(e) => {
                queue_frame_error(conn, shared, &e);
                return;
            }
        }
    }
}

/// Applies a [`RequestAction`] to the connection's write state.
fn apply_action(conn: &mut Conn, codec: CodecKind, action: RequestAction) {
    match action {
        RequestAction::Parked => {}
        RequestAction::SilentClose => {
            // Injected drop: no reply for *this* request; earlier
            // replies still in the backlog flush out first, then the
            // connection closes — the client observes a mid-pipeline
            // cutoff either way.
            conn.close_after_flush = true;
        }
        RequestAction::Reply {
            reply,
            stop,
            truncate,
        } => {
            if truncate {
                conn.write_buf
                    .extend_from_slice(&truncated_bytes(codec, &reply));
                conn.kill_after_flush = true;
                conn.close_after_flush = true;
                conn.dead_to_completions = true;
                return;
            }
            conn.queue_reply(codec, &reply);
            if stop {
                conn.close_after_flush = true;
            }
        }
    }
}

/// Queues the structured reply for a framing error when that is safe
/// (same policy as the threaded core: always on the line codec, only
/// after a validated frame on the binary codec), and marks the
/// connection for close.
fn queue_frame_error(conn: &mut Conn, shared: &Shared, err: &FrameError) {
    shared.metrics.record("invalid", false, Duration::ZERO);
    conn.discard = conn.fb.drain_plan(err);
    if conn.discard != DrainPlan::None {
        conn.discard_deadline =
            Some(Instant::now() + shared.request_timeout.max(Duration::from_millis(100)));
    }
    let codec = match err {
        FrameError::Refused(got) => *got,
        _ => conn.fb.kind().unwrap_or(CodecKind::Line),
    };
    let structured = match codec {
        CodecKind::Line => true,
        CodecKind::Frame => conn.decoded > 0 || matches!(err, FrameError::Refused(_)),
    };
    if structured {
        let reply = error_reply(&err.message());
        conn.queue_reply(codec, &reply);
    }
    conn.close_after_flush = true;
}

/// Best-effort blocking flush of every backlog on shutdown, so replies
/// already produced (the `shutdown` acknowledgement in particular)
/// reach their clients before the loop exits.
fn final_flush(conns: &mut HashMap<u64, Conn>, shared: &Shared) {
    for (_, conn) in conns.drain() {
        shared.metrics.conn_closed();
        if conn.backlog() > 0 {
            let _ = conn.stream.set_nonblocking(false);
            let _ = conn
                .stream
                .set_write_timeout(Some(Duration::from_millis(250)));
            let mut stream = conn.stream;
            let _ = stream.write_all(&conn.write_buf[conn.write_pos..]);
            let _ = stream.flush();
        }
    }
}
