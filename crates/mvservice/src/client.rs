//! Blocking client for the allocation daemon.
//!
//! One TCP connection, newline-delimited JSON or length-prefixed
//! binary frames (pick with [`Client::connect_with`]). The
//! typed helpers ([`Client::register`], [`Client::assign`], …) turn
//! `"ok": false` replies into [`ClientError::Server`]; [`Client::raw`]
//! ships an arbitrary line and returns whatever comes back — the hook
//! for protocol-level testing.
//!
//! [`RetryClient`] wraps the same protocol in a fault-tolerant loop:
//! transport and protocol failures reconnect and retry with
//! exponential backoff plus deterministic jitter, and every mutating
//! request carries an idempotent `req_id` (stable across retries of
//! the same logical request), so a delta is applied exactly once even
//! when the first reply was lost mid-frame. Structured server errors
//! (`"ok": false`) are *not* retried — the request reached the server
//! and was rejected.

use crate::codec::{encode_payload, CodecKind, FrameBuf, Payload};
use crate::namespace::DEFAULT_TENANT;
use crate::protocol::Request;
use mvisolation::IsolationLevel;
use mvmodel::TxnId;
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use serde_json::Value;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A client-side failure: transport, protocol, or a structured server
/// error reply.
#[derive(Debug)]
pub enum ClientError {
    Io(std::io::Error),
    /// The server replied with something other than a JSON object, or
    /// closed the connection mid-reply.
    Protocol(String),
    /// The server replied `{"ok": false, "error": …}`.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "I/O error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected allocation-service client. Speaks either wire codec:
/// line-delimited JSON (the default, [`Client::connect`]) or binary
/// frames ([`Client::connect_with`] with [`CodecKind::Frame`]). The
/// server sniffs the first byte of the connection, so no handshake
/// round-trip is needed — the client simply starts sending in its
/// chosen framing and the server answers in kind.
pub struct Client {
    stream: TcpStream,
    fb: FrameBuf,
    kind: CodecKind,
    /// Tenant every typed request routes to; `None` means the server's
    /// default namespace (the field stays off the wire, so a
    /// tenant-less client is bit-identical to a pre-tenant one).
    tenant: Option<String>,
}

/// Normalizes a tenant name for the wire: the default tenant is
/// expressed by *omitting* the envelope field, so old servers and
/// byte-level golden tests see unchanged requests.
fn normalize_tenant(tenant: String) -> Option<String> {
    if tenant == DEFAULT_TENANT {
        None
    } else {
        Some(tenant)
    }
}

/// Stamps the `tenant` envelope field onto an encoded request value.
fn stamp_tenant(v: &mut Value, tenant: Option<&str>) {
    if let Some(t) = tenant {
        v["tenant"] = Value::from(t);
    }
}

impl Client {
    /// Connects to the daemon at `addr` (e.g. `127.0.0.1:7411`) using
    /// the default line-JSON codec.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        Self::connect_with(addr, CodecKind::Line)
    }

    /// Connects with an explicit wire codec.
    pub fn connect_with<A: ToSocketAddrs>(addr: A, kind: CodecKind) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            stream,
            fb: FrameBuf::with_kind(kind),
            kind,
            tenant: None,
        })
    }

    /// Routes every typed request from this client to `tenant`. Names
    /// are validated server-side; passing the default tenant is the
    /// same as never calling this.
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Client {
        self.tenant = normalize_tenant(tenant.into());
        self
    }

    /// The tenant this client addresses (`None` = the default).
    pub fn tenant(&self) -> Option<&str> {
        self.tenant.as_deref()
    }

    /// The wire codec this client speaks.
    pub fn codec(&self) -> CodecKind {
        self.kind
    }

    /// Caps how long a single reply may take.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Reads one reply in this client's codec.
    fn read_reply(&mut self) -> Result<Value, ClientError> {
        let mut buf = [0u8; 8192];
        loop {
            match self.fb.next_payload() {
                Ok(Some(p)) => return Self::payload_value(p),
                Ok(None) => {}
                Err(e) => return Err(ClientError::Protocol(e.message())),
            }
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                // A final line without its newline still counts as a
                // reply; a half-received frame does not.
                match self.fb.eof_residual() {
                    Ok(Some(p)) => return Self::payload_value(p),
                    _ => {
                        return Err(ClientError::Protocol(
                            "connection closed before a reply arrived".to_string(),
                        ))
                    }
                }
            }
            self.fb.push(&buf[..n]);
        }
    }

    fn payload_value(p: Payload) -> Result<Value, ClientError> {
        match p {
            Payload::Line(line) => serde_json::from_str(line.trim())
                .map_err(|e| ClientError::Protocol(format!("unparseable reply: {e}"))),
            Payload::Frame(v) => Ok(v),
        }
    }

    /// Encodes one request line into `out` in this client's codec. In
    /// frame mode the line must parse as JSON (frames carry values, not
    /// text) — use a line-codec client to ship deliberately malformed
    /// bytes.
    fn encode_line(&self, line: &str, out: &mut Vec<u8>) -> Result<(), ClientError> {
        match self.kind {
            CodecKind::Line => {
                out.extend_from_slice(line.as_bytes());
                out.push(b'\n');
                Ok(())
            }
            CodecKind::Frame => {
                let v: Value = serde_json::from_str(line).map_err(|e| {
                    ClientError::Protocol(format!("cannot frame non-JSON request: {e}"))
                })?;
                encode_payload(CodecKind::Frame, &v, out);
                Ok(())
            }
        }
    }

    /// Sends one raw line and returns the server's reply verbatim —
    /// including `"ok": false` replies, which the typed helpers turn
    /// into errors instead.
    pub fn raw(&mut self, line: &str) -> Result<Value, ClientError> {
        let mut out = Vec::with_capacity(line.len() + 8);
        self.encode_line(line, &mut out)?;
        self.stream.write_all(&out)?;
        self.stream.flush()?;
        self.read_reply()
    }

    /// Ships every line in one buffered write with a single flush, then
    /// reads exactly `lines.len()` replies. Replies come back in the
    /// server's write order — against a coalescing server, match them
    /// to requests by the echoed `req_id`, not by position.
    pub fn pipeline(&mut self, lines: &[String]) -> Result<Vec<Value>, ClientError> {
        let mut buf = Vec::with_capacity(lines.iter().map(|l| l.len() + 8).sum());
        for line in lines {
            self.encode_line(line, &mut buf)?;
        }
        self.stream.write_all(&buf)?;
        self.stream.flush()?;
        let mut replies = Vec::with_capacity(lines.len());
        for _ in 0..lines.len() {
            let v = self.read_reply().map_err(|e| match e {
                ClientError::Protocol(m) if m.starts_with("connection closed") => {
                    ClientError::Protocol(
                        "connection closed before every pipelined reply arrived".to_string(),
                    )
                }
                other => other,
            })?;
            replies.push(v);
        }
        Ok(replies)
    }

    /// Sends a typed request; an `"ok": false` reply becomes
    /// [`ClientError::Server`].
    pub fn request(&mut self, req: &Request) -> Result<Value, ClientError> {
        let mut v = req.to_json();
        stamp_tenant(&mut v, self.tenant.as_deref());
        let line = serde_json::to_string(&v).map_err(|e| ClientError::Protocol(e.to_string()))?;
        let reply = self.raw(&line)?;
        if reply["ok"] == true {
            Ok(reply)
        } else {
            match reply["error"].as_str() {
                Some(msg) => Err(ClientError::Server(msg.to_string())),
                None => Err(ClientError::Protocol(
                    "reply carries neither ok:true nor an error message".to_string(),
                )),
            }
        }
    }

    /// Registers a transaction line; returns the full reply (`txn_id`,
    /// `level`, `changed`, `registry_size`).
    pub fn register(&mut self, line: &str) -> Result<Value, ClientError> {
        self.request(&Request::Register {
            line: line.to_string(),
            req_id: None,
        })
    }

    /// Deregisters a transaction; returns the full reply.
    pub fn deregister(&mut self, id: u32) -> Result<Value, ClientError> {
        self.request(&Request::Deregister {
            id: TxnId(id),
            req_id: None,
        })
    }

    /// The current optimal level of a registered transaction.
    pub fn assign(&mut self, id: u32) -> Result<IsolationLevel, ClientError> {
        let reply = self.request(&Request::Assign { id: TxnId(id) })?;
        let level = reply["level"]
            .as_str()
            .ok_or_else(|| ClientError::Protocol("assign reply lacks `level`".to_string()))?;
        level
            .parse()
            .map_err(|_| ClientError::Protocol(format!("unknown level `{level}` in reply")))
    }

    /// Registers a parameterized template; returns the full reply
    /// (`template_id`, audited `level`, `changed` earlier templates).
    pub fn template_register(&mut self, template: &str) -> Result<Value, ClientError> {
        self.request(&Request::TemplateRegister {
            template: template.to_string(),
            req_id: None,
        })
    }

    /// Admits one instance of a registered template on the O(1) fast
    /// path; returns the full reply (`level`, `instances`).
    pub fn instantiate(&mut self, template_id: u64, params: &[u32]) -> Result<Value, ClientError> {
        self.request(&Request::Instantiate {
            template_id,
            params: params.to_vec(),
            req_id: None,
        })
    }

    /// The registered templates with audited levels and live instance
    /// counts.
    pub fn template_list(&mut self) -> Result<Value, ClientError> {
        self.request(&Request::TemplateList)
    }

    /// Server statistics (counters, latencies, registry size, last
    /// reallocation).
    pub fn stats(&mut self) -> Result<Value, ClientError> {
        self.request(&Request::Stats)
    }

    /// The registered transactions with their levels.
    pub fn list(&mut self) -> Result<Value, ClientError> {
        self.request(&Request::List)
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.request(&Request::Ping).map(|_| ())
    }

    /// Asks the daemon to stop gracefully.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request(&Request::Shutdown).map(|_| ())
    }
}

/// One mutation in a [`RetryClient::send_batch`] pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchOp {
    /// Register the transaction described by this wire-format line
    /// (`T7: R[x] W[y]`).
    Register(String),
    /// Deregister this transaction id.
    Deregister(u32),
}

/// Retry/backoff knobs for [`RetryClient`].
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retries *after* the first attempt (so `retries = 4` means at
    /// most 5 attempts per request).
    pub retries: u32,
    /// Backoff before retry `n` is `min(cap, base · 2ⁿ)`, scaled by a
    /// deterministic jitter factor in `[0.5, 1.0)`.
    pub base: Duration,
    pub cap: Duration,
    /// Seeds both the jitter stream and the session nonce from which
    /// `req_id`s derive — two clients with different seeds never share
    /// idempotency keys; the same seed reproduces the exact schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            retries: 4,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            seed: 0,
        }
    }
}

/// Counters describing what a [`RetryClient`] had to do.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Request attempts shipped (first tries + retries).
    pub attempts: u64,
    /// Attempts that were retries of a failed attempt.
    pub retries: u64,
    /// Connections re-established after a transport failure.
    pub reconnects: u64,
}

/// A fault-tolerant client: lazy connect, reconnect-and-retry on
/// transport/protocol errors, idempotent `req_id`s on mutations.
pub struct RetryClient {
    addr: String,
    policy: RetryPolicy,
    codec: CodecKind,
    tenant: Option<String>,
    conn: Option<Client>,
    ever_connected: bool,
    timeout: Option<Duration>,
    /// Session nonce spreading this client's `req_id`s away from other
    /// clients'; derived from the policy seed.
    session: u64,
    next_req: u64,
    stats: RetryStats,
}

impl RetryClient {
    /// Builds a line-codec client for `addr` (e.g. `127.0.0.1:7411`).
    /// No connection is made until the first request.
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> RetryClient {
        Self::with_codec(addr, policy, CodecKind::Line)
    }

    /// Builds a client with an explicit wire codec. Every connection —
    /// including reconnects after a transport failure — speaks `codec`,
    /// so a replayed mutation is retried under the same framing that
    /// first shipped it.
    pub fn with_codec(
        addr: impl Into<String>,
        policy: RetryPolicy,
        codec: CodecKind,
    ) -> RetryClient {
        let session = SmallRng::seed_from_u64(policy.seed).next_u64();
        RetryClient {
            addr: addr.into(),
            policy,
            codec,
            tenant: None,
            conn: None,
            ever_connected: false,
            timeout: Some(Duration::from_secs(10)),
            session,
            next_req: 0,
            stats: RetryStats::default(),
        }
    }

    /// Routes every request — including retries and batch pipelines —
    /// to `tenant`. Reconnects keep the tenant, so a replayed mutation
    /// lands in the same namespace that first applied it.
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> RetryClient {
        self.tenant = normalize_tenant(tenant.into());
        if let Some(c) = self.conn.take() {
            let t = self.tenant.clone();
            self.conn = Some(match t {
                Some(t) => c.with_tenant(t),
                None => c.with_tenant(DEFAULT_TENANT),
            });
        }
        self
    }

    /// The tenant this client addresses (`None` = the default).
    pub fn tenant(&self) -> Option<&str> {
        self.tenant.as_deref()
    }

    /// Caps how long a single reply may take (applied on every
    /// (re)connect). Default 10s; `None` waits forever.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) {
        self.timeout = timeout;
        if let Some(c) = &mut self.conn {
            c.set_timeout(timeout).ok();
        }
    }

    pub fn retry_stats(&self) -> RetryStats {
        self.stats
    }

    /// The next idempotency key. Stable ordering: the n-th mutation of
    /// a client built with seed s always gets the same key.
    fn fresh_req_id(&mut self) -> u64 {
        let n = self.next_req;
        self.next_req += 1;
        self.session
            .wrapping_add(n.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Deterministic backoff before retry `attempt` of request
    /// `req_key`: `min(cap, base · 2^attempt)` scaled by a jitter
    /// factor in `[0.5, 1.0)` keyed on (seed, req_key, attempt).
    fn backoff(&self, attempt: u32, req_key: u64) -> Duration {
        let exp = self
            .policy
            .base
            .saturating_mul(1u32 << attempt.min(20))
            .min(self.policy.cap);
        let key = self
            .policy
            .seed
            .wrapping_add(req_key.wrapping_mul(0xc2b2_ae3d_27d4_eb4f))
            .wrapping_add(u64::from(attempt).wrapping_mul(0x1656_67b1_9e37_79f9));
        let draw = SmallRng::seed_from_u64(key).next_u64();
        let jitter = 0.5 + ((draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) * 0.5;
        exp.mul_f64(jitter)
    }

    fn ensure_conn(&mut self) -> Result<&mut Client, ClientError> {
        if self.conn.is_none() {
            let mut c = Client::connect_with(&self.addr, self.codec)?;
            if let Some(t) = &self.tenant {
                c = c.with_tenant(t.clone());
            }
            c.set_timeout(self.timeout)?;
            if self.ever_connected {
                self.stats.reconnects += 1;
            }
            self.ever_connected = true;
            self.conn = Some(c);
        }
        Ok(self.conn.as_mut().expect("just ensured"))
    }

    /// Ships `req`, retrying transport/protocol failures with backoff.
    /// `req_key` seeds the jitter; pass the `req_id` for mutations so
    /// their backoff schedule is stable across runs.
    fn request_with_retry(&mut self, req: &Request, req_key: u64) -> Result<Value, ClientError> {
        let mut attempt = 0u32;
        loop {
            self.stats.attempts += 1;
            let res = match self.ensure_conn() {
                Ok(c) => c.request(req),
                Err(e) => Err(e),
            };
            match res {
                Ok(v) => return Ok(v),
                // The server received and rejected the request; a
                // retry would just be rejected again.
                Err(e @ ClientError::Server(_)) => return Err(e),
                Err(e) => {
                    self.conn = None;
                    if attempt >= self.policy.retries {
                        return Err(e);
                    }
                    std::thread::sleep(self.backoff(attempt, req_key));
                    self.stats.retries += 1;
                    attempt += 1;
                }
            }
        }
    }

    /// Registers a transaction line; applied exactly once even if
    /// retried (idempotent `req_id`). A `"replayed": true` field in the
    /// reply means an earlier attempt had already applied.
    pub fn register(&mut self, line: &str) -> Result<Value, ClientError> {
        let req_id = self.fresh_req_id();
        self.request_with_retry(
            &Request::Register {
                line: line.to_string(),
                req_id: Some(req_id),
            },
            req_id,
        )
    }

    /// Deregisters a transaction; applied exactly once even if retried.
    pub fn deregister(&mut self, id: u32) -> Result<Value, ClientError> {
        let req_id = self.fresh_req_id();
        self.request_with_retry(
            &Request::Deregister {
                id: TxnId(id),
                req_id: Some(req_id),
            },
            req_id,
        )
    }

    /// Ships a batch of mutations down one pipelined write (a single
    /// flush), reads the replies, and returns them **in op order** —
    /// matched by the echoed `req_id`, since a coalescing server may
    /// answer out of submission order.
    ///
    /// Each op gets its own idempotency key, assigned once and stable
    /// across retries: a transport failure retries the *whole* batch,
    /// and any events the first attempt already applied are answered
    /// from the server's replay cache (`"replayed": true`) instead of
    /// double-applying. Per-event rejections are returned as their
    /// `"ok": false` replies, not as an error.
    pub fn send_batch(&mut self, ops: &[BatchOp]) -> Result<Vec<Value>, ClientError> {
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        let reqs: Vec<Request> = ops
            .iter()
            .map(|op| {
                let req_id = Some(self.fresh_req_id());
                match op {
                    BatchOp::Register(line) => Request::Register {
                        line: line.clone(),
                        req_id,
                    },
                    BatchOp::Deregister(id) => Request::Deregister {
                        id: TxnId(*id),
                        req_id,
                    },
                }
            })
            .collect();
        let lines: Vec<String> = reqs
            .iter()
            .map(|r| {
                let mut v = r.to_json();
                stamp_tenant(&mut v, self.tenant.as_deref());
                serde_json::to_string(&v).map_err(|e| ClientError::Protocol(e.to_string()))
            })
            .collect::<Result<_, _>>()?;
        let batch_key = reqs[0].req_id().expect("batch requests carry req_ids");
        let mut attempt = 0u32;
        loop {
            self.stats.attempts += 1;
            let res = self
                .ensure_conn()
                .and_then(|c| c.pipeline(&lines))
                .and_then(|replies| Self::match_replies(&reqs, replies));
            match res {
                Ok(out) => return Ok(out),
                Err(e) => {
                    self.conn = None;
                    if attempt >= self.policy.retries {
                        return Err(e);
                    }
                    std::thread::sleep(self.backoff(attempt, batch_key));
                    self.stats.retries += 1;
                    attempt += 1;
                }
            }
        }
    }

    /// Pairs pipelined replies with their requests by the echoed
    /// `req_id` — the order on the wire is the server's business.
    fn match_replies(reqs: &[Request], replies: Vec<Value>) -> Result<Vec<Value>, ClientError> {
        let mut by_id: HashMap<u64, Value> = HashMap::with_capacity(replies.len());
        for v in replies {
            match v["req_id"].as_u64() {
                Some(rid) => {
                    by_id.insert(rid, v);
                }
                None => {
                    return Err(ClientError::Protocol(
                        "pipelined reply lacks a req_id echo".to_string(),
                    ))
                }
            }
        }
        reqs.iter()
            .map(|r| {
                let rid = r.req_id().expect("batch requests carry req_ids");
                by_id
                    .remove(&rid)
                    .ok_or_else(|| ClientError::Protocol(format!("no reply for req_id {rid}")))
            })
            .collect()
    }

    /// The current optimal level of a registered transaction (reads
    /// are naturally idempotent — retried without a `req_id`).
    pub fn assign(&mut self, id: u32) -> Result<IsolationLevel, ClientError> {
        let reply = self.request_with_retry(&Request::Assign { id: TxnId(id) }, u64::from(id))?;
        let level = reply["level"]
            .as_str()
            .ok_or_else(|| ClientError::Protocol("assign reply lacks `level`".to_string()))?;
        level
            .parse()
            .map_err(|_| ClientError::Protocol(format!("unknown level `{level}` in reply")))
    }

    /// Registers a template; applied exactly once even if retried.
    pub fn template_register(&mut self, template: &str) -> Result<Value, ClientError> {
        let req_id = self.fresh_req_id();
        self.request_with_retry(
            &Request::TemplateRegister {
                template: template.to_string(),
                req_id: Some(req_id),
            },
            req_id,
        )
    }

    /// Admits one template instance; counted exactly once even if
    /// retried (the fast-path instance count is idempotent per
    /// `req_id`).
    pub fn instantiate(&mut self, template_id: u64, params: &[u32]) -> Result<Value, ClientError> {
        let req_id = self.fresh_req_id();
        self.request_with_retry(
            &Request::Instantiate {
                template_id,
                params: params.to_vec(),
                req_id: Some(req_id),
            },
            req_id,
        )
    }

    /// The registered templates (reads retry without a `req_id`).
    pub fn template_list(&mut self) -> Result<Value, ClientError> {
        self.request_with_retry(&Request::TemplateList, 11)
    }

    pub fn stats(&mut self) -> Result<Value, ClientError> {
        self.request_with_retry(&Request::Stats, 2)
    }

    pub fn list(&mut self) -> Result<Value, ClientError> {
        self.request_with_retry(&Request::List, 3)
    }

    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.request_with_retry(&Request::Ping, 5).map(|_| ())
    }

    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request_with_retry(&Request::Shutdown, 7).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_stamping_keeps_default_off_the_wire() {
        // The default tenant normalizes away entirely — a client that
        // names it sends byte-identical requests to one that never
        // heard of tenants.
        assert_eq!(normalize_tenant(DEFAULT_TENANT.to_string()), None);
        assert_eq!(
            normalize_tenant("acme".to_string()),
            Some("acme".to_string())
        );
        let mut v = Request::Ping.to_json();
        stamp_tenant(&mut v, None);
        assert!(v.get("tenant").is_none());
        stamp_tenant(&mut v, Some("acme"));
        assert_eq!(v["tenant"], "acme");

        let c = RetryClient::new("127.0.0.1:1", RetryPolicy::default()).with_tenant("acme");
        assert_eq!(c.tenant(), Some("acme"));
        let c = c.with_tenant(DEFAULT_TENANT);
        assert_eq!(c.tenant(), None);
    }

    #[test]
    fn req_ids_are_unique_and_seed_stable() {
        let mut a = RetryClient::new("127.0.0.1:1", RetryPolicy::default());
        let mut b = RetryClient::new("127.0.0.1:1", RetryPolicy::default());
        let mut c = RetryClient::new(
            "127.0.0.1:1",
            RetryPolicy {
                seed: 99,
                ..RetryPolicy::default()
            },
        );
        let ids_a: Vec<u64> = (0..64).map(|_| a.fresh_req_id()).collect();
        let ids_b: Vec<u64> = (0..64).map(|_| b.fresh_req_id()).collect();
        let ids_c: Vec<u64> = (0..64).map(|_| c.fresh_req_id()).collect();
        assert_eq!(ids_a, ids_b, "same seed must yield the same key stream");
        assert!(
            ids_a.iter().all(|i| !ids_c.contains(i)),
            "different seeds must not collide"
        );
        let mut dedup = ids_a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids_a.len(), "keys within a session are unique");
    }

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let c = RetryClient::new(
            "127.0.0.1:1",
            RetryPolicy {
                retries: 8,
                base: Duration::from_millis(10),
                cap: Duration::from_millis(500),
                seed: 42,
            },
        );
        for attempt in 0..8 {
            let d = c.backoff(attempt, 7);
            let ceiling = Duration::from_millis(10)
                .saturating_mul(1 << attempt)
                .min(Duration::from_millis(500));
            assert!(d <= ceiling, "attempt {attempt}: {d:?} > {ceiling:?}");
            assert!(
                d >= ceiling.mul_f64(0.5),
                "attempt {attempt}: {d:?} under half of {ceiling:?}"
            );
            assert_eq!(d, c.backoff(attempt, 7), "jitter must be deterministic");
        }
        // The same attempt for different requests jitters differently.
        assert_ne!(c.backoff(3, 7), c.backoff(3, 8));
    }

    #[test]
    fn connection_refused_is_reported_after_exhausting_retries() {
        let mut c = RetryClient::new(
            // Port 1 on localhost is essentially never listening.
            "127.0.0.1:1",
            RetryPolicy {
                retries: 1,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(2),
                seed: 0,
            },
        );
        let err = c.ping().expect_err("nothing listens on port 1");
        assert!(matches!(err, ClientError::Io(_)), "got {err:?}");
        assert_eq!(c.retry_stats().retries, 1);
        assert_eq!(c.retry_stats().attempts, 2);
    }
}
