//! Blocking client for the allocation daemon.
//!
//! One TCP connection, newline-delimited JSON requests/replies. The
//! typed helpers ([`Client::register`], [`Client::assign`], …) turn
//! `"ok": false` replies into [`ClientError::Server`]; [`Client::raw`]
//! ships an arbitrary line and returns whatever comes back — the hook
//! for protocol-level testing.

use crate::protocol::Request;
use mvisolation::IsolationLevel;
use mvmodel::TxnId;
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A client-side failure: transport, protocol, or a structured server
/// error reply.
#[derive(Debug)]
pub enum ClientError {
    Io(std::io::Error),
    /// The server replied with something other than a JSON object, or
    /// closed the connection mid-reply.
    Protocol(String),
    /// The server replied `{"ok": false, "error": …}`.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "I/O error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected allocation-service client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to the daemon at `addr` (e.g. `127.0.0.1:7411`).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Caps how long a single reply may take.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one raw line and returns the server's reply verbatim —
    /// including `"ok": false` replies, which the typed helpers turn
    /// into errors instead.
    pub fn raw(&mut self, line: &str) -> Result<Value, ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ClientError::Protocol(
                "connection closed before a reply arrived".to_string(),
            ));
        }
        serde_json::from_str(reply.trim())
            .map_err(|e| ClientError::Protocol(format!("unparseable reply: {e}")))
    }

    /// Sends a typed request; an `"ok": false` reply becomes
    /// [`ClientError::Server`].
    pub fn request(&mut self, req: &Request) -> Result<Value, ClientError> {
        let line = serde_json::to_string(&req.to_json())
            .map_err(|e| ClientError::Protocol(e.to_string()))?;
        let reply = self.raw(&line)?;
        if reply["ok"] == true {
            Ok(reply)
        } else {
            match reply["error"].as_str() {
                Some(msg) => Err(ClientError::Server(msg.to_string())),
                None => Err(ClientError::Protocol(
                    "reply carries neither ok:true nor an error message".to_string(),
                )),
            }
        }
    }

    /// Registers a transaction line; returns the full reply (`txn_id`,
    /// `level`, `changed`, `registry_size`).
    pub fn register(&mut self, line: &str) -> Result<Value, ClientError> {
        self.request(&Request::Register {
            line: line.to_string(),
        })
    }

    /// Deregisters a transaction; returns the full reply.
    pub fn deregister(&mut self, id: u32) -> Result<Value, ClientError> {
        self.request(&Request::Deregister { id: TxnId(id) })
    }

    /// The current optimal level of a registered transaction.
    pub fn assign(&mut self, id: u32) -> Result<IsolationLevel, ClientError> {
        let reply = self.request(&Request::Assign { id: TxnId(id) })?;
        let level = reply["level"]
            .as_str()
            .ok_or_else(|| ClientError::Protocol("assign reply lacks `level`".to_string()))?;
        level
            .parse()
            .map_err(|_| ClientError::Protocol(format!("unknown level `{level}` in reply")))
    }

    /// Server statistics (counters, latencies, registry size, last
    /// reallocation).
    pub fn stats(&mut self) -> Result<Value, ClientError> {
        self.request(&Request::Stats)
    }

    /// The registered transactions with their levels.
    pub fn list(&mut self) -> Result<Value, ClientError> {
        self.request(&Request::List)
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.request(&Request::Ping).map(|_| ())
    }

    /// Asks the daemon to stop gracefully.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request(&Request::Shutdown).map(|_| ())
    }
}
