//! Readiness polling without libc: thin `poll(2)` / `epoll(7)` shims.
//!
//! The event-loop core needs exactly one OS facility the Rust standard
//! library doesn't expose — "which of these sockets are readable or
//! writable right now?". On Linux we declare `poll(2)` and the epoll
//! family directly (the same pattern `server.rs` already uses for
//! `signal(2)`: an `extern "C"` block against the platform libc the
//! binary is linked to anyway, no crate dependency). On other Unixes
//! we fall back to a short-sleep "everything might be ready" tick —
//! spurious readiness is fine because every consumer handles
//! `WouldBlock`.
//!
//! Two tiers:
//! - [`wait`]: stateless one-shot `poll(2)` over an interest slice.
//!   O(interests) per call — right for small, shifting fd sets (the
//!   bench driver's in-flight window, tests).
//! - [`Poller`]: a persistent registration set (epoll on Linux). The
//!   kernel tracks the fds; each wait returns only the *ready* ones,
//!   so a 10k-connection server pays O(ready), not O(connections),
//!   per tick. This is what lets the event core hold its 1k-connection
//!   throughput at 10k.
//!
//! Also here, for the same no-deps reason:
//! - [`Waker`]: a nonblocking [`UnixStream`] pair that lets the
//!   dispatcher thread interrupt the poll wait when batched replies
//!   complete (satellite: readiness wakeups instead of sleep ticks);
//! - [`raise_nofile_limit`]: a `setrlimit(RLIMIT_NOFILE)` shim so the
//!   connection-scaling bench can open 2×10k sockets in one process.

#[cfg(unix)]
use std::io::{Read, Write};
#[cfg(unix)]
use std::os::unix::io::RawFd;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
#[cfg(unix)]
use std::sync::Mutex;
use std::time::Duration;

/// Raw socket descriptor; aliased so the API keeps its shape on
/// platforms without `std::os::unix`.
#[cfg(not(unix))]
pub type RawFd = i32;

/// What a caller wants to hear about one fd.
#[derive(Clone, Copy, Debug)]
pub struct Interest {
    pub fd: RawFd,
    pub read: bool,
    pub write: bool,
}

/// What the poll reported for one fd (same index as the interest).
#[derive(Clone, Copy, Debug, Default)]
pub struct Readiness {
    pub readable: bool,
    pub writable: bool,
    /// Error/hangup/invalid — the connection should be read (to drain
    /// the EOF) or reaped.
    pub hangup: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct pollfd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    extern "C" {
        // int poll(struct pollfd *fds, nfds_t nfds, int timeout);
        // nfds_t is unsigned long on Linux.
        pub fn poll(fds: *mut pollfd, nfds: u64, timeout: i32) -> i32;
    }
}

/// Blocks until at least one interest is ready, the timeout elapses,
/// or a signal interrupts. Returns one [`Readiness`] per interest, in
/// order; all-false on timeout.
#[cfg(target_os = "linux")]
pub fn wait(interests: &[Interest], timeout: Duration) -> Vec<Readiness> {
    let mut fds: Vec<sys::pollfd> = interests
        .iter()
        .map(|i| sys::pollfd {
            fd: i.fd,
            events: (if i.read { sys::POLLIN } else { 0 })
                | (if i.write { sys::POLLOUT } else { 0 }),
            revents: 0,
        })
        .collect();
    let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
    let rc = unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as u64, ms) };
    if rc <= 0 {
        // Timeout, or EINTR (a signal): either way report nothing
        // ready; the loop re-checks shutdown flags and polls again.
        return vec![Readiness::default(); interests.len()];
    }
    fds.iter()
        .map(|p| Readiness {
            readable: p.revents & sys::POLLIN != 0,
            writable: p.revents & sys::POLLOUT != 0,
            hangup: p.revents & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0,
        })
        .collect()
}

/// Portable fallback: a short sleep, then "everything you asked about
/// may be ready". Spurious readiness is safe — nonblocking reads and
/// writes simply return `WouldBlock` — it just costs extra syscalls.
#[cfg(not(target_os = "linux"))]
pub fn wait(interests: &[Interest], timeout: Duration) -> Vec<Readiness> {
    std::thread::sleep(timeout.min(Duration::from_millis(5)));
    interests
        .iter()
        .map(|i| Readiness {
            readable: i.read,
            writable: i.write,
            hangup: false,
        })
        .collect()
}

/// A cross-thread poll interrupter: the write half is `wake()`-able
/// from any thread, the read half sits in the event loop's interest
/// set so a wake turns into POLLIN readiness.
#[cfg(unix)]
pub struct Waker {
    tx: Mutex<UnixStream>,
}

/// The event-loop half of a [`Waker`]: poll its `fd()`, then `drain()`
/// when it reads ready.
#[cfg(unix)]
pub struct WakeRx {
    rx: UnixStream,
}

/// Builds a connected waker pair. Both halves are nonblocking: a full
/// pipe means a wake is already pending, which is all we need.
#[cfg(unix)]
pub fn waker() -> std::io::Result<(Waker, WakeRx)> {
    let (tx, rx) = UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx: Mutex::new(tx) }, WakeRx { rx }))
}

#[cfg(unix)]
impl Waker {
    /// Interrupts the poll wait. Idempotent while a wake is pending.
    pub fn wake(&self) {
        let mut tx = self.tx.lock().unwrap();
        // WouldBlock ⇒ the pipe already holds an undrained wake; any
        // other error ⇒ the loop is gone and nobody is listening.
        let _ = tx.write(&[1]);
    }
}

#[cfg(unix)]
impl WakeRx {
    pub fn fd(&self) -> RawFd {
        use std::os::unix::io::AsRawFd;
        self.rx.as_raw_fd()
    }

    /// Swallows every pending wake byte.
    pub fn drain(&mut self) {
        let mut sink = [0u8; 64];
        while matches!(self.rx.read(&mut sink), Ok(n) if n > 0) {}
    }
}

/// No-op waker for platforms without socket pairs: the fallback
/// [`wait`] never blocks long, so readiness wakeups degrade to the
/// short tick.
#[cfg(not(unix))]
pub struct Waker;
#[cfg(not(unix))]
pub struct WakeRx;
#[cfg(not(unix))]
pub fn waker() -> std::io::Result<(Waker, WakeRx)> {
    Ok((Waker, WakeRx))
}
#[cfg(not(unix))]
impl Waker {
    pub fn wake(&self) {}
}
#[cfg(not(unix))]
impl WakeRx {
    pub fn fd(&self) -> RawFd {
        -1
    }
    pub fn drain(&mut self) {}
}

/// One ready fd from [`Poller::wait`], tagged with the caller's token.
#[derive(Clone, Copy, Debug)]
pub struct PollEvent {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    /// Error/hangup/invalid — the connection should be read (to drain
    /// the EOF) or reaped.
    pub hangup: bool,
}

#[cfg(target_os = "linux")]
mod epoll_sys {
    // The kernel reads/writes epoll_event as a packed 12-byte record on
    // x86-64 (and a naturally aligned one elsewhere); mirror libc's
    // layout exactly or the event array is misparsed.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct epoll_event {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLL_CLOEXEC: i32 = 0x80000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut epoll_event) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut epoll_event, maxevents: i32, timeout: i32)
            -> i32;
        pub fn close(fd: i32) -> i32;
    }
}

/// A persistent readiness-notification set: epoll-backed on Linux, a
/// registration list replayed through [`wait`] elsewhere. Registrations
/// survive across waits, so the per-tick cost is O(ready fds).
#[cfg(target_os = "linux")]
pub struct Poller {
    epfd: i32,
    buf: Vec<epoll_sys::epoll_event>,
}

#[cfg(target_os = "linux")]
impl Poller {
    pub fn new() -> std::io::Result<Poller> {
        let epfd = unsafe { epoll_sys::epoll_create1(epoll_sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Poller {
            epfd,
            buf: vec![epoll_sys::epoll_event { events: 0, data: 0 }; 1024],
        })
    }

    fn mask(read: bool, write: bool) -> u32 {
        (if read { epoll_sys::EPOLLIN } else { 0 }) | (if write { epoll_sys::EPOLLOUT } else { 0 })
    }

    fn ctl(&mut self, op: i32, fd: RawFd, token: u64, read: bool, write: bool) -> i32 {
        let mut ev = epoll_sys::epoll_event {
            events: Self::mask(read, write),
            data: token,
        };
        unsafe { epoll_sys::epoll_ctl(self.epfd, op, fd, &mut ev) }
    }

    /// Registers an fd. The token comes back verbatim in every event.
    pub fn add(&mut self, fd: RawFd, token: u64, read: bool, write: bool) -> std::io::Result<()> {
        if self.ctl(epoll_sys::EPOLL_CTL_ADD, fd, token, read, write) != 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }

    /// Rewrites an fd's interest mask. Best-effort: a racing close is
    /// benign (the fd left the set on close).
    pub fn modify(&mut self, fd: RawFd, token: u64, read: bool, write: bool) {
        let _ = self.ctl(epoll_sys::EPOLL_CTL_MOD, fd, token, read, write);
    }

    /// Drops an fd from the set. Closing the fd does this implicitly;
    /// explicit removal keeps the fallback backend in sync too.
    pub fn remove(&mut self, fd: RawFd) {
        let _ = self.ctl(epoll_sys::EPOLL_CTL_DEL, fd, 0, false, false);
    }

    /// Blocks until something is ready or the timeout elapses, filling
    /// `out` with one event per ready fd (empty on timeout/EINTR).
    pub fn wait(&mut self, out: &mut Vec<PollEvent>, timeout: Duration) {
        out.clear();
        let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        let n = unsafe {
            epoll_sys::epoll_wait(self.epfd, self.buf.as_mut_ptr(), self.buf.len() as i32, ms)
        };
        for ev in self.buf.iter().take(n.max(0) as usize) {
            let bits = ev.events;
            out.push(PollEvent {
                token: ev.data,
                readable: bits & epoll_sys::EPOLLIN != 0,
                writable: bits & epoll_sys::EPOLLOUT != 0,
                hangup: bits & (epoll_sys::EPOLLERR | epoll_sys::EPOLLHUP) != 0,
            });
        }
    }
}

#[cfg(target_os = "linux")]
impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            epoll_sys::close(self.epfd);
        }
    }
}

/// Fallback backend: remembers registrations and replays them through
/// the stateless [`wait`] each tick — O(registered) per wait, which is
/// fine for the platforms that land here. Compiled on every platform
/// (it's [`Poller`] off Linux) so the Linux CI run exercises the exact
/// registration-replay code other Unixes ship with; on Linux the
/// stateless [`wait`] underneath is `poll(2)`, so its reports are real
/// readiness, not the sleep-tick approximation.
pub struct FallbackPoller {
    regs: Vec<(RawFd, u64, bool, bool)>,
}

/// Off Linux, the registration-replay fallback *is* the poller.
#[cfg(not(target_os = "linux"))]
pub type Poller = FallbackPoller;

impl FallbackPoller {
    pub fn new() -> std::io::Result<FallbackPoller> {
        Ok(FallbackPoller { regs: Vec::new() })
    }

    pub fn add(&mut self, fd: RawFd, token: u64, read: bool, write: bool) -> std::io::Result<()> {
        self.regs.push((fd, token, read, write));
        Ok(())
    }

    pub fn modify(&mut self, fd: RawFd, token: u64, read: bool, write: bool) {
        if let Some(r) = self.regs.iter_mut().find(|r| r.0 == fd) {
            *r = (fd, token, read, write);
        }
    }

    pub fn remove(&mut self, fd: RawFd) {
        self.regs.retain(|r| r.0 != fd);
    }

    pub fn wait(&mut self, out: &mut Vec<PollEvent>, timeout: Duration) {
        out.clear();
        let interests: Vec<Interest> = self
            .regs
            .iter()
            .map(|&(fd, _, read, write)| Interest { fd, read, write })
            .collect();
        for (r, &(_, token, ..)) in wait(&interests, timeout).iter().zip(self.regs.iter()) {
            if r.readable || r.writable || r.hangup {
                out.push(PollEvent {
                    token,
                    readable: r.readable,
                    writable: r.writable,
                    hangup: r.hangup,
                });
            }
        }
    }
}

#[cfg(target_os = "linux")]
mod rlimit_sys {
    #[repr(C)]
    pub struct rlimit {
        pub rlim_cur: u64,
        pub rlim_max: u64,
    }

    pub const RLIMIT_NOFILE: i32 = 7;

    extern "C" {
        pub fn getrlimit(resource: i32, rlim: *mut rlimit) -> i32;
        pub fn setrlimit(resource: i32, rlim: *const rlimit) -> i32;
    }
}

/// Tries to raise the open-file soft limit to at least `want`,
/// returning the soft limit actually in effect afterwards. Used by the
/// connection-scaling bench (10k connections ⇒ 20k+ fds in one
/// process); callers scale their plans down to whatever comes back.
#[cfg(target_os = "linux")]
pub fn raise_nofile_limit(want: u64) -> u64 {
    unsafe {
        let mut cur = rlimit_sys::rlimit {
            rlim_cur: 0,
            rlim_max: 0,
        };
        if rlimit_sys::getrlimit(rlimit_sys::RLIMIT_NOFILE, &mut cur) != 0 {
            return want.min(1024);
        }
        if cur.rlim_cur >= want {
            return cur.rlim_cur;
        }
        // Privileged processes may raise the hard limit too; others
        // get clamped at rlim_max by the kernel, so try the generous
        // ask first and fall back to the hard cap.
        let generous = rlimit_sys::rlimit {
            rlim_cur: want,
            rlim_max: cur.rlim_max.max(want),
        };
        if rlimit_sys::setrlimit(rlimit_sys::RLIMIT_NOFILE, &generous) != 0 {
            let clamped = rlimit_sys::rlimit {
                rlim_cur: want.min(cur.rlim_max),
                rlim_max: cur.rlim_max,
            };
            let _ = rlimit_sys::setrlimit(rlimit_sys::RLIMIT_NOFILE, &clamped);
        }
        if rlimit_sys::getrlimit(rlimit_sys::RLIMIT_NOFILE, &mut cur) != 0 {
            return want.min(1024);
        }
        cur.rlim_cur
    }
}

/// Non-Linux: report the current limit as unknown-but-probably-fine;
/// the bench will find out from `accept`/`connect` errors and shrink.
#[cfg(not(target_os = "linux"))]
pub fn raise_nofile_limit(want: u64) -> u64 {
    want
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn waker_interrupts_and_drains() {
        let (waker, mut rx) = waker().expect("waker pair");
        waker.wake();
        waker.wake(); // coalesces, never blocks
        let ready = wait(
            &[Interest {
                fd: rx.fd(),
                read: true,
                write: false,
            }],
            Duration::from_secs(5),
        );
        assert!(ready[0].readable, "wake byte must trip POLLIN");
        rx.drain();
        let ready = wait(
            &[Interest {
                fd: rx.fd(),
                read: true,
                write: false,
            }],
            Duration::from_millis(10),
        );
        assert!(!ready[0].readable || cfg!(not(target_os = "linux")));
    }

    #[test]
    fn poll_reports_connectable_listener_readable() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let ready = wait(
            &[Interest {
                fd: listener.as_raw_fd(),
                read: true,
                write: false,
            }],
            Duration::from_millis(20),
        );
        assert!(!ready[0].readable, "nothing pending yet");
        let _client = TcpStream::connect(addr).expect("connect");
        let ready = wait(
            &[Interest {
                fd: listener.as_raw_fd(),
                read: true,
                write: false,
            }],
            Duration::from_secs(5),
        );
        assert!(ready[0].readable, "pending accept must trip POLLIN");
    }

    #[test]
    fn poller_tracks_registrations_across_waits() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let mut poller = Poller::new().expect("poller");
        poller
            .add(listener.as_raw_fd(), 7, true, false)
            .expect("add listener");
        let mut events = Vec::new();
        poller.wait(&mut events, Duration::from_millis(20));
        // (The non-Linux fallback reports spurious readiness by design.)
        assert!(
            events.is_empty() || cfg!(not(target_os = "linux")),
            "nothing pending yet: {events:?}"
        );
        let _client = TcpStream::connect(addr).expect("connect");
        poller.wait(&mut events, Duration::from_secs(5));
        assert!(
            events.iter().any(|e| e.token == 7 && e.readable),
            "pending accept must surface with its token: {events:?}"
        );
        // After removal the pending accept no longer reports.
        poller.remove(listener.as_raw_fd());
        poller.wait(&mut events, Duration::from_millis(20));
        assert!(
            !events.iter().any(|e| e.token == 7),
            "removed fd must not report: {events:?}"
        );
    }

    /// The registration-replay fallback must tick the same way the
    /// platform poller does: on a connected loopback pair, quiet fds
    /// stay quiet, a written byte trips readability on exactly the
    /// right token, and write interest reports writable. On Linux both
    /// sides of the comparison are real kernel readiness (epoll vs
    /// `poll(2)` replay), so the assertions are exact.
    #[test]
    fn fallback_poller_matches_platform_poller_on_loopback_pair() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        client.set_nonblocking(true).unwrap();
        server.set_nonblocking(true).unwrap();

        let mut platform = Poller::new().expect("platform poller");
        let mut fallback = FallbackPoller::new().expect("fallback poller");
        platform.add(client.as_raw_fd(), 1, true, false).unwrap();
        platform.add(server.as_raw_fd(), 2, true, false).unwrap();
        fallback.add(client.as_raw_fd(), 1, true, false).unwrap();
        fallback.add(server.as_raw_fd(), 2, true, false).unwrap();

        let tick = |poller: &mut dyn FnMut(&mut Vec<PollEvent>, Duration)| {
            let mut events = Vec::new();
            poller(&mut events, Duration::from_millis(200));
            let mut tokens: Vec<u64> = events
                .iter()
                .filter(|e| e.readable)
                .map(|e| e.token)
                .collect();
            tokens.sort_unstable();
            tokens
        };

        // Quiet pair: neither backend reports readable fds. (Off Linux
        // the fallback is allowed its by-design spurious readiness, so
        // the exact comparisons below are gated to Linux.)
        if cfg!(target_os = "linux") {
            assert_eq!(tick(&mut |ev, t| platform.wait(ev, t)), Vec::<u64>::new());
            assert_eq!(tick(&mut |ev, t| fallback.wait(ev, t)), Vec::<u64>::new());
        }

        // One byte client→server: both backends must report exactly the
        // server token readable, and keep reporting it until drained.
        (&client).write_all(&[0x42]).expect("write");
        let expect = vec![2u64];
        assert_eq!(tick(&mut |ev, t| platform.wait(ev, t)), expect);
        if cfg!(target_os = "linux") {
            assert_eq!(
                tick(&mut |ev, t| fallback.wait(ev, t)),
                expect,
                "fallback replay must match epoll on the written fd"
            );
        } else {
            assert!(tick(&mut |ev, t| fallback.wait(ev, t)).contains(&2));
        }

        // Drain, then flip the server registration to write interest:
        // an idle socket with buffer space is writable under both.
        let mut sink = [0u8; 8];
        let _ = (&server).read(&mut sink);
        platform.modify(server.as_raw_fd(), 2, false, true);
        fallback.modify(server.as_raw_fd(), 2, false, true);
        let writable = |events: &Vec<PollEvent>| events.iter().any(|e| e.token == 2 && e.writable);
        let mut events = Vec::new();
        platform.wait(&mut events, Duration::from_millis(200));
        assert!(writable(&events), "epoll: {events:?}");
        fallback.wait(&mut events, Duration::from_millis(200));
        assert!(writable(&events), "fallback: {events:?}");
        if cfg!(target_os = "linux") {
            assert!(
                !events.iter().any(|e| e.token == 1),
                "quiet client must stay quiet under the fallback: {events:?}"
            );
        }

        // Removal is honored by the replay list just like the kernel set.
        fallback.remove(server.as_raw_fd());
        fallback.wait(&mut events, Duration::from_millis(50));
        assert!(
            !events.iter().any(|e| e.token == 2),
            "removed fd must not report: {events:?}"
        );
    }

    #[test]
    fn nofile_limit_reports_something_sane() {
        let got = raise_nofile_limit(4096);
        assert!(got >= 256, "soft nofile limit {got} suspiciously low");
    }
}
