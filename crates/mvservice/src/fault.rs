//! Deterministic fault injection for the allocation service.
//!
//! The service threads every failure-prone action through an optional
//! [`FaultHook`]: the connection layer asks [`FaultHook::on_request`]
//! before answering each request, and the registry asks
//! [`FaultHook::on_realloc`] before each reallocation. When no hook is
//! installed (the production default) the seam is a single
//! `Option::None` check — no trait object is ever dispatched.
//!
//! [`ScriptedFaults`] is the seeded implementation behind `--fault-plan`
//! and the chaos harness. Every decision is a *pure function* of the
//! plan seed and the injection coordinate — `(connection index, request
//! sequence)` for wire faults, the reallocation epoch for engine faults
//! — so a schedule replays bit-identically regardless of thread
//! interleaving or wall-clock timing. An optional budget caps the total
//! number of injected faults; once it is spent the service runs clean,
//! which is how the chaos harness reaches its verified "post-recovery"
//! state.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// What to do to the request currently being served.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultAction {
    /// Serve normally.
    None,
    /// Drop the connection *before* executing the request (the request
    /// is lost, as if the network ate it).
    Drop,
    /// Execute the request, then write only a prefix of the reply frame
    /// and drop the connection (the reply is lost mid-flight *after*
    /// the side effect applied — the idempotency torture case).
    Truncate,
    /// Execute and reply normally, but only after stalling this long
    /// (a slow network or an overloaded peer).
    Delay(Duration),
}

impl FaultAction {
    fn label(self) -> &'static str {
        match self {
            FaultAction::None => "none",
            FaultAction::Drop => "drop",
            FaultAction::Truncate => "truncate",
            FaultAction::Delay(_) => "delay",
        }
    }
}

/// What to do to the reallocation about to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReallocFault {
    /// Run normally.
    None,
    /// Fail outright before the engine runs (a crashed worker, an OOM).
    Fail,
    /// Run the engine against an already-expired deadline, exercising
    /// the allocator's timeout rollback path.
    Timeout,
}

/// The injection seam. All methods default to "no fault", so a custom
/// hook only overrides the surfaces it cares about.
pub trait FaultHook: Send + Sync {
    /// Consulted once per request, keyed by the accepting connection's
    /// index and the request's sequence number on that connection.
    fn on_request(&self, _conn: u64, _seq: u64) -> FaultAction {
        FaultAction::None
    }

    /// Consulted once per reallocation attempt (registry mutations are
    /// serialized, so calls are totally ordered).
    fn on_realloc(&self) -> ReallocFault {
        ReallocFault::None
    }
}

/// A seeded, scriptable schedule of faults.
///
/// Probabilities are per-decision and drawn from a stream keyed by the
/// injection coordinate, so the schedule is deterministic under any
/// thread interleaving. Parse one from the compact `--fault-plan`
/// spelling:
///
/// ```text
/// seed=42,drop=0.1,truncate=0.05,slow=0.1,delay_ms=10,realloc_fail=0.1,realloc_timeout=0.05,budget=40
/// ```
///
/// Every field is optional (defaults below); unknown keys are rejected
/// with the accepted ones listed.
#[derive(Clone, PartialEq, Debug)]
pub struct FaultPlan {
    /// Seed of every decision stream.
    pub seed: u64,
    /// P\[drop the connection before executing a request\].
    pub drop: f64,
    /// P\[truncate the reply frame after executing\].
    pub truncate: f64,
    /// P\[delay the reply by `delay`\].
    pub slow: f64,
    /// The injected reply delay.
    pub delay: Duration,
    /// P\[force a reallocation failure\].
    pub realloc_fail: f64,
    /// P\[force a reallocation timeout\] (exercises rollback).
    pub realloc_timeout: f64,
    /// Total faults to inject before going quiet (`None` = unbounded).
    pub budget: Option<u64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop: 0.0,
            truncate: 0.0,
            slow: 0.0,
            delay: Duration::from_millis(10),
            realloc_fail: 0.0,
            realloc_timeout: 0.0,
            budget: None,
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed={},drop={},truncate={},slow={},delay_ms={},realloc_fail={},realloc_timeout={}",
            self.seed,
            self.drop,
            self.truncate,
            self.slow,
            self.delay.as_millis(),
            self.realloc_fail,
            self.realloc_timeout,
        )?;
        if let Some(b) = self.budget {
            write!(f, ",budget={b}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for FaultPlan {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut plan = FaultPlan::default();
        for part in s.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault-plan entry `{part}` is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let prob = |what: &str| -> Result<f64, String> {
                let p: f64 = value
                    .parse()
                    .map_err(|_| format!("fault-plan {what} `{value}` is not a number"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("fault-plan {what} `{value}` is outside [0, 1]"));
                }
                Ok(p)
            };
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("fault-plan seed `{value}` is not a u64"))?
                }
                "drop" => plan.drop = prob("drop probability")?,
                "truncate" => plan.truncate = prob("truncate probability")?,
                "slow" => plan.slow = prob("slow probability")?,
                "delay_ms" => {
                    let ms: u64 = value
                        .parse()
                        .map_err(|_| format!("fault-plan delay_ms `{value}` is not a u64"))?;
                    plan.delay = Duration::from_millis(ms);
                }
                "realloc_fail" => plan.realloc_fail = prob("realloc_fail probability")?,
                "realloc_timeout" => plan.realloc_timeout = prob("realloc_timeout probability")?,
                "budget" => {
                    plan.budget = Some(
                        value
                            .parse()
                            .map_err(|_| format!("fault-plan budget `{value}` is not a u64"))?,
                    )
                }
                other => {
                    return Err(format!(
                        "unknown fault-plan key `{other}` (accepted: seed, drop, truncate, \
                         slow, delay_ms, realloc_fail, realloc_timeout, budget)"
                    ))
                }
            }
        }
        if plan.drop + plan.truncate + plan.slow > 1.0 {
            return Err("drop + truncate + slow probabilities exceed 1".to_string());
        }
        Ok(plan)
    }
}

/// One injected fault, as recorded in the [`ScriptedFaults`] log.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InjectedFault {
    /// `"request"` or `"realloc"`.
    pub site: &'static str,
    /// Connection index (requests) or reallocation epoch (reallocs).
    pub coord: (u64, u64),
    /// The action's label (`drop`, `truncate`, `delay`, `fail`, …).
    pub action: &'static str,
}

/// The seeded [`FaultHook`] driven by a [`FaultPlan`].
pub struct ScriptedFaults {
    plan: FaultPlan,
    /// Faults injected so far (budget accounting).
    injected: AtomicU64,
    /// Reallocation epoch counter (mutations are serialized by the
    /// registry lock, so the sequence is deterministic).
    realloc_epoch: AtomicU64,
    /// Every injected fault, for reproduction reports and determinism
    /// assertions.
    log: Mutex<Vec<InjectedFault>>,
}

/// Domain-separation constants for the decision streams (arbitrary odd
/// 64-bit values).
const CONN_KEY: u64 = 0x9e37_79b9_7f4a_7c15;
const SEQ_KEY: u64 = 0xc2b2_ae3d_27d4_eb4f;
const REALLOC_KEY: u64 = 0x1656_67b1_9e37_79f9;

/// A uniform draw in `[0, 1)` from the stream keyed by `key`.
fn unit_draw(key: u64) -> f64 {
    let x = SmallRng::seed_from_u64(key).next_u64();
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl ScriptedFaults {
    pub fn new(plan: FaultPlan) -> Self {
        ScriptedFaults {
            plan,
            injected: AtomicU64::new(0),
            realloc_epoch: AtomicU64::new(0),
            log: Mutex::new(Vec::new()),
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    /// Has the budget been spent (always `false` when unbounded)?
    pub fn exhausted(&self) -> bool {
        self.plan.budget.is_some_and(|b| self.injected() >= b)
    }

    /// The injection log so far (coordinates + actions, in injection
    /// order).
    pub fn log(&self) -> Vec<InjectedFault> {
        self.log.lock().expect("fault log lock").clone()
    }

    /// Consumes one unit of budget; `false` when the budget is spent
    /// (the fault is then suppressed).
    fn consume(&self) -> bool {
        match self.plan.budget {
            None => {
                self.injected.fetch_add(1, Ordering::SeqCst);
                true
            }
            Some(budget) => {
                // fetch_update so concurrent consumers never overshoot.
                self.injected
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                        (n < budget).then_some(n + 1)
                    })
                    .is_ok()
            }
        }
    }

    fn record(&self, site: &'static str, coord: (u64, u64), action: &'static str) {
        self.log
            .lock()
            .expect("fault log lock")
            .push(InjectedFault {
                site,
                coord,
                action,
            });
    }
}

impl FaultHook for ScriptedFaults {
    fn on_request(&self, conn: u64, seq: u64) -> FaultAction {
        let p = &self.plan;
        if p.drop + p.truncate + p.slow == 0.0 {
            return FaultAction::None;
        }
        let key = p
            .seed
            .wrapping_add(conn.wrapping_mul(CONN_KEY))
            .wrapping_add(seq.wrapping_mul(SEQ_KEY));
        let draw = unit_draw(key);
        let action = if draw < p.drop {
            FaultAction::Drop
        } else if draw < p.drop + p.truncate {
            FaultAction::Truncate
        } else if draw < p.drop + p.truncate + p.slow {
            FaultAction::Delay(p.delay)
        } else {
            return FaultAction::None;
        };
        if !self.consume() {
            return FaultAction::None;
        }
        self.record("request", (conn, seq), action.label());
        action
    }

    fn on_realloc(&self) -> ReallocFault {
        let p = &self.plan;
        // The epoch advances on every attempt, faulted or not, so the
        // decision stream is independent of earlier outcomes.
        let epoch = self.realloc_epoch.fetch_add(1, Ordering::SeqCst);
        if p.realloc_fail + p.realloc_timeout == 0.0 {
            return ReallocFault::None;
        }
        let key = p
            .seed
            .wrapping_add(REALLOC_KEY)
            .wrapping_add(epoch.wrapping_mul(SEQ_KEY));
        let draw = unit_draw(key);
        let fault = if draw < p.realloc_fail {
            ReallocFault::Fail
        } else if draw < p.realloc_fail + p.realloc_timeout {
            ReallocFault::Timeout
        } else {
            return ReallocFault::None;
        };
        if !self.consume() {
            return ReallocFault::None;
        }
        let label = match fault {
            ReallocFault::Fail => "fail",
            ReallocFault::Timeout => "timeout",
            ReallocFault::None => unreachable!(),
        };
        self.record("realloc", (0, epoch), label);
        fault
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn plan_spec_round_trips() {
        let spec = "seed=42,drop=0.1,truncate=0.05,slow=0.2,delay_ms=7,\
                    realloc_fail=0.1,realloc_timeout=0.05,budget=9";
        let plan: FaultPlan = spec.parse().unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.delay, Duration::from_millis(7));
        assert_eq!(plan.budget, Some(9));
        let redisplayed: FaultPlan = plan.to_string().parse().unwrap();
        assert_eq!(redisplayed, plan);
    }

    #[test]
    fn plan_spec_rejects_bad_input() {
        assert!("nonsense".parse::<FaultPlan>().is_err());
        assert!("drop=2".parse::<FaultPlan>().is_err());
        assert!("drop=-0.5".parse::<FaultPlan>().is_err());
        assert!("warp=0.1"
            .parse::<FaultPlan>()
            .unwrap_err()
            .contains("accepted"));
        assert!("seed=x".parse::<FaultPlan>().is_err());
        // The three wire probabilities must fit in one unit draw.
        assert!("drop=0.5,truncate=0.4,slow=0.3"
            .parse::<FaultPlan>()
            .is_err());
        // Empty spec = default plan (no faults).
        assert_eq!("".parse::<FaultPlan>().unwrap(), FaultPlan::default());
    }

    #[test]
    fn decisions_are_deterministic_per_coordinate() {
        let plan: FaultPlan = "seed=7,drop=0.3,truncate=0.2,slow=0.2".parse().unwrap();
        let a = ScriptedFaults::new(plan.clone());
        let b = ScriptedFaults::new(plan);
        for conn in 0..20u64 {
            for seq in 0..20u64 {
                assert_eq!(a.on_request(conn, seq), b.on_request(conn, seq));
            }
        }
        // Same coordinates revisited give the same answer (pure hash,
        // modulo budget — none here).
        assert_eq!(a.on_request(3, 5), b.on_request(3, 5));
        assert_eq!(a.log().len(), b.log().len());
        assert!(a.injected() > 0, "p=0.7 over 400 draws must inject");
    }

    #[test]
    fn realloc_stream_is_deterministic() {
        let plan: FaultPlan = "seed=11,realloc_fail=0.4,realloc_timeout=0.3"
            .parse()
            .unwrap();
        let a = ScriptedFaults::new(plan.clone());
        let b = ScriptedFaults::new(plan);
        let sa: Vec<ReallocFault> = (0..50).map(|_| a.on_realloc()).collect();
        let sb: Vec<ReallocFault> = (0..50).map(|_| b.on_realloc()).collect();
        assert_eq!(sa, sb);
        assert!(sa.contains(&ReallocFault::Fail));
        assert!(sa.contains(&ReallocFault::Timeout));
        assert!(sa.contains(&ReallocFault::None));
    }

    #[test]
    fn budget_caps_injections_then_goes_quiet() {
        let plan: FaultPlan = "seed=3,drop=1,budget=5".parse().unwrap();
        let f = ScriptedFaults::new(plan);
        let mut injected = 0;
        for seq in 0..100u64 {
            if f.on_request(0, seq) != FaultAction::None {
                injected += 1;
            }
        }
        assert_eq!(injected, 5);
        assert_eq!(f.injected(), 5);
        assert!(f.exhausted());
        assert_eq!(f.on_request(0, 1000), FaultAction::None);
    }

    #[test]
    fn default_hook_methods_are_no_ops() {
        struct Inert;
        impl FaultHook for Inert {}
        let hook: Arc<dyn FaultHook> = Arc::new(Inert);
        assert_eq!(hook.on_request(1, 2), FaultAction::None);
        assert_eq!(hook.on_realloc(), ReallocFault::None);
    }
}
