//! `mvservice` — the online allocation service.
//!
//! A long-running daemon (plus client library) that keeps the unique
//! optimal robust allocation of a *changing* workload continuously
//! available, built from three layers:
//!
//! - [`Registry`]: the online workload registry. Transactions register
//!   and deregister at runtime; each mutation runs the incremental
//!   delta reallocation ([`mvrobustness::Allocator::add_txn`] /
//!   [`mvrobustness::Allocator::remove_txn`]), which reuses cached
//!   counterexamples and monotonicity floors yet produces bit-for-bit
//!   the from-scratch optimum. [`Registry::assign`] reads the cached
//!   allocation in O(1).
//! - [`protocol`]: newline-delimited JSON over TCP — std-only, no
//!   framing beyond `\n`, structured error replies (a malformed request
//!   never drops the connection).
//! - [`Server`] / [`Client`]: a blocking thread-per-connection daemon
//!   with per-request timeouts, graceful shutdown (`shutdown` request,
//!   [`ServerHandle::shutdown`], or `SIGINT`/`SIGTERM` via
//!   [`install_signal_handlers`]), and [`Metrics`] — request counters
//!   and p50/p99 service latencies, surfaced by the `stats` op.
//!
//! The CLI front end is `mvrobust serve` / `mvrobust client`.

pub mod client;
pub mod metrics;
pub mod protocol;
pub mod registry;
pub mod server;

pub use client::{Client, ClientError};
pub use metrics::Metrics;
pub use protocol::Request;
pub use registry::{RegisteredTxn, Registry, RegistryError};
pub use server::{install_signal_handlers, Config, Server, ServerHandle};
