//! `mvservice` — the online allocation service.
//!
//! A long-running daemon (plus client library) that keeps the unique
//! optimal robust allocation of a *changing* workload continuously
//! available, built from three layers:
//!
//! - [`Registry`]: the online workload registry. Transactions register
//!   and deregister at runtime; each mutation runs the incremental
//!   delta reallocation ([`mvrobustness::Allocator::add_txn`] /
//!   [`mvrobustness::Allocator::remove_txn`]), which reuses cached
//!   counterexamples and monotonicity floors yet produces bit-for-bit
//!   the from-scratch optimum. [`Registry::assign`] reads the cached
//!   allocation in O(1).
//! - Template admission: `template_register` audits a parameterized
//!   template once against its whole bounded instantiation envelope
//!   ([`mvtemplates::TemplateCatalog`]); `instantiate` then admits each
//!   instance at the precomputed level in O(1) without ever calling the
//!   allocator. Ad-hoc `register` keeps the per-transaction delta path.
//! - [`protocol`]: newline-delimited JSON over TCP — std-only, no
//!   framing beyond `\n`, structured error replies (a malformed request
//!   never drops the connection).
//! - [`Server`] / [`Client`]: a blocking thread-per-connection daemon
//!   with per-request timeouts, graceful shutdown (`shutdown` request,
//!   [`ServerHandle::shutdown`], or `SIGINT`/`SIGTERM` via
//!   [`install_signal_handlers`]), and [`Metrics`] — request counters
//!   and p50/p99 service latencies, surfaced by the `stats` op.
//!
//! Fault tolerance is first-class:
//!
//! - [`fault`]: a deterministic fault-injection seam. A seeded
//!   [`FaultPlan`] scripts connection drops, truncated reply frames,
//!   slow responses, and forced reallocation failures/timeouts; every
//!   decision is a pure function of its injection coordinates, so the
//!   same seed always produces the same schedule regardless of thread
//!   interleaving. With no plan configured the hook is absent and the
//!   hot path pays one branch.
//! - Degradation: a failed or timed-out reallocation is *rolled back*
//!   — the registry keeps serving the last-known-good allocation
//!   (still the exact batch optimum of the applied set), marks itself
//!   degraded, and surfaces `stale` / `failed_reallocs` in replies and
//!   `stats`.
//! - [`RetryClient`]: exponential backoff + deterministic jitter with
//!   idempotent `req_id`s, so a retried mutation is applied exactly
//!   once (the server answers replays from its idempotency cache).
//!
//! The CLI front end is `mvrobust serve` / `mvrobust client`.

pub mod client;
pub mod codec;
#[cfg(unix)]
pub(crate) mod event;
pub mod fault;
pub mod metrics;
pub mod namespace;
pub mod poll;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod store;

pub use client::{BatchOp, Client, ClientError, RetryClient, RetryPolicy, RetryStats};
pub use codec::{
    decode_value, encode_payload, encode_raw_frame, encode_value, CodecAccept, CodecKind,
    DrainPlan, FrameBuf, FrameError, Payload, FRAME_MAGIC,
};
pub use fault::{FaultAction, FaultHook, FaultPlan, InjectedFault, ReallocFault, ScriptedFaults};
pub use metrics::Metrics;
pub use namespace::{Namespaces, RegistryTemplate, DEFAULT_TENANT};
pub use protocol::{Request, MAX_FRAME};
pub use registry::{
    BatchReply, RegisteredTxn, Registry, RegistryError, RegistryEvent, TemplateInfo,
};
pub use server::{install_signal_handlers, Config, CoreKind, Server, ServerHandle, MAX_LINE};
pub use store::{Durability, Recovered, SnapshotState, Store, TenantSnapshot, WalRecord};
