//! Lock-free request metrics: per-op counters, an error counter, and a
//! log₂-bucketed microsecond histogram good enough for p50/p99.
//!
//! Recording is a handful of relaxed atomic increments, so the hot
//! `assign` path never contends; quantiles are computed on demand from
//! a snapshot and report the *upper bound* of the bucket the quantile
//! falls in (exact to within 2× — ample for "is the service healthy").

use crate::codec::CodecKind;
use serde_json::{json, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Ops tracked by name; index = position. Unparseable requests (no op
/// field at all) count under `invalid`.
pub const OP_NAMES: [&str; 11] = [
    "register",
    "deregister",
    "assign",
    "template_register",
    "instantiate",
    "template_list",
    "stats",
    "list",
    "ping",
    "shutdown",
    "invalid",
];

const BUCKETS: usize = 40;

/// Size buckets for the group-commit batch histogram: a drain of
/// `size` events lands in bucket `⌈log₂ size⌉`, so power-of-two sizes
/// report exactly and others within 2×; sizes past the last bucket are
/// capped there.
const BATCH_BUCKETS: usize = 16;

/// Shared request metrics. All methods take `&self`.
pub struct Metrics {
    counts: [AtomicU64; OP_NAMES.len()],
    errors: AtomicU64,
    latency: [AtomicU64; BUCKETS],
    /// Mutations answered from the idempotency replay cache (a retried
    /// request whose first attempt already applied).
    replays: AtomicU64,
    /// Dispatcher drains (one coalesced engine batch each).
    drains: AtomicU64,
    /// Mutations that went through the coalescing queue — `coalesced /
    /// drains` is the average group-commit batch size.
    coalesced: AtomicU64,
    /// ⌈log₂⌉-bucketed histogram of drain sizes.
    batch_sizes: [AtomicU64; BATCH_BUCKETS],
    /// Connections currently open (gauge).
    conns_open: AtomicU64,
    /// Connections accepted over the server's lifetime.
    conns_total: AtomicU64,
    /// Requests decoded from the line-JSON codec.
    codec_line: AtomicU64,
    /// Requests decoded from the binary frame codec.
    codec_frame: AtomicU64,
    /// Templates registered across all tenants (catalog slow path).
    templates: AtomicU64,
    /// Instances admitted through the template fast path.
    instances: AtomicU64,
    /// Admissions through the O(1) catalog fast path (`instantiate`).
    admit_fast: AtomicU64,
    /// Admissions through the delta path (`register`, single or
    /// batched) — each one is an engine reallocation.
    admit_delta: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            errors: AtomicU64::new(0),
            latency: std::array::from_fn(|_| AtomicU64::new(0)),
            replays: AtomicU64::new(0),
            drains: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            batch_sizes: std::array::from_fn(|_| AtomicU64::new(0)),
            conns_open: AtomicU64::new(0),
            conns_total: AtomicU64::new(0),
            codec_line: AtomicU64::new(0),
            codec_frame: AtomicU64::new(0),
            templates: AtomicU64::new(0),
            instances: AtomicU64::new(0),
            admit_fast: AtomicU64::new(0),
            admit_delta: AtomicU64::new(0),
        }
    }
}

impl Metrics {
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records one request: its op (by name; unknown names count as
    /// `invalid`), whether it produced an `ok` reply, and its service
    /// time.
    pub fn record(&self, op: &str, ok: bool, elapsed: Duration) {
        let idx = OP_NAMES
            .iter()
            .position(|&n| n == op)
            .unwrap_or(OP_NAMES.len() - 1);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        let us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Total requests observed.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Counts one replayed mutation (idempotent retry served from the
    /// replay cache instead of re-applied).
    pub fn record_replay(&self) {
        self.replays.fetch_add(1, Ordering::Relaxed);
    }

    pub fn replays(&self) -> u64 {
        self.replays.load(Ordering::Relaxed)
    }

    /// Records one dispatcher drain that applied `size` coalesced
    /// mutations as a single engine batch (`size ≥ 1`).
    pub fn record_batch(&self, size: usize) {
        self.drains.fetch_add(1, Ordering::Relaxed);
        self.coalesced.fetch_add(size as u64, Ordering::Relaxed);
        let bucket = (size.max(1) as u64)
            .next_power_of_two()
            .trailing_zeros()
            .min(BATCH_BUCKETS as u32 - 1) as usize;
        self.batch_sizes[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Total dispatcher drains so far.
    pub fn drains(&self) -> u64 {
        self.drains.load(Ordering::Relaxed)
    }

    /// Total mutations applied through the coalescing queue.
    pub fn coalesced_events(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// The drain-size value (events, bucket upper bound `2^i`) at
    /// quantile `q` in `[0, 1]`, or 0 when no drain was recorded.
    /// Power-of-two sizes report exactly; others within 2×.
    pub fn batch_size_quantile(&self, q: f64) -> u64 {
        let buckets: Vec<u64> = self
            .batch_sizes
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &count) in buckets.iter().enumerate() {
            seen += count;
            if seen >= target {
                return 1u64 << i;
            }
        }
        1u64 << (BATCH_BUCKETS - 1)
    }

    /// The latency value (µs, bucket upper bound) at quantile `q` in
    /// `[0, 1]`, or 0 when nothing was recorded.
    ///
    /// Bucket 0 only ever holds sub-microsecond durations, so its upper
    /// bound is reported as 0 — a service whose every request takes
    /// under a microsecond reports p99 = 0, not a phantom 1µs.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let buckets: Vec<u64> = self
            .latency
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &count) in buckets.iter().enumerate() {
            seen += count;
            if seen >= target {
                // Bucket i > 0 holds durations in [2^(i-1), 2^i) µs;
                // bucket 0 holds exactly the sub-µs durations.
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        1u64 << (BUCKETS - 1)
    }

    /// Counts a freshly accepted connection (gauge + lifetime total).
    pub fn conn_opened(&self) {
        self.conns_open.fetch_add(1, Ordering::Relaxed);
        self.conns_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a closed connection (gauge decrement).
    pub fn conn_closed(&self) {
        self.conns_open.fetch_sub(1, Ordering::Relaxed);
    }

    /// Connections currently open.
    pub fn connections_open(&self) -> u64 {
        self.conns_open.load(Ordering::Relaxed)
    }

    /// Connections accepted over the server's lifetime.
    pub fn connections_total(&self) -> u64 {
        self.conns_total.load(Ordering::Relaxed)
    }

    /// Counts one request decoded on the given codec.
    pub fn codec_request(&self, kind: CodecKind) {
        match kind {
            CodecKind::Line => self.codec_line.fetch_add(1, Ordering::Relaxed),
            CodecKind::Frame => self.codec_frame.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Requests decoded per codec: `(line, frame)`.
    pub fn codec_counts(&self) -> (u64, u64) {
        (
            self.codec_line.load(Ordering::Relaxed),
            self.codec_frame.load(Ordering::Relaxed),
        )
    }

    /// Counts one applied template registration (catalog slow path).
    pub fn record_template(&self) {
        self.templates.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one admission: `fast = true` for the O(1) template
    /// fast path (`instantiate`), `false` for a delta-path engine
    /// reallocation (`register`).
    pub fn record_admission(&self, fast: bool) {
        if fast {
            self.instances.fetch_add(1, Ordering::Relaxed);
            self.admit_fast.fetch_add(1, Ordering::Relaxed);
        } else {
            self.admit_delta.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Templates registered so far.
    pub fn templates(&self) -> u64 {
        self.templates.load(Ordering::Relaxed)
    }

    /// Fast-path instances admitted so far.
    pub fn instances(&self) -> u64 {
        self.instances.load(Ordering::Relaxed)
    }

    /// Admissions per path: `(fast, delta)`.
    pub fn admissions(&self) -> (u64, u64) {
        (
            self.admit_fast.load(Ordering::Relaxed),
            self.admit_delta.load(Ordering::Relaxed),
        )
    }

    /// The `requests` / `errors` / `latency_us` portion of a `stats`
    /// reply.
    pub fn to_json(&self) -> Value {
        let mut requests = serde_json::Map::new();
        for (i, name) in OP_NAMES.iter().enumerate() {
            requests.insert(
                name.to_string(),
                Value::from(self.counts[i].load(Ordering::Relaxed)),
            );
        }
        json!({
            "total": self.total(),
            "requests": Value::Object(requests),
            "errors": self.errors(),
            "replays": self.replays(),
            "latency_us": json!({
                "p50": self.quantile_us(0.50),
                "p99": self.quantile_us(0.99),
            }),
            "batch": json!({
                "drains": self.drains(),
                "coalesced_events": self.coalesced_events(),
                "size_p50": self.batch_size_quantile(0.50),
                "size_p99": self.batch_size_quantile(0.99),
            }),
            "connections": json!({
                "open": self.connections_open(),
                "total": self.connections_total(),
            }),
            "codec_line": self.codec_line.load(Ordering::Relaxed),
            "codec_frame": self.codec_frame.load(Ordering::Relaxed),
            "templates": self.templates(),
            "instances": self.instances(),
            "admission": json!({
                "fast_path": self.admit_fast.load(Ordering::Relaxed),
                "delta": self.admit_delta.load(Ordering::Relaxed),
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_errors_accumulate() {
        let m = Metrics::new();
        m.record("assign", true, Duration::from_micros(3));
        m.record("assign", true, Duration::from_micros(5));
        m.record("register", false, Duration::from_micros(900));
        m.record("no-such-op", false, Duration::from_micros(1));
        let v = m.to_json();
        assert_eq!(v["requests"]["assign"], 2u64);
        assert_eq!(v["requests"]["register"], 1u64);
        assert_eq!(v["requests"]["invalid"], 1u64);
        assert_eq!(v["errors"], 2u64);
        assert_eq!(v["total"], 4u64);
    }

    #[test]
    fn quantiles_split_a_bimodal_distribution() {
        let m = Metrics::new();
        // 98 fast requests (~4µs), 2 slow (~1000µs).
        for _ in 0..98 {
            m.record("assign", true, Duration::from_micros(4));
        }
        for _ in 0..2 {
            m.record("assign", true, Duration::from_micros(1000));
        }
        let p50 = m.quantile_us(0.50);
        let p99 = m.quantile_us(0.99);
        assert!(p50 <= 8, "p50 should sit in the fast mode, got {p50}µs");
        assert!(p99 >= 1000, "p99 should reach the slow mode, got {p99}µs");
        assert!(p50 < p99);
    }

    #[test]
    fn empty_metrics_report_zero() {
        let m = Metrics::new();
        assert_eq!(m.quantile_us(0.99), 0);
        assert_eq!(m.total(), 0);
    }

    #[test]
    fn all_zero_distribution_reports_zero_not_phantom_microsecond() {
        // Every request under 1µs lands in bucket 0; quantiles must say
        // 0µs, not round up to the old 1µs bucket bound.
        let m = Metrics::new();
        for _ in 0..1000 {
            m.record("ping", true, Duration::ZERO);
        }
        assert_eq!(m.quantile_us(0.50), 0);
        assert_eq!(m.quantile_us(0.99), 0);
        assert_eq!(m.quantile_us(1.0), 0);
    }

    #[test]
    fn single_sample_every_quantile_lands_in_its_bucket() {
        let m = Metrics::new();
        m.record("assign", true, Duration::from_micros(700));
        // 700µs sits in (512, 1024]; every quantile of a one-sample
        // distribution must report that same bucket bound.
        for q in [0.0, 0.01, 0.50, 0.99, 1.0] {
            let v = m.quantile_us(q);
            assert_eq!(v, 1024, "q={q} reported {v}µs for a single 700µs sample");
        }
    }

    #[test]
    fn bucket_boundary_values_split_correctly() {
        // 2^k−1 is the last value of its bucket and 2^k the first of the
        // next; the reported bound is always the smallest power of two
        // strictly above the recorded value, so it never under-reports.
        for k in [1u32, 4, 10, 20] {
            let exact = 1u64 << k;
            for us in [exact - 1, exact, exact + 1] {
                let m = Metrics::new();
                m.record("assign", true, Duration::from_micros(us));
                let p99 = m.quantile_us(0.99);
                let want = (us + 1).next_power_of_two();
                assert_eq!(
                    p99, want,
                    "value {us}µs (k={k}) reported {p99}µs, want {want}µs"
                );
            }
        }
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let m = Metrics::new();
        for us in [0u64, 1, 3, 9, 80, 300, 5_000, 70_000] {
            m.record("assign", true, Duration::from_micros(us));
        }
        let mut prev = 0;
        for i in 0..=100 {
            let v = m.quantile_us(f64::from(i) / 100.0);
            assert!(v >= prev, "quantile not monotone at q={}", i as f64 / 100.0);
            prev = v;
        }
    }

    #[test]
    fn batch_histogram_counts_drains_and_events() {
        let m = Metrics::new();
        assert_eq!(m.batch_size_quantile(0.99), 0, "empty histogram reports 0");
        for _ in 0..9 {
            m.record_batch(1);
        }
        m.record_batch(64);
        assert_eq!(m.drains(), 10);
        assert_eq!(m.coalesced_events(), 73);
        assert_eq!(m.batch_size_quantile(0.50), 1);
        assert_eq!(m.batch_size_quantile(1.0), 64);
        let v = m.to_json();
        assert_eq!(v["batch"]["drains"], 10u64);
        assert_eq!(v["batch"]["coalesced_events"], 73u64);
        assert_eq!(v["batch"]["size_p50"], 1u64);
        assert_eq!(v["batch"]["size_p99"], 64u64);
    }

    #[test]
    fn batch_buckets_report_power_of_two_sizes_exactly() {
        // The bench sweeps batch sizes 1/8/64/256 — those must report
        // exactly; everything else within 2× (rounded up).
        for size in [1usize, 2, 8, 64, 256] {
            let m = Metrics::new();
            m.record_batch(size);
            assert_eq!(m.batch_size_quantile(0.99), size as u64, "size {size}");
        }
        let m = Metrics::new();
        m.record_batch(5);
        assert_eq!(m.batch_size_quantile(0.99), 8);
    }

    #[test]
    fn connection_gauge_and_codec_counters_round_trip() {
        let m = Metrics::new();
        m.conn_opened();
        m.conn_opened();
        m.conn_closed();
        m.codec_request(CodecKind::Line);
        m.codec_request(CodecKind::Frame);
        m.codec_request(CodecKind::Frame);
        assert_eq!(m.connections_open(), 1);
        assert_eq!(m.connections_total(), 2);
        assert_eq!(m.codec_counts(), (1, 2));
        let v = m.to_json();
        assert_eq!(v["connections"]["open"], 1u64);
        assert_eq!(v["connections"]["total"], 2u64);
        assert_eq!(v["codec_line"], 1u64);
        assert_eq!(v["codec_frame"], 2u64);
    }

    #[test]
    fn template_verbs_have_their_own_counters() {
        // The new verbs must be in OP_NAMES: `record` maps unknown op
        // names to `invalid`, which would silently mis-attribute them.
        let m = Metrics::new();
        m.record("template_register", true, Duration::from_micros(500));
        m.record("instantiate", true, Duration::from_micros(1));
        m.record("template_list", true, Duration::from_micros(2));
        let v = m.to_json();
        assert_eq!(v["requests"]["template_register"], 1u64);
        assert_eq!(v["requests"]["instantiate"], 1u64);
        assert_eq!(v["requests"]["template_list"], 1u64);
        assert_eq!(v["requests"]["invalid"], 0u64);
    }

    #[test]
    fn admission_counters_split_fast_and_delta() {
        let m = Metrics::new();
        m.record_template();
        m.record_admission(true);
        m.record_admission(true);
        m.record_admission(false);
        assert_eq!(m.templates(), 1);
        assert_eq!(m.instances(), 2);
        assert_eq!(m.admissions(), (2, 1));
        let v = m.to_json();
        assert_eq!(v["templates"], 1u64);
        assert_eq!(v["instances"], 2u64);
        assert_eq!(v["admission"]["fast_path"], 2u64);
        assert_eq!(v["admission"]["delta"], 1u64);
    }

    #[test]
    fn replay_counter_round_trips_through_json() {
        let m = Metrics::new();
        assert_eq!(m.replays(), 0);
        m.record_replay();
        m.record_replay();
        assert_eq!(m.to_json()["replays"], 2u64);
    }
}
