//! Multi-tenant namespaces: a tenant → [`Registry`] map with one
//! cross-tenant [`SharedCompCache`].
//!
//! Each tenant gets a fully independent registry — its own transaction
//! ids, object names, allocation, degradation state, and template
//! catalog (templates registered by one tenant are invisible to every
//! other: ids, audited levels, and instance counts are all
//! tenant-scoped) — behind its own lock, so mutations in different
//! tenants run in parallel. What
//! the tenants *share* is the component fingerprint cache: fleets run
//! many tenants through the same template shapes (the template line of
//! work, Vandevoort et al.), so a conflict component one tenant has
//! solved is a pure cache hit for every other tenant admitting the
//! same shape. Content addressing makes this sound: the fingerprint
//! keys on the component's conflict structure, and Proposition 4.2's
//! uniqueness of the optimum means a hit is bit-identical to
//! re-solving.
//!
//! Tenant names are part of the wire protocol (an envelope field next
//! to the request verb) and of durable state (WAL records and
//! snapshots key on them), so they are restricted to a conservative
//! charset — see [`valid_tenant`]. The absent field means
//! [`DEFAULT_TENANT`], keeping every pre-tenant client bit-compatible.

use crate::fault::FaultHook;
use crate::registry::Registry;
use mvrobustness::{LevelSet, SharedCompCache};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The tenant a request without a `tenant` field routes to.
pub const DEFAULT_TENANT: &str = "default";

/// Is `name` a legal tenant name? 1–64 characters from
/// `[A-Za-z0-9_-]` — safe in the wire protocol, in log records, and in
/// diagnostics.
pub fn valid_tenant(name: &str) -> bool {
    (1..=64).contains(&name.len())
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

/// How to build each tenant's registry: the server-wide configuration
/// every namespace shares.
#[derive(Clone)]
pub struct RegistryTemplate {
    pub levels: LevelSet,
    pub threads: usize,
    pub realloc_timeout: Option<Duration>,
    /// Component-sharded engine on/off (on in production; the shared
    /// cache only attaches when on).
    pub components: bool,
    /// Chaos seam, cloned into every tenant.
    pub faults: Option<Arc<dyn FaultHook>>,
}

impl RegistryTemplate {
    fn build(&self, cache: &Arc<SharedCompCache>) -> Registry {
        let mut reg = Registry::new(self.levels, self.threads)
            .with_realloc_timeout(self.realloc_timeout)
            .with_components(self.components);
        if self.components {
            reg = reg.with_shared_cache(Arc::clone(cache));
        }
        if let Some(hook) = &self.faults {
            reg = reg.with_fault_hook(Arc::clone(hook));
        }
        reg
    }
}

/// The tenant map. Tenants are created on first touch (registering
/// into a fresh tenant is how one comes to exist — there is no
/// separate create verb) and never dropped while the server runs.
pub struct Namespaces {
    tenants: Mutex<BTreeMap<Arc<str>, Arc<Mutex<Registry>>>>,
    cache: Arc<SharedCompCache>,
    template: RegistryTemplate,
}

impl Namespaces {
    pub fn new(template: RegistryTemplate) -> Self {
        Namespaces {
            tenants: Mutex::new(BTreeMap::new()),
            cache: Arc::new(SharedCompCache::default()),
            template,
        }
    }

    /// The cross-tenant fingerprint cache (for stats and snapshots).
    pub fn shared_cache(&self) -> &Arc<SharedCompCache> {
        &self.cache
    }

    pub fn levels(&self) -> LevelSet {
        self.template.levels
    }

    /// Resolves `name` to its registry, creating the tenant on first
    /// touch. Returns the interned name so callers key caches and log
    /// records off one shared allocation. The map lock is held only for
    /// the lookup — never while a registry lock is taken.
    pub fn resolve(&self, name: &str) -> (Arc<str>, Arc<Mutex<Registry>>) {
        let mut map = self.tenants.lock().expect("namespaces poisoned");
        if let Some((key, reg)) = map.get_key_value(name) {
            return (Arc::clone(key), Arc::clone(reg));
        }
        let key: Arc<str> = Arc::from(name);
        let reg = Arc::new(Mutex::new(self.template.build(&self.cache)));
        map.insert(Arc::clone(&key), Arc::clone(&reg));
        (key, reg)
    }

    /// Resolves `name` only if the tenant already exists — read-only
    /// verbs against an unknown tenant must not create it.
    pub fn get(&self, name: &str) -> Option<(Arc<str>, Arc<Mutex<Registry>>)> {
        let map = self.tenants.lock().expect("namespaces poisoned");
        map.get_key_value(name)
            .map(|(k, r)| (Arc::clone(k), Arc::clone(r)))
    }

    /// Every tenant with its registry, ascending by name — the
    /// snapshot capture order (registry locks are then taken in this
    /// order, which keeps lock acquisition globally consistent).
    pub fn all(&self) -> Vec<(Arc<str>, Arc<Mutex<Registry>>)> {
        let map = self.tenants.lock().expect("namespaces poisoned");
        map.iter()
            .map(|(k, r)| (Arc::clone(k), Arc::clone(r)))
            .collect()
    }

    /// Installs a fault hook after construction: on every existing
    /// tenant and on all tenants created from here on. Recovery
    /// replays run fault-free (they re-apply mutations that already
    /// succeeded once), then the server arms the chaos seam with this
    /// before accepting connections.
    pub fn install_faults(&mut self, hook: Arc<dyn FaultHook>) {
        self.template.faults = Some(Arc::clone(&hook));
        for (_, reg) in self.all() {
            reg.lock()
                .expect("registry poisoned")
                .set_fault_hook(Arc::clone(&hook));
        }
    }

    /// Number of tenants that exist.
    pub fn len(&self) -> usize {
        self.tenants.lock().expect("namespaces poisoned").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvmodel::TxnId;

    fn template() -> RegistryTemplate {
        RegistryTemplate {
            levels: LevelSet::RcSiSsi,
            threads: 1,
            realloc_timeout: None,
            components: true,
            faults: None,
        }
    }

    #[test]
    fn tenant_names_are_validated() {
        assert!(valid_tenant("default"));
        assert!(valid_tenant("acme-corp_7"));
        assert!(valid_tenant(&"x".repeat(64)));
        assert!(!valid_tenant(""));
        assert!(!valid_tenant(&"x".repeat(65)));
        assert!(!valid_tenant("a b"));
        assert!(!valid_tenant("a/b"));
        assert!(!valid_tenant("naïve"));
    }

    #[test]
    fn tenants_are_isolated_but_share_the_fingerprint_cache() {
        let ns = Namespaces::new(template());
        assert!(ns.is_empty());
        let (a_name, a) = ns.resolve("acme");
        let (b_name, b) = ns.resolve("bolt");
        assert_eq!(ns.len(), 2);
        assert_eq!(&*a_name, "acme");

        // The same two-component shape in both tenants: a write-skew
        // pair plus a lost-update pair (the sharded engine only engages
        // with ≥ 2 components). Ids do not clash across tenants
        // (isolation), and the second tenant's components are answered
        // from the shared cache (cross-tenant hits).
        let lines = [
            "T1: R[x] W[y]",
            "T2: R[y] W[x]",
            "T3: R[z] W[z]",
            "T4: R[z] W[z]",
        ];
        {
            let mut reg = a.lock().unwrap();
            for line in lines {
                reg.register(line).unwrap();
            }
        }
        {
            let mut reg = b.lock().unwrap();
            for line in lines {
                reg.register(line).unwrap();
            }
            assert_eq!(
                reg.assign(TxnId(1)).unwrap(),
                mvisolation::IsolationLevel::SSI
            );
        }
        assert!(
            ns.shared_cache().hits() > 0,
            "tenant b's components must hit tenant a's cached solutions"
        );
        // And tenant a is untouched by tenant b's registrations.
        assert_eq!(a.lock().unwrap().len(), 4);
        let _ = b_name;
    }

    #[test]
    fn resolve_interns_and_get_does_not_create() {
        let ns = Namespaces::new(template());
        assert!(ns.get("ghost").is_none());
        assert_eq!(ns.len(), 0, "get never creates");
        let (k1, r1) = ns.resolve("acme");
        let (k2, r2) = ns.resolve("acme");
        assert!(Arc::ptr_eq(&k1, &k2), "names are interned");
        assert!(Arc::ptr_eq(&r1, &r2), "one registry per tenant");
        let names: Vec<String> = ns.all().iter().map(|(k, _)| k.to_string()).collect();
        assert_eq!(names, ["acme"]);
        ns.resolve("zeta");
        ns.resolve("beta");
        let names: Vec<String> = ns.all().iter().map(|(k, _)| k.to_string()).collect();
        assert_eq!(names, ["acme", "beta", "zeta"], "sorted for snapshots");
    }
}
