//! The online workload registry: a thin, parsing-aware wrapper around
//! the incremental [`Allocator`] delta API.
//!
//! Transactions register and deregister at runtime; the registry keeps
//! the unique optimal robust allocation of the *current* set
//! continuously available ([`Registry::assign`] is an O(1) lookup into
//! the cached optimum — no probe runs unless the workload changed).

use mvisolation::{Allocation, IsolationLevel};
use mvmodel::{parse_transaction_line, Op, ParseError, Transaction, TransactionSet, TxnId};
use mvrobustness::{AllocError, Allocator, EngineStats, LevelSet, Realloc};

/// Why a registry operation failed. Mirrors the two layers beneath it:
/// the textual transaction format and the allocation engine.
#[derive(Debug)]
pub enum RegistryError {
    /// The transaction line did not parse.
    Parse(ParseError),
    /// The allocator rejected the mutation (duplicate id, unknown id, or
    /// an unallocatable `{RC, SI}` workload — rolled back).
    Alloc(AllocError),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Parse(e) => write!(f, "parse error: {e}"),
            RegistryError::Alloc(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// A registered transaction as reported by [`Registry::list`].
#[derive(Clone, Debug)]
pub struct RegisteredTxn {
    pub id: TxnId,
    /// Canonical text rendering (`T1: R[x] W[y] C`).
    pub text: String,
    /// The transaction's level under the current optimum.
    pub level: IsolationLevel,
}

/// An online transaction registry with a continuously maintained
/// optimal robust allocation.
pub struct Registry {
    alloc: Allocator<'static>,
}

impl Registry {
    /// An empty registry over the given level menu; `threads` workers
    /// serve each reallocation probe.
    pub fn new(levels: LevelSet, threads: usize) -> Self {
        Registry {
            alloc: Allocator::from_owned(TransactionSet::default())
                .with_levels(levels)
                .with_threads(threads),
        }
    }

    pub fn levels(&self) -> LevelSet {
        self.alloc.levels()
    }

    /// Number of registered transactions.
    pub fn len(&self) -> usize {
        self.alloc.txns().len()
    }

    pub fn is_empty(&self) -> bool {
        self.alloc.txns().len() == 0
    }

    /// Registers the transaction described by `line` (`T7: R[x] W[y]`)
    /// and incrementally reallocates. Object names resolve against the
    /// names already interned by earlier registrations, so `x` in one
    /// transaction conflicts with `x` in another.
    pub fn register(&mut self, line: &str) -> Result<Realloc, RegistryError> {
        // Parse against a scratch set, then re-intern the object names
        // into the allocator's own table: the allocator deliberately
        // never hands out `&mut TransactionSet` (a raw mutation would
        // bypass delta-state invalidation).
        let mut scratch = TransactionSet::default();
        let parsed = parse_transaction_line(line, &mut scratch).map_err(RegistryError::Parse)?;
        let ops = parsed
            .ops()
            .iter()
            .map(|op| Op {
                kind: op.kind,
                object: self.alloc.intern_object(&scratch.object_name(op.object)),
            })
            .collect();
        let txn = Transaction::new(parsed.id(), ops).expect("parser enforces the op invariants");
        self.alloc.add_txn(txn).map_err(RegistryError::Alloc)
    }

    /// Deregisters transaction `id` and incrementally reallocates.
    pub fn deregister(&mut self, id: TxnId) -> Result<Realloc, RegistryError> {
        self.alloc.remove_txn(id).map_err(RegistryError::Alloc)
    }

    /// The current optimal level of `id` — an O(1) lookup into the
    /// cached allocation. `None` when `id` is not registered.
    pub fn assign(&mut self, id: TxnId) -> Option<IsolationLevel> {
        self.alloc.current().ok()?.get(id)
    }

    /// The full current optimum.
    pub fn current(&mut self) -> Result<&Allocation, RegistryError> {
        self.alloc.current().map_err(RegistryError::Alloc)
    }

    /// The registered transactions with their current levels, in id
    /// order.
    pub fn list(&mut self) -> Vec<RegisteredTxn> {
        let levels: Vec<(TxnId, IsolationLevel)> = match self.alloc.current() {
            Ok(a) => a.iter().collect(),
            Err(_) => return Vec::new(),
        };
        let txns = self.alloc.txns();
        levels
            .into_iter()
            .map(|(id, level)| RegisteredTxn {
                id,
                text: mvmodel::fmt::transaction(txns, txns.txn(id)),
                level,
            })
            .collect()
    }

    /// Work counters of the most recent reallocation, if any ran.
    pub fn last_stats(&self) -> Option<&EngineStats> {
        self.alloc.last_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_assign_deregister_round_trip() {
        let mut reg = Registry::new(LevelSet::RcSiSsi, 1);
        assert!(reg.is_empty());
        let r = reg.register("T1: R[x] W[y]").unwrap();
        assert_eq!(r.allocation.to_string(), "T1=RC");
        let r = reg.register("T2: R[y] W[x]").unwrap();
        assert_eq!(r.allocation.to_string(), "T1=SSI T2=SSI");
        // The write-skew partner raised T1: both changes are reported.
        assert_eq!(r.changed.len(), 2);
        assert_eq!(reg.assign(TxnId(1)), Some(IsolationLevel::SSI));
        assert_eq!(reg.assign(TxnId(9)), None);
        assert_eq!(reg.len(), 2);

        let list = reg.list();
        assert_eq!(list.len(), 2);
        assert_eq!(list[0].text, "T1: R[x] W[y] C");
        assert_eq!(list[0].level, IsolationLevel::SSI);

        reg.deregister(TxnId(2)).unwrap();
        assert_eq!(reg.assign(TxnId(1)), Some(IsolationLevel::RC));
    }

    #[test]
    fn shared_object_names_conflict_across_registrations() {
        let mut reg = Registry::new(LevelSet::RcSiSsi, 1);
        reg.register("T1: R[acct] W[acct]").unwrap();
        let r = reg.register("T2: R[acct] W[acct]").unwrap();
        // A lost-update pair: both need SI — proof the second `acct`
        // resolved to the first one's object.
        assert_eq!(r.allocation.to_string(), "T1=SI T2=SI");
    }

    #[test]
    fn structured_errors() {
        let mut reg = Registry::new(LevelSet::RcSiSsi, 1);
        assert!(matches!(
            reg.register("garbage"),
            Err(RegistryError::Parse(_))
        ));
        reg.register("T1: R[x]").unwrap();
        assert!(matches!(
            reg.register("T1: W[x]"),
            Err(RegistryError::Alloc(AllocError::Duplicate(TxnId(1))))
        ));
        assert!(matches!(
            reg.deregister(TxnId(5)),
            Err(RegistryError::Alloc(AllocError::Unknown(TxnId(5))))
        ));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn rc_si_registry_rejects_unallocatable_and_keeps_serving() {
        let mut reg = Registry::new(LevelSet::RcSi, 1);
        reg.register("T1: R[x] W[y]").unwrap();
        let err = reg.register("T2: R[y] W[x]").unwrap_err();
        assert!(matches!(
            err,
            RegistryError::Alloc(AllocError::NotAllocatable(LevelSet::RcSi))
        ));
        // Rolled back: T1 still served.
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.assign(TxnId(1)), Some(IsolationLevel::RC));
    }
}
