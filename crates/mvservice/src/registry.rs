//! The online workload registry: a thin, parsing-aware wrapper around
//! the incremental [`Allocator`] delta API.
//!
//! Transactions register and deregister at runtime; the registry keeps
//! the unique optimal robust allocation of the *current* set
//! continuously available ([`Registry::assign`] is an O(1) lookup into
//! the cached optimum — no probe runs unless the workload changed).
//!
//! # Degradation semantics
//!
//! A reallocation can fail to *complete* — it exceeds the configured
//! [`Registry::with_realloc_timeout`] budget, or an installed
//! [`FaultHook`] forces a failure. The registry then degrades
//! gracefully instead of wedging: the mutation is **not applied** (the
//! allocator rolls its set back), the last-known-good allocation keeps
//! being served, and the failure is reported both in the structured
//! error ([`RegistryError::Degraded`]) and in the staleness accessors
//! ([`Registry::degraded`], [`Registry::failed_reallocs`]) that the
//! server surfaces as `"stale"` / `"failed_reallocs"` fields. The next
//! successful reallocation clears the degraded flag. Because rejected
//! mutations roll back completely, the served allocation is at every
//! moment bit-identical to a batch [`Allocator::optimal`] run over the
//! currently-registered set — the invariant the chaos harness verifies.

use crate::fault::{FaultHook, ReallocFault};
use mvisolation::{Allocation, IsolationLevel, LevelChange};
use mvmodel::{parse_transaction_line, Op, ParseError, Transaction, TransactionSet, TxnId};
use mvrobustness::{
    AllocError, Allocator, DeltaEvent, EngineStats, LevelSet, Realloc, SharedCompCache,
};
use mvtemplates::{CatalogEntry, TemplateCatalog, TemplateError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a registry operation failed. Mirrors the layers beneath it: the
/// textual transaction format, the allocation engine, and the service's
/// own degradation state.
#[derive(Debug)]
pub enum RegistryError {
    /// The transaction line did not parse.
    Parse(ParseError),
    /// The allocator rejected the mutation (duplicate id, unknown id, or
    /// an unallocatable `{RC, SI}` workload — rolled back).
    Alloc(AllocError),
    /// The reallocation failed to complete (timeout or injected fault).
    /// The mutation was rolled back; the last-known-good allocation is
    /// still served.
    Degraded {
        /// What went wrong (`"reallocation timed out"`, …).
        cause: String,
        /// Total reallocation failures so far, including this one.
        failures: u64,
    },
    /// A template catalog operation failed (bad template line, unknown
    /// template id, short parameter vector).
    Template(TemplateError),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Parse(e) => write!(f, "parse error: {e}"),
            RegistryError::Alloc(e) => write!(f, "{e}"),
            RegistryError::Degraded { cause, failures } => write!(
                f,
                "{cause}; the change was not applied and the last-known-good allocation \
                 is still served ({failures} reallocation failure{} so far) — retry later",
                if *failures == 1 { "" } else { "s" }
            ),
            RegistryError::Template(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// One membership mutation inside a coalesced batch
/// ([`Registry::apply_events`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegistryEvent {
    /// Register the transaction described by the wire-format line
    /// (`T7: R[x] W[y]`).
    Register(String),
    /// Deregister the given transaction.
    Deregister(TxnId),
    /// Register the template described by the wire-format line
    /// (`Balance: R[sav:$0] R[chk:$0]`) in the tenant's catalog.
    /// Never coalesced: the server runs catalog ops inline.
    TemplateRegister(String),
    /// Admit one instance of a registered template on the fast path.
    /// Never coalesced.
    Instantiate {
        template_id: usize,
        params: Vec<u32>,
    },
}

/// The outcome of one coalesced batch of registry mutations: per-event
/// verdicts plus the batch-level changed-levels diff and engine work.
#[derive(Debug)]
pub struct BatchReply {
    /// Per-event verdicts, in input order. `Ok` carries the affected
    /// transaction id; `Err` events were rejected individually (parse
    /// error, duplicate/unknown id, unallocatable add) and rolled back
    /// without disturbing the rest of the batch.
    pub outcomes: Vec<Result<TxnId, RegistryError>>,
    /// Net level movement of the whole batch versus the pre-batch
    /// optimum.
    pub changed: Vec<LevelChange>,
    /// Engine work of the single coalesced reallocation.
    pub stats: EngineStats,
}

/// A registered transaction as reported by [`Registry::list`].
#[derive(Clone, Debug)]
pub struct RegisteredTxn {
    pub id: TxnId,
    /// Canonical text rendering (`T1: R[x] W[y] C`).
    pub text: String,
    /// The transaction's level under the current optimum.
    pub level: IsolationLevel,
}

/// A catalog template as reported by [`Registry::templates`].
#[derive(Clone, Debug)]
pub struct TemplateInfo {
    /// Dense 0-based template id (admission key).
    pub id: usize,
    pub name: String,
    /// Canonical wire rendering (`Balance: R[sav:$0] R[chk:$0]`).
    pub text: String,
    /// The audited per-template level every instance is admitted at.
    pub level: IsolationLevel,
    pub param_count: usize,
    /// Instances admitted through the fast path so far.
    pub instances: u64,
}

/// An online transaction registry with a continuously maintained
/// optimal robust allocation.
pub struct Registry {
    alloc: Allocator<'static>,
    /// The tenant's template catalog: the admission fast path. Catalog
    /// instances never touch `alloc`.
    catalog: TemplateCatalog,
    /// Fast-path admissions per template, indexed by template id.
    instances: Vec<u64>,
    /// Injection seam; `None` (the default) costs one branch.
    faults: Option<Arc<dyn FaultHook>>,
    /// Reallocation failures (timeouts + injected) so far.
    failed_reallocs: u64,
    /// Did the most recent reallocation attempt fail? Cleared by the
    /// next success.
    degraded: bool,
}

impl Registry {
    /// An empty registry over the given level menu; `threads` workers
    /// serve each reallocation probe.
    pub fn new(levels: LevelSet, threads: usize) -> Self {
        Registry {
            alloc: Allocator::from_owned(TransactionSet::default())
                .with_levels(levels)
                .with_threads(threads),
            catalog: TemplateCatalog::new(
                TemplateCatalog::DEFAULT_COPIES,
                TemplateCatalog::DEFAULT_DOMAIN,
            ),
            instances: Vec::new(),
            faults: None,
            failed_reallocs: 0,
            degraded: false,
        }
    }

    /// Caps how long each reallocation may run before it is abandoned
    /// and rolled back (the degradation path). `None` = unbounded.
    pub fn with_realloc_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.alloc = self.alloc.with_op_timeout(timeout);
        self
    }

    /// Enables or disables the component-sharded engine (on by
    /// default): deltas then recompute only the conflict components the
    /// mutation touches and answer the rest from a fingerprint cache.
    /// Optima are bit-identical either way.
    pub fn with_components(mut self, on: bool) -> Self {
        self.alloc = self.alloc.with_components(on);
        self
    }

    /// Installs a fault-injection hook (chaos testing). Production
    /// registries never call this.
    pub fn with_fault_hook(mut self, hook: Arc<dyn FaultHook>) -> Self {
        self.faults = Some(hook);
        self
    }

    /// Installs a fault hook on an already-built registry — how
    /// recovered tenants (rebuilt fault-free) get the chaos seam armed
    /// before the server starts serving.
    pub fn set_fault_hook(&mut self, hook: Arc<dyn FaultHook>) {
        self.faults = Some(hook);
    }

    /// Attaches a cross-tenant shared component-fingerprint cache:
    /// components this registry solves become pure hits for every other
    /// registry sharing the handle (and vice versa). Purely an
    /// acceleration — optima are bit-identical with or without it.
    pub fn with_shared_cache(mut self, cache: Arc<SharedCompCache>) -> Self {
        self.alloc = self.alloc.with_shared_cache(cache);
        self
    }

    pub fn levels(&self) -> LevelSet {
        self.alloc.levels()
    }

    /// Did the most recent reallocation attempt fail? While `true`, the
    /// served allocation is the last-known-good one and some recent
    /// mutation was rejected.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Total reallocation failures (timeouts and injected faults).
    pub fn failed_reallocs(&self) -> u64 {
        self.failed_reallocs
    }

    /// Number of registered transactions.
    pub fn len(&self) -> usize {
        self.alloc.txns().len()
    }

    pub fn is_empty(&self) -> bool {
        self.alloc.txns().len() == 0
    }

    /// Registers the transaction described by `line` (`T7: R[x] W[y]`)
    /// and incrementally reallocates. Object names resolve against the
    /// names already interned by earlier registrations, so `x` in one
    /// transaction conflicts with `x` in another.
    pub fn register(&mut self, line: &str) -> Result<Realloc, RegistryError> {
        // Parse against a scratch set, then re-intern the object names
        // into the allocator's own table: the allocator deliberately
        // never hands out `&mut TransactionSet` (a raw mutation would
        // bypass delta-state invalidation).
        let mut scratch = TransactionSet::default();
        let parsed = parse_transaction_line(line, &mut scratch).map_err(RegistryError::Parse)?;
        let ops = parsed
            .ops()
            .iter()
            .map(|op| Op {
                kind: op.kind,
                object: self.alloc.intern_object(&scratch.object_name(op.object)),
            })
            .collect();
        let txn = Transaction::new(parsed.id(), ops).expect("parser enforces the op invariants");
        match self.pre_realloc()? {
            ReallocFault::Timeout => {
                let expired = Some(Instant::now());
                let res = self.alloc.add_txn_by(txn, expired);
                self.post_realloc(res)
            }
            _ => {
                let res = self.alloc.add_txn(txn);
                self.post_realloc(res)
            }
        }
    }

    /// Deregisters transaction `id` and incrementally reallocates.
    pub fn deregister(&mut self, id: TxnId) -> Result<Realloc, RegistryError> {
        match self.pre_realloc()? {
            ReallocFault::Timeout => {
                let expired = Some(Instant::now());
                let res = self.alloc.remove_txn_by(id, expired);
                self.post_realloc(res)
            }
            _ => {
                let res = self.alloc.remove_txn(id);
                self.post_realloc(res)
            }
        }
    }

    /// Applies a coalesced batch of mutations with **one** reallocation
    /// (group commit; see [`mvrobustness::Allocator::apply_batch`]).
    ///
    /// Per-event verdicts — parse errors, duplicate/unknown ids, and
    /// (over `{RC, SI}`) unallocatable adds — are bit-identical to
    /// feeding the events one at a time through [`Registry::register`]
    /// / [`Registry::deregister`]; rejected events roll back
    /// individually while the rest of the batch lands atomically.
    ///
    /// Degradation semantics match the single-event path, with the
    /// fault hook consulted **once** per batch (a batch is one
    /// reallocation attempt): a timeout or injected fault rolls back
    /// the *whole* batch, records one failure, and the last-known-good
    /// allocation keeps being served — the caller maps the returned
    /// `Err` onto every event of the batch.
    pub fn apply_events(&mut self, events: &[RegistryEvent]) -> Result<BatchReply, RegistryError> {
        // Parse every register line up front: parse errors are
        // per-event and never reach the engine (exactly as in
        // `register`, where parsing precedes the reallocation).
        let mut outcomes: Vec<Option<Result<TxnId, RegistryError>>> =
            Vec::with_capacity(events.len());
        let mut deltas: Vec<DeltaEvent> = Vec::new();
        // (input index, affected id) of each event that reaches the
        // engine, in engine order.
        let mut slots: Vec<(usize, TxnId)> = Vec::new();
        for (i, ev) in events.iter().enumerate() {
            match ev {
                RegistryEvent::Register(line) => {
                    let mut scratch = TransactionSet::default();
                    match parse_transaction_line(line, &mut scratch) {
                        Err(e) => outcomes.push(Some(Err(RegistryError::Parse(e)))),
                        Ok(parsed) => {
                            let ops = parsed
                                .ops()
                                .iter()
                                .map(|op| Op {
                                    kind: op.kind,
                                    object: self
                                        .alloc
                                        .intern_object(&scratch.object_name(op.object)),
                                })
                                .collect();
                            let txn = Transaction::new(parsed.id(), ops)
                                .expect("parser enforces the op invariants");
                            slots.push((i, txn.id()));
                            deltas.push(DeltaEvent::Add(txn));
                            outcomes.push(None);
                        }
                    }
                }
                RegistryEvent::Deregister(id) => {
                    slots.push((i, *id));
                    deltas.push(DeltaEvent::Remove(*id));
                    outcomes.push(None);
                }
                // Template ops are never parked into the group-commit
                // batcher: the fast path must stay inline (and catalog
                // registration is not an engine delta at all).
                RegistryEvent::TemplateRegister(_) | RegistryEvent::Instantiate { .. } => {
                    unreachable!("template events are never coalesced")
                }
            }
        }
        // One fault-hook consultation and one engine pass per batch.
        let res = match self.pre_realloc()? {
            ReallocFault::Timeout => self.alloc.apply_batch_by(deltas, Some(Instant::now())),
            _ => self.alloc.apply_batch(deltas),
        };
        let batch = match res {
            Ok(b) => {
                self.degraded = false;
                b
            }
            Err(AllocError::Timeout) => return Err(self.note_failure("reallocation timed out")),
            Err(e) => return Err(RegistryError::Alloc(e)),
        };
        for ((i, id), outcome) in slots.into_iter().zip(batch.outcomes) {
            outcomes[i] = Some(outcome.map(|()| id).map_err(RegistryError::Alloc));
        }
        Ok(BatchReply {
            outcomes: outcomes
                .into_iter()
                .map(|o| o.expect("every event slot is filled exactly once"))
                .collect(),
            changed: batch.changed,
            stats: batch.stats,
        })
    }

    /// Consults the fault hook before a reallocation. A forced `Fail`
    /// short-circuits into degradation before the engine even runs; a
    /// forced `Timeout` is returned so the caller runs the engine
    /// against an expired deadline (exercising the rollback path).
    fn pre_realloc(&mut self) -> Result<ReallocFault, RegistryError> {
        let fault = match &self.faults {
            None => ReallocFault::None,
            Some(hook) => hook.on_realloc(),
        };
        if fault == ReallocFault::Fail {
            return Err(self.note_failure("reallocation failed (injected fault)"));
        }
        Ok(fault)
    }

    /// Folds an allocator outcome into the degradation state: successes
    /// clear the degraded flag, timeouts record a failure, and client
    /// errors (duplicate id, unallocatable workload, …) pass through
    /// without touching it — they are the client's problem, not a
    /// service failure.
    fn post_realloc(&mut self, res: Result<Realloc, AllocError>) -> Result<Realloc, RegistryError> {
        match res {
            Ok(realloc) => {
                self.degraded = false;
                Ok(realloc)
            }
            Err(AllocError::Timeout) => Err(self.note_failure("reallocation timed out")),
            Err(e) => Err(RegistryError::Alloc(e)),
        }
    }

    fn note_failure(&mut self, cause: &str) -> RegistryError {
        self.failed_reallocs += 1;
        self.degraded = true;
        RegistryError::Degraded {
            cause: cause.to_string(),
            failures: self.failed_reallocs,
        }
    }

    /// The current optimal level of `id` — an O(1) lookup into the
    /// cached allocation. `None` when `id` is not registered.
    pub fn assign(&mut self, id: TxnId) -> Option<IsolationLevel> {
        self.alloc.current().ok()?.get(id)
    }

    /// The full current optimum.
    pub fn current(&mut self) -> Result<&Allocation, RegistryError> {
        self.alloc.current().map_err(RegistryError::Alloc)
    }

    /// The registered transactions with their current levels, in id
    /// order.
    pub fn list(&mut self) -> Vec<RegisteredTxn> {
        let levels: Vec<(TxnId, IsolationLevel)> = match self.alloc.current() {
            Ok(a) => a.iter().collect(),
            Err(_) => return Vec::new(),
        };
        let txns = self.alloc.txns();
        levels
            .into_iter()
            .map(|(id, level)| RegisteredTxn {
                id,
                text: mvmodel::fmt::transaction(txns, txns.txn(id)),
                level,
            })
            .collect()
    }

    /// Work counters of the most recent reallocation, if any ran.
    pub fn last_stats(&self) -> Option<&EngineStats> {
        self.alloc.last_stats()
    }

    // --- The template admission fast path ---------------------------

    /// Registers a template line (`Balance: R[sav:$0] R[chk:$0]`) in the
    /// tenant's catalog: parse, grow the set, recompute + re-verify the
    /// audited per-template allocation. The slow path, paid once per
    /// template — never per instance.
    pub fn register_template(&mut self, line: &str) -> Result<CatalogEntry, RegistryError> {
        let entry = self
            .catalog
            .register_line(line)
            .map_err(RegistryError::Template)?;
        self.instances.push(0);
        Ok(entry)
    }

    /// Admits one instance of a registered template: a pure O(1) catalog
    /// lookup plus parameter-count validation. Never touches the
    /// allocator — the engine does not know the instance exists. Returns
    /// the audited level and the template's new live-instance count.
    pub fn admit_instance(
        &mut self,
        template_id: usize,
        params: &[u32],
    ) -> Result<(IsolationLevel, u64), RegistryError> {
        let level = self
            .catalog
            .admit(template_id, params)
            .map_err(RegistryError::Template)?;
        self.instances[template_id] += 1;
        Ok((level, self.instances[template_id]))
    }

    /// The catalog contents with live instance counts, in template-id
    /// order.
    pub fn templates(&self) -> Vec<TemplateInfo> {
        (0..self.catalog.len())
            .map(|id| {
                let t = self.catalog.templates().get(id).expect("id < len");
                TemplateInfo {
                    id,
                    name: t.name().to_string(),
                    text: t.render(),
                    level: self.catalog.level(id).expect("id < len"),
                    param_count: t.param_count(),
                    instances: self.instances[id],
                }
            })
            .collect()
    }

    /// Number of registered templates.
    pub fn template_count(&self) -> usize {
        self.catalog.len()
    }

    /// Total fast-path instances admitted across all templates.
    pub fn instance_total(&self) -> u64 {
        self.instances.iter().sum()
    }

    /// Restores per-template instance counts from a snapshot. Must be
    /// called after the snapshot's templates were re-registered in
    /// order; panics on a length mismatch (a corrupt snapshot is
    /// detected before this point).
    pub fn restore_instances(&mut self, counts: &[u64]) {
        assert_eq!(
            counts.len(),
            self.instances.len(),
            "one instance count per registered template"
        );
        self.instances.copy_from_slice(counts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_assign_deregister_round_trip() {
        let mut reg = Registry::new(LevelSet::RcSiSsi, 1);
        assert!(reg.is_empty());
        let r = reg.register("T1: R[x] W[y]").unwrap();
        assert_eq!(r.allocation.to_string(), "T1=RC");
        let r = reg.register("T2: R[y] W[x]").unwrap();
        assert_eq!(r.allocation.to_string(), "T1=SSI T2=SSI");
        // The write-skew partner raised T1: both changes are reported.
        assert_eq!(r.changed.len(), 2);
        assert_eq!(reg.assign(TxnId(1)), Some(IsolationLevel::SSI));
        assert_eq!(reg.assign(TxnId(9)), None);
        assert_eq!(reg.len(), 2);

        let list = reg.list();
        assert_eq!(list.len(), 2);
        assert_eq!(list[0].text, "T1: R[x] W[y] C");
        assert_eq!(list[0].level, IsolationLevel::SSI);

        reg.deregister(TxnId(2)).unwrap();
        assert_eq!(reg.assign(TxnId(1)), Some(IsolationLevel::RC));
    }

    #[test]
    fn shared_object_names_conflict_across_registrations() {
        let mut reg = Registry::new(LevelSet::RcSiSsi, 1);
        reg.register("T1: R[acct] W[acct]").unwrap();
        let r = reg.register("T2: R[acct] W[acct]").unwrap();
        // A lost-update pair: both need SI — proof the second `acct`
        // resolved to the first one's object.
        assert_eq!(r.allocation.to_string(), "T1=SI T2=SI");
    }

    #[test]
    fn structured_errors() {
        let mut reg = Registry::new(LevelSet::RcSiSsi, 1);
        assert!(matches!(
            reg.register("garbage"),
            Err(RegistryError::Parse(_))
        ));
        reg.register("T1: R[x]").unwrap();
        assert!(matches!(
            reg.register("T1: W[x]"),
            Err(RegistryError::Alloc(AllocError::Duplicate(TxnId(1))))
        ));
        assert!(matches!(
            reg.deregister(TxnId(5)),
            Err(RegistryError::Alloc(AllocError::Unknown(TxnId(5))))
        ));
        assert_eq!(reg.len(), 1);
    }

    /// A hook that returns a scripted sequence of realloc faults.
    struct Scripted(std::sync::Mutex<Vec<ReallocFault>>);

    impl FaultHook for Scripted {
        fn on_realloc(&self) -> ReallocFault {
            self.0.lock().unwrap().pop().unwrap_or(ReallocFault::None)
        }
    }

    #[test]
    fn injected_failure_degrades_then_recovers() {
        // Script (popped back-to-front): Fail, Timeout, then clean.
        let script = Scripted(std::sync::Mutex::new(vec![
            ReallocFault::None,
            ReallocFault::Timeout,
            ReallocFault::Fail,
        ]));
        let mut reg =
            Registry::new(LevelSet::RcSiSsi, 1).with_fault_hook(std::sync::Arc::new(script));

        // First registration hits the injected Fail: not applied.
        let err = reg.register("T1: R[x] W[y]").unwrap_err();
        assert!(matches!(err, RegistryError::Degraded { failures: 1, .. }));
        let msg = err.to_string();
        assert!(msg.contains("last-known-good"), "{msg}");
        assert!(reg.degraded());
        assert_eq!(reg.failed_reallocs(), 1);
        assert!(reg.is_empty(), "failed registration must not apply");

        // Second hits the injected Timeout: the engine runs against an
        // expired deadline and rolls back.
        let err = reg.register("T1: R[x] W[y]").unwrap_err();
        assert!(matches!(err, RegistryError::Degraded { failures: 2, .. }));
        assert!(reg.is_empty());

        // Third runs clean: applied, degradation cleared.
        reg.register("T1: R[x] W[y]").unwrap();
        assert!(!reg.degraded());
        assert_eq!(reg.failed_reallocs(), 2, "history is retained");
        assert_eq!(reg.assign(TxnId(1)), Some(IsolationLevel::RC));
    }

    #[test]
    fn degraded_deregister_keeps_the_transaction() {
        let script = Scripted(std::sync::Mutex::new(vec![
            ReallocFault::Timeout,
            ReallocFault::None,
        ]));
        let mut reg =
            Registry::new(LevelSet::RcSiSsi, 1).with_fault_hook(std::sync::Arc::new(script));
        reg.register("T1: R[x] W[y]").unwrap();
        // The timed-out deregister rolls back: T1 is still served.
        let err = reg.deregister(TxnId(1)).unwrap_err();
        assert!(matches!(err, RegistryError::Degraded { .. }));
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.assign(TxnId(1)), Some(IsolationLevel::RC));
        assert!(reg.degraded());
    }

    #[test]
    fn sharded_and_unsharded_registries_agree() {
        // Two independent conflict clusters plus a singleton, grown and
        // shrunk online: the component-sharded registry must serve the
        // same optima as the monolithic one at every step.
        let lines = [
            "T1: R[x] W[y]",
            "T2: R[y] W[x]",
            "T3: R[z] W[z]",
            "T4: R[z] W[z]",
            "T5: R[w]",
        ];
        let mut sharded = Registry::new(LevelSet::RcSiSsi, 1);
        let mut mono = Registry::new(LevelSet::RcSiSsi, 1).with_components(false);
        for line in lines {
            let a = sharded.register(line).unwrap();
            let b = mono.register(line).unwrap();
            assert_eq!(a.allocation, b.allocation, "{line}");
            assert_eq!(a.changed, b.changed, "{line}");
        }
        // Deregistering T4 touches only the z-cluster; the skew pair is
        // answered from the component cache without a single probe.
        let a = sharded.deregister(TxnId(4)).unwrap();
        let b = mono.deregister(TxnId(4)).unwrap();
        assert_eq!(a.allocation, b.allocation);
        assert!(a.stats.components_cached >= 1, "{}", a.stats);
        assert_eq!(b.stats.components_cached, 0, "{}", b.stats);
    }

    #[test]
    fn client_errors_do_not_count_as_degradation() {
        let mut reg = Registry::new(LevelSet::RcSiSsi, 1);
        reg.register("T1: R[x]").unwrap();
        assert!(reg.register("T1: W[x]").is_err());
        assert!(!reg.degraded());
        assert_eq!(reg.failed_reallocs(), 0);
    }

    #[test]
    fn generous_realloc_timeout_is_invisible() {
        let mut reg = Registry::new(LevelSet::RcSiSsi, 1)
            .with_realloc_timeout(Some(std::time::Duration::from_secs(30)));
        reg.register("T1: R[x] W[y]").unwrap();
        reg.register("T2: R[y] W[x]").unwrap();
        assert_eq!(reg.assign(TxnId(1)), Some(IsolationLevel::SSI));
        assert!(!reg.degraded());
    }

    #[test]
    fn batch_verdicts_match_single_event_semantics() {
        let mut reg = Registry::new(LevelSet::RcSiSsi, 1);
        reg.register("T1: R[x] W[y]").unwrap();
        let events = [
            RegistryEvent::Register("T2: R[y] W[x]".to_string()),
            RegistryEvent::Register("garbage".to_string()),
            RegistryEvent::Register("T1: W[x]".to_string()),
            RegistryEvent::Deregister(TxnId(1)),
            RegistryEvent::Deregister(TxnId(9)),
            RegistryEvent::Register("T3: R[x] W[x]".to_string()),
        ];
        let reply = reg.apply_events(&events).unwrap();
        assert_eq!(reply.outcomes.len(), 6);
        assert!(matches!(reply.outcomes[0], Ok(TxnId(2))));
        assert!(matches!(reply.outcomes[1], Err(RegistryError::Parse(_))));
        assert!(matches!(
            reply.outcomes[2],
            Err(RegistryError::Alloc(AllocError::Duplicate(TxnId(1))))
        ));
        assert!(matches!(reply.outcomes[3], Ok(TxnId(1))));
        assert!(matches!(
            reply.outcomes[4],
            Err(RegistryError::Alloc(AllocError::Unknown(TxnId(9))))
        ));
        assert!(matches!(reply.outcomes[5], Ok(TxnId(3))));
        // Survivors: T2 (write-skew partner gone → RC alone) and T3.
        assert_eq!(reg.len(), 2);
        // The parse error never reached the engine: 5 of 6 events did.
        assert_eq!(reply.stats.batch_events, 5);
        // The served optimum equals a from-scratch recomputation — the
        // same invariant the single-event paths maintain.
        let mut fresh = Registry::new(LevelSet::RcSiSsi, 1);
        fresh.register("T2: R[y] W[x]").unwrap();
        fresh.register("T3: R[x] W[x]").unwrap();
        assert_eq!(
            reg.current().unwrap().to_string(),
            fresh.current().unwrap().to_string()
        );
    }

    #[test]
    fn batch_object_names_conflict_with_earlier_registrations() {
        let mut reg = Registry::new(LevelSet::RcSiSsi, 1);
        reg.register("T1: R[acct] W[acct]").unwrap();
        let reply = reg
            .apply_events(&[RegistryEvent::Register("T2: R[acct] W[acct]".to_string())])
            .unwrap();
        assert!(reply.outcomes[0].is_ok());
        // Lost-update pair: both at SI — the batched `acct` resolved to
        // the previously interned object.
        assert_eq!(reg.current().unwrap().to_string(), "T1=SI T2=SI");
    }

    #[test]
    fn injected_fault_degrades_the_whole_batch() {
        // Script (popped back-to-front): Fail, then Timeout, then clean.
        let script = Scripted(std::sync::Mutex::new(vec![
            ReallocFault::None,
            ReallocFault::Timeout,
            ReallocFault::Fail,
        ]));
        let mut reg =
            Registry::new(LevelSet::RcSiSsi, 1).with_fault_hook(std::sync::Arc::new(script));
        let events = [
            RegistryEvent::Register("T1: R[x] W[y]".to_string()),
            RegistryEvent::Register("T2: R[y] W[x]".to_string()),
        ];
        // Injected Fail: one failure recorded for the whole batch,
        // nothing applied.
        let err = reg.apply_events(&events).unwrap_err();
        assert!(matches!(err, RegistryError::Degraded { failures: 1, .. }));
        assert!(reg.degraded());
        assert!(reg.is_empty());
        // Injected Timeout: the engine runs against an expired deadline
        // and rolls the whole batch back.
        let err = reg.apply_events(&events).unwrap_err();
        assert!(matches!(err, RegistryError::Degraded { failures: 2, .. }));
        assert!(reg.is_empty());
        // Clean run: both events land, degradation clears, history stays.
        let reply = reg.apply_events(&events).unwrap();
        assert!(reply.outcomes.iter().all(|o| o.is_ok()));
        assert!(!reg.degraded());
        assert_eq!(reg.failed_reallocs(), 2);
        assert_eq!(reg.assign(TxnId(1)), Some(IsolationLevel::SSI));
    }

    #[test]
    fn rc_si_batch_rejects_unallocatable_adds_individually() {
        let mut reg = Registry::new(LevelSet::RcSi, 1);
        reg.register("T1: R[x] W[y]").unwrap();
        let reply = reg
            .apply_events(&[
                RegistryEvent::Register("T2: R[y] W[x]".to_string()),
                RegistryEvent::Register("T3: R[w]".to_string()),
            ])
            .unwrap();
        assert!(matches!(
            reply.outcomes[0],
            Err(RegistryError::Alloc(AllocError::NotAllocatable(
                LevelSet::RcSi
            )))
        ));
        assert!(reply.outcomes[1].is_ok());
        assert_eq!(reg.len(), 2, "T1 and T3 are served; T2 rolled back");
        assert_eq!(reg.assign(TxnId(2)), None);
    }

    #[test]
    fn template_fast_path_never_touches_the_allocator() {
        let mut reg = Registry::new(LevelSet::RcSiSsi, 1);
        let e = reg
            .register_template("Increment: R[counter:$0] W[counter:$0]")
            .unwrap();
        assert_eq!(e.template_id, 0);
        assert_eq!(e.level, IsolationLevel::SI);
        // Admissions are catalog lookups: the engine's transaction set
        // stays empty no matter how many instances are admitted.
        for c in 0..100u32 {
            let (level, count) = reg.admit_instance(0, &[c]).unwrap();
            assert_eq!(level, IsolationLevel::SI);
            assert_eq!(count, c as u64 + 1);
        }
        assert!(reg.is_empty(), "fast-path instances must not reach alloc");
        assert_eq!(reg.instance_total(), 100);
        assert_eq!(reg.template_count(), 1);
        let info = reg.templates();
        assert_eq!(info.len(), 1);
        assert_eq!(info[0].name, "Increment");
        assert_eq!(info[0].text, "Increment: R[counter:$0] W[counter:$0]");
        assert_eq!(info[0].instances, 100);
        assert_eq!(info[0].param_count, 1);
        // Delta-path registrations still work side by side.
        reg.register("T1: R[x] W[y]").unwrap();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.instance_total(), 100);
    }

    #[test]
    fn template_errors_are_structured() {
        let mut reg = Registry::new(LevelSet::RcSiSsi, 1);
        assert!(matches!(
            reg.register_template("garbage"),
            Err(RegistryError::Template(TemplateError::Parse { .. }))
        ));
        assert!(matches!(
            reg.admit_instance(0, &[1]),
            Err(RegistryError::Template(TemplateError::UnknownTemplate {
                idx: 0,
                len: 0
            }))
        ));
        reg.register_template("Pay: R[a:$0] W[a:$0] W[b:$1]")
            .unwrap();
        assert!(matches!(
            reg.admit_instance(0, &[1]),
            Err(RegistryError::Template(
                TemplateError::MissingArguments { .. }
            ))
        ));
        // Failed admissions don't bump the count.
        assert_eq!(reg.instance_total(), 0);
    }

    #[test]
    fn restored_instance_counts_round_trip() {
        let mut reg = Registry::new(LevelSet::RcSiSsi, 1);
        reg.register_template("A: R[x:$0]").unwrap();
        reg.register_template("B: W[y:$0]").unwrap();
        reg.restore_instances(&[7, 9]);
        assert_eq!(reg.instance_total(), 16);
        let info = reg.templates();
        assert_eq!((info[0].instances, info[1].instances), (7, 9));
    }

    #[test]
    fn rc_si_registry_rejects_unallocatable_and_keeps_serving() {
        let mut reg = Registry::new(LevelSet::RcSi, 1);
        reg.register("T1: R[x] W[y]").unwrap();
        let err = reg.register("T2: R[y] W[x]").unwrap_err();
        assert!(matches!(
            err,
            RegistryError::Alloc(AllocError::NotAllocatable(LevelSet::RcSi))
        ));
        // Rolled back: T1 still served.
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.assign(TxnId(1)), Some(IsolationLevel::RC));
    }
}
