//! Wire codecs: line-delimited JSON and length-prefixed binary frames.
//!
//! Both codecs carry the same [`protocol`](crate::protocol) payloads —
//! JSON values — and a connection picks one at connect time by its
//! first byte:
//!
//! - `{` (or any non-magic byte) ⇒ **line codec**: one JSON object per
//!   `\n`-terminated line, human-typeable, kept for debuggability;
//! - [`FRAME_MAGIC`] (`0xB1`, a UTF-8 continuation byte that can never
//!   start valid JSON text) ⇒ **frame codec**: `magic · u32-le payload
//!   length · payload`, where the payload is a compact tagged binary
//!   encoding of the same JSON value ([`encode_value`] /
//!   [`decode_value`]) — no text parsing or string escaping on the hot
//!   path.
//!
//! Either way a request/reply is one *frame*, and the shared size cap
//! [`MAX_FRAME`] bounds a line's byte length and a binary frame's
//! declared payload length alike. [`FrameBuf`] is the incremental
//! decoder both ends share: push raw socket bytes in, pull complete
//! payloads out, with partial frames surviving arbitrary read splits.

use crate::protocol::MAX_FRAME;
use serde_json::{Map, Value};

/// First byte of every binary frame. `0xB1` is a UTF-8 continuation
/// byte: it can never begin a JSON text, so sniffing is unambiguous.
pub const FRAME_MAGIC: u8 = 0xB1;

/// Bytes of frame header: magic + u32-le payload length.
pub const FRAME_HEADER: usize = 5;

/// Which codec a connection (or client) speaks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CodecKind {
    /// Newline-delimited JSON text.
    Line,
    /// Length-prefixed binary frames.
    Frame,
}

impl CodecKind {
    pub fn as_str(self) -> &'static str {
        match self {
            CodecKind::Line => "line",
            CodecKind::Frame => "binary",
        }
    }
}

impl std::str::FromStr for CodecKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "line" | "json" => Ok(CodecKind::Line),
            "binary" | "frame" => Ok(CodecKind::Frame),
            other => Err(format!("unknown codec `{other}` (expected line or binary)")),
        }
    }
}

/// Server-side accept policy: which codecs incoming connections may
/// negotiate (the default `Auto` sniffs per connection).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CodecAccept {
    /// First-byte sniff per connection: magic ⇒ frames, else lines.
    #[default]
    Auto,
    /// Line-JSON only; binary connections are refused.
    LineOnly,
    /// Binary frames only; line connections are refused.
    FrameOnly,
}

impl CodecAccept {
    pub fn as_str(self) -> &'static str {
        match self {
            CodecAccept::Auto => "auto",
            CodecAccept::LineOnly => "line",
            CodecAccept::FrameOnly => "binary",
        }
    }
}

impl std::str::FromStr for CodecAccept {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "auto" => Ok(CodecAccept::Auto),
            "line" | "json" => Ok(CodecAccept::LineOnly),
            "binary" | "frame" => Ok(CodecAccept::FrameOnly),
            other => Err(format!(
                "unknown codec policy `{other}` (expected auto, line or binary)"
            )),
        }
    }
}

/// One complete inbound frame, already split per codec.
#[derive(Clone, PartialEq, Debug)]
pub enum Payload {
    /// A line-codec frame: the line text, `\r\n`/`\n` stripped.
    Line(String),
    /// A binary-codec frame: the decoded payload value.
    Frame(Value),
}

/// Why a byte stream stopped decoding. After an error the [`FrameBuf`]
/// is poisoned — the transport replies (or not) and closes.
#[derive(Clone, PartialEq, Debug)]
pub enum FrameError {
    /// A line or declared frame payload exceeds [`MAX_FRAME`].
    Oversized { len: usize, kind: CodecKind },
    /// Mid-stream binary frame not starting with [`FRAME_MAGIC`].
    BadMagic(u8),
    /// Binary payload bytes that don't decode to a value.
    BadPayload(String),
    /// Line bytes that aren't UTF-8.
    BadUtf8,
    /// The sniffed codec is outside this endpoint's accept policy.
    Refused(CodecKind),
}

impl FrameError {
    /// The structured-error message shipped back on the wire. Both
    /// oversized variants say "exceeds", matching what the fuzzer and
    /// docs promise.
    pub fn message(&self) -> String {
        match self {
            FrameError::Oversized {
                len,
                kind: CodecKind::Line,
            } => format!("request line exceeds {MAX_FRAME} bytes (got {len})"),
            FrameError::Oversized { len, .. } => {
                format!("request frame exceeds {MAX_FRAME} bytes (declared {len})")
            }
            FrameError::BadMagic(b) => {
                format!("expected frame magic 0x{FRAME_MAGIC:02x}, got 0x{b:02x}")
            }
            FrameError::BadPayload(e) => format!("invalid binary request payload: {e}"),
            FrameError::BadUtf8 => "request line is not valid UTF-8".to_string(),
            FrameError::Refused(got) => {
                format!("this endpoint does not accept the {} codec", got.as_str())
            }
        }
    }
}

/// Incremental dual-codec frame decoder.
///
/// Push raw bytes with [`push`](FrameBuf::push); pull complete
/// payloads with [`next_payload`](FrameBuf::next_payload). The first
/// meaningful byte sniffs the codec (unless pinned with
/// [`with_kind`](FrameBuf::with_kind)); blank lines between line
/// frames are skipped. `Ok(None)` means "need more bytes" — partial
/// frames persist across pushes, so arbitrary read splits are fine.
#[derive(Debug)]
pub struct FrameBuf {
    accept: CodecAccept,
    kind: Option<CodecKind>,
    buf: Vec<u8>,
    pos: usize,
}

impl FrameBuf {
    /// A decoder that sniffs (subject to `accept`). Server side.
    pub fn new(accept: CodecAccept) -> Self {
        FrameBuf {
            accept,
            kind: None,
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// A decoder pinned to a known codec. Client side (the client
    /// picked the codec, so replies arrive on the same one).
    pub fn with_kind(kind: CodecKind) -> Self {
        FrameBuf {
            accept: CodecAccept::Auto,
            kind: Some(kind),
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// Appends freshly read socket bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// The codec this stream resolved to, once sniffed.
    pub fn kind(&self) -> Option<CodecKind> {
        self.kind
    }

    /// Bytes buffered but not yet consumed (the partial-frame tail).
    pub fn pending_len(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when an incomplete frame is sitting in the buffer — the
    /// transport's stall-timeout clock keys off this.
    pub fn has_partial(&self) -> bool {
        self.pending_len() > 0
    }

    fn compact(&mut self) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > (1 << 16) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    fn sniff(&mut self, first: u8) -> Result<CodecKind, FrameError> {
        let kind = if first == FRAME_MAGIC {
            CodecKind::Frame
        } else {
            CodecKind::Line
        };
        match (self.accept, kind) {
            (CodecAccept::LineOnly, CodecKind::Frame) => Err(FrameError::Refused(kind)),
            (CodecAccept::FrameOnly, CodecKind::Line) => Err(FrameError::Refused(kind)),
            _ => {
                self.kind = Some(kind);
                Ok(kind)
            }
        }
    }

    /// Decodes the next complete payload, or `Ok(None)` if more bytes
    /// are needed. Errors poison the stream: the caller must stop
    /// decoding and close after (optionally) replying.
    pub fn next_payload(&mut self) -> Result<Option<Payload>, FrameError> {
        loop {
            // Between line frames (and before sniffing), skip bare
            // newlines so `\r\n` and blank keep-alive lines are free.
            if self.kind != Some(CodecKind::Frame) {
                while self.pos < self.buf.len()
                    && (self.buf[self.pos] == b'\n' || self.buf[self.pos] == b'\r')
                {
                    self.pos += 1;
                }
            }
            self.compact();
            if self.pos >= self.buf.len() {
                return Ok(None);
            }
            let kind = match self.kind {
                Some(k) => k,
                None => self.sniff(self.buf[self.pos])?,
            };
            match kind {
                CodecKind::Line => match self.next_line()? {
                    // Whitespace-only line: skip and keep scanning.
                    Some(line) if line.trim().is_empty() => continue,
                    other => return Ok(other.map(Payload::Line)),
                },
                CodecKind::Frame => return self.next_frame(),
            }
        }
    }

    fn next_line(&mut self) -> Result<Option<String>, FrameError> {
        let tail = &self.buf[self.pos..];
        match tail.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                if nl > MAX_FRAME {
                    return Err(FrameError::Oversized {
                        len: nl,
                        kind: CodecKind::Line,
                    });
                }
                let mut raw = &tail[..nl];
                if raw.last() == Some(&b'\r') {
                    raw = &raw[..raw.len() - 1];
                }
                let line = std::str::from_utf8(raw)
                    .map_err(|_| FrameError::BadUtf8)?
                    .to_string();
                self.pos += nl + 1;
                Ok(Some(line))
            }
            None if tail.len() > MAX_FRAME => Err(FrameError::Oversized {
                len: tail.len(),
                kind: CodecKind::Line,
            }),
            None => Ok(None),
        }
    }

    fn next_frame(&mut self) -> Result<Option<Payload>, FrameError> {
        let tail = &self.buf[self.pos..];
        if tail[0] != FRAME_MAGIC {
            return Err(FrameError::BadMagic(tail[0]));
        }
        if tail.len() < FRAME_HEADER {
            return Ok(None);
        }
        let plen = u32::from_le_bytes([tail[1], tail[2], tail[3], tail[4]]) as usize;
        if plen > MAX_FRAME {
            return Err(FrameError::Oversized {
                len: plen,
                kind: CodecKind::Frame,
            });
        }
        if tail.len() < FRAME_HEADER + plen {
            return Ok(None);
        }
        let payload = &tail[FRAME_HEADER..FRAME_HEADER + plen];
        let value = decode_value(payload).map_err(FrameError::BadPayload)?;
        self.pos += FRAME_HEADER + plen;
        Ok(Some(Payload::Frame(value)))
    }

    /// How much more inbound data the peer is known to be mid-way
    /// through sending when `err` was raised. Closing the socket while
    /// that data is still in flight turns the close into an RST that
    /// can destroy the structured error reply before the peer reads
    /// it; the transport swallows the remainder first so the close is
    /// a clean FIN (bounded by the caller's stall timeout).
    pub fn drain_plan(&self, err: &FrameError) -> DrainPlan {
        match err {
            FrameError::Oversized {
                kind: CodecKind::Line,
                ..
            } => {
                if self.buf[self.pos..].contains(&b'\n') {
                    DrainPlan::UntilEof
                } else {
                    DrainPlan::UntilNewline
                }
            }
            FrameError::Oversized {
                kind: CodecKind::Frame,
                len,
            } => DrainPlan::Bytes((FRAME_HEADER + len).saturating_sub(self.pending_len())),
            // Every framing error closes the connection, and the peer
            // may still be mid-pipeline — a bad line can sit between
            // two valid ones already in flight. Even when the codec's
            // own framing is re-synchronized, closing with those bytes
            // unread RSTs the socket and can destroy the structured
            // error reply before the peer reads it: wait for the
            // peer's EOF (bounded by the caller's deadline) instead.
            _ => DrainPlan::UntilEof,
        }
    }

    /// Consumes the final unterminated line at EOF (line codec only —
    /// a binary frame cut short by EOF is a clean drop, there is
    /// nothing safe to parse from it).
    pub fn eof_residual(&mut self) -> Result<Option<Payload>, FrameError> {
        if self.kind == Some(CodecKind::Frame) {
            return Ok(None);
        }
        let tail = &self.buf[self.pos..];
        if tail.is_empty() {
            return Ok(None);
        }
        if self.kind.is_none() {
            // Never sniffed: bytes arrived but no frame completed.
            self.sniff(tail[0])?;
            if self.kind == Some(CodecKind::Frame) {
                return Ok(None);
            }
        }
        let tail = &self.buf[self.pos..];
        if tail.len() > MAX_FRAME {
            return Err(FrameError::Oversized {
                len: tail.len(),
                kind: CodecKind::Line,
            });
        }
        let line = std::str::from_utf8(tail)
            .map_err(|_| FrameError::BadUtf8)?
            .trim()
            .to_string();
        self.pos = self.buf.len();
        self.compact();
        if line.is_empty() {
            Ok(None)
        } else {
            Ok(Some(Payload::Line(line)))
        }
    }
}

/// What [`FrameBuf::drain_plan`] tells the transport to swallow
/// before closing an errored connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DrainPlan {
    /// Nothing known to be in flight — close now.
    None,
    /// An oversized line is still streaming in: discard until its
    /// terminating `\n` (or EOF / stall timeout).
    UntilNewline,
    /// An oversized frame declared this many still-unread payload
    /// bytes: discard exactly that many (or EOF / stall timeout).
    Bytes(usize),
    /// A poisoned frame stream: discard everything until the peer's
    /// EOF (or the stall timeout).
    UntilEof,
}

/// Encodes one outbound payload (`value`) in the given codec,
/// appending to `out`: JSON text plus `\n` for lines, a binary frame
/// for frames.
pub fn encode_payload(kind: CodecKind, value: &Value, out: &mut Vec<u8>) {
    match kind {
        CodecKind::Line => {
            let text = serde_json::to_string(value).expect("serializing a Value cannot fail");
            out.extend_from_slice(text.as_bytes());
            out.push(b'\n');
        }
        CodecKind::Frame => {
            let header_at = out.len();
            out.push(FRAME_MAGIC);
            out.extend_from_slice(&[0; 4]);
            let body_at = out.len();
            encode_value(value, out);
            let plen = (out.len() - body_at) as u32;
            out[header_at + 1..header_at + 5].copy_from_slice(&plen.to_le_bytes());
        }
    }
}

/// Wraps raw payload bytes in a frame header without value-encoding
/// them. Test/fuzz helper: lets probes construct frames with exact
/// payload lengths (including lengths no real value encodes to).
pub fn encode_raw_frame(payload: &[u8], out: &mut Vec<u8>) {
    out.push(FRAME_MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
}

// Binary value encoding: one tag byte, then tag-specific bytes. All
// integers little-endian; counts and string lengths are u32.
const TAG_NULL: u8 = 0x00;
const TAG_FALSE: u8 = 0x01;
const TAG_TRUE: u8 = 0x02;
const TAG_POS_INT: u8 = 0x03;
const TAG_NEG_INT: u8 = 0x04;
const TAG_FLOAT: u8 = 0x05;
const TAG_STR: u8 = 0x06;
const TAG_ARRAY: u8 = 0x07;
const TAG_OBJECT: u8 = 0x08;

/// Nesting bound for [`decode_value`]: hostile payloads can't recurse
/// the stack away. Far above anything the protocol produces.
const MAX_DEPTH: u32 = 96;

/// Appends the compact binary encoding of `value` to `out`.
pub fn encode_value(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::Number(n) => {
            if let Some(u) = n.as_u64() {
                out.push(TAG_POS_INT);
                out.extend_from_slice(&u.to_le_bytes());
            } else if let Some(i) = n.as_i64() {
                out.push(TAG_NEG_INT);
                out.extend_from_slice(&i.to_le_bytes());
            } else {
                out.push(TAG_FLOAT);
                out.extend_from_slice(&n.as_f64().to_le_bytes());
            }
        }
        Value::String(s) => {
            out.push(TAG_STR);
            encode_str(s, out);
        }
        Value::Array(items) => {
            out.push(TAG_ARRAY);
            out.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Object(map) => {
            out.push(TAG_OBJECT);
            out.extend_from_slice(&(map.len() as u32).to_le_bytes());
            for (k, v) in map.iter() {
                encode_str(k, out);
                encode_value(v, out);
            }
        }
    }
}

fn encode_str(s: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Decodes one value from `bytes`, requiring the payload to be exactly
/// one value (trailing bytes are an error — a frame carries one value).
pub fn decode_value(bytes: &[u8]) -> Result<Value, String> {
    let mut cur = Cursor { bytes, at: 0 };
    let v = cur.value(0)?;
    if cur.at != bytes.len() {
        return Err(format!(
            "{} trailing bytes after value",
            bytes.len() - cur.at
        ));
    }
    Ok(v)
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], String> {
        if self.bytes.len() - self.at < n {
            return Err(format!(
                "payload truncated: wanted {n} bytes at offset {}, have {}",
                self.at,
                self.bytes.len() - self.at
            ));
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn string(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let raw = self.take(len)?;
        std::str::from_utf8(raw)
            .map(str::to_string)
            .map_err(|_| "string is not valid UTF-8".to_string())
    }

    fn value(&mut self, depth: u32) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        let tag = self.take(1)?[0];
        match tag {
            TAG_NULL => Ok(Value::Null),
            TAG_FALSE => Ok(Value::Bool(false)),
            TAG_TRUE => Ok(Value::Bool(true)),
            TAG_POS_INT => {
                let b = self.take(8)?;
                Ok(Value::from(u64::from_le_bytes(b.try_into().unwrap())))
            }
            TAG_NEG_INT => {
                let b = self.take(8)?;
                Ok(Value::from(i64::from_le_bytes(b.try_into().unwrap())))
            }
            TAG_FLOAT => {
                let b = self.take(8)?;
                Ok(Value::from(f64::from_le_bytes(b.try_into().unwrap())))
            }
            TAG_STR => Ok(Value::String(self.string()?)),
            TAG_ARRAY => {
                let count = self.u32()? as usize;
                // Each element costs ≥ 1 byte; an honest count never
                // exceeds what's left, so a hostile one can't make us
                // pre-allocate unbounded memory.
                let remaining = self.bytes.len() - self.at;
                if count > remaining {
                    return Err(format!("array count {count} exceeds remaining bytes"));
                }
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    items.push(self.value(depth + 1)?);
                }
                Ok(Value::Array(items))
            }
            TAG_OBJECT => {
                let count = self.u32()? as usize;
                let remaining = self.bytes.len() - self.at;
                // Each entry costs ≥ 5 bytes (key length + value tag).
                if count > remaining / 5 + 1 {
                    return Err(format!("object count {count} exceeds remaining bytes"));
                }
                let mut map = Map::new();
                for _ in 0..count {
                    let k = self.string()?;
                    let v = self.value(depth + 1)?;
                    map.insert(k, v);
                }
                Ok(Value::Object(map))
            }
            other => Err(format!("unknown value tag 0x{other:02x}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn roundtrip(v: &Value) -> Value {
        let mut buf = Vec::new();
        encode_value(v, &mut buf);
        decode_value(&buf).expect("decode")
    }

    #[test]
    fn scalar_values_round_trip() {
        for v in [
            Value::Null,
            json!(true),
            json!(false),
            json!(0u64),
            json!(u64::MAX),
            json!(-1i64),
            json!(i64::MIN),
            json!(1.5f64),
            json!(""),
            json!("päyload → ünïcode"),
        ] {
            assert_eq!(roundtrip(&v), v, "{v:?}");
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let v: Value = serde_json::from_str(
            r#"{"op":"register","txn":"T1: R[x] W[y]","req_id":77,
                "nested":{"a":[1,2,{"deep":null}],"b":[true,false]},
                "empty_arr":[],"empty_obj":{}}"#,
        )
        .expect("literal parses");
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn framebuf_sniffs_line_then_stays_line() {
        let mut fb = FrameBuf::new(CodecAccept::Auto);
        fb.push(b"{\"op\":\"ping\"}\n\n{\"op\":\"stats\"}\n");
        assert_eq!(
            fb.next_payload().unwrap(),
            Some(Payload::Line("{\"op\":\"ping\"}".to_string()))
        );
        assert_eq!(fb.kind(), Some(CodecKind::Line));
        assert_eq!(
            fb.next_payload().unwrap(),
            Some(Payload::Line("{\"op\":\"stats\"}".to_string()))
        );
        assert_eq!(fb.next_payload().unwrap(), None);
        assert!(!fb.has_partial());
    }

    #[test]
    fn framebuf_decodes_frames_split_across_pushes() {
        let v = json!({"op": "register", "txn": "T9: W[q]"});
        let mut wire = Vec::new();
        encode_payload(CodecKind::Frame, &v, &mut wire);
        let mut fb = FrameBuf::new(CodecAccept::Auto);
        for b in &wire[..wire.len() - 1] {
            fb.push(&[*b]);
            assert_eq!(fb.next_payload().unwrap(), None, "complete frame too early");
            assert!(fb.has_partial());
        }
        fb.push(&wire[wire.len() - 1..]);
        assert_eq!(fb.next_payload().unwrap(), Some(Payload::Frame(v)));
        assert!(!fb.has_partial());
    }

    #[test]
    fn oversized_declared_length_errors_before_payload_arrives() {
        let mut fb = FrameBuf::new(CodecAccept::Auto);
        let mut header = vec![FRAME_MAGIC];
        header.extend_from_slice(&((MAX_FRAME as u32) + 1).to_le_bytes());
        fb.push(&header);
        match fb.next_payload() {
            Err(FrameError::Oversized { len, .. }) => assert_eq!(len, MAX_FRAME + 1),
            other => panic!("expected oversized, got {other:?}"),
        }
    }

    #[test]
    fn oversized_unterminated_line_errors() {
        let mut fb = FrameBuf::new(CodecAccept::Auto);
        fb.push(&vec![b'a'; MAX_FRAME + 1]);
        assert!(matches!(
            fb.next_payload(),
            Err(FrameError::Oversized { .. })
        ));
    }

    #[test]
    fn accept_policy_refuses_the_other_codec() {
        let mut fb = FrameBuf::new(CodecAccept::FrameOnly);
        fb.push(b"{\"op\":\"ping\"}\n");
        assert!(matches!(
            fb.next_payload(),
            Err(FrameError::Refused(CodecKind::Line))
        ));
        let mut fb = FrameBuf::new(CodecAccept::LineOnly);
        fb.push(&[FRAME_MAGIC, 1, 0, 0, 0, TAG_NULL]);
        assert!(matches!(
            fb.next_payload(),
            Err(FrameError::Refused(CodecKind::Frame))
        ));
    }

    #[test]
    fn eof_residual_parses_final_unterminated_line() {
        let mut fb = FrameBuf::new(CodecAccept::Auto);
        fb.push(b"{\"op\":\"ping\"}");
        assert_eq!(fb.next_payload().unwrap(), None);
        assert_eq!(
            fb.eof_residual().unwrap(),
            Some(Payload::Line("{\"op\":\"ping\"}".to_string()))
        );
        // A binary frame cut by EOF is silent.
        let v = json!({"op":"ping"});
        let mut wire = Vec::new();
        encode_payload(CodecKind::Frame, &v, &mut wire);
        let mut fb = FrameBuf::new(CodecAccept::Auto);
        fb.push(&wire[..wire.len() - 2]);
        assert_eq!(fb.next_payload().unwrap(), None);
        assert_eq!(fb.eof_residual().unwrap(), None);
    }

    #[test]
    fn bad_magic_mid_stream_errors() {
        let v = json!({"op":"ping"});
        let mut wire = Vec::new();
        encode_payload(CodecKind::Frame, &v, &mut wire);
        wire.push(0x42); // next "frame" starts with junk
        let mut fb = FrameBuf::new(CodecAccept::Auto);
        fb.push(&wire);
        assert!(matches!(fb.next_payload(), Ok(Some(Payload::Frame(_)))));
        assert!(matches!(fb.next_payload(), Err(FrameError::BadMagic(0x42))));
    }

    #[test]
    fn hostile_counts_and_tags_error_cleanly() {
        // Declared array count far beyond the payload.
        let mut payload = vec![TAG_ARRAY];
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_value(&payload).is_err());
        // Unknown tag.
        assert!(decode_value(&[0x77]).is_err());
        // Trailing bytes.
        assert!(decode_value(&[TAG_NULL, TAG_NULL]).is_err());
        // Empty payload.
        assert!(decode_value(&[]).is_err());
        // Deep nesting stops at the depth bound instead of overflowing.
        let mut deep = Vec::new();
        for _ in 0..10_000 {
            deep.push(TAG_ARRAY);
            deep.extend_from_slice(&1u32.to_le_bytes());
        }
        deep.push(TAG_NULL);
        assert!(decode_value(&deep).is_err());
    }
}
