//! The durability subsystem: a binary write-ahead event log plus
//! periodic snapshots, giving the multi-tenant registry crash recovery.
//!
//! # Log format
//!
//! The WAL (`wal.log`) is a sequence of *records*, each framed exactly
//! like a wire frame ([`crate::codec`]) with a trailing checksum:
//!
//! ```text
//! 0xB1 · u32-le payload length · payload (compact value encoding) · u32-le CRC32(payload)
//! ```
//!
//! The payload is the record as a JSON value — `seq` (global,
//! monotone), `tenant`, the mutation (`op` + `txn`/`txn_id`), the
//! optional idempotency `req_id`, and the **full reply** the client
//! received. Logging the reply is what makes recovery client-exact:
//! the replay cache is reseeded with the original replies, so a retry
//! that arrives after a crash still replays bit-identically instead of
//! re-executing. Only *applied* mutations are logged (failed ones left
//! no state behind), and a record is appended under its tenant's
//! registry lock, so per-tenant log order always equals apply order.
//!
//! A torn tail — a record cut mid-write by a crash — is detected by an
//! incomplete frame or a CRC mismatch; recovery stops at the last good
//! record and truncates the file there (standard WAL discipline; cf.
//! the `commitlog` crates of production event-sourced stores).
//!
//! # Snapshots
//!
//! Every `snapshot_every` appended records the server captures a
//! consistent snapshot (all tenant registries locked, see
//! `server::maybe_snapshot`): per-tenant transaction lines and the
//! served allocation, the replay cache, and the shared component
//! fingerprint cache. The snapshot is one framed+checksummed value
//! written to `snap-<seq>.tmp`, fsynced, renamed to `snap-<seq>.snap`
//! (write-temp-then-rename: a crash mid-write leaves the previous
//! generation intact), then the directory is fsynced, older
//! generations are deleted and the WAL is truncated. Records carry
//! global seq numbers precisely so a crash *between* rename and
//! truncate is harmless: recovery skips WAL records with
//! `seq ≤ snapshot seq`.
//!
//! # Recovery
//!
//! [`Store::open`] loads the newest snapshot that validates (older
//! generations are fallbacks), then replays the WAL tail. The caller
//! rebuilds registries by re-registering the snapshot lines —
//! re-solving, not trusting — and checks the **recovery invariant**:
//! the recomputed allocation must equal the snapshotted one
//! (uniqueness of the optimum, Proposition 4.2, makes this exact).
//! The shared fingerprint cache is restored *first*, so the
//! re-registration is answered almost entirely from cache.
//!
//! # Fsync policy
//!
//! [`Durability`] picks when `fsync` runs: `none` never (OS page cache
//! only), `event` after every record, `batch` once per group-commit
//! drain ([`Store::commit`]) — one fsync covers a whole coalesced
//! batch, the same alignment group commit gives the engine.

use crate::codec::{decode_value, encode_value, FRAME_HEADER, FRAME_MAGIC};
use crate::registry::RegistryEvent;
use mvmodel::TxnId;
use serde_json::{json, Value};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// When the WAL is fsynced.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Durability {
    /// Never fsync: appends reach the OS page cache only. Survives
    /// process crashes, not host crashes.
    None,
    /// One fsync per commit point — per group-commit drain when
    /// batching, per mutation otherwise.
    #[default]
    Batch,
    /// Fsync after every appended record, even inside a drain.
    Event,
}

impl Durability {
    pub fn as_str(self) -> &'static str {
        match self {
            Durability::None => "none",
            Durability::Batch => "batch",
            Durability::Event => "event",
        }
    }
}

impl std::fmt::Display for Durability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Durability {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "none" => Ok(Durability::None),
            "batch" => Ok(Durability::Batch),
            "event" => Ok(Durability::Event),
            other => Err(format!(
                "unknown durability `{other}` (expected none, batch or event)"
            )),
        }
    }
}

/// CRC-32 (IEEE 802.3, the zlib polynomial), table-driven.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// The checksum guarding every stored frame.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// One durable mutation: what was applied, where, and what the client
/// was told.
#[derive(Clone, Debug, PartialEq)]
pub struct WalRecord {
    /// Global, monotone sequence number (never reset by truncation).
    pub seq: u64,
    pub tenant: String,
    pub event: RegistryEvent,
    /// The idempotency key the client sent, if any.
    pub req_id: Option<u64>,
    /// The exact reply the client received — reseeds the replay cache.
    pub reply: Value,
}

impl WalRecord {
    fn to_value(&self) -> Value {
        let mut v = json!({
            "seq": self.seq,
            "tenant": self.tenant.as_str(),
        });
        match &self.event {
            RegistryEvent::Register(line) => {
                v["op"] = Value::from("register");
                v["txn"] = Value::from(line.as_str());
            }
            RegistryEvent::Deregister(id) => {
                v["op"] = Value::from("deregister");
                v["txn_id"] = Value::from(id.0);
            }
            RegistryEvent::TemplateRegister(line) => {
                v["op"] = Value::from("template_register");
                v["template"] = Value::from(line.as_str());
            }
            RegistryEvent::Instantiate {
                template_id,
                params,
            } => {
                v["op"] = Value::from("instantiate");
                v["template_id"] = Value::from(*template_id as u64);
                v["params"] = Value::Array(params.iter().map(|&p| Value::from(p as u64)).collect());
            }
        }
        if let Some(rid) = self.req_id {
            v["req_id"] = Value::from(rid);
        }
        v["reply"] = self.reply.clone();
        v
    }

    fn from_value(v: &Value) -> Result<WalRecord, String> {
        let seq = v["seq"].as_u64().ok_or("record missing `seq`")?;
        let tenant = v["tenant"]
            .as_str()
            .ok_or("record missing `tenant`")?
            .to_string();
        let event = match v["op"].as_str() {
            Some("register") => RegistryEvent::Register(
                v["txn"]
                    .as_str()
                    .ok_or("register record missing `txn`")?
                    .to_string(),
            ),
            Some("deregister") => {
                let raw = v["txn_id"]
                    .as_u64()
                    .ok_or("deregister record missing `txn_id`")?;
                let id = u32::try_from(raw).map_err(|_| "txn_id out of range".to_string())?;
                RegistryEvent::Deregister(TxnId(id))
            }
            Some("template_register") => RegistryEvent::TemplateRegister(
                v["template"]
                    .as_str()
                    .ok_or("template_register record missing `template`")?
                    .to_string(),
            ),
            Some("instantiate") => {
                let template_id = v["template_id"]
                    .as_u64()
                    .ok_or("instantiate record missing `template_id`")?
                    as usize;
                let params = v["params"]
                    .as_array()
                    .ok_or("instantiate record missing `params`")?
                    .iter()
                    .map(|p| {
                        p.as_u64()
                            .and_then(|raw| u32::try_from(raw).ok())
                            .ok_or("bad param in instantiate record")
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                RegistryEvent::Instantiate {
                    template_id,
                    params,
                }
            }
            other => return Err(format!("unknown record op {other:?}")),
        };
        let req_id = match &v["req_id"] {
            Value::Null => None,
            other => Some(other.as_u64().ok_or("bad `req_id` in record")?),
        };
        Ok(WalRecord {
            seq,
            tenant,
            event,
            req_id,
            reply: v["reply"].clone(),
        })
    }
}

/// One tenant's state inside a snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantSnapshot {
    pub name: String,
    /// Canonical transaction lines, registration order — re-registering
    /// them rebuilds the registry.
    pub lines: Vec<String>,
    /// The allocation served at snapshot time, `(txn id, level)` — the
    /// recovery invariant: re-solving the lines must reproduce exactly
    /// this (Proposition 4.2).
    pub alloc: Vec<(u32, String)>,
    /// Catalog templates `(rendered line, audited level)`, registration
    /// order — re-registering them in order rebuilds the catalog, and
    /// the recomputed level must equal the stored one (the catalog
    /// recovery invariant).
    pub templates: Vec<(String, String)>,
    /// Fast-path instance counts, indexed by template id.
    pub instances: Vec<u64>,
}

/// A cached component entry as persisted: `None` = unallocatable,
/// `Some` = the member levels of the unique optimum.
pub type StoredCompEntry = Option<Vec<(u32, String)>>;

/// Everything a snapshot captures.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SnapshotState {
    /// Tenants, ascending by name.
    pub tenants: Vec<TenantSnapshot>,
    /// Replay-cache entries: `(tenant, req_id, reply)`, insertion order.
    pub replays: Vec<(String, u64, Value)>,
    /// Shared fingerprint-cache entries under their salted keys.
    pub cache: Vec<(u128, StoredCompEntry)>,
}

impl SnapshotState {
    fn to_value(&self, seq: u64) -> Value {
        let tenants: Vec<Value> = self
            .tenants
            .iter()
            .map(|t| {
                json!({
                    "name": t.name.as_str(),
                    "lines": t.lines.clone(),
                    "alloc": t.alloc.iter()
                        .map(|(id, lvl)| json!([*id, lvl.as_str()]))
                        .collect::<Vec<_>>(),
                    "templates": t.templates.iter()
                        .map(|(line, lvl)| json!([line.as_str(), lvl.as_str()]))
                        .collect::<Vec<_>>(),
                    "instances": t.instances.clone(),
                })
            })
            .collect();
        let replays: Vec<Value> = self
            .replays
            .iter()
            .map(|(tenant, rid, reply)| json!([tenant.as_str(), *rid, reply.clone()]))
            .collect();
        let cache: Vec<Value> = self
            .cache
            .iter()
            .map(|(key, entry)| {
                let stored = match entry {
                    None => Value::Null,
                    Some(lvls) => Value::Array(
                        lvls.iter()
                            .map(|(id, lvl)| json!([*id, lvl.as_str()]))
                            .collect(),
                    ),
                };
                json!([(*key >> 64) as u64, *key as u64, stored])
            })
            .collect();
        json!({
            "version": 1,
            "seq": seq,
            "tenants": tenants,
            "replays": replays,
            "cache": cache,
        })
    }

    fn from_value(v: &Value) -> Result<(SnapshotState, u64), String> {
        if v["version"].as_u64() != Some(1) {
            return Err(format!("unknown snapshot version {:?}", v["version"]));
        }
        let seq = v["seq"].as_u64().ok_or("snapshot missing `seq`")?;
        let mut state = SnapshotState::default();
        for t in v["tenants"]
            .as_array()
            .ok_or("snapshot missing `tenants`")?
        {
            let name = t["name"].as_str().ok_or("tenant missing `name`")?;
            let lines = t["lines"]
                .as_array()
                .ok_or("tenant missing `lines`")?
                .iter()
                .map(|l| l.as_str().map(str::to_string).ok_or("non-string line"))
                .collect::<Result<Vec<_>, _>>()?;
            let alloc = t["alloc"]
                .as_array()
                .ok_or("tenant missing `alloc`")?
                .iter()
                .map(parse_id_level)
                .collect::<Result<Vec<_>, _>>()?;
            // Catalog fields are optional: snapshots written before the
            // template fast path existed decode as empty catalogs.
            let templates = match &t["templates"] {
                Value::Null => Vec::new(),
                Value::Array(items) => items
                    .iter()
                    .map(|pair| {
                        let line = pair[0].as_str().ok_or("template missing line")?;
                        let lvl = pair[1].as_str().ok_or("template missing level")?;
                        Ok::<_, &'static str>((line.to_string(), lvl.to_string()))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                _ => return Err("malformed `templates` in tenant".to_string()),
            };
            let instances = match &t["instances"] {
                Value::Null => vec![0; templates.len()],
                Value::Array(items) => items
                    .iter()
                    .map(|c| c.as_u64().ok_or("bad instance count"))
                    .collect::<Result<Vec<_>, _>>()?,
                _ => return Err("malformed `instances` in tenant".to_string()),
            };
            if instances.len() != templates.len() {
                return Err("tenant `instances` length disagrees with `templates`".to_string());
            }
            state.tenants.push(TenantSnapshot {
                name: name.to_string(),
                lines,
                alloc,
                templates,
                instances,
            });
        }
        for r in v["replays"]
            .as_array()
            .ok_or("snapshot missing `replays`")?
        {
            let tenant = r[0].as_str().ok_or("replay missing tenant")?;
            let rid = r[1].as_u64().ok_or("replay missing req_id")?;
            state.replays.push((tenant.to_string(), rid, r[2].clone()));
        }
        for c in v["cache"].as_array().ok_or("snapshot missing `cache`")? {
            let hi = c[0].as_u64().ok_or("cache key missing high half")?;
            let lo = c[1].as_u64().ok_or("cache key missing low half")?;
            let entry = match &c[2] {
                Value::Null => None,
                Value::Array(lvls) => Some(
                    lvls.iter()
                        .map(parse_id_level)
                        .collect::<Result<Vec<_>, _>>()?,
                ),
                _ => return Err("malformed cache entry".to_string()),
            };
            state
                .cache
                .push(((u128::from(hi) << 64) | u128::from(lo), entry));
        }
        Ok((state, seq))
    }
}

fn parse_id_level(pair: &Value) -> Result<(u32, String), &'static str> {
    let id = pair[0].as_u64().ok_or("missing txn id")?;
    let id = u32::try_from(id).map_err(|_| "txn id out of range")?;
    let lvl = pair[1].as_str().ok_or("missing level")?;
    Ok((id, lvl.to_string()))
}

/// What [`Store::open`] reconstructed from disk.
#[derive(Debug, Default)]
pub struct Recovered {
    /// The newest valid snapshot, if any.
    pub snapshot: Option<SnapshotState>,
    /// The sequence number the snapshot covers (0 = none).
    pub snapshot_seq: u64,
    /// WAL records past the snapshot, replay order.
    pub records: Vec<WalRecord>,
    /// Bytes discarded from a torn WAL tail (0 = clean).
    pub torn_bytes: u64,
}

struct StoreInner {
    wal: File,
    /// The next record's sequence number.
    next_seq: u64,
    /// Records appended since the last snapshot.
    since_snapshot: u64,
    /// The newest snapshot's covered seq.
    snapshot_seq: u64,
}

/// The durable event store: one WAL file plus snapshot generations in
/// one data directory. One per server; internally synchronized.
pub struct Store {
    dir: PathBuf,
    durability: Durability,
    /// Records between snapshots (0 = snapshots disabled).
    snapshot_every: u64,
    inner: Mutex<StoreInner>,
    /// `true` while some thread is mid-snapshot (CAS-guarded).
    snapshotting: AtomicBool,
    appends: AtomicU64,
    fsyncs: AtomicU64,
    snapshots: AtomicU64,
}

impl Store {
    /// Opens (or creates) the data directory, recovers snapshot + WAL
    /// tail, truncates any torn tail, and readies the WAL for appends.
    pub fn open(
        dir: &Path,
        durability: Durability,
        snapshot_every: u64,
    ) -> std::io::Result<(Store, Recovered)> {
        fs::create_dir_all(dir)?;
        let mut recovered = Recovered::default();

        // Newest valid snapshot wins; invalid ones (torn by a crash
        // mid-write before the rename, or bit-rotted) fall through to
        // older generations.
        let mut snaps: Vec<(u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(seq) = name
                .strip_prefix("snap-")
                .and_then(|s| s.strip_suffix(".snap"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                snaps.push((seq, entry.path()));
            }
        }
        snaps.sort_by_key(|&(seq, _)| std::cmp::Reverse(seq));
        for (seq, path) in &snaps {
            match load_snapshot(path) {
                Ok(state) => {
                    recovered.snapshot = Some(state);
                    recovered.snapshot_seq = *seq;
                    break;
                }
                Err(_) => continue,
            }
        }

        let wal_path = dir.join("wal.log");
        let mut wal = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&wal_path)?;
        let mut bytes = Vec::new();
        wal.read_to_end(&mut bytes)?;
        let mut at = 0usize;
        let mut max_seq = recovered.snapshot_seq;
        while let FrameRead::Complete(value, next) = read_framed(&bytes, at) {
            // Framing intact but the payload is not a record: same
            // torn-tail treatment as a corrupt frame.
            let Ok(rec) = WalRecord::from_value(&value) else {
                break;
            };
            max_seq = max_seq.max(rec.seq);
            // A record the snapshot already covers is skipped — the
            // crash-between-rename-and-truncate window.
            if rec.seq > recovered.snapshot_seq {
                recovered.records.push(rec);
            }
            at = next;
        }
        if at < bytes.len() {
            recovered.torn_bytes = (bytes.len() - at) as u64;
            wal.set_len(at as u64)?;
        }
        wal.seek(SeekFrom::End(0))?;

        let store = Store {
            dir: dir.to_path_buf(),
            durability,
            snapshot_every,
            inner: Mutex::new(StoreInner {
                wal,
                next_seq: max_seq + 1,
                since_snapshot: recovered.records.len() as u64,
                snapshot_seq: recovered.snapshot_seq,
            }),
            snapshotting: AtomicBool::new(false),
            appends: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
        };
        Ok((store, recovered))
    }

    /// Appends one applied mutation. Callers hold the tenant's registry
    /// lock across apply + append, so per-tenant log order equals apply
    /// order. Fsyncs inline under [`Durability::Event`].
    pub fn append(
        &self,
        tenant: &str,
        event: &RegistryEvent,
        req_id: Option<u64>,
        reply: &Value,
    ) -> std::io::Result<u64> {
        let mut inner = self.inner.lock().expect("store poisoned");
        let seq = inner.next_seq;
        let record = WalRecord {
            seq,
            tenant: tenant.to_string(),
            event: event.clone(),
            req_id,
            reply: reply.clone(),
        };
        let mut frame = Vec::new();
        write_framed(&mut frame, &record.to_value());
        inner.wal.write_all(&frame)?;
        inner.next_seq += 1;
        inner.since_snapshot += 1;
        if self.durability == Durability::Event {
            inner.wal.sync_data()?;
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        self.appends.fetch_add(1, Ordering::Relaxed);
        Ok(seq)
    }

    /// The commit point: one per group-commit drain (or per inline
    /// mutation). Under [`Durability::Batch`] this is where the single
    /// covering fsync happens.
    pub fn commit(&self) -> std::io::Result<()> {
        if self.durability == Durability::Batch {
            let inner = self.inner.lock().expect("store poisoned");
            inner.wal.sync_data()?;
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Is a snapshot due? (Enough records since the last one and no
    /// snapshot already running.)
    pub fn wants_snapshot(&self) -> bool {
        self.snapshot_every > 0
            && !self.snapshotting.load(Ordering::Relaxed)
            && self.inner.lock().expect("store poisoned").since_snapshot >= self.snapshot_every
    }

    /// Claims the snapshot slot (one snapshotter at a time). The caller
    /// must pair a `true` with [`Store::write_snapshot`] or
    /// [`Store::abort_snapshot`].
    pub fn begin_snapshot(&self) -> bool {
        self.snapshotting
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Releases the snapshot slot without writing.
    pub fn abort_snapshot(&self) {
        self.snapshotting.store(false, Ordering::SeqCst);
    }

    /// Persists a consistent snapshot and truncates the WAL. The caller
    /// holds every tenant registry lock, so no append can land between
    /// the captured state and the truncation; the covered seq is
    /// `next_seq - 1`. Write-temp-then-rename keeps the previous
    /// generation intact until the new one is durable.
    pub fn write_snapshot(&self, state: &SnapshotState) -> std::io::Result<u64> {
        let mut inner = self.inner.lock().expect("store poisoned");
        let seq = inner.next_seq - 1;
        let mut framed = Vec::new();
        write_framed(&mut framed, &state.to_value(seq));
        let tmp = self.dir.join(format!("snap-{seq}.tmp"));
        let fin = self.dir.join(format!("snap-{seq}.snap"));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&framed)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &fin)?;
        sync_dir(&self.dir);
        self.fsyncs.fetch_add(2, Ordering::Relaxed);
        // Older generations are superseded; the WAL restarts empty.
        // (A crash before these cleanups is safe: recovery prefers the
        // newest valid snapshot and skips covered records by seq.)
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy().to_string();
                if (name.starts_with("snap-") && name != format!("snap-{seq}.snap"))
                    || name.ends_with(".tmp")
                {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
        inner.wal.set_len(0)?;
        inner.wal.seek(SeekFrom::Start(0))?;
        inner.since_snapshot = 0;
        inner.snapshot_seq = seq;
        self.snapshots.fetch_add(1, Ordering::Relaxed);
        self.snapshotting.store(false, Ordering::SeqCst);
        Ok(seq)
    }

    /// Flushes buffered data on clean shutdown (never required for
    /// correctness — recovery replays the WAL regardless).
    pub fn flush(&self) -> std::io::Result<()> {
        let inner = self.inner.lock().expect("store poisoned");
        inner.wal.sync_data()
    }

    pub fn durability(&self) -> Durability {
        self.durability
    }

    pub fn data_dir(&self) -> &Path {
        &self.dir
    }

    /// Records appended this run.
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }

    /// Fsyncs issued this run (WAL and snapshot files).
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }

    /// Snapshots written this run.
    pub fn snapshots(&self) -> u64 {
        self.snapshots.load(Ordering::Relaxed)
    }

    /// The sequence number the next record will get.
    pub fn next_seq(&self) -> u64 {
        self.inner.lock().expect("store poisoned").next_seq
    }

    /// Records appended since the last snapshot.
    pub fn since_snapshot(&self) -> u64 {
        self.inner.lock().expect("store poisoned").since_snapshot
    }
}

/// One framed value read attempt against `bytes[at..]`.
enum FrameRead {
    /// A validated value and the offset just past its frame.
    Complete(Value, usize),
    /// The tail holds part of a frame — a torn write.
    Incomplete,
    /// Framing or checksum violation — treated like a torn tail.
    Corrupt,
}

/// Appends `magic · len · payload · crc` to `out`.
fn write_framed(out: &mut Vec<u8>, value: &Value) {
    let mut payload = Vec::new();
    encode_value(value, &mut payload);
    out.push(FRAME_MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
}

fn read_framed(bytes: &[u8], at: usize) -> FrameRead {
    let tail = &bytes[at.min(bytes.len())..];
    if tail.is_empty() {
        return FrameRead::Incomplete;
    }
    if tail[0] != FRAME_MAGIC {
        return FrameRead::Corrupt;
    }
    if tail.len() < FRAME_HEADER {
        return FrameRead::Incomplete;
    }
    let plen = u32::from_le_bytes([tail[1], tail[2], tail[3], tail[4]]) as usize;
    let total = FRAME_HEADER + plen + 4;
    if tail.len() < total {
        return FrameRead::Incomplete;
    }
    let payload = &tail[FRAME_HEADER..FRAME_HEADER + plen];
    let stored = u32::from_le_bytes([
        tail[FRAME_HEADER + plen],
        tail[FRAME_HEADER + plen + 1],
        tail[FRAME_HEADER + plen + 2],
        tail[FRAME_HEADER + plen + 3],
    ]);
    if crc32(payload) != stored {
        return FrameRead::Corrupt;
    }
    match decode_value(payload) {
        Ok(v) => FrameRead::Complete(v, at + total),
        Err(_) => FrameRead::Corrupt,
    }
}

fn load_snapshot(path: &Path) -> Result<SnapshotState, String> {
    let bytes = fs::read(path).map_err(|e| e.to_string())?;
    match read_framed(&bytes, 0) {
        FrameRead::Complete(v, end) if end == bytes.len() => {
            SnapshotState::from_value(&v).map(|(state, _)| state)
        }
        _ => Err("snapshot frame invalid".to_string()),
    }
}

/// Fsyncs a directory so a rename inside it is durable (POSIX requires
/// syncing the parent; best-effort on platforms where directories
/// cannot be opened).
fn sync_dir(dir: &Path) {
    #[cfg(unix)]
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    #[cfg(not(unix))]
    let _ = dir;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mvstore-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn record(seq: u64, tenant: &str, line: &str, rid: Option<u64>) -> WalRecord {
        WalRecord {
            seq,
            tenant: tenant.to_string(),
            event: RegistryEvent::Register(line.to_string()),
            req_id: rid,
            reply: json!({"ok": true, "txn_id": seq, "level": "RC"}),
        }
    }

    #[test]
    fn wal_record_value_encoding_round_trips() {
        let r = record(42, "acme", "T7: R[x] W[y]", Some(0xfeed));
        assert_eq!(WalRecord::from_value(&r.to_value()).unwrap(), r);
        let r = record(43, "default", "T8: W[z]", None);
        assert_eq!(WalRecord::from_value(&r.to_value()).unwrap(), r);
    }

    #[test]
    fn template_wal_records_round_trip() {
        let reg = WalRecord {
            seq: 44,
            tenant: "acme".to_string(),
            event: RegistryEvent::TemplateRegister("Balance: R[sav:$0] R[chk:$0]".to_string()),
            req_id: Some(9),
            reply: json!({"ok": true, "template_id": 0, "level": "RC"}),
        };
        assert_eq!(WalRecord::from_value(&reg.to_value()).unwrap(), reg);
        let inst = WalRecord {
            seq: 45,
            tenant: "acme".to_string(),
            event: RegistryEvent::Instantiate {
                template_id: 0,
                params: vec![7, 1_000_000],
            },
            req_id: None,
            reply: json!({"ok": true, "level": "RC", "instances": 1}),
        };
        assert_eq!(WalRecord::from_value(&inst.to_value()).unwrap(), inst);
    }

    #[test]
    fn pre_template_snapshots_decode_with_empty_catalogs() {
        // A version-1 tenant object written before the template fast
        // path existed has no `templates`/`instances` fields.
        let tenant = json!({
            "name": "old",
            "lines": json!(["T1: W[x] C"]),
            "alloc": json!([json!([1, "RC"])]),
        });
        let v = json!({
            "version": 1,
            "seq": 3,
            "tenants": Value::Array(vec![tenant]),
            "replays": Value::Array(Vec::new()),
            "cache": Value::Array(Vec::new()),
        });
        let (state, seq) = SnapshotState::from_value(&v).unwrap();
        assert_eq!(seq, 3);
        assert_eq!(state.tenants[0].templates, Vec::new());
        assert_eq!(state.tenants[0].instances, Vec::new());
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn wal_records_round_trip_and_reopen_continues_seq() {
        let dir = tmp_dir("roundtrip");
        let (store, rec) = Store::open(&dir, Durability::Event, 0).unwrap();
        assert!(rec.snapshot.is_none() && rec.records.is_empty());
        let ev = RegistryEvent::Register("T1: R[x] W[y]".to_string());
        let reply = json!({"ok": true, "txn_id": 1, "level": "SSI", "req_id": 9});
        assert_eq!(store.append("acme", &ev, Some(9), &reply).unwrap(), 1);
        let ev2 = RegistryEvent::Deregister(TxnId(1));
        let reply2 = json!({"ok": true, "txn_id": 1});
        assert_eq!(store.append("acme", &ev2, None, &reply2).unwrap(), 2);
        assert_eq!(store.appends(), 2);
        assert!(store.fsyncs() >= 2, "event durability syncs per record");
        drop(store);

        let (store, rec) = Store::open(&dir, Durability::Batch, 0).unwrap();
        assert_eq!(rec.torn_bytes, 0);
        assert_eq!(rec.records.len(), 2);
        assert_eq!(rec.records[0].tenant, "acme");
        assert_eq!(rec.records[0].req_id, Some(9));
        assert_eq!(rec.records[0].reply, reply);
        assert!(matches!(
            rec.records[1].event,
            RegistryEvent::Deregister(TxnId(1))
        ));
        assert_eq!(
            store.next_seq(),
            3,
            "seq continues after the recovered tail"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_detected_and_truncated() {
        let dir = tmp_dir("torn");
        let (store, _) = Store::open(&dir, Durability::None, 0).unwrap();
        let ev = RegistryEvent::Register("T1: W[x]".to_string());
        store
            .append("default", &ev, None, &json!({"ok": true}))
            .unwrap();
        store
            .append("default", &ev, None, &json!({"ok": true}))
            .unwrap();
        store.flush().unwrap();
        drop(store);
        // Crash mid-append: chop the last record's final 3 bytes.
        let wal = dir.join("wal.log");
        let full = fs::read(&wal).unwrap();
        fs::write(&wal, &full[..full.len() - 3]).unwrap();

        let (store, rec) = Store::open(&dir, Durability::None, 0).unwrap();
        assert_eq!(rec.records.len(), 1, "only the intact record survives");
        assert_eq!(rec.torn_bytes as usize, full.len() / 2 - 3);
        // The file was truncated back to the good prefix and appending
        // resumes cleanly.
        assert_eq!(fs::read(&wal).unwrap().len(), full.len() / 2);
        store
            .append("default", &ev, None, &json!({"ok": true}))
            .unwrap();
        drop(store);
        let (_, rec) = Store::open(&dir, Durability::None, 0).unwrap();
        assert_eq!(rec.records.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_record_stops_replay_at_the_last_good_one() {
        let dir = tmp_dir("corrupt");
        let (store, _) = Store::open(&dir, Durability::None, 0).unwrap();
        let ev = RegistryEvent::Register("T1: W[x]".to_string());
        store
            .append("default", &ev, None, &json!({"ok": true}))
            .unwrap();
        store
            .append("default", &ev, None, &json!({"ok": true}))
            .unwrap();
        store.flush().unwrap();
        drop(store);
        // Flip one payload byte of the second record: CRC catches it.
        let wal = dir.join("wal.log");
        let mut bytes = fs::read(&wal).unwrap();
        let mid = bytes.len() / 2 + FRAME_HEADER + 2;
        bytes[mid] ^= 0xFF;
        fs::write(&wal, &bytes).unwrap();
        let (_, rec) = Store::open(&dir, Durability::None, 0).unwrap();
        assert_eq!(rec.records.len(), 1);
        assert!(rec.torn_bytes > 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_round_trips_truncates_and_skips_covered_records() {
        let dir = tmp_dir("snap");
        let (store, _) = Store::open(&dir, Durability::Batch, 4).unwrap();
        let ev = RegistryEvent::Register("T1: R[a] W[b]".to_string());
        for _ in 0..4 {
            store.append("t1", &ev, None, &json!({"ok": true})).unwrap();
        }
        store.commit().unwrap();
        assert!(store.wants_snapshot());
        assert!(store.begin_snapshot());
        assert!(!store.begin_snapshot(), "slot is exclusive");
        let state = SnapshotState {
            tenants: vec![TenantSnapshot {
                name: "t1".to_string(),
                lines: vec!["T1: R[a] W[b] C".to_string()],
                alloc: vec![(1, "RC".to_string())],
                templates: vec![("Balance: R[sav:$0] R[chk:$0]".to_string(), "RC".to_string())],
                instances: vec![42],
            }],
            replays: vec![("t1".to_string(), 7, json!({"ok": true, "req_id": 7}))],
            cache: vec![
                (
                    42,
                    Some(vec![(1, "SSI".to_string()), (2, "SI".to_string())]),
                ),
                (7, None),
            ],
        };
        let seq = store.write_snapshot(&state).unwrap();
        assert_eq!(seq, 4);
        assert!(!store.wants_snapshot(), "counter reset");
        // Post-snapshot records land in the fresh WAL.
        store.append("t1", &ev, None, &json!({"ok": true})).unwrap();
        store.commit().unwrap();
        drop(store);

        let (_, rec) = Store::open(&dir, Durability::Batch, 4).unwrap();
        assert_eq!(rec.snapshot_seq, 4);
        assert_eq!(rec.snapshot.as_ref().unwrap(), &state);
        assert_eq!(
            rec.records.len(),
            1,
            "only the post-snapshot record replays"
        );
        assert_eq!(rec.records[0].seq, 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_newest_snapshot_falls_back_to_the_older_generation() {
        let dir = tmp_dir("fallback");
        let (store, _) = Store::open(&dir, Durability::Batch, 0).unwrap();
        let ev = RegistryEvent::Register("T1: W[x]".to_string());
        store.append("a", &ev, None, &json!({"ok": true})).unwrap();
        assert!(store.begin_snapshot());
        let good = SnapshotState {
            tenants: vec![TenantSnapshot {
                name: "a".to_string(),
                lines: vec!["T1: W[x] C".to_string()],
                alloc: vec![(1, "RC".to_string())],
                templates: Vec::new(),
                instances: Vec::new(),
            }],
            ..SnapshotState::default()
        };
        store.write_snapshot(&good).unwrap();
        drop(store);
        // A newer snapshot generation that never finished its payload.
        fs::write(dir.join("snap-99.snap"), b"\xb1garbage").unwrap();
        let (_, rec) = Store::open(&dir, Durability::Batch, 0).unwrap();
        assert_eq!(rec.snapshot_seq, 1, "fell back past the corrupt generation");
        assert_eq!(rec.snapshot.unwrap(), good);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn durability_parses_and_prints() {
        for (s, d) in [
            ("none", Durability::None),
            ("batch", Durability::Batch),
            ("event", Durability::Event),
        ] {
            assert_eq!(s.parse::<Durability>().unwrap(), d);
            assert_eq!(d.as_str(), s);
        }
        assert!("fsync".parse::<Durability>().is_err());
    }
}
