//! The allocation daemon: a blocking thread-per-connection TCP server
//! over the [`Registry`].
//!
//! Design constraints (std-only, no async runtime):
//!
//! - the acceptor runs non-blocking and polls a shutdown flag between
//!   accepts, so `SIGTERM`/ctrl-c (see [`install_signal_handlers`]) and
//!   the `shutdown` request both stop the server promptly;
//! - each connection thread reads with a short socket timeout used as a
//!   shutdown-poll tick; a *request* timeout only starts once a partial
//!   line has arrived (an idle keep-alive connection never times out);
//! - malformed input produces a structured `{"ok":false,"error":…}`
//!   reply and the connection stays open — only a stalled partial
//!   request or an I/O error closes it;
//! - the registry sits behind one mutex: reallocation is the expensive
//!   part and is CPU-bound, so serializing mutations is the correct
//!   concurrency regime, while `assign`/`stats` hold the lock for an
//!   O(1) lookup only.

use crate::metrics::Metrics;
use crate::protocol::{changes_json, error_reply, ok_reply, Request};
use crate::registry::Registry;
use mvrobustness::LevelSet;
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Level menu served to clients.
    pub levels: LevelSet,
    /// Engine worker threads per reallocation probe.
    pub threads: usize,
    /// How long a *partial* request line may stall before the
    /// connection is dropped (with an error reply).
    pub request_timeout: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            addr: "127.0.0.1:7411".to_string(),
            levels: LevelSet::default(),
            threads: 1,
            request_timeout: Duration::from_secs(10),
        }
    }
}

/// How often blocked reads and the acceptor wake up to poll shutdown.
const POLL_TICK: Duration = Duration::from_millis(25);

/// Set by the `SIGINT`/`SIGTERM` handler; polled by every server.
static SIGNAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Installs process-wide `SIGINT` and `SIGTERM` handlers that request a
/// graceful stop of every running [`Server`]. Call once, from the
/// binary — library users who manage their own signals use
/// [`Server::handle`] instead.
pub fn install_signal_handlers() {
    extern "C" fn request_shutdown(_sig: i32) {
        // Only async-signal-safe work here: one atomic store.
        SIGNAL_SHUTDOWN.store(true, Ordering::SeqCst);
    }
    #[cfg(unix)]
    unsafe {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        signal(SIGINT, request_shutdown as *const () as usize);
        signal(SIGTERM, request_shutdown as *const () as usize);
    }
}

struct Shared {
    registry: Mutex<Registry>,
    metrics: Metrics,
    shutdown: AtomicBool,
    request_timeout: Duration,
}

impl Shared {
    fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || SIGNAL_SHUTDOWN.load(Ordering::SeqCst)
    }
}

/// A cloneable handle that can stop a running [`Server`] from another
/// thread.
#[derive(Clone)]
pub struct ServerHandle(Arc<Shared>);

impl ServerHandle {
    /// Requests a graceful stop; `run` returns once in-flight requests
    /// finish.
    pub fn shutdown(&self) {
        self.0.shutdown.store(true, Ordering::SeqCst);
    }

    pub fn is_shutting_down(&self) -> bool {
        self.0.stopping()
    }
}

/// The allocation daemon. [`Server::bind`] then [`Server::run`].
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listening socket and builds an empty registry.
    pub fn bind(config: Config) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                registry: Mutex::new(Registry::new(config.levels, config.threads)),
                metrics: Metrics::new(),
                shutdown: AtomicBool::new(false),
                request_timeout: config.request_timeout,
            }),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle for stopping the server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle(Arc::clone(&self.shared))
    }

    /// Serves until a `shutdown` request, a [`ServerHandle::shutdown`],
    /// or a handled signal. Joins every connection thread before
    /// returning.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut workers: Vec<JoinHandle<()>> = Vec::new();
        while !self.shared.stopping() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&self.shared);
                    workers.push(thread::spawn(move || {
                        // A connection failing setup or I/O is its own
                        // problem; the server keeps serving.
                        let _ = serve_connection(stream, shared);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(POLL_TICK);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            workers.retain(|w| !w.is_finished());
        }
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

/// Serves one client connection until it closes, stalls mid-request, or
/// the server shuts down.
fn serve_connection(stream: TcpStream, shared: Arc<Shared>) -> std::io::Result<()> {
    stream.set_read_timeout(Some(POLL_TICK))?;
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    // `Some(t)` while a partial request line is buffered: the moment the
    // first byte of the request arrived.
    let mut partial_since: Option<Instant> = None;
    loop {
        if shared.stopping() {
            return Ok(());
        }
        match reader.read_line(&mut line) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(()); // clean close
                }
                // Final request without trailing newline, then EOF.
                respond(&mut writer, &shared, &line)?;
                return Ok(());
            }
            Ok(_) if !line.ends_with('\n') => {
                // read_line only returns Ok at a newline or EOF; a
                // missing newline here means EOF mid-line.
                respond(&mut writer, &shared, &line)?;
                return Ok(());
            }
            Ok(_) => {
                let stop = respond(&mut writer, &shared, &line)?;
                line.clear();
                partial_since = None;
                if stop {
                    return Ok(());
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Poll tick. `read_line` keeps any partial bytes in
                // `line`, so a slow request accumulates across ticks —
                // but not forever.
                if line.is_empty() {
                    partial_since = None;
                    continue;
                }
                let since = *partial_since.get_or_insert_with(Instant::now);
                if since.elapsed() > shared.request_timeout {
                    let reply = error_reply("request timed out mid-line");
                    write_reply(&mut writer, &reply)?;
                    return Ok(());
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Handles one request line: decode, execute, reply. Returns `true`
/// when the connection should close (shutdown acknowledged).
fn respond(writer: &mut TcpStream, shared: &Shared, raw: &str) -> std::io::Result<bool> {
    let line = raw.trim();
    if line.is_empty() {
        return Ok(false);
    }
    let start = Instant::now();
    let (op, reply, stop) = match Request::parse(line) {
        Err(msg) => ("invalid", error_reply(&msg), false),
        Ok(req) => {
            let op = req.op_name();
            let (reply, stop) = execute(shared, req);
            (op, reply, stop)
        }
    };
    let ok = reply["ok"] == true;
    shared.metrics.record(op, ok, start.elapsed());
    write_reply(writer, &reply)?;
    Ok(stop)
}

fn write_reply(writer: &mut TcpStream, reply: &Value) -> std::io::Result<()> {
    let mut encoded = serde_json::to_string(reply).expect("replies are always encodable");
    encoded.push('\n');
    writer.write_all(encoded.as_bytes())?;
    writer.flush()
}

/// Executes a decoded request against the shared registry.
fn execute(shared: &Shared, req: Request) -> (Value, bool) {
    match req {
        Request::Register { line } => {
            let mut reg = shared.registry.lock().expect("registry poisoned");
            match reg.register(&line) {
                Ok(realloc) => {
                    let mut v = ok_reply();
                    let id = realloc
                        .changed
                        .iter()
                        .find(|c| c.before.is_none())
                        .map(|c| c.txn);
                    if let Some(id) = id {
                        v["txn_id"] = Value::from(id.0);
                        v["level"] = Value::from(realloc.allocation.level(id).as_str());
                    }
                    v["changed"] = changes_json(&realloc.changed);
                    v["registry_size"] = Value::from(reg.len() as u64);
                    (v, false)
                }
                Err(e) => (error_reply(&e.to_string()), false),
            }
        }
        Request::Deregister { id } => {
            let mut reg = shared.registry.lock().expect("registry poisoned");
            match reg.deregister(id) {
                Ok(realloc) => {
                    let mut v = ok_reply();
                    v["txn_id"] = Value::from(id.0);
                    v["changed"] = changes_json(&realloc.changed);
                    v["registry_size"] = Value::from(reg.len() as u64);
                    (v, false)
                }
                Err(e) => (error_reply(&e.to_string()), false),
            }
        }
        Request::Assign { id } => {
            let mut reg = shared.registry.lock().expect("registry poisoned");
            match reg.assign(id) {
                Some(level) => {
                    let mut v = ok_reply();
                    v["txn_id"] = Value::from(id.0);
                    v["level"] = Value::from(level.as_str());
                    (v, false)
                }
                None => (
                    error_reply(&format!("transaction {id} is not registered")),
                    false,
                ),
            }
        }
        Request::Stats => {
            let reg = shared.registry.lock().expect("registry poisoned");
            let mut v = shared.metrics.to_json();
            v["ok"] = Value::from(true);
            v["registry_size"] = Value::from(reg.len() as u64);
            v["levels"] = Value::from(reg.levels().label());
            v["last_realloc"] = match reg.last_stats() {
                None => Value::Null,
                Some(s) => {
                    let mut m = serde_json::Map::new();
                    m.insert("probes".to_string(), Value::from(s.probes));
                    m.insert("cache_hits".to_string(), Value::from(s.cache_hits));
                    m.insert("cached_specs".to_string(), Value::from(s.cached_specs));
                    m.insert("iso_builds".to_string(), Value::from(s.iso_builds));
                    m.insert("threads".to_string(), Value::from(s.threads as u64));
                    m.insert(
                        "wall_us".to_string(),
                        Value::from(s.wall.as_micros().min(u128::from(u64::MAX)) as u64),
                    );
                    Value::Object(m)
                }
            };
            (v, false)
        }
        Request::List => {
            let mut reg = shared.registry.lock().expect("registry poisoned");
            let txns: Vec<Value> = reg
                .list()
                .into_iter()
                .map(|t| {
                    let mut m = serde_json::Map::new();
                    m.insert("id".to_string(), Value::from(t.id.0));
                    m.insert("text".to_string(), Value::from(t.text));
                    m.insert("level".to_string(), Value::from(t.level.as_str()));
                    Value::Object(m)
                })
                .collect();
            let mut v = ok_reply();
            v["txns"] = Value::Array(txns);
            (v, false)
        }
        Request::Ping => {
            let mut v = ok_reply();
            v["pong"] = Value::from(true);
            (v, false)
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            let mut v = ok_reply();
            v["shutting_down"] = Value::from(true);
            (v, true)
        }
    }
}
