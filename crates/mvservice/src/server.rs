//! The allocation daemon: a TCP server over the [`Registry`] with two
//! socket cores and two wire codecs.
//!
//! Design constraints (std-only, no async runtime):
//!
//! - **two cores** ([`Config::core`]): the default `Event` core is a
//!   nonblocking readiness-polled event loop — one acceptor/poll
//!   thread owns every connection's state (read buffer, codec parse
//!   state, write backlog with backpressure) and multiplexes them over
//!   `poll(2)` (see [`crate::poll`] and [`crate::event`]), so 10k+
//!   concurrent connections cost fds, not threads. The `Threaded` core
//!   is the original blocking thread-per-connection loop, kept as the
//!   bench baseline and portability fallback. Both feed the same
//!   request path, so replay, coalescing, and fault semantics are
//!   bit-identical across cores;
//! - **two codecs** ([`Config::codec`], sniffed per connection by its
//!   first byte): newline-delimited JSON text, or length-prefixed
//!   binary frames carrying the same protocol payloads — see
//!   [`crate::codec`];
//! - on the threaded core each connection reads with a short socket
//!   timeout used as a shutdown-poll tick; the event core's poll wait
//!   doubles as that tick. A *request* timeout only starts once a
//!   partial frame has arrived (an idle keep-alive connection never
//!   times out);
//! - malformed input produces a structured `{"ok":false,"error":…}`
//!   reply and the connection stays open — only a stalled partial
//!   request, an oversized frame, a codec violation, or an I/O error
//!   closes it;
//! - the registry sits behind one mutex: reallocation is the expensive
//!   part and is CPU-bound, so serializing mutations is the correct
//!   concurrency regime, while `assign`/`stats` hold the lock for an
//!   O(1) lookup only;
//! - when a [`FaultPlan`] is configured, every request passes through a
//!   deterministic injection point (drop / truncate / delay keyed on
//!   the connection index and per-connection request sequence number)
//!   and every reallocation may be forced to fail or time out — see
//!   [`crate::fault`]. With no plan configured the hook is `None` and
//!   the hot path pays a single branch;
//! - mutating requests may carry a `req_id` idempotency key: the reply
//!   to a successfully applied mutation is cached, and a retry bearing
//!   the same key is answered from the cache (marked `"replayed":
//!   true`) instead of double-applying the delta;
//! - with `batch_max > 1` the server group-commits: mutating requests
//!   from every connection park in one coalescing queue, a dispatcher
//!   drains up to `batch_max` of them (lingering `batch_delay` for
//!   companions) and applies the drain as a **single** engine batch
//!   ([`Registry::apply_events`]); each parked client gets its own
//!   per-event reply, written per-connection in one buffered flush.
//!   Replies to coalesced mutations echo the request's `req_id`, so
//!   pipelined clients can match them out of band. With the default
//!   `batch_max = 1` the queue does not exist and mutations run inline
//!   exactly as before.

use crate::codec::{
    encode_payload, CodecAccept, CodecKind, DrainPlan, FrameBuf, FrameError, Payload,
};
use crate::fault::{FaultAction, FaultHook, FaultPlan, InjectedFault, ScriptedFaults};
use crate::metrics::Metrics;
use crate::namespace::{Namespaces, RegistryTemplate};
use crate::protocol::{changes_json, error_reply, ok_reply, tenant_of, Request, MAX_FRAME};
use crate::registry::{Registry, RegistryEvent};
use crate::store::{Durability, SnapshotState, Store, TenantSnapshot};
use mvisolation::{IsolationLevel, LevelChange};
use mvmodel::TxnId;
use mvrobustness::{CompEntry, LevelSet};
use serde_json::{json, Value};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Which socket core serves connections.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CoreKind {
    /// Nonblocking readiness-polled event loop: one thread owns every
    /// connection's state and multiplexes them over `poll(2)`.
    #[default]
    Event,
    /// Blocking thread-per-connection (the pre-event-loop design) —
    /// kept as the connection-scaling bench baseline.
    Threaded,
}

impl CoreKind {
    pub fn as_str(self) -> &'static str {
        match self {
            CoreKind::Event => "event",
            CoreKind::Threaded => "threaded",
        }
    }
}

impl std::str::FromStr for CoreKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "event" => Ok(CoreKind::Event),
            "threaded" | "threads" => Ok(CoreKind::Threaded),
            other => Err(format!(
                "unknown core `{other}` (expected event or threaded)"
            )),
        }
    }
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Level menu served to clients.
    pub levels: LevelSet,
    /// Engine worker threads per reallocation probe.
    pub threads: usize,
    /// How long a *partial* request line may stall before the
    /// connection is dropped (with an error reply).
    pub request_timeout: Duration,
    /// Deadline for a single incremental reallocation; on expiry the
    /// mutation is rolled back and the last-known-good allocation keeps
    /// being served (`None` = no deadline).
    pub realloc_timeout: Option<Duration>,
    /// Deterministic fault-injection schedule (`None` = no injection).
    pub faults: Option<FaultPlan>,
    /// Component-sharded reallocation (`false` = monolithic engine;
    /// optima are identical either way).
    pub components: bool,
    /// Group-commit coalescing: the most mutating requests one
    /// dispatcher drain may apply as a single engine batch. The default
    /// `1` disables the coalescing queue entirely — mutations run
    /// inline on their connection thread exactly as before.
    pub batch_max: usize,
    /// How long a drain lingers for companion mutations after the first
    /// one arrives (the group-commit window). Only meaningful when
    /// `batch_max > 1`.
    pub batch_delay: Duration,
    /// Which socket core serves connections (default: the event loop).
    pub core: CoreKind,
    /// Which wire codecs incoming connections may negotiate (default:
    /// sniff per connection).
    pub codec: CodecAccept,
    /// Durable state directory (`None` = in-memory only, the
    /// pre-durability behavior). When set, every applied mutation is
    /// appended to a write-ahead event log there, snapshots are taken,
    /// and `bind` recovers the previous state before serving.
    pub data_dir: Option<PathBuf>,
    /// Take a snapshot (and truncate the log) every this many appended
    /// records; `0` disables snapshots (the log grows unbounded).
    pub snapshot_every: u64,
    /// When the write-ahead log is fsynced (see [`Durability`]).
    pub durability: Durability,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            addr: "127.0.0.1:7411".to_string(),
            levels: LevelSet::default(),
            threads: 1,
            request_timeout: Duration::from_secs(10),
            realloc_timeout: None,
            faults: None,
            components: true,
            batch_max: 1,
            batch_delay: Duration::from_micros(100),
            core: CoreKind::default(),
            codec: CodecAccept::default(),
            data_dir: None,
            snapshot_every: 1024,
            durability: Durability::default(),
        }
    }
}

/// Longest accepted request frame, in bytes — an alias of the shared
/// protocol-level cap [`MAX_FRAME`], kept under its historical name. A
/// line (or declared binary payload) that grows past this gets a
/// structured error reply and the connection is closed — the server
/// never buffers unboundedly.
pub const MAX_LINE: usize = MAX_FRAME;

/// How many `(tenant, req_id) → reply` entries the idempotency replay
/// cache keeps; oldest entries are evicted first.
const REPLAY_CACHE_CAP: usize = 1024;

/// Bounded insertion-order map backing the idempotency cache. Keys are
/// `(tenant, req_id)`: idempotency keys are scoped per tenant, so two
/// tenants reusing the same numeric key never collide.
struct ReplayCache {
    replies: HashMap<(Arc<str>, u64), Value>,
    order: VecDeque<(Arc<str>, u64)>,
    cap: usize,
}

impl ReplayCache {
    fn new() -> Self {
        ReplayCache::with_capacity(REPLAY_CACHE_CAP)
    }

    fn with_capacity(cap: usize) -> Self {
        ReplayCache {
            replies: HashMap::new(),
            order: VecDeque::new(),
            cap,
        }
    }

    fn get(&self, tenant: &Arc<str>, req_id: u64) -> Option<&Value> {
        self.replies.get(&(Arc::clone(tenant), req_id))
    }

    fn insert(&mut self, tenant: Arc<str>, req_id: u64, reply: Value) {
        if self
            .replies
            .insert((Arc::clone(&tenant), req_id), reply)
            .is_none()
        {
            self.order.push_back((tenant, req_id));
            if self.order.len() > self.cap {
                if let Some(old) = self.order.pop_front() {
                    self.replies.remove(&old);
                }
            }
        }
    }

    /// Every cached entry as `(tenant, req_id, reply)` in insertion
    /// order — the snapshot capture (restoring in the same order
    /// preserves the eviction queue).
    fn entries(&self) -> Vec<(String, u64, Value)> {
        self.order
            .iter()
            .map(|key| {
                let reply = self.replies[key].clone();
                (key.0.to_string(), key.1, reply)
            })
            .collect()
    }
}

/// Where a parked request's reply goes once the dispatcher produces it.
pub(crate) enum ReplyRoute {
    /// Threaded core: write straight to the connection's shared writer
    /// in the connection's codec.
    Direct {
        writer: Arc<Mutex<TcpStream>>,
        codec: CodecKind,
    },
    /// Event core: hand the reply to the loop's completion queue (the
    /// loop owns the socket) and wake the poll.
    Loop { key: u64 },
}

/// One reply completed by the dispatcher for an event-core connection.
pub(crate) struct Completion {
    /// The connection key ([`ReplyRoute::Loop`]).
    pub(crate) key: u64,
    pub(crate) reply: Value,
    /// Cut the encoded reply mid-frame and kill the connection (an
    /// injected `Truncate` fault).
    pub(crate) truncate: bool,
}

/// Dispatcher → event-loop handoff: completed replies plus the waker
/// that turns them into poll readiness.
pub(crate) struct Completions {
    queue: Mutex<Vec<Completion>>,
    waker: Mutex<Option<crate::poll::Waker>>,
}

impl Completions {
    fn new() -> Self {
        Completions {
            queue: Mutex::new(Vec::new()),
            waker: Mutex::new(None),
        }
    }

    /// The event loop registers its waker before serving.
    pub(crate) fn set_waker(&self, w: crate::poll::Waker) {
        *self.waker.lock().expect("waker poisoned") = Some(w);
    }

    pub(crate) fn push_all(&self, items: Vec<Completion>) {
        if items.is_empty() {
            return;
        }
        self.queue
            .lock()
            .expect("completions poisoned")
            .extend(items);
        if let Some(w) = self.waker.lock().expect("waker poisoned").as_ref() {
            w.wake();
        }
    }

    pub(crate) fn drain(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.queue.lock().expect("completions poisoned"))
    }
}

/// One mutating request parked in the coalescing queue, with everything
/// the dispatcher needs to answer its connection.
pub(crate) struct Pending {
    req: Request,
    /// The namespace the mutation routes to (interned).
    tenant: Arc<str>,
    op: &'static str,
    req_id: Option<u64>,
    /// Connection index (the fault coordinate and the reply-grouping
    /// key).
    conn: u64,
    /// When the request was accepted — per-event latency is measured
    /// from here, so it includes the group-commit wait.
    accepted: Instant,
    route: ReplyRoute,
    /// An injected `Truncate` fault rides along: the dispatcher cuts
    /// this event's reply mid-frame and kills the connection.
    truncate: bool,
}

/// The group-commit coalescing queue (`Config::batch_max > 1` only):
/// mutating requests from every connection land here and a single
/// dispatcher thread drains them into one [`Registry::apply_events`]
/// call per drain.
struct Batcher {
    queue: Mutex<VecDeque<Pending>>,
    /// Signalled on every enqueue; the dispatcher waits on it.
    available: Condvar,
    max: usize,
    delay: Duration,
}

/// How often blocked reads and the acceptor wake up to poll shutdown.
const POLL_TICK: Duration = Duration::from_millis(25);

/// Set by the `SIGINT`/`SIGTERM` handler; polled by every server.
static SIGNAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Installs process-wide `SIGINT` and `SIGTERM` handlers that request a
/// graceful stop of every running [`Server`]. Call once, from the
/// binary — library users who manage their own signals use
/// [`Server::handle`] instead.
pub fn install_signal_handlers() {
    extern "C" fn request_shutdown(_sig: i32) {
        // Only async-signal-safe work here: one atomic store.
        SIGNAL_SHUTDOWN.store(true, Ordering::SeqCst);
    }
    #[cfg(unix)]
    unsafe {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        signal(SIGINT, request_shutdown as *const () as usize);
        signal(SIGTERM, request_shutdown as *const () as usize);
    }
}

pub(crate) struct Shared {
    /// The tenant → registry map (single-tenant deployments simply only
    /// ever touch `"default"`). Lock order across the whole server:
    /// `replays` → a tenant registry → the store; the namespaces map
    /// lock is taken only for lookups, never while waiting on another
    /// lock. The snapshot path takes `replays` then *every* tenant
    /// registry (ascending by name) — same order, so no cycles.
    namespaces: Namespaces,
    pub(crate) metrics: Metrics,
    shutdown: AtomicBool,
    pub(crate) request_timeout: Duration,
    /// `Some` only when a fault plan was configured.
    faults: Option<Arc<ScriptedFaults>>,
    /// Idempotency cache for mutating requests carrying a `req_id`.
    /// Lock order: `replays` before any registry, never the reverse.
    replays: Mutex<ReplayCache>,
    /// Monotone connection index — the `conn` fault coordinate.
    pub(crate) conns: AtomicU64,
    /// `Some` only when `batch_max > 1`: the group-commit queue.
    batch: Option<Batcher>,
    /// Which codecs incoming connections may negotiate.
    pub(crate) codec: CodecAccept,
    /// Event-core reply handoff (unused by the threaded core).
    pub(crate) completions: Completions,
    /// `Some` only when a data directory was configured: the durability
    /// subsystem (write-ahead log + snapshots).
    store: Option<Arc<Store>>,
    /// What `bind` recovered from disk, as reported under
    /// `stats.durability.recovery`.
    recovery: Value,
}

impl Shared {
    pub(crate) fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || SIGNAL_SHUTDOWN.load(Ordering::SeqCst)
    }
}

/// A cloneable handle that can stop a running [`Server`] from another
/// thread.
#[derive(Clone)]
pub struct ServerHandle(Arc<Shared>);

impl ServerHandle {
    /// Requests a graceful stop; `run` returns once in-flight requests
    /// finish.
    pub fn shutdown(&self) {
        self.0.shutdown.store(true, Ordering::SeqCst);
    }

    pub fn is_shutting_down(&self) -> bool {
        self.0.stopping()
    }

    /// The chronological fault-injection log (empty when no plan is
    /// configured). Determinism checks compare this across runs.
    pub fn fault_log(&self) -> Vec<InjectedFault> {
        self.0.faults.as_ref().map_or_else(Vec::new, |f| f.log())
    }

    /// Total faults injected so far (0 when no plan is configured).
    pub fn faults_injected(&self) -> u64 {
        self.0.faults.as_ref().map_or(0, |f| f.injected())
    }

    /// A point-in-time snapshot of the server's [`Metrics`] as JSON —
    /// the same counters the `stats` verb reports (requests, latency
    /// quantiles, connections gauge, per-codec counters). The `serve`
    /// front end prints its shutdown summary from this.
    pub fn metrics_json(&self) -> Value {
        self.0.metrics.to_json()
    }
}

/// The allocation daemon. [`Server::bind`] then [`Server::run`].
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    core: CoreKind,
}

impl Server {
    /// Binds the listening socket and builds the tenant namespaces,
    /// wired with the configured reallocation deadline and fault plan.
    /// With a data directory configured this is also where recovery
    /// happens: load the newest valid snapshot, verify the recovery
    /// invariant, replay the log tail, reseed the replay cache — all
    /// before the first connection is accepted.
    pub fn bind(config: Config) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let faults = config
            .faults
            .map(|plan| Arc::new(ScriptedFaults::new(plan)));
        // Recovery replays run fault-free (they re-apply mutations that
        // already succeeded once); the chaos seam arms only after.
        let mut namespaces = Namespaces::new(RegistryTemplate {
            levels: config.levels,
            threads: config.threads,
            realloc_timeout: config.realloc_timeout,
            components: config.components,
            faults: None,
        });
        let mut replays = ReplayCache::new();
        let mut recovery = Value::Null;
        let store = match &config.data_dir {
            None => None,
            Some(dir) => {
                let (store, recovered) =
                    Store::open(dir, config.durability, config.snapshot_every)?;
                let start = Instant::now();
                recover(&namespaces, &mut replays, &recovered).map_err(|msg| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("recovery from {} failed: {msg}", dir.display()),
                    )
                })?;
                recovery = json!({
                    "snapshot_seq": recovered.snapshot_seq,
                    "snapshot_tenants": recovered
                        .snapshot
                        .as_ref()
                        .map_or(0, |s| s.tenants.len()),
                    "wal_records_replayed": recovered.records.len(),
                    "torn_bytes_truncated": recovered.torn_bytes,
                    "recovery_us": start.elapsed().as_micros()
                        .min(u128::from(u64::MAX)) as u64,
                });
                Some(Arc::new(store))
            }
        };
        if let Some(hook) = &faults {
            namespaces.install_faults(Arc::clone(hook) as _);
        }
        let batch = (config.batch_max > 1).then(|| Batcher {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            max: config.batch_max,
            delay: config.batch_delay,
        });
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                namespaces,
                metrics: Metrics::new(),
                shutdown: AtomicBool::new(false),
                request_timeout: config.request_timeout,
                faults,
                replays: Mutex::new(replays),
                conns: AtomicU64::new(0),
                batch,
                codec: config.codec,
                completions: Completions::new(),
                store,
                recovery,
            }),
            core: config.core,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle for stopping the server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle(Arc::clone(&self.shared))
    }

    /// Serves until a `shutdown` request, a [`ServerHandle::shutdown`],
    /// or a handled signal. Joins every connection thread (threaded
    /// core) or flushes every live connection (event core) before
    /// returning.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let dispatcher = self.shared.batch.as_ref().map(|_| {
            let shared = Arc::clone(&self.shared);
            thread::spawn(move || run_dispatcher(&shared))
        });
        let result = match self.core {
            #[cfg(unix)]
            CoreKind::Event => crate::event::run_event_loop(&self.listener, &self.shared),
            #[cfg(not(unix))]
            CoreKind::Event => run_threaded(&self.listener, &self.shared),
            CoreKind::Threaded => run_threaded(&self.listener, &self.shared),
        };
        if let Some(d) = dispatcher {
            // Connections are done; the dispatcher drains any parked
            // mutations (late replies may hit dead sockets or an
            // already-stopped loop, which is fine) and exits on the
            // shutdown flag.
            let _ = d.join();
        }
        result
    }
}

/// The thread-per-connection acceptor: the original blocking core.
fn run_threaded(listener: &TcpListener, shared: &Arc<Shared>) -> std::io::Result<()> {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.stopping() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(shared);
                workers.push(thread::spawn(move || {
                    // A connection failing setup or I/O is its own
                    // problem; the server keeps serving.
                    let _ = serve_connection(stream, shared);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(POLL_TICK);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
        workers.retain(|w| !w.is_finished());
    }
    for w in workers {
        let _ = w.join();
    }
    Ok(())
}

/// Serves one client connection until it closes, stalls mid-request, or
/// the server shuts down (threaded core).
fn serve_connection(stream: TcpStream, shared: Arc<Shared>) -> std::io::Result<()> {
    // Fault coordinates: connection index and per-connection request
    // sequence number. Both are deterministic given the client's
    // connect/request order, which is what makes seeded schedules
    // reproducible.
    let conn = shared.conns.fetch_add(1, Ordering::SeqCst);
    shared.metrics.conn_opened();
    let res = serve_connection_inner(stream, &shared, conn);
    shared.metrics.conn_closed();
    res
}

fn serve_connection_inner(stream: TcpStream, shared: &Shared, conn: u64) -> std::io::Result<()> {
    stream.set_read_timeout(Some(POLL_TICK))?;
    stream.set_nodelay(true).ok();
    // The writer is shared with the dispatcher thread when batching is
    // on (coalesced replies are written by the dispatcher, inline
    // replies by this thread); a mutex keeps the frames whole.
    let writer = Arc::new(Mutex::new(stream.try_clone()?));
    let mut reader = stream;
    let mut fb = FrameBuf::new(shared.codec);
    let mut scratch = [0u8; 8192];
    let mut seq = 0u64;
    // Frames decoded so far — the frame-codec error policy keys off it.
    let mut decoded = 0u64;
    // `Some(t)` while a partial request frame is buffered: the moment
    // its first byte arrived (observed at the poll tick granularity).
    let mut partial_since: Option<Instant> = None;
    loop {
        if shared.stopping() {
            return Ok(());
        }
        match reader.read(&mut scratch) {
            Ok(0) => {
                // EOF. A final unterminated line still gets an answer;
                // a binary frame cut short is a clean drop.
                match fb.eof_residual() {
                    Ok(Some(payload)) => {
                        let codec = fb.kind().unwrap_or(CodecKind::Line);
                        shared.metrics.codec_request(codec);
                        let route = || ReplyRoute::Direct {
                            writer: Arc::clone(&writer),
                            codec,
                        };
                        match process_payload(shared, &payload, conn, seq, route) {
                            RequestAction::Reply {
                                reply, truncate, ..
                            } => {
                                let mut w = writer.lock().expect("writer poisoned");
                                if truncate {
                                    write_truncated(&mut w, codec, &reply)?;
                                } else {
                                    write_reply(&mut w, codec, &reply)?;
                                }
                            }
                            RequestAction::SilentClose | RequestAction::Parked => {}
                        }
                    }
                    Ok(None) => {}
                    Err(e) => frame_error_close(shared, &writer, &fb, decoded, &e)?,
                }
                return Ok(());
            }
            Ok(n) => {
                fb.push(&scratch[..n]);
                loop {
                    match fb.next_payload() {
                        Ok(Some(payload)) => {
                            partial_since = None;
                            decoded += 1;
                            let codec = fb.kind().expect("kind is sniffed once decoding");
                            shared.metrics.codec_request(codec);
                            let route = || ReplyRoute::Direct {
                                writer: Arc::clone(&writer),
                                codec,
                            };
                            match process_payload(shared, &payload, conn, seq, route) {
                                RequestAction::Parked => seq += 1,
                                RequestAction::SilentClose => return Ok(()),
                                RequestAction::Reply {
                                    reply,
                                    stop,
                                    truncate,
                                } => {
                                    seq += 1;
                                    let mut w = writer.lock().expect("writer poisoned");
                                    if truncate {
                                        // Connection dies *after* the
                                        // request executed but before
                                        // the full reply frame made it
                                        // out: the retry hits the
                                        // replay cache instead of
                                        // double-applying.
                                        write_truncated(&mut w, codec, &reply)?;
                                        return Ok(());
                                    }
                                    write_reply(&mut w, codec, &reply)?;
                                    if stop {
                                        return Ok(());
                                    }
                                }
                            }
                        }
                        Ok(None) => {
                            if fb.has_partial() {
                                partial_since.get_or_insert_with(Instant::now);
                            } else {
                                partial_since = None;
                            }
                            break;
                        }
                        Err(e) => {
                            let plan = fb.drain_plan(&e);
                            frame_error_close(shared, &writer, &fb, decoded, &e)?;
                            drain_errored(&mut reader, plan, shared.request_timeout);
                            return Ok(());
                        }
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Poll tick: partial bytes stay in the frame buffer, so
                // a slow request accumulates across ticks — but not
                // forever, and never past the frame cap.
                if !fb.has_partial() {
                    partial_since = None;
                    continue;
                }
                let since = *partial_since.get_or_insert_with(Instant::now);
                if since.elapsed() > shared.request_timeout {
                    let codec = fb.kind().unwrap_or(CodecKind::Line);
                    let reply = error_reply(stall_message(codec));
                    write_reply(&mut writer.lock().expect("writer poisoned"), codec, &reply)?;
                    return Ok(());
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// The stalled-partial-request error text, per codec (both say "timed
/// out" — tests and clients match on that).
pub(crate) fn stall_message(codec: CodecKind) -> &'static str {
    match codec {
        CodecKind::Line => "request timed out mid-line",
        CodecKind::Frame => "request timed out mid-frame",
    }
}

/// Swallows the remainder of an in-flight oversized request before
/// closing. The peer is mid-way through sending it; closing with those
/// bytes unread turns the close into an RST that can destroy the
/// structured error reply before the peer reads it. Bounded by the
/// stall budget (and EOF), so a peer that never finishes cannot pin
/// the connection.
fn drain_errored(reader: &mut TcpStream, plan: DrainPlan, budget: Duration) {
    let mut scratch = [0u8; 8192];
    let deadline = Instant::now() + budget.max(Duration::from_millis(100));
    let mut left = match plan {
        DrainPlan::None => return,
        DrainPlan::UntilNewline | DrainPlan::UntilEof => usize::MAX,
        DrainPlan::Bytes(n) => n,
    };
    while left > 0 {
        let want = scratch.len().min(left);
        match reader.read(&mut scratch[..want]) {
            Ok(0) => return,
            Ok(n) => match plan {
                DrainPlan::UntilNewline => {
                    if scratch[..n].contains(&b'\n') {
                        return;
                    }
                }
                DrainPlan::UntilEof => {}
                _ => left -= n,
            },
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if Instant::now() >= deadline {
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Answers a framing error (oversized, bad magic, bad payload, refused
/// codec) with a structured reply when that is safe, then lets the
/// caller close. On the line codec an error reply is always safe. On
/// the frame codec it is sent only once at least one frame decoded
/// (`decoded > 0`) — before that, the "binary" bytes may be arbitrary
/// junk that merely began with the magic byte, and answering junk with
/// binary would confuse line-speaking probes; those get a clean drop.
pub(crate) fn frame_error_close(
    shared: &Shared,
    writer: &Arc<Mutex<TcpStream>>,
    fb: &FrameBuf,
    decoded: u64,
    err: &FrameError,
) -> std::io::Result<()> {
    shared.metrics.record("invalid", false, Duration::ZERO);
    let codec = match err {
        // Refusals answer in the codec the *client* speaks, so it can
        // decode the explanation.
        FrameError::Refused(got) => *got,
        _ => fb.kind().unwrap_or(CodecKind::Line),
    };
    let structured = match codec {
        CodecKind::Line => true,
        CodecKind::Frame => decoded > 0 || matches!(err, FrameError::Refused(_)),
    };
    if structured {
        let reply = error_reply(&err.message());
        write_reply(&mut writer.lock().expect("writer poisoned"), codec, &reply)?;
    }
    Ok(())
}

/// What one decoded request frame resolved to.
pub(crate) enum RequestAction {
    /// Answer with `reply`; close after when `stop` or `truncate`.
    Reply {
        reply: Value,
        stop: bool,
        truncate: bool,
    },
    /// An injected `Drop`: close without replying — the request never
    /// executed, so a client retry (same `req_id`) applies it exactly
    /// once.
    SilentClose,
    /// Parked in the coalescing queue; the dispatcher will answer via
    /// the request's [`ReplyRoute`].
    Parked,
}

/// Decodes one payload into the request verb plus its tenant envelope —
/// the shared back half of both codecs.
fn decode(payload: &Payload) -> Result<(Request, String), String> {
    let decode_value = |v: &Value| {
        let req = Request::from_value(v)?;
        let tenant = tenant_of(v)?.to_string();
        Ok((req, tenant))
    };
    match payload {
        Payload::Line(line) => {
            let v: Value =
                serde_json::from_str(line).map_err(|e| format!("invalid JSON request: {e}"))?;
            decode_value(&v)
        }
        Payload::Frame(v) => decode_value(v),
    }
}

/// Handles one decoded payload: (maybe) inject a fault, decode the
/// request, park it (group-commit path) or execute it inline. Shared
/// verbatim by both cores and both codecs — this is what keeps replay,
/// coalescing, and fault semantics bit-identical across them.
pub(crate) fn process_payload(
    shared: &Shared,
    payload: &Payload,
    conn: u64,
    seq: u64,
    route: impl FnOnce() -> ReplyRoute,
) -> RequestAction {
    let action = shared
        .faults
        .as_ref()
        .map_or(FaultAction::None, |f| f.on_request(conn, seq));
    if matches!(action, FaultAction::Drop) {
        return RequestAction::SilentClose;
    }
    if let FaultAction::Delay(pause) = action {
        thread::sleep(pause);
    }
    let start = Instant::now();
    let parsed = decode(payload);
    // Group-commit path: mutating requests park in the coalescing queue
    // and the dispatcher answers them (per-event metrics, replay cache,
    // and any Truncate fault are all handled at drain time). Everything
    // else — reads, control, malformed input — stays inline.
    if let (Some(batcher), Ok((req, tenant))) = (shared.batch.as_ref(), &parsed) {
        if matches!(req, Request::Register { .. } | Request::Deregister { .. }) {
            let (tenant, _) = shared.namespaces.resolve(tenant);
            let pending = Pending {
                op: req.op_name(),
                req_id: req.req_id(),
                req: req.clone(),
                tenant,
                conn,
                accepted: start,
                route: route(),
                truncate: matches!(action, FaultAction::Truncate),
            };
            let mut queue = batcher.queue.lock().expect("batch queue poisoned");
            queue.push_back(pending);
            batcher.available.notify_one();
            return RequestAction::Parked;
        }
    }
    let (op, reply, stop, mutated) = match parsed {
        Err(msg) => ("invalid", error_reply(&msg), false, false),
        Ok((req, tenant)) => {
            let op = req.op_name();
            let mutated = matches!(
                req,
                Request::Register { .. }
                    | Request::Deregister { .. }
                    | Request::TemplateRegister { .. }
                    | Request::Instantiate { .. }
            );
            let (reply, stop) = execute(shared, req, &tenant);
            (op, reply, stop, mutated)
        }
    };
    let ok = reply["ok"] == true;
    shared.metrics.record(op, ok, start.elapsed());
    if mutated {
        // Inline mutations check the snapshot trigger themselves; the
        // coalesced path checks once per drain. No locks are held here.
        maybe_snapshot(shared);
    }
    RequestAction::Reply {
        reply,
        stop,
        truncate: matches!(action, FaultAction::Truncate),
    }
}

pub(crate) fn write_reply(
    writer: &mut TcpStream,
    codec: CodecKind,
    reply: &Value,
) -> std::io::Result<()> {
    let mut encoded = Vec::new();
    encode_payload(codec, reply, &mut encoded);
    writer.write_all(&encoded)?;
    writer.flush()
}

/// Writes only the first half of the encoded reply frame, then lets the
/// caller close the connection: a mid-frame failure on either codec.
pub(crate) fn write_truncated(
    writer: &mut TcpStream,
    codec: CodecKind,
    reply: &Value,
) -> std::io::Result<()> {
    let encoded = truncated_bytes(codec, reply);
    writer.write_all(&encoded)?;
    writer.flush()
}

/// The first half of a reply's encoded frame — what an injected
/// `Truncate` fault puts on the wire before the connection dies. The
/// cut is always mid-frame (a frame is ≥ 2 bytes on either codec), so
/// the client sees an unterminated line / incomplete frame, never a
/// spuriously valid reply.
pub(crate) fn truncated_bytes(codec: CodecKind, reply: &Value) -> Vec<u8> {
    let mut encoded = Vec::new();
    encode_payload(codec, reply, &mut encoded);
    encoded.truncate(encoded.len() / 2);
    encoded
}

/// Raw outcome of a mutation, captured under the registry lock. The
/// JSON reply is assembled from it *after* the lock is released, so
/// concurrent readers (`assign`, `stats`) only ever wait on the
/// mutation itself, never on serialization.
struct MutationRaw {
    /// `Ok` carries the reply ingredients; `Err` the error message.
    res: Result<MutationOk, String>,
    registry_size: u64,
    stale: bool,
}

struct MutationOk {
    txn_id: Option<TxnId>,
    level: Option<&'static str>,
    changed: Vec<LevelChange>,
}

/// Builds the wire reply from a [`MutationRaw`] (outside any lock).
fn mutation_reply(raw: MutationRaw) -> Value {
    let mut v = match raw.res {
        Ok(ok) => {
            let mut v = ok_reply();
            if let Some(id) = ok.txn_id {
                v["txn_id"] = Value::from(id.0);
            }
            if let Some(level) = ok.level {
                v["level"] = Value::from(level);
            }
            v["changed"] = changes_json(&ok.changed);
            v["registry_size"] = Value::from(raw.registry_size);
            v
        }
        Err(msg) => error_reply(&msg),
    };
    if raw.stale {
        v["stale"] = Value::from(true);
    }
    v
}

/// Applies one membership event to a registry, capturing the raw reply
/// ingredients under the lock. Shared by the inline path ([`mutate`])
/// and nothing else — the coalesced path goes through
/// [`Registry::apply_events`].
fn apply_event(reg: &mut Registry, event: &RegistryEvent) -> MutationRaw {
    let res = match event {
        RegistryEvent::Register(line) => match reg.register(line) {
            Ok(realloc) => {
                let id = realloc
                    .changed
                    .iter()
                    .find(|c| c.before.is_none())
                    .map(|c| c.txn);
                Ok(MutationOk {
                    txn_id: id,
                    level: id.map(|id| realloc.allocation.level(id).as_str()),
                    changed: realloc.changed,
                })
            }
            Err(e) => Err(e.to_string()),
        },
        RegistryEvent::Deregister(id) => match reg.deregister(*id) {
            Ok(realloc) => Ok(MutationOk {
                txn_id: Some(*id),
                level: None,
                changed: realloc.changed,
            }),
            Err(e) => Err(e.to_string()),
        },
        RegistryEvent::TemplateRegister(_) | RegistryEvent::Instantiate { .. } => {
            unreachable!("template events run through their own inline path")
        }
    };
    MutationRaw {
        res,
        registry_size: reg.len() as u64,
        stale: reg.degraded(),
    }
}

/// Runs a mutating request through the idempotency cache: a `req_id`
/// already answered replays the original reply (marked); otherwise the
/// mutation executes and, when it applied (`ok: true`), its reply is
/// remembered. Replies carrying a `req_id` echo it back, so pipelined
/// clients can match replies out of band. The replay lock is held
/// across check + execute + insert so concurrent retries of the same
/// `req_id` cannot double-apply; lock order is `replays` → registry
/// (see [`Shared`]).
///
/// With a store configured, the applied event is appended to the
/// write-ahead log **under the tenant's registry lock** — per-tenant
/// log order always equals apply order — and the logged record carries
/// the complete reply (including the `req_id` echo), so recovery
/// reseeds the replay cache with exactly what the client saw. The
/// commit point (one fsync under the `batch` policy) runs after the
/// lock is released.
fn mutate(shared: &Shared, tenant: &str, req_id: Option<u64>, event: RegistryEvent) -> Value {
    mutate_with(shared, tenant, req_id, &event, |reg| {
        mutation_reply(apply_event(reg, &event))
    })
}

/// The shared inline-mutation skeleton: replay-cache check, `apply`
/// under the tenant's registry lock, WAL append (still under the lock)
/// for applied mutations, commit after release, reply caching. Both the
/// engine path ([`mutate`]) and the template catalog path (which never
/// touches the allocator) run through it, so idempotency and
/// durability semantics are identical across the two.
fn mutate_with(
    shared: &Shared,
    tenant: &str,
    req_id: Option<u64>,
    event: &RegistryEvent,
    apply: impl FnOnce(&mut Registry) -> Value,
) -> Value {
    let run = |shared: &Shared| {
        let (tkey, reg_arc) = shared.namespaces.resolve(tenant);
        let mut reg = reg_arc.lock().expect("registry poisoned");
        let mut v = apply(&mut reg);
        if let Some(rid) = req_id {
            v["req_id"] = Value::from(rid);
        }
        // Only applied mutations are logged: a failed (rolled-back)
        // attempt left no state behind, so there is nothing to replay.
        if v["ok"] == true {
            if let Some(store) = &shared.store {
                if let Err(e) = store.append(&tkey, event, req_id, &v) {
                    eprintln!("mvservice: wal append failed: {e}");
                }
            }
        }
        drop(reg);
        if let Some(store) = &shared.store {
            if let Err(e) = store.commit() {
                eprintln!("mvservice: wal fsync failed: {e}");
            }
        }
        v
    };
    match req_id {
        None => run(shared),
        Some(rid) => {
            let (tkey, _) = shared.namespaces.resolve(tenant);
            let mut cache = shared.replays.lock().expect("replay cache poisoned");
            if let Some(prev) = cache.get(&tkey, rid) {
                let mut v = prev.clone();
                v["replayed"] = Value::from(true);
                shared.metrics.record_replay();
                return v;
            }
            let v = run(shared);
            // Only applied mutations are cached: a failed (rolled-back)
            // attempt left no state behind, so a retry must re-execute.
            if v["ok"] == true {
                cache.insert(tkey, rid, v.clone());
            }
            v
        }
    }
}

/// Executes a decoded request against its tenant's registry.
/// Mutations create the tenant on first touch; reads against an
/// unknown tenant answer as if it were empty (they never create one).
fn execute(shared: &Shared, req: Request, tenant: &str) -> (Value, bool) {
    match req {
        Request::Register { line, req_id } => {
            let v = mutate(shared, tenant, req_id, RegistryEvent::Register(line));
            if v["ok"] == true && v["replayed"] != true {
                // Ad-hoc registration is the delta-path admission: the
                // engine re-solved for this one transaction.
                shared.metrics.record_admission(false);
            }
            (v, false)
        }
        Request::Deregister { id, req_id } => {
            let v = mutate(shared, tenant, req_id, RegistryEvent::Deregister(id));
            (v, false)
        }
        Request::TemplateRegister { template, req_id } => {
            let event = RegistryEvent::TemplateRegister(template.clone());
            let v = mutate_with(shared, tenant, req_id, &event, |reg| {
                match reg.register_template(&template) {
                    Ok(entry) => {
                        let mut v = ok_reply();
                        v["template_id"] = Value::from(entry.template_id as u64);
                        v["level"] = Value::from(entry.level.as_str());
                        v["templates"] = Value::from(reg.template_count() as u64);
                        v["reverified"] = Value::from(entry.reverified as u64);
                        // Registering can move *earlier* templates to a
                        // lower level (the greedy recompute sees the
                        // grown set); report exactly what moved so
                        // callers can refresh cached levels.
                        v["changed"] = Value::Array(
                            entry
                                .changed
                                .iter()
                                .map(|c| {
                                    json!({
                                        "template": c.template_id as u64,
                                        "before": c.from.as_str(),
                                        "after": c.to.as_str(),
                                    })
                                })
                                .collect(),
                        );
                        v
                    }
                    Err(e) => error_reply(&e.to_string()),
                }
            });
            if v["ok"] == true && v["replayed"] != true {
                shared.metrics.record_template();
            }
            (v, false)
        }
        Request::Instantiate {
            template_id,
            params,
            req_id,
        } => {
            let event = RegistryEvent::Instantiate {
                template_id: template_id as usize,
                params: params.clone(),
            };
            let v = mutate_with(shared, tenant, req_id, &event, |reg| {
                match reg.admit_instance(template_id as usize, &params) {
                    Ok((level, instances)) => {
                        let mut v = ok_reply();
                        v["template_id"] = Value::from(template_id);
                        v["level"] = Value::from(level.as_str());
                        v["instances"] = Value::from(instances);
                        v
                    }
                    Err(e) => error_reply(&e.to_string()),
                }
            });
            if v["ok"] == true && v["replayed"] != true {
                shared.metrics.record_admission(true);
            }
            (v, false)
        }
        Request::TemplateList => {
            let templates: Vec<Value> = match shared.namespaces.get(tenant) {
                None => Vec::new(),
                Some((_, reg_arc)) => {
                    let reg = reg_arc.lock().expect("registry poisoned");
                    reg.templates()
                        .into_iter()
                        .map(|t| {
                            json!({
                                "id": t.id as u64,
                                "name": t.name,
                                "text": t.text,
                                "level": t.level.as_str(),
                                "param_count": t.param_count as u64,
                                "instances": t.instances,
                            })
                        })
                        .collect()
                }
            };
            let mut v = ok_reply();
            v["templates"] = Value::Array(templates);
            (v, false)
        }
        Request::Assign { id } => {
            let found = shared.namespaces.get(tenant).and_then(|(_, reg_arc)| {
                let mut reg = reg_arc.lock().expect("registry poisoned");
                reg.assign(id).map(|level| (level, reg.degraded()))
            });
            match found {
                Some((level, degraded)) => {
                    let mut v = ok_reply();
                    v["txn_id"] = Value::from(id.0);
                    v["level"] = Value::from(level.as_str());
                    if degraded {
                        // The served allocation is still the exact
                        // optimum of the *applied* set, but a recent
                        // change was rejected — let readers know.
                        v["stale"] = Value::from(true);
                    }
                    (v, false)
                }
                None => (
                    error_reply(&format!("transaction {id} is not registered")),
                    false,
                ),
            }
        }
        Request::Stats => {
            let mut v = shared.metrics.to_json();
            v["ok"] = Value::from(true);
            v["tenant"] = Value::from(tenant);
            v["tenants"] = Value::from(shared.namespaces.len() as u64);
            match shared.namespaces.get(tenant) {
                Some((_, reg_arc)) => {
                    let reg = reg_arc.lock().expect("registry poisoned");
                    v["registry_size"] = Value::from(reg.len() as u64);
                    v["levels"] = Value::from(reg.levels().label());
                    v["degraded"] = Value::from(reg.degraded());
                    v["failed_reallocs"] = Value::from(reg.failed_reallocs());
                    v["last_realloc"] = match reg.last_stats() {
                        None => Value::Null,
                        Some(s) => {
                            let mut m = serde_json::Map::new();
                            m.insert("probes".to_string(), Value::from(s.probes));
                            m.insert("cache_hits".to_string(), Value::from(s.cache_hits));
                            m.insert("cached_specs".to_string(), Value::from(s.cached_specs));
                            m.insert("iso_builds".to_string(), Value::from(s.iso_builds));
                            m.insert(
                                "components_checked".to_string(),
                                Value::from(s.components_checked),
                            );
                            m.insert(
                                "components_cached".to_string(),
                                Value::from(s.components_cached),
                            );
                            m.insert("kernel_row_ops".to_string(), Value::from(s.kernel_row_ops));
                            m.insert("batch_events".to_string(), Value::from(s.batch_events));
                            m.insert(
                                "batched_components_solved".to_string(),
                                Value::from(s.batched_components_solved),
                            );
                            m.insert("threads".to_string(), Value::from(s.threads as u64));
                            m.insert(
                                "wall_us".to_string(),
                                Value::from(s.wall.as_micros().min(u128::from(u64::MAX)) as u64),
                            );
                            Value::Object(m)
                        }
                    };
                }
                None => {
                    // An unknown (or not yet touched) tenant reads as
                    // empty — same fields, zero values.
                    v["registry_size"] = Value::from(0u64);
                    v["levels"] = Value::from(shared.namespaces.levels().label());
                    v["degraded"] = Value::from(false);
                    v["failed_reallocs"] = Value::from(0u64);
                    v["last_realloc"] = Value::Null;
                }
            }
            if let Some(f) = &shared.faults {
                v["faults_injected"] = Value::from(f.injected());
            }
            let sc = shared.namespaces.shared_cache();
            v["shared_cache"] = json!({
                "hits": sc.hits(),
                "misses": sc.misses(),
                "inserts": sc.inserts(),
                "entries": sc.len() as u64,
                "hit_rate": sc.hit_rate(),
            });
            if let Some(store) = &shared.store {
                v["durability"] = json!({
                    "policy": store.durability().as_str(),
                    "wal_appends": store.appends(),
                    "fsyncs": store.fsyncs(),
                    "snapshots": store.snapshots(),
                    "next_seq": store.next_seq(),
                    "since_snapshot": store.since_snapshot(),
                    "recovery": shared.recovery.clone(),
                });
            }
            (v, false)
        }
        Request::List => {
            let txns: Vec<Value> = match shared.namespaces.get(tenant) {
                None => Vec::new(),
                Some((_, reg_arc)) => {
                    let mut reg = reg_arc.lock().expect("registry poisoned");
                    reg.list()
                        .into_iter()
                        .map(|t| {
                            let mut m = serde_json::Map::new();
                            m.insert("id".to_string(), Value::from(t.id.0));
                            m.insert("text".to_string(), Value::from(t.text));
                            m.insert("level".to_string(), Value::from(t.level.as_str()));
                            Value::Object(m)
                        })
                        .collect()
                }
            };
            let mut v = ok_reply();
            v["txns"] = Value::Array(txns);
            (v, false)
        }
        Request::Ping => {
            let mut v = ok_reply();
            v["pong"] = Value::from(true);
            (v, false)
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            let mut v = ok_reply();
            v["shutting_down"] = Value::from(true);
            (v, true)
        }
    }
}

/// The group-commit dispatcher loop: wait for the first parked
/// mutation, linger up to `batch_delay` for companions (re-checking
/// until the window closes or the drain is full), then drain up to
/// `batch_max` events and apply them as one engine batch. Exits once
/// shutdown is requested and the queue is empty.
fn run_dispatcher(shared: &Shared) {
    let batcher = shared
        .batch
        .as_ref()
        .expect("dispatcher runs only with batching enabled");
    loop {
        let drain: Vec<Pending> = {
            let mut queue = batcher.queue.lock().expect("batch queue poisoned");
            loop {
                if !queue.is_empty() {
                    break;
                }
                if shared.stopping() {
                    return;
                }
                let (guard, _timeout) = batcher
                    .available
                    .wait_timeout(queue, POLL_TICK)
                    .expect("batch queue poisoned");
                queue = guard;
            }
            // The group-commit window: something is queued — hold the
            // drain open briefly so bursts from other connections
            // coalesce into the same engine batch. Skipped when
            // stopping (drain immediately) or the drain is already
            // full.
            if !shared.stopping() && !batcher.delay.is_zero() {
                let window_closes = Instant::now() + batcher.delay;
                while queue.len() < batcher.max {
                    let now = Instant::now();
                    if now >= window_closes || shared.stopping() {
                        break;
                    }
                    let (guard, _timeout) = batcher
                        .available
                        .wait_timeout(queue, window_closes - now)
                        .expect("batch queue poisoned");
                    queue = guard;
                }
            }
            let n = queue.len().min(batcher.max);
            queue.drain(..n).collect()
        };
        process_drain(shared, drain);
    }
}

/// Applies one drained batch end to end: per-*event* replay-cache
/// check, one [`Registry::apply_events`] pass per tenant group (events
/// keep their submission order within each tenant), per-event metrics
/// and replay caching, then one buffered write + flush per connection.
///
/// With a store configured, each applied event's reply is assembled
/// and appended to the write-ahead log under its tenant's registry
/// lock (log order = apply order, and the logged reply is exactly what
/// the client receives); the whole drain then commits with **one**
/// fsync under the `batch` durability policy — the group-commit
/// alignment the fsync policy is named for.
fn process_drain(shared: &Shared, batch: Vec<Pending>) {
    let mut replies: Vec<Option<Value>> = Vec::with_capacity(batch.len());
    replies.resize_with(batch.len(), || None);
    let mut fresh: Vec<usize> = Vec::new();
    let mut deferred: Vec<usize> = Vec::new();
    {
        // Replay check per event, not per batch: each retried req_id
        // individually replays its original reply; only genuinely new
        // events reach the engine. Lock order stays replays → registry.
        let cache = shared.replays.lock().expect("replay cache poisoned");
        let mut claimed: Vec<(Arc<str>, u64)> = Vec::new();
        for (i, p) in batch.iter().enumerate() {
            if let Some(rid) = p.req_id {
                if let Some(prev) = cache.get(&p.tenant, rid) {
                    let mut v = prev.clone();
                    v["replayed"] = Value::from(true);
                    shared.metrics.record_replay();
                    replies[i] = Some(v);
                    continue;
                }
                let key = (Arc::clone(&p.tenant), rid);
                if claimed.contains(&key) {
                    // The same idempotency key twice in one drain (a
                    // fast retry racing its original): defer the
                    // duplicate to the next drain, where the replay
                    // cache — updated by this one — decides.
                    deferred.push(i);
                    continue;
                }
                claimed.push(key);
            }
            fresh.push(i);
        }
    }
    // Group the fresh events by tenant (submission order within each
    // group is preserved); each group is one engine batch under its
    // own tenant's registry lock, so tenants coalesce independently.
    let mut tenant_order: Vec<Arc<str>> = Vec::new();
    let mut by_tenant: HashMap<Arc<str>, Vec<usize>> = HashMap::new();
    for &i in &fresh {
        let slot = by_tenant.entry(Arc::clone(&batch[i].tenant)).or_default();
        if slot.is_empty() {
            tenant_order.push(Arc::clone(&batch[i].tenant));
        }
        slot.push(i);
    }
    let mut total_events = 0usize;
    for tkey in &tenant_order {
        let idxs = &by_tenant[tkey];
        let events: Vec<RegistryEvent> = idxs
            .iter()
            .map(|&i| match &batch[i].req {
                Request::Register { line, .. } => RegistryEvent::Register(line.clone()),
                Request::Deregister { id, .. } => RegistryEvent::Deregister(*id),
                _ => unreachable!("only mutating requests are enqueued"),
            })
            .collect();
        total_events += events.len();
        let (_, reg_arc) = shared.namespaces.resolve(tkey);
        let mut reg = reg_arc.lock().expect("registry poisoned");
        match reg.apply_events(&events) {
            Ok(reply) => {
                let changed_json = changes_json(&reply.changed);
                let registry_size = reg.len() as u64;
                let stale = reg.degraded();
                for ((&i, outcome), event) in idxs.iter().zip(&reply.outcomes).zip(&events) {
                    let mut v = match outcome {
                        Ok(id) => {
                            // A registered id deregistered later in the
                            // same batch has no level anymore — `assign`
                            // reads the *post-batch* truth.
                            let level = match event {
                                RegistryEvent::Register(_) => reg.assign(*id).map(|l| l.as_str()),
                                RegistryEvent::Deregister(_) => None,
                                RegistryEvent::TemplateRegister(_)
                                | RegistryEvent::Instantiate { .. } => {
                                    unreachable!("template events are never coalesced")
                                }
                            };
                            let mut v = ok_reply();
                            v["txn_id"] = Value::from(id.0);
                            if let Some(level) = level {
                                v["level"] = Value::from(level);
                            }
                            v["changed"] = changed_json.clone();
                            v["registry_size"] = Value::from(registry_size);
                            v
                        }
                        Err(e) => error_reply(&e.to_string()),
                    };
                    if stale {
                        v["stale"] = Value::from(true);
                    }
                    if let Some(rid) = batch[i].req_id {
                        v["req_id"] = Value::from(rid);
                    }
                    if v["ok"] == true {
                        if matches!(event, RegistryEvent::Register(_)) {
                            shared.metrics.record_admission(false);
                        }
                        if let Some(store) = &shared.store {
                            if let Err(e) = store.append(tkey, event, batch[i].req_id, &v) {
                                eprintln!("mvservice: wal append failed: {e}");
                            }
                        }
                    }
                    replies[i] = Some(v);
                }
            }
            Err(e) => {
                // Whole-batch failure for this tenant (injected fault
                // or timeout): nothing applied, every event of the
                // group reports the same degradation error, and the
                // last-known-good allocation keeps being served. Other
                // tenants' groups are untouched.
                let msg = e.to_string();
                let stale = reg.degraded();
                for &i in idxs {
                    let mut v = error_reply(&msg);
                    if stale {
                        v["stale"] = Value::from(true);
                    }
                    if let Some(rid) = batch[i].req_id {
                        v["req_id"] = Value::from(rid);
                    }
                    replies[i] = Some(v);
                }
            }
        }
    }
    // The drain's single commit point: one covering fsync under the
    // `batch` durability policy.
    if let Some(store) = &shared.store {
        if let Err(e) = store.commit() {
            eprintln!("mvservice: wal fsync failed: {e}");
        }
    }
    if total_events > 0 {
        shared.metrics.record_batch(total_events);
    }
    // Per-event metrics (replays included): latency runs from request
    // acceptance, so the group-commit wait is part of the reported
    // cost.
    for (i, p) in batch.iter().enumerate() {
        if let Some(v) = &replies[i] {
            shared
                .metrics
                .record(p.op, v["ok"] == true, p.accepted.elapsed());
        }
    }
    {
        // Remember applied mutations per event req_id — exactly the
        // single-event rule, applied event-by-event inside the batch.
        let mut cache = shared.replays.lock().expect("replay cache poisoned");
        for &i in &fresh {
            if let (Some(rid), Some(v)) = (batch[i].req_id, &replies[i]) {
                if v["ok"] == true {
                    cache.insert(Arc::clone(&batch[i].tenant), rid, v.clone());
                }
            }
        }
    }
    // Replies grouped by connection in submission order; one buffered
    // write + flush per connection per drain (threaded core), or one
    // completion-queue push + wake for the whole drain (event core).
    let mut conn_order: Vec<u64> = Vec::new();
    let mut by_conn: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, p) in batch.iter().enumerate() {
        if replies[i].is_some() {
            let slot = by_conn.entry(p.conn).or_default();
            if slot.is_empty() {
                conn_order.push(p.conn);
            }
            slot.push(i);
        }
    }
    let mut completions: Vec<Completion> = Vec::new();
    for conn in conn_order {
        let idxs = &by_conn[&conn];
        match &batch[idxs[0]].route {
            ReplyRoute::Direct { writer, codec } => {
                let mut buf = Vec::new();
                let mut kill = false;
                for &i in idxs {
                    let v = replies[i].as_ref().expect("grouped indices have replies");
                    if batch[i].truncate {
                        // The injected mid-frame failure: half the
                        // encoded reply frame, then the connection
                        // dies. Later replies for this connection are
                        // lost with it — their retries hit the replay
                        // cache.
                        buf.extend_from_slice(&truncated_bytes(*codec, v));
                        kill = true;
                        break;
                    }
                    encode_payload(*codec, v, &mut buf);
                }
                let writer = Arc::clone(writer);
                let mut w = writer.lock().expect("writer poisoned");
                // A dead client is its own problem; the drain keeps
                // going.
                let _ = w.write_all(&buf);
                let _ = w.flush();
                if kill {
                    let _ = w.shutdown(Shutdown::Both);
                }
            }
            ReplyRoute::Loop { key } => {
                for &i in idxs {
                    let v = replies[i].take().expect("grouped indices have replies");
                    let truncate = batch[i].truncate;
                    completions.push(Completion {
                        key: *key,
                        reply: v,
                        truncate,
                    });
                    if truncate {
                        // The loop kills the connection at the cut;
                        // later replies would hit a dead socket anyway.
                        break;
                    }
                }
            }
        }
    }
    shared.completions.push_all(completions);
    // Deferred duplicates re-enter at the front, in original order, for
    // the next drain.
    if !deferred.is_empty() {
        let batcher = shared.batch.as_ref().expect("drain implies batching");
        let mut pendings: Vec<Pending> = Vec::new();
        for (i, p) in batch.into_iter().enumerate() {
            if deferred.contains(&i) {
                pendings.push(p);
            }
        }
        let mut queue = batcher.queue.lock().expect("batch queue poisoned");
        for p in pendings.into_iter().rev() {
            queue.push_front(p);
        }
        batcher.available.notify_one();
    }
    // One snapshot check per drain, with no locks held.
    maybe_snapshot(shared);
}

/// Takes a snapshot when one is due. Stop-the-world over the captured
/// cut: `replays` then *every* tenant registry (ascending by name —
/// the same global lock order every mutation follows) are held from
/// capture through WAL truncation, so the snapshot is a consistent
/// point of the multi-tenant state and no record can land between what
/// it covers and the truncated log. One snapshot runs at a time
/// ([`Store::begin_snapshot`] is a CAS); callers invoke this with no
/// locks held.
pub(crate) fn maybe_snapshot(shared: &Shared) {
    let Some(store) = &shared.store else { return };
    if !store.wants_snapshot() || !store.begin_snapshot() {
        return;
    }
    let tenants = shared.namespaces.all();
    let replays = shared.replays.lock().expect("replay cache poisoned");
    let mut guards = Vec::with_capacity(tenants.len());
    for (name, reg) in &tenants {
        guards.push((Arc::clone(name), reg.lock().expect("registry poisoned")));
    }
    let mut state = SnapshotState::default();
    for (name, reg) in guards.iter_mut() {
        let listed = reg.list();
        let catalog = reg.templates();
        state.tenants.push(TenantSnapshot {
            name: name.to_string(),
            lines: listed.iter().map(|t| t.text.clone()).collect(),
            alloc: listed
                .iter()
                .map(|t| (t.id.0, t.level.as_str().to_string()))
                .collect(),
            templates: catalog
                .iter()
                .map(|t| (t.text.clone(), t.level.as_str().to_string()))
                .collect(),
            instances: catalog.iter().map(|t| t.instances).collect(),
        });
    }
    state.replays = replays.entries();
    state.cache = shared
        .namespaces
        .shared_cache()
        .entries()
        .into_iter()
        .map(|(key, entry)| {
            let stored = match entry {
                CompEntry::Unallocatable => None,
                CompEntry::Robust(lvls) => Some(
                    lvls.iter()
                        .map(|(id, l)| (id.0, l.as_str().to_string()))
                        .collect(),
                ),
            };
            (key, stored)
        })
        .collect();
    if let Err(e) = store.write_snapshot(&state) {
        eprintln!("mvservice: snapshot failed: {e}");
        store.abort_snapshot();
    }
}

/// Rebuilds the in-memory state `bind` serves from what the store
/// recovered. Snapshot first: the shared fingerprint cache is restored
/// *before* the tenants (so re-registration is answered from cache),
/// each tenant's canonical lines are re-registered — re-solved, not
/// trusted — and the **recovery invariant** is checked: the recomputed
/// allocation must equal the snapshotted one (the optimum is unique by
/// Proposition 4.2, so any mismatch means corruption, not drift). Then
/// the WAL tail replays in log order and the replay cache is reseeded
/// with the exact replies the clients originally saw.
fn recover(
    namespaces: &Namespaces,
    replays: &mut ReplayCache,
    recovered: &crate::store::Recovered,
) -> Result<(), String> {
    let parse_level = |lvl: &str| {
        lvl.parse::<IsolationLevel>()
            .map_err(|_| format!("bad isolation level `{lvl}` in snapshot"))
    };
    if let Some(snap) = &recovered.snapshot {
        for (key, entry) in &snap.cache {
            let entry = match entry {
                None => CompEntry::Unallocatable,
                Some(lvls) => CompEntry::Robust(
                    lvls.iter()
                        .map(|(id, lvl)| parse_level(lvl).map(|l| (TxnId(*id), l)))
                        .collect::<Result<Vec<_>, _>>()?,
                ),
            };
            namespaces.shared_cache().restore(*key, entry);
        }
        for t in &snap.tenants {
            let (_, reg_arc) = namespaces.resolve(&t.name);
            let mut reg = reg_arc.lock().expect("registry poisoned");
            for line in &t.lines {
                reg.register(line)
                    .map_err(|e| format!("tenant {}: replaying `{line}`: {e}", t.name))?;
            }
            if reg.len() != t.alloc.len() {
                return Err(format!(
                    "tenant {}: snapshot lists {} transactions but {} recovered",
                    t.name,
                    t.alloc.len(),
                    reg.len()
                ));
            }
            for (id, lvl) in &t.alloc {
                let want = parse_level(lvl)?;
                match reg.assign(TxnId(*id)) {
                    Some(got) if got == want => {}
                    got => {
                        return Err(format!(
                            "tenant {}: recovery invariant violated: T{id} \
                             recomputed as {got:?}, snapshot says {want}",
                            t.name
                        ));
                    }
                }
            }
            // Template catalogs recover the same way the allocation
            // does: re-registered in snapshot (= registration) order
            // and re-audited, never trusted. The recomputed levels are
            // checked only after the whole sequence replays — a later
            // registration legitimately moves earlier templates, so the
            // snapshot records final levels, not at-registration ones.
            for (line, _) in &t.templates {
                reg.register_template(line)
                    .map_err(|e| format!("tenant {}: replaying template `{line}`: {e}", t.name))?;
            }
            for ((line, lvl), info) in t.templates.iter().zip(reg.templates()) {
                let want = parse_level(lvl)?;
                if info.level != want {
                    return Err(format!(
                        "tenant {}: recovery invariant violated: template `{line}` \
                         recomputed as {}, snapshot says {want}",
                        t.name, info.level
                    ));
                }
            }
            reg.restore_instances(&t.instances);
        }
        for (tenant, rid, reply) in &snap.replays {
            let (key, _) = namespaces.resolve(tenant);
            replays.insert(key, *rid, reply.clone());
        }
    }
    for rec in &recovered.records {
        let (key, reg_arc) = namespaces.resolve(&rec.tenant);
        {
            let mut reg = reg_arc.lock().expect("registry poisoned");
            // Only applied mutations were logged, so the replay must
            // apply too; a failure here means the log and snapshot
            // disagree.
            let res = match &rec.event {
                RegistryEvent::Register(line) => reg.register(line).map(|_| ()),
                RegistryEvent::Deregister(id) => reg.deregister(*id).map(|_| ()),
                RegistryEvent::TemplateRegister(line) => reg.register_template(line).map(|_| ()),
                RegistryEvent::Instantiate {
                    template_id,
                    params,
                } => reg.admit_instance(*template_id, params).map(|_| ()),
            };
            res.map_err(|e| {
                format!(
                    "tenant {}: replaying log record {}: {e}",
                    rec.tenant, rec.seq
                )
            })?;
        }
        if let Some(rid) = rec.req_id {
            replays.insert(key, rid, rec.reply.clone());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::ReplayCache;
    use serde_json::json;
    use std::sync::Arc;

    fn t(name: &str) -> Arc<str> {
        Arc::from(name)
    }

    /// The eviction boundary: filling past capacity evicts strictly
    /// oldest-first, so every entry younger than `cap` insertions — the
    /// window a retrying client can actually still be in — survives.
    #[test]
    fn replay_cache_evicts_oldest_first_and_keeps_the_retry_window() {
        const CAP: usize = 8;
        let mut cache = ReplayCache::with_capacity(CAP);
        let tenant = t("acme");
        for rid in 0..(CAP as u64 * 2) {
            cache.insert(Arc::clone(&tenant), rid, json!({"rid": rid}));
            // Invariants hold at every step, not just at the end.
            assert!(cache.order.len() <= CAP, "order grew past cap");
            assert_eq!(cache.replies.len(), cache.order.len(), "map/queue skew");
            // The newest min(inserted, cap) entries are all present.
            let oldest_kept = (rid + 1).saturating_sub(CAP as u64);
            for kept in oldest_kept..=rid {
                assert_eq!(
                    cache.get(&tenant, kept),
                    Some(&json!({"rid": kept})),
                    "entry {kept} inside the retry window was dropped at step {rid}"
                );
            }
            if oldest_kept > 0 {
                assert_eq!(
                    cache.get(&tenant, oldest_kept - 1),
                    None,
                    "evicted entry resurfaced at step {rid}"
                );
            }
        }
        // Insertion order is preserved end to end (the snapshot capture
        // relies on this to restore the eviction queue faithfully).
        let rids: Vec<u64> = cache.entries().iter().map(|(_, rid, _)| *rid).collect();
        let expect: Vec<u64> = (CAP as u64..CAP as u64 * 2).collect();
        assert_eq!(rids, expect, "entries() must walk oldest → newest");
    }

    /// Re-inserting a live key must not duplicate it in the eviction
    /// queue — a duplicate would make one retry burst age out other
    /// tenants' entries early.
    #[test]
    fn replay_cache_duplicate_insert_does_not_double_count() {
        let mut cache = ReplayCache::with_capacity(4);
        let tenant = t("acme");
        for _ in 0..10 {
            cache.insert(Arc::clone(&tenant), 7, json!({"first": true}));
        }
        assert_eq!(cache.order.len(), 1, "duplicate inserts grew the queue");
        assert_eq!(cache.get(&tenant, 7), Some(&json!({"first": true})));
        // Keys are tenant-scoped: the same rid elsewhere is distinct.
        cache.insert(t("zeta"), 7, json!({"zeta": true}));
        assert_eq!(cache.get(&t("zeta"), 7), Some(&json!({"zeta": true})));
        assert_eq!(cache.get(&tenant, 7), Some(&json!({"first": true})));
        assert_eq!(cache.order.len(), 2);
    }
}
