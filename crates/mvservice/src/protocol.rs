//! The wire protocol: newline-delimited JSON over TCP.
//!
//! Every request is one JSON object on one line; every reply is one
//! JSON object on one line. Replies carry `"ok": true` plus
//! op-specific fields, or `"ok": false` with a human-readable
//! `"error"` — malformed input produces an error reply, never a
//! dropped connection.
//!
//! | op           | request fields               | reply fields                              |
//! |--------------|------------------------------|-------------------------------------------|
//! | `register`   | `txn` (text line), `req_id`? | `txn_id`, `level`, `changed`, `registry_size` |
//! | `deregister` | `txn_id`, `req_id`?          | `txn_id`, `changed`, `registry_size`      |
//! | `assign`     | `txn_id`                     | `txn_id`, `level`                         |
//! | `template_register` | `template` (text line), `req_id`? | `template_id`, `level`, `changed`, `templates` |
//! | `instantiate` | `template_id`, `params`, `req_id`? | `template_id`, `level`, `instances` |
//! | `template_list` | —                         | `templates`: `[{id, name, text, level, param_count, instances}]` |
//! | `stats`      | —                            | counters, latencies, `last_realloc`       |
//! | `list`       | —                            | `txns`: `[{id, text, level}]`             |
//! | `ping`       | —                            | `pong`                                    |
//! | `shutdown`   | —                            | `shutting_down`                           |
//!
//! `register`/`deregister` are the *delta path*: the engine re-solves
//! the allocation for the concrete transaction. `template_register`
//! audits a parametrized template once (slow), after which
//! `instantiate` admits each instance on the *fast path* — a pure O(1)
//! catalog lookup that never touches the allocator.
//!
//! `changed` reports the transactions whose level differs from the
//! previous optimum (`before` is `null` for a newly entered
//! transaction, `after` is `null` for a departed one).
//!
//! `req_id` is an optional numeric idempotency key on the mutating ops
//! (`register`, `deregister`, `template_register`, `instantiate`). A client that retries a request after a connection failure
//! sends the same `req_id`; if the first attempt already applied, the
//! server answers from its replay cache with the original reply plus
//! `"replayed": true` instead of double-applying the delta. Replies to
//! mutating ops served while the registry is degraded (a reallocation
//! failed and the last-known-good allocation is still being served)
//! additionally carry `"stale": true`.
//!
//! `tenant` is an optional *envelope* field on every request (both
//! codecs): it names the namespace the request routes to and is not
//! part of the verb itself — see [`tenant_of`]. Requests without it go
//! to `"default"`, keeping pre-tenant clients bit-compatible.

use crate::namespace::{valid_tenant, DEFAULT_TENANT};
use mvisolation::LevelChange;
use mvmodel::TxnId;
use serde_json::{json, Value};

/// Hard cap on the size of one request, shared by every transport:
/// the byte length of a line on the line-JSON codec, and the declared
/// payload length of a binary frame on the frame codec. The server
/// rejects anything larger with a structured error and closes the
/// connection; the client refuses to encode it; the fuzzer probes it.
pub const MAX_FRAME: usize = 1 << 20;

/// A decoded client request.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Request {
    Register {
        line: String,
        req_id: Option<u64>,
    },
    Deregister {
        id: TxnId,
        req_id: Option<u64>,
    },
    Assign {
        id: TxnId,
    },
    TemplateRegister {
        template: String,
        req_id: Option<u64>,
    },
    Instantiate {
        template_id: u64,
        params: Vec<u32>,
        req_id: Option<u64>,
    },
    TemplateList,
    Stats,
    List,
    Ping,
    Shutdown,
}

impl Request {
    /// The `op` field value naming this request (also the metrics key).
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::Register { .. } => "register",
            Request::Deregister { .. } => "deregister",
            Request::Assign { .. } => "assign",
            Request::TemplateRegister { .. } => "template_register",
            Request::Instantiate { .. } => "instantiate",
            Request::TemplateList => "template_list",
            Request::Stats => "stats",
            Request::List => "list",
            Request::Ping => "ping",
            Request::Shutdown => "shutdown",
        }
    }

    /// Decodes one request line. The error string is ready to ship in
    /// an [`error_reply`].
    pub fn parse(line: &str) -> Result<Request, String> {
        let v: Value =
            serde_json::from_str(line).map_err(|e| format!("invalid JSON request: {e}"))?;
        Request::from_value(&v)
    }

    /// Decodes one already-parsed request value — the shared back half
    /// of both codecs: the line codec parses JSON text first, the
    /// binary frame codec decodes its compact value encoding first,
    /// and both land here.
    pub fn from_value(v: &Value) -> Result<Request, String> {
        if v.as_object().is_none() {
            return Err("request must be a JSON object".to_string());
        }
        let op = v["op"]
            .as_str()
            .ok_or("missing string field `op`")?
            .to_string();
        match op.as_str() {
            "register" => {
                let line = v["txn"]
                    .as_str()
                    .ok_or("register needs a string field `txn`")?
                    .to_string();
                Ok(Request::Register {
                    line,
                    req_id: req_id(v)?,
                })
            }
            "deregister" => Ok(Request::Deregister {
                id: txn_id(v)?,
                req_id: req_id(v)?,
            }),
            "assign" => Ok(Request::Assign { id: txn_id(v)? }),
            "template_register" => {
                let template = v["template"]
                    .as_str()
                    .ok_or("template_register needs a string field `template`")?
                    .to_string();
                Ok(Request::TemplateRegister {
                    template,
                    req_id: req_id(v)?,
                })
            }
            "instantiate" => {
                let template_id = v["template_id"]
                    .as_u64()
                    .ok_or("missing numeric field `template_id`")?;
                let params = match &v["params"] {
                    Value::Null => Vec::new(),
                    Value::Array(items) => {
                        let mut out = Vec::with_capacity(items.len());
                        for item in items {
                            let raw = item.as_u64().ok_or(
                                "field `params` must be an array of non-negative integers",
                            )?;
                            out.push(
                                u32::try_from(raw)
                                    .map_err(|_| format!("param {raw} out of range"))?,
                            );
                        }
                        out
                    }
                    _ => return Err("field `params` must be an array".to_string()),
                };
                Ok(Request::Instantiate {
                    template_id,
                    params,
                    req_id: req_id(v)?,
                })
            }
            "template_list" => Ok(Request::TemplateList),
            "stats" => Ok(Request::Stats),
            "list" => Ok(Request::List),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!(
                "unknown op `{other}` (expected register, deregister, assign, template_register, \
                 instantiate, template_list, stats, list, ping or shutdown)"
            )),
        }
    }

    /// The idempotency key, when this is a mutating request that set one.
    pub fn req_id(&self) -> Option<u64> {
        match self {
            Request::Register { req_id, .. }
            | Request::Deregister { req_id, .. }
            | Request::TemplateRegister { req_id, .. }
            | Request::Instantiate { req_id, .. } => *req_id,
            _ => None,
        }
    }

    /// Encodes the request as its wire JSON object.
    pub fn to_json(&self) -> Value {
        match self {
            Request::Register { line, req_id } => {
                let mut v = json!({"op": "register", "txn": line.as_str()});
                if let Some(r) = req_id {
                    v["req_id"] = Value::from(*r);
                }
                v
            }
            Request::Deregister { id, req_id } => {
                let mut v = json!({"op": "deregister", "txn_id": id.0});
                if let Some(r) = req_id {
                    v["req_id"] = Value::from(*r);
                }
                v
            }
            Request::Assign { id } => json!({"op": "assign", "txn_id": id.0}),
            Request::TemplateRegister { template, req_id } => {
                let mut v = json!({"op": "template_register", "template": template.as_str()});
                if let Some(r) = req_id {
                    v["req_id"] = Value::from(*r);
                }
                v
            }
            Request::Instantiate {
                template_id,
                params,
                req_id,
            } => {
                let mut v = json!({
                    "op": "instantiate",
                    "template_id": *template_id,
                    "params": params.iter().map(|&p| Value::from(p as u64)).collect::<Vec<_>>(),
                });
                if let Some(r) = req_id {
                    v["req_id"] = Value::from(*r);
                }
                v
            }
            Request::TemplateList => json!({"op": "template_list"}),
            Request::Stats => json!({"op": "stats"}),
            Request::List => json!({"op": "list"}),
            Request::Ping => json!({"op": "ping"}),
            Request::Shutdown => json!({"op": "shutdown"}),
        }
    }
}

/// The tenant a request value routes to: the optional `tenant`
/// envelope field, validated, defaulting to [`DEFAULT_TENANT`] when
/// absent. Decoded separately from [`Request::from_value`] because the
/// tenant addresses a namespace rather than shaping the verb.
pub fn tenant_of(v: &Value) -> Result<&str, String> {
    match &v["tenant"] {
        Value::Null => Ok(DEFAULT_TENANT),
        Value::String(s) if valid_tenant(s) => Ok(s.as_str()),
        Value::String(s) => Err(format!(
            "invalid tenant `{s}` (need 1-64 characters from [A-Za-z0-9_-])"
        )),
        _ => Err("field `tenant` must be a string".to_string()),
    }
}

fn txn_id(v: &Value) -> Result<TxnId, String> {
    let raw = v["txn_id"]
        .as_u64()
        .ok_or("missing numeric field `txn_id`")?;
    let id = u32::try_from(raw).map_err(|_| format!("txn_id {raw} out of range"))?;
    Ok(TxnId(id))
}

fn req_id(v: &Value) -> Result<Option<u64>, String> {
    match &v["req_id"] {
        Value::Null => Ok(None),
        other => other
            .as_u64()
            .map(Some)
            .ok_or_else(|| "field `req_id` must be a non-negative integer".to_string()),
    }
}

/// An `"ok": false` reply carrying a message.
pub fn error_reply(message: &str) -> Value {
    json!({"ok": false, "error": message})
}

/// An `"ok": true` reply skeleton; callers add op-specific fields.
pub fn ok_reply() -> Value {
    json!({"ok": true})
}

/// Encodes a [`LevelChange`] list as the wire `changed` array.
pub fn changes_json(changes: &[LevelChange]) -> Value {
    Value::Array(
        changes
            .iter()
            .map(|c| {
                json!({
                    "txn": c.txn.0,
                    "before": c.before.map(|l| l.as_str()),
                    "after": c.after.map(|l| l.as_str()),
                })
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_json() {
        let reqs = [
            Request::Register {
                line: "T1: R[x] W[y]".to_string(),
                req_id: None,
            },
            Request::Register {
                line: "T2: W[z]".to_string(),
                req_id: Some(0xfeed),
            },
            Request::Deregister {
                id: TxnId(7),
                req_id: None,
            },
            Request::Deregister {
                id: TxnId(8),
                req_id: Some(u64::MAX),
            },
            Request::Assign { id: TxnId(3) },
            Request::TemplateRegister {
                template: "Balance: R[sav:$0] R[chk:$0]".to_string(),
                req_id: Some(12),
            },
            Request::TemplateRegister {
                template: "Report: R[sum]".to_string(),
                req_id: None,
            },
            Request::Instantiate {
                template_id: 0,
                params: vec![42, 7],
                req_id: Some(0xbeef),
            },
            Request::Instantiate {
                template_id: 3,
                params: vec![],
                req_id: None,
            },
            Request::TemplateList,
            Request::Stats,
            Request::List,
            Request::Ping,
            Request::Shutdown,
        ];
        for req in reqs {
            let wire = serde_json::to_string(&req.to_json()).unwrap();
            assert_eq!(Request::parse(&wire).unwrap(), req);
        }
    }

    #[test]
    fn malformed_requests_give_helpful_errors() {
        assert!(Request::parse("not json").unwrap_err().contains("JSON"));
        assert!(Request::parse("42").unwrap_err().contains("object"));
        assert!(Request::parse("{}").unwrap_err().contains("op"));
        assert!(Request::parse(r#"{"op":"fly"}"#)
            .unwrap_err()
            .contains("unknown op `fly`"));
        assert!(Request::parse(r#"{"op":"assign"}"#)
            .unwrap_err()
            .contains("txn_id"));
        assert!(Request::parse(r#"{"op":"register"}"#)
            .unwrap_err()
            .contains("txn"));
        assert!(Request::parse(r#"{"op":"assign","txn_id":99999999999}"#)
            .unwrap_err()
            .contains("out of range"));
        assert!(
            Request::parse(r#"{"op":"register","txn":"T1: W[x]","req_id":-3}"#)
                .unwrap_err()
                .contains("req_id")
        );
        assert!(
            Request::parse(r#"{"op":"deregister","txn_id":1,"req_id":"abc"}"#)
                .unwrap_err()
                .contains("req_id")
        );
        assert!(Request::parse(r#"{"op":"template_register"}"#)
            .unwrap_err()
            .contains("template"));
        assert!(Request::parse(r#"{"op":"instantiate"}"#)
            .unwrap_err()
            .contains("template_id"));
        assert!(
            Request::parse(r#"{"op":"instantiate","template_id":0,"params":"x"}"#)
                .unwrap_err()
                .contains("array")
        );
        assert!(
            Request::parse(r#"{"op":"instantiate","template_id":0,"params":[-1]}"#)
                .unwrap_err()
                .contains("params")
        );
        assert!(
            Request::parse(r#"{"op":"instantiate","template_id":0,"params":[99999999999]}"#)
                .unwrap_err()
                .contains("out of range")
        );
    }

    #[test]
    fn instantiate_params_default_to_empty() {
        let req = Request::parse(r#"{"op":"instantiate","template_id":2}"#).unwrap();
        assert_eq!(
            req,
            Request::Instantiate {
                template_id: 2,
                params: vec![],
                req_id: None,
            }
        );
        assert_eq!(req.op_name(), "instantiate");
        let reg = Request::parse(r#"{"op":"template_register","template":"T: R[x]","req_id":4}"#)
            .unwrap();
        assert_eq!(reg.req_id(), Some(4));
        assert_eq!(reg.op_name(), "template_register");
        assert_eq!(Request::TemplateList.req_id(), None);
    }

    #[test]
    fn tenant_envelope_defaults_and_validates() {
        let v: Value = serde_json::from_str(r#"{"op":"ping"}"#).unwrap();
        assert_eq!(tenant_of(&v).unwrap(), DEFAULT_TENANT);
        let v: Value = serde_json::from_str(r#"{"op":"ping","tenant":"acme-7"}"#).unwrap();
        assert_eq!(tenant_of(&v).unwrap(), "acme-7");
        // The envelope is orthogonal to the verb: the same value still
        // decodes as the same request.
        assert_eq!(Request::from_value(&v).unwrap(), Request::Ping);
        let v: Value = serde_json::from_str(r#"{"op":"ping","tenant":"a b"}"#).unwrap();
        assert!(tenant_of(&v).unwrap_err().contains("invalid tenant"));
        let v: Value = serde_json::from_str(r#"{"op":"ping","tenant":7}"#).unwrap();
        assert!(tenant_of(&v).unwrap_err().contains("must be a string"));
        let v: Value = serde_json::from_str(r#"{"op":"ping","tenant":""}"#).unwrap();
        assert!(tenant_of(&v).is_err());
    }

    #[test]
    fn req_id_accessor_covers_mutating_ops_only() {
        let reg = Request::parse(r#"{"op":"register","txn":"T1: W[x]","req_id":9}"#).unwrap();
        assert_eq!(reg.req_id(), Some(9));
        let dereg = Request::parse(r#"{"op":"deregister","txn_id":1}"#).unwrap();
        assert_eq!(dereg.req_id(), None);
        assert_eq!(Request::Ping.req_id(), None);
    }

    #[test]
    fn changed_array_encodes_nulls_for_enter_and_leave() {
        use mvisolation::IsolationLevel;
        let changes = vec![
            LevelChange {
                txn: TxnId(1),
                before: Some(IsolationLevel::SI),
                after: Some(IsolationLevel::SSI),
            },
            LevelChange {
                txn: TxnId(2),
                before: None,
                after: Some(IsolationLevel::RC),
            },
        ];
        let v = changes_json(&changes);
        assert_eq!(v[0]["before"], "SI");
        assert_eq!(v[0]["after"], "SSI");
        assert!(v[1]["before"].is_null());
        assert_eq!(v[1]["txn"], 2u64);
    }
}
