//! The wire protocol: newline-delimited JSON over TCP.
//!
//! Every request is one JSON object on one line; every reply is one
//! JSON object on one line. Replies carry `"ok": true` plus
//! op-specific fields, or `"ok": false` with a human-readable
//! `"error"` — malformed input produces an error reply, never a
//! dropped connection.
//!
//! | op           | request fields        | reply fields                              |
//! |--------------|-----------------------|-------------------------------------------|
//! | `register`   | `txn` (text line)     | `txn_id`, `level`, `changed`, `registry_size` |
//! | `deregister` | `txn_id`              | `txn_id`, `changed`, `registry_size`      |
//! | `assign`     | `txn_id`              | `txn_id`, `level`                         |
//! | `stats`      | —                     | counters, latencies, `last_realloc`       |
//! | `list`       | —                     | `txns`: `[{id, text, level}]`             |
//! | `ping`       | —                     | `pong`                                    |
//! | `shutdown`   | —                     | `shutting_down`                           |
//!
//! `changed` reports the transactions whose level differs from the
//! previous optimum (`before` is `null` for a newly entered
//! transaction, `after` is `null` for a departed one).

use mvisolation::LevelChange;
use mvmodel::TxnId;
use serde_json::{json, Value};

/// A decoded client request.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Request {
    Register { line: String },
    Deregister { id: TxnId },
    Assign { id: TxnId },
    Stats,
    List,
    Ping,
    Shutdown,
}

impl Request {
    /// The `op` field value naming this request (also the metrics key).
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::Register { .. } => "register",
            Request::Deregister { .. } => "deregister",
            Request::Assign { .. } => "assign",
            Request::Stats => "stats",
            Request::List => "list",
            Request::Ping => "ping",
            Request::Shutdown => "shutdown",
        }
    }

    /// Decodes one request line. The error string is ready to ship in
    /// an [`error_reply`].
    pub fn parse(line: &str) -> Result<Request, String> {
        let v: Value =
            serde_json::from_str(line).map_err(|e| format!("invalid JSON request: {e}"))?;
        if v.as_object().is_none() {
            return Err("request must be a JSON object".to_string());
        }
        let op = v["op"]
            .as_str()
            .ok_or("missing string field `op`")?
            .to_string();
        match op.as_str() {
            "register" => {
                let line = v["txn"]
                    .as_str()
                    .ok_or("register needs a string field `txn`")?
                    .to_string();
                Ok(Request::Register { line })
            }
            "deregister" => Ok(Request::Deregister { id: txn_id(&v)? }),
            "assign" => Ok(Request::Assign { id: txn_id(&v)? }),
            "stats" => Ok(Request::Stats),
            "list" => Ok(Request::List),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!(
                "unknown op `{other}` (expected register, deregister, assign, stats, list, ping or shutdown)"
            )),
        }
    }

    /// Encodes the request as its wire JSON object.
    pub fn to_json(&self) -> Value {
        match self {
            Request::Register { line } => json!({"op": "register", "txn": line.as_str()}),
            Request::Deregister { id } => json!({"op": "deregister", "txn_id": id.0}),
            Request::Assign { id } => json!({"op": "assign", "txn_id": id.0}),
            Request::Stats => json!({"op": "stats"}),
            Request::List => json!({"op": "list"}),
            Request::Ping => json!({"op": "ping"}),
            Request::Shutdown => json!({"op": "shutdown"}),
        }
    }
}

fn txn_id(v: &Value) -> Result<TxnId, String> {
    let raw = v["txn_id"]
        .as_u64()
        .ok_or("missing numeric field `txn_id`")?;
    let id = u32::try_from(raw).map_err(|_| format!("txn_id {raw} out of range"))?;
    Ok(TxnId(id))
}

/// An `"ok": false` reply carrying a message.
pub fn error_reply(message: &str) -> Value {
    json!({"ok": false, "error": message})
}

/// An `"ok": true` reply skeleton; callers add op-specific fields.
pub fn ok_reply() -> Value {
    json!({"ok": true})
}

/// Encodes a [`LevelChange`] list as the wire `changed` array.
pub fn changes_json(changes: &[LevelChange]) -> Value {
    Value::Array(
        changes
            .iter()
            .map(|c| {
                json!({
                    "txn": c.txn.0,
                    "before": c.before.map(|l| l.as_str()),
                    "after": c.after.map(|l| l.as_str()),
                })
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_json() {
        let reqs = [
            Request::Register {
                line: "T1: R[x] W[y]".to_string(),
            },
            Request::Deregister { id: TxnId(7) },
            Request::Assign { id: TxnId(3) },
            Request::Stats,
            Request::List,
            Request::Ping,
            Request::Shutdown,
        ];
        for req in reqs {
            let wire = serde_json::to_string(&req.to_json()).unwrap();
            assert_eq!(Request::parse(&wire).unwrap(), req);
        }
    }

    #[test]
    fn malformed_requests_give_helpful_errors() {
        assert!(Request::parse("not json").unwrap_err().contains("JSON"));
        assert!(Request::parse("42").unwrap_err().contains("object"));
        assert!(Request::parse("{}").unwrap_err().contains("op"));
        assert!(Request::parse(r#"{"op":"fly"}"#)
            .unwrap_err()
            .contains("unknown op `fly`"));
        assert!(Request::parse(r#"{"op":"assign"}"#)
            .unwrap_err()
            .contains("txn_id"));
        assert!(Request::parse(r#"{"op":"register"}"#)
            .unwrap_err()
            .contains("txn"));
        assert!(Request::parse(r#"{"op":"assign","txn_id":99999999999}"#)
            .unwrap_err()
            .contains("out of range"));
    }

    #[test]
    fn changed_array_encodes_nulls_for_enter_and_leave() {
        use mvisolation::IsolationLevel;
        let changes = vec![
            LevelChange {
                txn: TxnId(1),
                before: Some(IsolationLevel::SI),
                after: Some(IsolationLevel::SSI),
            },
            LevelChange {
                txn: TxnId(2),
                before: None,
                after: Some(IsolationLevel::RC),
            },
        ];
        let v = changes_json(&changes);
        assert_eq!(v[0]["before"], "SI");
        assert_eq!(v[0]["after"], "SSI");
        assert!(v[1]["before"].is_null());
        assert_eq!(v[1]["txn"], 2u64);
    }
}
