//! Transaction templates: parametrized transaction programs, bounded
//! instantiation, and template-level robustness auditing.
//!
//! The paper studies robustness for *concrete* transaction sets and notes
//! (§6.3.1, citing Vandevoort et al., PVLDB 2021) that workloads are in
//! practice generated from a fixed API of *transaction templates* — e.g.
//! TPC-C's five programs — and that transaction-level characterizations
//! are the stepping stone to template-level ones. This crate provides
//! that stepping stone executably:
//!
//! - [`Template`]: a program whose operations address either fixed
//!   objects or parameter-dependent objects (`table:arg`).
//! - [`TemplateSet::instantiate`]: concrete transaction sets from
//!   argument tuples.
//! - [`TemplateSet::bounded_instantiation`]: the union of *all*
//!   instantiations with parameters from a bounded domain, each tuple
//!   duplicated `copies` times.
//! - [`audit`]: robustness of the bounded instantiation under a
//!   per-template level assignment. Because appending transactions to a
//!   set preserves non-robustness (the split schedule of Definition 3.1
//!   appends extra transactions serially), robustness of the bounded
//!   union implies robustness of **every** workload whose instances draw
//!   their parameters from the domain with at most `copies` duplicates
//!   per tuple — a sound audit for the bounded space, and a refutation
//!   procedure for template robustness in general.
//! - [`optimal_template_allocation`]: the least per-template level
//!   assignment whose bounded instantiation is robust (greedy refinement
//!   from all-SSI; sound by the same exchange argument as the paper's
//!   Proposition 4.1(2), applied instance-wise).

use mvisolation::{Allocation, IsolationLevel};
use mvmodel::{ModelError, OpKind, TransactionSet, TxnSetBuilder};
use mvrobustness::{is_robust, SplitSpec};

/// One operation of a template: read or write of a fixed object or of a
/// parameter-dependent object.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TemplateOp {
    pub kind: OpKind,
    /// Table / object-family name.
    pub table: String,
    /// `None` → the fixed object `table`; `Some(i)` → object
    /// `table:<args[i]>`.
    pub param: Option<usize>,
}

/// A parametrized transaction program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Template {
    name: String,
    ops: Vec<TemplateOp>,
}

impl Template {
    pub fn new(name: impl Into<String>) -> Self {
        Template {
            name: name.into(),
            ops: Vec::new(),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn ops(&self) -> &[TemplateOp] {
        &self.ops
    }

    /// Read of the parameter-`i` object of `table`.
    pub fn read(mut self, table: &str, param: usize) -> Self {
        self.ops.push(TemplateOp {
            kind: OpKind::Read,
            table: table.into(),
            param: Some(param),
        });
        self
    }

    /// Write of the parameter-`i` object of `table`.
    pub fn write(mut self, table: &str, param: usize) -> Self {
        self.ops.push(TemplateOp {
            kind: OpKind::Write,
            table: table.into(),
            param: Some(param),
        });
        self
    }

    /// Read of the single shared object `table`.
    pub fn read_fixed(mut self, table: &str) -> Self {
        self.ops.push(TemplateOp {
            kind: OpKind::Read,
            table: table.into(),
            param: None,
        });
        self
    }

    /// Write of the single shared object `table`.
    pub fn write_fixed(mut self, table: &str) -> Self {
        self.ops.push(TemplateOp {
            kind: OpKind::Write,
            table: table.into(),
            param: None,
        });
        self
    }

    /// Number of parameters the template expects (1 + max index used).
    pub fn param_count(&self) -> usize {
        self.ops
            .iter()
            .filter_map(|o| o.param)
            .map(|p| p + 1)
            .max()
            .unwrap_or(0)
    }
}

/// A fixed API of templates — the unit of template-level analysis.
#[derive(Clone, Default, Debug)]
pub struct TemplateSet {
    templates: Vec<Template>,
}

impl TemplateSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a template, returning its index.
    pub fn add(&mut self, template: Template) -> usize {
        self.templates.push(template);
        self.templates.len() - 1
    }

    pub fn len(&self) -> usize {
        self.templates.len()
    }

    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    pub fn get(&self, idx: usize) -> &Template {
        &self.templates[idx]
    }

    /// Instantiates concrete transactions: one per `(template index,
    /// arguments)` pair, ids assigned 1… in order. Duplicate operations
    /// arising from parameter collisions (two parameters mapping to the
    /// same object) are deduplicated keeping the first occurrence, so the
    /// model's one-read/one-write-per-object rule always holds.
    pub fn instantiate(
        &self,
        instances: &[(usize, Vec<u32>)],
    ) -> Result<(TransactionSet, Vec<usize>), ModelError> {
        let mut b = TxnSetBuilder::new();
        let mut origin = Vec::with_capacity(instances.len());
        for (i, (tidx, args)) in instances.iter().enumerate() {
            let template = &self.templates[*tidx];
            assert!(
                args.len() >= template.param_count(),
                "template `{}` needs {} arguments",
                template.name,
                template.param_count()
            );
            let mut names: Vec<(OpKind, String)> = Vec::new();
            for op in &template.ops {
                let name = match op.param {
                    None => op.table.clone(),
                    Some(p) => format!("{}:{}", op.table, args[p]),
                };
                if !names.contains(&(op.kind, name.clone())) {
                    names.push((op.kind, name));
                }
            }
            let mut t = b.txn(i as u32 + 1);
            for (kind, name) in names {
                t = match kind {
                    OpKind::Read => t.read_named(&name),
                    OpKind::Write => t.write_named(&name),
                };
            }
            t.finish();
            origin.push(*tidx);
        }
        b.build().map(|set| (set, origin))
    }

    /// The union of all instantiations with every argument tuple from
    /// `{0, …, domain−1}^k`, each duplicated `copies` times. Returns the
    /// set plus the originating template index of each transaction (in
    /// `TxnId` order 1…n).
    pub fn bounded_instantiation(
        &self,
        copies: usize,
        domain: u32,
    ) -> Result<(TransactionSet, Vec<usize>), ModelError> {
        assert!(copies >= 1 && domain >= 1);
        let mut instances = Vec::new();
        for (tidx, template) in self.templates.iter().enumerate() {
            let k = template.param_count();
            let tuples = (domain as usize).pow(k as u32);
            for tuple in 0..tuples {
                let mut args = Vec::with_capacity(k);
                let mut rest = tuple;
                for _ in 0..k {
                    args.push((rest % domain as usize) as u32);
                    rest /= domain as usize;
                }
                for _ in 0..copies {
                    instances.push((tidx, args.clone()));
                }
            }
        }
        self.instantiate(&instances)
    }
}

/// Result of a template-level robustness audit.
#[derive(Clone, Debug)]
pub struct TemplateAudit {
    /// Whether the bounded instantiation is robust.
    pub robust: bool,
    /// A counterexample over the bounded instantiation, if not.
    pub counterexample: Option<SplitSpec>,
    /// Size of the audited transaction set.
    pub instances: usize,
}

/// Audits the per-template level assignment `levels` against the bounded
/// instantiation (`copies` duplicates, parameter domain `{0…domain−1}`).
///
/// `robust = true` certifies every workload drawing instances from the
/// bounded space; `robust = false` *refutes* template robustness outright
/// (any counterexample instantiation is a counterexample workload).
pub fn audit(
    templates: &TemplateSet,
    levels: &[IsolationLevel],
    copies: usize,
    domain: u32,
) -> TemplateAudit {
    assert_eq!(levels.len(), templates.len(), "one level per template");
    let (txns, origin) = templates
        .bounded_instantiation(copies, domain)
        .expect("bounded instantiation is well-formed");
    let alloc: Allocation = txns
        .ids()
        .enumerate()
        .map(|(i, t)| (t, levels[origin[i]]))
        .collect();
    let report = is_robust(&txns, &alloc);
    TemplateAudit {
        robust: report.robust(),
        instances: txns.len(),
        counterexample: report.into_counterexample(),
    }
}

/// The least per-template level assignment whose bounded instantiation is
/// robust, refined greedily from all-SSI (always robust).
pub fn optimal_template_allocation(
    templates: &TemplateSet,
    copies: usize,
    domain: u32,
) -> Vec<IsolationLevel> {
    let mut levels = vec![IsolationLevel::SSI; templates.len()];
    for i in 0..templates.len() {
        for &lvl in [IsolationLevel::RC, IsolationLevel::SI].iter() {
            let mut candidate = levels.clone();
            candidate[i] = lvl;
            if audit(templates, &candidate, copies, domain).robust {
                levels = candidate;
                break;
            }
        }
    }
    levels
}

/// The SmallBank benchmark as templates (parameter = customer id).
pub fn smallbank_templates() -> TemplateSet {
    let mut set = TemplateSet::new();
    set.add(Template::new("Balance").read("sav", 0).read("chk", 0));
    set.add(
        Template::new("DepositChecking")
            .read("chk", 0)
            .write("chk", 0),
    );
    set.add(
        Template::new("TransactSavings")
            .read("sav", 0)
            .write("sav", 0),
    );
    set.add(
        Template::new("Amalgamate")
            .read("sav", 0)
            .write("sav", 0)
            .read("chk", 0)
            .write("chk", 0)
            .read("chk", 1)
            .write("chk", 1),
    );
    set.add(
        Template::new("WriteCheck")
            .read("sav", 0)
            .read("chk", 0)
            .write("chk", 0),
    );
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvmodel::TxnId;

    fn counter_templates() -> TemplateSet {
        let mut set = TemplateSet::new();
        // Increment(c): R(counter:c) W(counter:c).
        set.add(
            Template::new("Increment")
                .read("counter", 0)
                .write("counter", 0),
        );
        // Report: reads a fixed summary object.
        set.add(Template::new("Report").read_fixed("summary"));
        set
    }

    #[test]
    fn template_shapes() {
        let set = counter_templates();
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        assert_eq!(set.get(0).param_count(), 1);
        assert_eq!(set.get(1).param_count(), 0);
        assert_eq!(set.get(0).name(), "Increment");
        assert_eq!(set.get(0).ops().len(), 2);
    }

    #[test]
    fn instantiation_concrete() {
        let set = counter_templates();
        let (txns, origin) = set
            .instantiate(&[(0, vec![7]), (0, vec![9]), (1, vec![])])
            .unwrap();
        assert_eq!(txns.len(), 3);
        assert_eq!(origin, vec![0, 0, 1]);
        assert!(txns.object_by_name("counter:7").is_some());
        assert!(txns.object_by_name("counter:9").is_some());
        assert!(txns.object_by_name("summary").is_some());
        // Different counters don't conflict.
        assert!(!mvmodel::conflict::txns_conflict(&txns, TxnId(1), TxnId(2)));
    }

    #[test]
    fn bounded_instantiation_counts() {
        let set = counter_templates();
        // Increment: domain² tuples? one param → domain tuples; Report: 1.
        let (txns, origin) = set.bounded_instantiation(2, 3).unwrap();
        assert_eq!(txns.len(), 2 * 3 + 2);
        assert_eq!(origin.iter().filter(|&&t| t == 0).count(), 6);
    }

    #[test]
    fn increment_audit() {
        let set = counter_templates();
        // Two concurrent increments of the same counter: lost update at
        // RC, fine at SI.
        let rc = vec![IsolationLevel::RC, IsolationLevel::RC];
        let a = audit(&set, &rc, 2, 2);
        assert!(!a.robust);
        assert!(a.counterexample.is_some());
        let si = vec![IsolationLevel::SI, IsolationLevel::RC];
        assert!(audit(&set, &si, 2, 2).robust);
        assert_eq!(
            optimal_template_allocation(&set, 2, 2),
            vec![IsolationLevel::SI, IsolationLevel::RC]
        );
    }

    #[test]
    fn smallbank_template_allocation() {
        let set = smallbank_templates();
        let levels = optimal_template_allocation(&set, 2, 2);
        // The bounded instantiation must be robust under the result.
        assert!(audit(&set, &levels, 2, 2).robust);
        // SmallBank's write-skew forces SSI somewhere.
        assert!(levels.contains(&IsolationLevel::SerializableSnapshotIsolation));
        // All-SI must fail (the benchmark's raison d'être).
        assert!(!audit(&set, &[IsolationLevel::SI; 5], 2, 2).robust);
    }

    #[test]
    fn parameter_collision_dedup() {
        let set = smallbank_templates();
        // Amalgamate(c, c): both params the same customer — chk:c would
        // be read/written twice without dedup.
        let (txns, _) = set.instantiate(&[(3, vec![1, 1])]).unwrap();
        let t = txns.txn(TxnId(1));
        // sav:1 R+W, chk:1 R+W → 4 ops.
        assert_eq!(t.len(), 4);
    }

    #[test]
    #[should_panic(expected = "needs 2 arguments")]
    fn missing_arguments_panic() {
        let set = smallbank_templates();
        let _ = set.instantiate(&[(3, vec![1])]);
    }
}
