//! Transaction templates: parametrized transaction programs, bounded
//! instantiation, and template-level robustness auditing.
//!
//! The paper studies robustness for *concrete* transaction sets and notes
//! (§6.3.1, citing Vandevoort et al., PVLDB 2021) that workloads are in
//! practice generated from a fixed API of *transaction templates* — e.g.
//! TPC-C's five programs — and that transaction-level characterizations
//! are the stepping stone to template-level ones. This crate provides
//! that stepping stone executably:
//!
//! - [`Template`]: a program whose operations address either fixed
//!   objects or parameter-dependent objects (`table:arg`).
//! - [`TemplateSet::instantiate`]: concrete transaction sets from
//!   argument tuples.
//! - [`TemplateSet::bounded_instantiation`]: the union of *all*
//!   instantiations with parameters from a bounded domain, each tuple
//!   duplicated `copies` times.
//! - [`audit`]: robustness of the bounded instantiation under a
//!   per-template level assignment. Because appending transactions to a
//!   set preserves non-robustness (the split schedule of Definition 3.1
//!   appends extra transactions serially), robustness of the bounded
//!   union implies robustness of **every** workload whose instances draw
//!   their parameters from the domain with at most `copies` duplicates
//!   per tuple — a sound audit for the bounded space, and a refutation
//!   procedure for template robustness in general.
//! - [`optimal_template_allocation`]: the least per-template level
//!   assignment whose bounded instantiation is robust (greedy refinement
//!   from all-SSI; sound by the same exchange argument as the paper's
//!   Proposition 4.1(2), applied instance-wise).
//! - [`TemplateCatalog`]: the admission fast path. Registration audits
//!   the grown template set once (and re-verifies the result on
//!   randomized instantiations drawn from the bounded envelope);
//!   [`TemplateCatalog::admit`] is then a pure O(1) level lookup plus
//!   parameter-count validation — no Algorithm 1 run, no engine call.
//! - [`Template::parse`] / [`Template::render`]: the one-line wire
//!   syntax (`Name: R[table:$0] W[fixed]`) used by the service protocol,
//!   WAL and snapshots.

use std::fmt;

use mvisolation::{Allocation, IsolationLevel};
use mvmodel::{ModelError, OpKind, TransactionSet, TxnSetBuilder};
use mvrobustness::{is_robust, reverify, SplitSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Hard cap on template parameters: the bounded instantiation enumerates
/// `domain^k` tuples per template, so `k` must stay small for catalog
/// registration to stay cheap. Four parameters is double the widest
/// template in TPC-C/SmallBank.
pub const MAX_TEMPLATE_PARAMS: usize = 4;

/// Structured template errors. Every malformed input — an out-of-range
/// template index, a short argument vector, an unparsable template line —
/// maps here so callers (the service protocol in particular) can turn it
/// into an error reply instead of panicking.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TemplateError {
    /// Template index out of range for the set/catalog.
    UnknownTemplate { idx: usize, len: usize },
    /// An argument vector whose length does not satisfy the template's
    /// `param_count()` (instantiation tolerates surplus; admission is
    /// strict).
    MissingArguments {
        name: String,
        needs: usize,
        got: usize,
    },
    /// A template line that does not follow `Name: R[tbl:$0] W[fixed]`.
    Parse { line: String, reason: String },
    /// More parameters than [`MAX_TEMPLATE_PARAMS`] — the bounded audit
    /// space `domain^k` would blow up.
    TooManyParams { name: String, count: usize },
    /// The instantiated transactions violate the model rules.
    Model(ModelError),
}

impl fmt::Display for TemplateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemplateError::UnknownTemplate { idx, len } => {
                write!(f, "unknown template id {idx} (catalog has {len})")
            }
            TemplateError::MissingArguments { name, needs, got } => {
                write!(f, "template `{name}` needs {needs} arguments, got {got}")
            }
            TemplateError::Parse { line, reason } => {
                write!(f, "bad template line {line:?}: {reason}")
            }
            TemplateError::TooManyParams { name, count } => write!(
                f,
                "template `{name}` has {count} parameters (max {MAX_TEMPLATE_PARAMS})"
            ),
            TemplateError::Model(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TemplateError {}

impl From<ModelError> for TemplateError {
    fn from(e: ModelError) -> Self {
        TemplateError::Model(e)
    }
}

/// One operation of a template: read or write of a fixed object or of a
/// parameter-dependent object.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TemplateOp {
    pub kind: OpKind,
    /// Table / object-family name.
    pub table: String,
    /// `None` → the fixed object `table`; `Some(i)` → object
    /// `table:<args[i]>`.
    pub param: Option<usize>,
}

/// A parametrized transaction program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Template {
    name: String,
    ops: Vec<TemplateOp>,
}

impl Template {
    pub fn new(name: impl Into<String>) -> Self {
        Template {
            name: name.into(),
            ops: Vec::new(),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn ops(&self) -> &[TemplateOp] {
        &self.ops
    }

    /// Read of the parameter-`i` object of `table`.
    pub fn read(mut self, table: &str, param: usize) -> Self {
        self.ops.push(TemplateOp {
            kind: OpKind::Read,
            table: table.into(),
            param: Some(param),
        });
        self
    }

    /// Write of the parameter-`i` object of `table`.
    pub fn write(mut self, table: &str, param: usize) -> Self {
        self.ops.push(TemplateOp {
            kind: OpKind::Write,
            table: table.into(),
            param: Some(param),
        });
        self
    }

    /// Read of the single shared object `table`.
    pub fn read_fixed(mut self, table: &str) -> Self {
        self.ops.push(TemplateOp {
            kind: OpKind::Read,
            table: table.into(),
            param: None,
        });
        self
    }

    /// Write of the single shared object `table`.
    pub fn write_fixed(mut self, table: &str) -> Self {
        self.ops.push(TemplateOp {
            kind: OpKind::Write,
            table: table.into(),
            param: None,
        });
        self
    }

    /// Number of parameters the template expects (1 + max index used).
    pub fn param_count(&self) -> usize {
        self.ops
            .iter()
            .filter_map(|o| o.param)
            .map(|p| p + 1)
            .max()
            .unwrap_or(0)
    }

    /// Parses the one-line wire syntax: `Name: R[tbl:$0] W[chk:$1] R[fixed]`.
    /// A bracketed object containing `:$<digits>` is parameter-dependent;
    /// anything else is a fixed object. Round-trips with [`Template::render`].
    pub fn parse(line: &str) -> Result<Template, TemplateError> {
        let err = |reason: &str| TemplateError::Parse {
            line: line.to_string(),
            reason: reason.to_string(),
        };
        let line_t = line.trim();
        let (name, rest) = line_t.split_once(':').ok_or_else(|| err("missing `:`"))?;
        let name = name.trim();
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(err("template name must be non-empty [A-Za-z0-9_-]"));
        }
        let mut t = Template::new(name);
        for tok in rest.split_whitespace() {
            let body = tok
                .strip_prefix("R[")
                .or_else(|| tok.strip_prefix("W["))
                .and_then(|b| b.strip_suffix(']'))
                .ok_or_else(|| err("each op must look like R[obj] or W[obj]"))?;
            let kind = if tok.starts_with('R') {
                OpKind::Read
            } else {
                OpKind::Write
            };
            let (table, param) = match body.split_once(":$") {
                Some((table, idx)) => {
                    let idx: usize = idx
                        .parse()
                        .map_err(|_| err("parameter must be `:$<index>`"))?;
                    (table, Some(idx))
                }
                None => (body, None),
            };
            if table.is_empty()
                || !table
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
            {
                return Err(err("object/table must be non-empty [A-Za-z0-9_-]"));
            }
            t.ops.push(TemplateOp {
                kind,
                table: table.to_string(),
                param,
            });
        }
        if t.ops.is_empty() {
            return Err(err("template has no operations"));
        }
        if t.param_count() > MAX_TEMPLATE_PARAMS {
            return Err(TemplateError::TooManyParams {
                name: t.name,
                count: t.ops.iter().filter_map(|o| o.param).max().unwrap_or(0) + 1,
            });
        }
        Ok(t)
    }

    /// The inverse of [`Template::parse`].
    pub fn render(&self) -> String {
        let mut out = format!("{}:", self.name);
        for op in &self.ops {
            let k = match op.kind {
                OpKind::Read => 'R',
                OpKind::Write => 'W',
            };
            match op.param {
                None => out.push_str(&format!(" {k}[{}]", op.table)),
                Some(p) => out.push_str(&format!(" {k}[{}:${p}]", op.table)),
            }
        }
        out
    }
}

impl std::str::FromStr for Template {
    type Err = TemplateError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Template::parse(s)
    }
}

/// A fixed API of templates — the unit of template-level analysis.
#[derive(Clone, Default, Debug)]
pub struct TemplateSet {
    templates: Vec<Template>,
}

impl TemplateSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a template, returning its index.
    pub fn add(&mut self, template: Template) -> usize {
        self.templates.push(template);
        self.templates.len() - 1
    }

    pub fn len(&self) -> usize {
        self.templates.len()
    }

    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// The template at `idx`, or `None` when out of range — a malformed
    /// `instantiate` request must surface as a structured error, never as
    /// an index panic inside the server.
    pub fn get(&self, idx: usize) -> Option<&Template> {
        self.templates.get(idx)
    }

    /// Instantiates concrete transactions: one per `(template index,
    /// arguments)` pair, ids assigned 1… in order. Duplicate operations
    /// arising from parameter collisions (two parameters mapping to the
    /// same object) are deduplicated keeping the first occurrence, so the
    /// model's one-read/one-write-per-object rule always holds.
    pub fn instantiate(
        &self,
        instances: &[(usize, Vec<u32>)],
    ) -> Result<(TransactionSet, Vec<usize>), TemplateError> {
        let mut b = TxnSetBuilder::new();
        let mut origin = Vec::with_capacity(instances.len());
        for (i, (tidx, args)) in instances.iter().enumerate() {
            let template = self
                .templates
                .get(*tidx)
                .ok_or(TemplateError::UnknownTemplate {
                    idx: *tidx,
                    len: self.templates.len(),
                })?;
            if args.len() < template.param_count() {
                return Err(TemplateError::MissingArguments {
                    name: template.name.clone(),
                    needs: template.param_count(),
                    got: args.len(),
                });
            }
            let mut names: Vec<(OpKind, String)> = Vec::new();
            for op in &template.ops {
                let name = match op.param {
                    None => op.table.clone(),
                    Some(p) => format!("{}:{}", op.table, args[p]),
                };
                if !names.contains(&(op.kind, name.clone())) {
                    names.push((op.kind, name));
                }
            }
            let mut t = b.txn(i as u32 + 1);
            for (kind, name) in names {
                t = match kind {
                    OpKind::Read => t.read_named(&name),
                    OpKind::Write => t.write_named(&name),
                };
            }
            t.finish();
            origin.push(*tidx);
        }
        b.build()
            .map(|set| (set, origin))
            .map_err(TemplateError::Model)
    }

    /// The union of all instantiations with every argument tuple from
    /// `{0, …, domain−1}^k`, each duplicated `copies` times. Returns the
    /// set plus the originating template index of each transaction (in
    /// `TxnId` order 1…n).
    pub fn bounded_instantiation(
        &self,
        copies: usize,
        domain: u32,
    ) -> Result<(TransactionSet, Vec<usize>), TemplateError> {
        assert!(copies >= 1 && domain >= 1);
        let mut instances = Vec::new();
        for (tidx, template) in self.templates.iter().enumerate() {
            let k = template.param_count();
            let tuples = (domain as usize).pow(k as u32);
            for tuple in 0..tuples {
                let mut args = Vec::with_capacity(k);
                let mut rest = tuple;
                for _ in 0..k {
                    args.push((rest % domain as usize) as u32);
                    rest /= domain as usize;
                }
                for _ in 0..copies {
                    instances.push((tidx, args.clone()));
                }
            }
        }
        self.instantiate(&instances)
    }
}

/// Result of a template-level robustness audit.
#[derive(Clone, Debug)]
pub struct TemplateAudit {
    /// Whether the bounded instantiation is robust.
    pub robust: bool,
    /// A counterexample over the bounded instantiation, if not.
    pub counterexample: Option<SplitSpec>,
    /// Size of the audited transaction set.
    pub instances: usize,
}

/// Audits the per-template level assignment `levels` against the bounded
/// instantiation (`copies` duplicates, parameter domain `{0…domain−1}`).
///
/// `robust = true` certifies every workload drawing instances from the
/// bounded space; `robust = false` *refutes* template robustness outright
/// (any counterexample instantiation is a counterexample workload).
pub fn audit(
    templates: &TemplateSet,
    levels: &[IsolationLevel],
    copies: usize,
    domain: u32,
) -> TemplateAudit {
    assert_eq!(levels.len(), templates.len(), "one level per template");
    let (txns, origin) = templates
        .bounded_instantiation(copies, domain)
        .expect("bounded instantiation is well-formed");
    let alloc: Allocation = txns
        .ids()
        .enumerate()
        .map(|(i, t)| (t, levels[origin[i]]))
        .collect();
    let report = is_robust(&txns, &alloc);
    TemplateAudit {
        robust: report.robust(),
        instances: txns.len(),
        counterexample: report.into_counterexample(),
    }
}

/// The least per-template level assignment whose bounded instantiation is
/// robust, refined greedily from all-SSI (always robust).
pub fn optimal_template_allocation(
    templates: &TemplateSet,
    copies: usize,
    domain: u32,
) -> Vec<IsolationLevel> {
    let mut levels = vec![IsolationLevel::SSI; templates.len()];
    for i in 0..templates.len() {
        for &lvl in [IsolationLevel::RC, IsolationLevel::SI].iter() {
            let mut candidate = levels.clone();
            candidate[i] = lvl;
            if audit(templates, &candidate, copies, domain).robust {
                levels = candidate;
                break;
            }
        }
    }
    levels
}

/// A level change to a previously registered template caused by a later
/// registration: the greedy allocation is recomputed over the grown set,
/// and a new conflicting template can force an old one upward.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LevelChange {
    pub template_id: usize,
    pub from: IsolationLevel,
    pub to: IsolationLevel,
}

/// The reply to [`TemplateCatalog::register`].
#[derive(Clone, Debug)]
pub struct CatalogEntry {
    /// Index of the newly registered template (dense, 0-based).
    pub template_id: usize,
    /// Its audited isolation level.
    pub level: IsolationLevel,
    /// Earlier templates whose audited level moved.
    pub changed: Vec<LevelChange>,
    /// Randomized instantiations re-checked by Algorithm 1 at
    /// registration time.
    pub reverified: usize,
}

/// The admission fast path: a template set plus a precomputed
/// per-template level allocation that is robust for *every* workload
/// drawing instances from the bounded envelope (at most `copies`
/// duplicates of each parameter tuple, parameters from an
/// isomorphism-closed domain — see DESIGN.md §S19 for the soundness
/// argument).
///
/// [`TemplateCatalog::register`] is the slow path: it re-runs the greedy
/// template allocation over the grown set and re-verifies the result by
/// running Algorithm 1 on randomized sub-instantiations of the bounded
/// envelope. [`TemplateCatalog::admit`] is then O(1): bounds-check the
/// template id, check the argument count, return the precomputed level.
/// No Algorithm 1 run, no allocator delta, no cache probe.
#[derive(Clone, Debug, Default)]
pub struct TemplateCatalog {
    set: TemplateSet,
    levels: Vec<IsolationLevel>,
    copies: usize,
    domain: u32,
    reverify_rounds: usize,
}

impl TemplateCatalog {
    /// Default audit envelope: two duplicates per tuple over a two-value
    /// parameter domain — enough to expose every pairwise anomaly pattern
    /// (lost update needs 2 copies; cross-parameter write skew needs 2
    /// domain values).
    pub const DEFAULT_COPIES: usize = 2;
    pub const DEFAULT_DOMAIN: u32 = 2;
    const DEFAULT_REVERIFY_ROUNDS: usize = 8;

    pub fn new(copies: usize, domain: u32) -> Self {
        assert!(copies >= 1 && domain >= 1);
        TemplateCatalog {
            set: TemplateSet::new(),
            levels: Vec::new(),
            copies,
            domain,
            reverify_rounds: Self::DEFAULT_REVERIFY_ROUNDS,
        }
    }

    /// Number of randomized re-verification rounds per registration
    /// (0 disables re-verification).
    pub fn with_reverify_rounds(mut self, rounds: usize) -> Self {
        self.reverify_rounds = rounds;
        self
    }

    /// Registers a template: grows the set, recomputes the greedy
    /// allocation over the *whole* catalog (deterministic in registration
    /// order), and re-verifies the new allocation on randomized
    /// instantiations. O(catalog × envelope) — the price is paid once per
    /// template, not per instance.
    pub fn register(&mut self, template: Template) -> Result<CatalogEntry, TemplateError> {
        if template.param_count() > MAX_TEMPLATE_PARAMS {
            return Err(TemplateError::TooManyParams {
                count: template.param_count(),
                name: template.name,
            });
        }
        let mut grown = self.set.clone();
        let template_id = grown.add(template);
        // Surface model violations (e.g. a template reading and writing
        // the same fixed object twice) before committing the catalog.
        grown.bounded_instantiation(self.copies, self.domain)?;
        let levels = optimal_template_allocation(&grown, self.copies, self.domain);
        let changed = self
            .levels
            .iter()
            .enumerate()
            .filter(|&(i, &from)| levels[i] != from)
            .map(|(i, &from)| LevelChange {
                template_id: i,
                from,
                to: levels[i],
            })
            .collect();
        self.set = grown;
        self.levels = levels;
        // Derive the re-verification seed from the catalog size so
        // registration stays a pure function of the registration sequence
        // (bit-identical across recovery replays).
        let reverified = self.reverify(0xCA7A ^ self.set.len() as u64, self.reverify_rounds);
        Ok(CatalogEntry {
            template_id,
            level: self.levels[template_id],
            changed,
            reverified,
        })
    }

    /// Parses and registers a template line (`Name: R[tbl:$0] W[fixed]`).
    pub fn register_line(&mut self, line: &str) -> Result<CatalogEntry, TemplateError> {
        self.register(Template::parse(line)?)
    }

    /// Admits one instance of `template_id`: O(1) — an index bounds
    /// check, an argument-count check, and a level lookup. Parameter
    /// *values* are unconstrained: the audited envelope covers any
    /// parameter space up to isomorphism (§S19).
    pub fn admit(
        &self,
        template_id: usize,
        params: &[u32],
    ) -> Result<IsolationLevel, TemplateError> {
        let template = self
            .set
            .get(template_id)
            .ok_or(TemplateError::UnknownTemplate {
                idx: template_id,
                len: self.set.len(),
            })?;
        if params.len() != template.param_count() {
            return Err(TemplateError::MissingArguments {
                name: template.name().to_string(),
                needs: template.param_count(),
                got: params.len(),
            });
        }
        Ok(self.levels[template_id])
    }

    /// Re-runs Algorithm 1 on `rounds` randomized sub-multisets of the
    /// bounded envelope; every one must be robust under the catalog's
    /// allocation (a subset of a robust set stays robust — the split
    /// schedule of Definition 3.1 appends removed transactions serially).
    /// Returns the number of instantiations checked. Panics on failure:
    /// that would mean the audit machinery itself is unsound.
    pub fn reverify(&self, seed: u64, rounds: usize) -> usize {
        if self.set.is_empty() || rounds == 0 {
            return 0;
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut checked = 0;
        for round in 0..rounds {
            let mut instances = Vec::new();
            for (tidx, template) in self.set.templates.iter().enumerate() {
                let k = template.param_count();
                let tuples = (self.domain as usize).pow(k as u32);
                for tuple in 0..tuples {
                    let mut args = Vec::with_capacity(k);
                    let mut rest = tuple;
                    for _ in 0..k {
                        args.push((rest % self.domain as usize) as u32);
                        rest /= self.domain as usize;
                    }
                    // Random multiplicity within the envelope.
                    let dup = rng.random_range(0..=self.copies);
                    for _ in 0..dup {
                        instances.push((tidx, args.clone()));
                    }
                }
            }
            if instances.is_empty() {
                continue;
            }
            let (txns, origin) = self
                .set
                .instantiate(&instances)
                .expect("sub-envelope instantiation is well-formed");
            let alloc: Allocation = txns
                .ids()
                .enumerate()
                .map(|(i, t)| (t, self.levels[origin[i]]))
                .collect();
            if let Err(cex) = reverify(&txns, &alloc) {
                panic!(
                    "catalog re-verification failed (round {round}, seed {seed}): \
                     randomized instantiation of {} instances is not robust \
                     under the audited allocation — counterexample {cex:?}. \
                     This contradicts the append lemma; the audit machinery \
                     is unsound.",
                    txns.len()
                );
            }
            checked += 1;
        }
        checked
    }

    /// The catalog's template set.
    pub fn templates(&self) -> &TemplateSet {
        &self.set
    }

    /// The audited per-template allocation, indexed by template id.
    pub fn levels(&self) -> &[IsolationLevel] {
        &self.levels
    }

    /// The audited level of one template.
    pub fn level(&self, template_id: usize) -> Option<IsolationLevel> {
        self.levels.get(template_id).copied()
    }

    pub fn len(&self) -> usize {
        self.set.len()
    }

    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

/// The SmallBank benchmark as templates (parameter = customer id).
pub fn smallbank_templates() -> TemplateSet {
    let mut set = TemplateSet::new();
    set.add(Template::new("Balance").read("sav", 0).read("chk", 0));
    set.add(
        Template::new("DepositChecking")
            .read("chk", 0)
            .write("chk", 0),
    );
    set.add(
        Template::new("TransactSavings")
            .read("sav", 0)
            .write("sav", 0),
    );
    set.add(
        Template::new("Amalgamate")
            .read("sav", 0)
            .write("sav", 0)
            .read("chk", 0)
            .write("chk", 0)
            .read("chk", 1)
            .write("chk", 1),
    );
    set.add(
        Template::new("WriteCheck")
            .read("sav", 0)
            .read("chk", 0)
            .write("chk", 0),
    );
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvmodel::TxnId;

    fn counter_templates() -> TemplateSet {
        let mut set = TemplateSet::new();
        // Increment(c): R(counter:c) W(counter:c).
        set.add(
            Template::new("Increment")
                .read("counter", 0)
                .write("counter", 0),
        );
        // Report: reads a fixed summary object.
        set.add(Template::new("Report").read_fixed("summary"));
        set
    }

    #[test]
    fn template_shapes() {
        let set = counter_templates();
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        assert_eq!(set.get(0).unwrap().param_count(), 1);
        assert_eq!(set.get(1).unwrap().param_count(), 0);
        assert_eq!(set.get(0).unwrap().name(), "Increment");
        assert_eq!(set.get(0).unwrap().ops().len(), 2);
        // Out of range is a None, never a panic.
        assert!(set.get(2).is_none());
    }

    #[test]
    fn instantiation_concrete() {
        let set = counter_templates();
        let (txns, origin) = set
            .instantiate(&[(0, vec![7]), (0, vec![9]), (1, vec![])])
            .unwrap();
        assert_eq!(txns.len(), 3);
        assert_eq!(origin, vec![0, 0, 1]);
        assert!(txns.object_by_name("counter:7").is_some());
        assert!(txns.object_by_name("counter:9").is_some());
        assert!(txns.object_by_name("summary").is_some());
        // Different counters don't conflict.
        assert!(!mvmodel::conflict::txns_conflict(&txns, TxnId(1), TxnId(2)));
    }

    #[test]
    fn bounded_instantiation_counts() {
        let set = counter_templates();
        // Increment: domain² tuples? one param → domain tuples; Report: 1.
        let (txns, origin) = set.bounded_instantiation(2, 3).unwrap();
        assert_eq!(txns.len(), 2 * 3 + 2);
        assert_eq!(origin.iter().filter(|&&t| t == 0).count(), 6);
    }

    #[test]
    fn increment_audit() {
        let set = counter_templates();
        // Two concurrent increments of the same counter: lost update at
        // RC, fine at SI.
        let rc = vec![IsolationLevel::RC, IsolationLevel::RC];
        let a = audit(&set, &rc, 2, 2);
        assert!(!a.robust);
        assert!(a.counterexample.is_some());
        let si = vec![IsolationLevel::SI, IsolationLevel::RC];
        assert!(audit(&set, &si, 2, 2).robust);
        assert_eq!(
            optimal_template_allocation(&set, 2, 2),
            vec![IsolationLevel::SI, IsolationLevel::RC]
        );
    }

    #[test]
    fn smallbank_template_allocation() {
        let set = smallbank_templates();
        let levels = optimal_template_allocation(&set, 2, 2);
        // The bounded instantiation must be robust under the result.
        assert!(audit(&set, &levels, 2, 2).robust);
        // SmallBank's write-skew forces SSI somewhere.
        assert!(levels.contains(&IsolationLevel::SerializableSnapshotIsolation));
        // All-SI must fail (the benchmark's raison d'être).
        assert!(!audit(&set, &[IsolationLevel::SI; 5], 2, 2).robust);
    }

    #[test]
    fn parameter_collision_dedup() {
        let set = smallbank_templates();
        // Amalgamate(c, c): both params the same customer — chk:c would
        // be read/written twice without dedup.
        let (txns, _) = set.instantiate(&[(3, vec![1, 1])]).unwrap();
        let t = txns.txn(TxnId(1));
        // sav:1 R+W, chk:1 R+W → 4 ops.
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn missing_arguments_are_structured_errors() {
        let set = smallbank_templates();
        match set.instantiate(&[(3, vec![1])]) {
            Err(TemplateError::MissingArguments { name, needs, got }) => {
                assert_eq!(name, "Amalgamate");
                assert_eq!((needs, got), (2, 1));
            }
            other => panic!("expected MissingArguments, got {other:?}"),
        }
        match set.instantiate(&[(99, vec![])]) {
            Err(TemplateError::UnknownTemplate { idx: 99, len: 5 }) => {}
            other => panic!("expected UnknownTemplate, got {other:?}"),
        }
    }

    #[test]
    fn wire_syntax_round_trips() {
        for t in [
            Template::new("Balance").read("sav", 0).read("chk", 0),
            Template::new("Report").read_fixed("summary"),
            Template::new("Amalgamate")
                .read("sav", 0)
                .write("sav", 0)
                .read("chk", 1)
                .write("chk", 1),
        ] {
            let line = t.render();
            let back = Template::parse(&line).unwrap();
            assert_eq!(back, t, "round-trip of {line:?}");
        }
        let t = Template::parse("WriteCheck: R[sav:$0] R[chk:$0] W[chk:$0]").unwrap();
        assert_eq!(t.name(), "WriteCheck");
        assert_eq!(t.param_count(), 1);
        assert_eq!(t.render(), "WriteCheck: R[sav:$0] R[chk:$0] W[chk:$0]");
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in [
            "",
            "NoColon R[x]",
            ": R[x]",
            "T1:",
            "T1: X[x]",
            "T1: R[x",
            "T1: R[]",
            "T1: R[a:$x]",
            "bad name: R[x]",
            "T1: R[a b]",
        ] {
            let e = Template::parse(bad).unwrap_err();
            assert!(
                matches!(e, TemplateError::Parse { .. }),
                "{bad:?} gave {e:?}"
            );
        }
        let wide = Template::parse("T1: R[a:$9]").unwrap_err();
        assert!(matches!(wide, TemplateError::TooManyParams { .. }));
    }

    #[test]
    fn catalog_admission_matches_batch_audit() {
        // Registering SmallBank one template at a time must converge on
        // exactly the allocation a whole-set audit computes: the greedy
        // recompute is a deterministic function of the grown set.
        let mut cat = TemplateCatalog::new(2, 2);
        let set = smallbank_templates();
        for i in 0..set.len() {
            let entry = cat.register(set.get(i).unwrap().clone()).unwrap();
            assert_eq!(entry.template_id, i);
            assert!(entry.reverified > 0, "re-verification must run");
        }
        let batch = optimal_template_allocation(&set, 2, 2);
        assert_eq!(cat.levels(), &batch[..]);
        // Fast-path admission returns exactly the audited level, for any
        // parameter values (the envelope covers them up to isomorphism).
        for (i, level) in batch.iter().enumerate() {
            let k = set.get(i).unwrap().param_count();
            let params: Vec<u32> = (0..k as u32).map(|p| 1_000_000 + p * 37).collect();
            assert_eq!(cat.admit(i, &params).unwrap(), *level);
        }
    }

    #[test]
    fn catalog_admit_validates_without_panicking() {
        let mut cat = TemplateCatalog::new(2, 2);
        cat.register_line("Increment: R[counter:$0] W[counter:$0]")
            .unwrap();
        assert!(matches!(
            cat.admit(1, &[0]),
            Err(TemplateError::UnknownTemplate { idx: 1, len: 1 })
        ));
        assert!(matches!(
            cat.admit(0, &[]),
            Err(TemplateError::MissingArguments { .. })
        ));
        assert_eq!(cat.admit(0, &[7]).unwrap(), IsolationLevel::SI);
        assert_eq!(cat.len(), 1);
        assert!(!cat.is_empty());
        assert_eq!(cat.level(0), Some(IsolationLevel::SI));
        assert_eq!(cat.level(1), None);
    }

    #[test]
    fn catalog_reports_level_changes_on_later_registrations() {
        // A read-only reporter is fine at RC alone; adding a writer that
        // conflicts with it can push earlier templates upward. Whatever
        // the exact movement, the catalog must (a) report any change and
        // (b) keep levels equal to the whole-set recompute.
        let mut cat = TemplateCatalog::new(2, 2);
        cat.register_line("Reader: R[acct:$0] R[sum]").unwrap();
        assert_eq!(cat.level(0), Some(IsolationLevel::RC));
        let entry = cat
            .register_line("Skew: R[acct:$0] R[sum] W[acct:$0] W[sum]")
            .unwrap();
        let mut expect = TemplateSet::new();
        expect.add(Template::parse("Reader: R[acct:$0] R[sum]").unwrap());
        expect.add(Template::parse("Skew: R[acct:$0] R[sum] W[acct:$0] W[sum]").unwrap());
        assert_eq!(
            cat.levels(),
            &optimal_template_allocation(&expect, 2, 2)[..]
        );
        for ch in &entry.changed {
            assert_eq!(cat.level(ch.template_id), Some(ch.to));
            assert_ne!(ch.from, ch.to);
        }
    }
}
