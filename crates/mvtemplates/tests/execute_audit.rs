//! End-to-end template pipeline: audit a per-template level assignment
//! (§6.3.1's stepping stone), instantiate it, and *execute* the
//! instantiation on the MVCC simulator — every committed trace under a
//! template-robust assignment must be allowed and conflict serializable.

use mvisolation::{Allocation, IsolationLevel};
use mvmodel::serializability::is_conflict_serializable;
use mvsim::{run_workload, SimConfig, SsiMode};
use mvtemplates::{audit, optimal_template_allocation, smallbank_templates};

const COPIES: usize = 1;
const DOMAIN: u32 = 2;

/// The per-instance allocation induced by a per-template assignment over
/// the bounded instantiation.
fn instance_allocation(levels: &[IsolationLevel]) -> (mvmodel::TransactionSet, Allocation) {
    let (txns, origin) = smallbank_templates()
        .bounded_instantiation(COPIES, DOMAIN)
        .expect("bounded instantiation is well-formed");
    let alloc: Allocation = txns
        .ids()
        .enumerate()
        .map(|(i, t)| (t, levels[origin[i]]))
        .collect();
    (txns, alloc)
}

/// The tentpole path: optimal template levels audit robust, and their
/// bounded instantiation executes conformantly under both SSI detectors
/// across seeds and session counts.
#[test]
fn optimal_template_levels_execute_serializably() {
    let templates = smallbank_templates();
    let levels = optimal_template_allocation(&templates, COPIES, DOMAIN);
    let report = audit(&templates, &levels, COPIES, DOMAIN);
    assert!(report.robust, "the optimal assignment must audit robust");
    assert!(report.counterexample.is_none());
    // SmallBank's write-skew core keeps at least one template at SSI; the
    // read-only Balance template must have dropped below it.
    assert!(levels.contains(&IsolationLevel::SSI));
    assert!(levels.iter().any(|&l| l != IsolationLevel::SSI));

    let (txns, alloc) = instance_allocation(&levels);
    assert_eq!(txns.len(), report.instances);
    for mode in [SsiMode::Exact, SsiMode::Conservative] {
        for seed in 0..6u64 {
            for concurrency in [2usize, 5] {
                let config = SimConfig::default()
                    .with_seed(seed)
                    .with_concurrency(concurrency)
                    .with_ssi_mode(mode);
                let engine = run_workload(&txns, &alloc, config);
                assert_eq!(engine.metrics.gave_up, 0, "unbounded retries");
                let exported = engine.trace.export().expect("trace on by default");
                let verdict = mvrobustness::check_trace(
                    &exported.schedule,
                    &exported.allocation,
                    true,
                )
                .unwrap_or_else(|e| {
                    panic!("nonconformant template execution (mode {mode:?}, seed {seed}, concurrency {concurrency}): {e}")
                });
                assert!(verdict.conformant());
            }
        }
    }
}

/// The refuting direction: demoting every template to SI is not
/// template-robust (SmallBank write skew), the audit says so with a
/// counterexample, and execution under that assignment still only emits
/// schedules the allocation allows — non-serializability is permitted,
/// anomalies are not engine bugs.
#[test]
fn all_si_templates_audit_non_robust_but_execute_allowed() {
    let templates = smallbank_templates();
    let levels = vec![IsolationLevel::SI; templates.len()];
    let report = audit(&templates, &levels, COPIES, DOMAIN);
    assert!(
        !report.robust,
        "all-SI SmallBank templates cannot be robust"
    );
    assert!(report.counterexample.is_some());

    let (txns, alloc) = instance_allocation(&levels);
    let mut any_anomaly = false;
    // The anomaly needs Balance, TransactSavings and WriteCheck instances
    // of one customer in flight together; instantiation order puts them
    // far apart in the job list, so the probe runs everything concurrent.
    'search: for concurrency in [txns.len(), 6] {
        for seed in 0..60u64 {
            let config = SimConfig::default()
                .with_seed(seed)
                .with_concurrency(concurrency)
                .with_max_retries(2);
            let engine = run_workload(&txns, &alloc, config);
            let exported = engine.trace.export().expect("trace on by default");
            let verdict = mvrobustness::validate_trace(&exported.schedule, &exported.allocation);
            assert!(
                verdict.allowed,
                "engine emitted a schedule its allocation forbids (seed {seed})"
            );
            if !is_conflict_serializable(&exported.schedule) {
                any_anomaly = true;
                break 'search;
            }
        }
    }
    // Not required by the theory for any particular seed set, but pinned
    // here: these seeds do realize an executed anomaly, keeping the
    // refutation test honest end to end.
    assert!(
        any_anomaly,
        "no seed executed an anomaly under the non-robust template assignment"
    );
}
