//! B13 table generator: group-commit coalescing — batched delta
//! reallocation ([`Allocator::apply_batch`]) vs. one engine pass per
//! event, on SmallBank-style churn.
//!
//! ```sh
//! cargo run --release -p mvbench --bin sweep_batch [--json BENCH_alg.json] [--smoke]
//! ```
//!
//! The workload is a steady-state churn of SmallBank programs (Balance,
//! DepositChecking, TransactSavings, Amalgamate, WriteCheck) over a
//! pool of customers: each event registers a fresh program instance or
//! retires the oldest live one, holding the live population roughly
//! constant. The same event script is replayed at every batch size, so
//! rows are directly comparable.
//!
//! For each batch size the script's concatenated per-event verdicts and
//! final optimum are first asserted **bit-identical** to the sequential
//! delta API (`add_txn`/`remove_txn` one event at a time) — coalescing
//! is a pure performance lever, never a semantic one. `--smoke` runs a
//! small pinned-seed subset and *fails* (exit 1, with the reproducing
//! command) on any disagreement or when batch=64 does not beat batch=1
//! by at least 2× on events/sec — the CI gate.
//!
//! Reported per row: events/sec and the p99 *per-event* latency, where
//! an event's latency is the wall time of the engine pass that carried
//! it (every event in a drain waits for the whole drain).

use mvmodel::{Op, Transaction, TransactionSet, TxnId};
use mvrobustness::{AllocError, Allocator, DeltaEvent};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use serde_json::{json, Value};
use std::collections::VecDeque;
use std::time::Instant;

const SEED: u64 = 0xB13;
const REPRO: &str = "cargo run --release -p mvbench --bin sweep_batch -- --smoke";
const BATCH_SIZES: [usize; 4] = [1, 8, 64, 256];

/// One SmallBank program instance as a raw transaction. Objects are raw
/// ids — `sav(c)` = `2c`, `chk(c)` = `2c+1` — names are cosmetic and
/// conflicts derive from ids.
fn program(rng: &mut SmallRng, id: u32, customers: u32) -> Transaction {
    let sav = |c: u32| mvmodel::Object(2 * c);
    let chk = |c: u32| mvmodel::Object(2 * c + 1);
    let c = rng.random_range(0..customers);
    let ops = match rng.random_range(0..5u32) {
        // Balance(c): read-only inspection of both accounts.
        0 => vec![Op::read(sav(c)), Op::read(chk(c))],
        // DepositChecking(c).
        1 => vec![Op::read(chk(c)), Op::write(chk(c))],
        // TransactSavings(c).
        2 => vec![Op::read(sav(c)), Op::write(sav(c))],
        // Amalgamate(c, c2).
        3 => {
            let mut c2 = rng.random_range(0..customers);
            if c2 == c {
                c2 = (c2 + 1) % customers;
            }
            vec![
                Op::read(sav(c)),
                Op::write(sav(c)),
                Op::read(chk(c)),
                Op::write(chk(c)),
                Op::read(chk(c2)),
                Op::write(chk(c2)),
            ]
        }
        // WriteCheck(c): the write-skew program.
        _ => vec![Op::read(sav(c)), Op::read(chk(c)), Op::write(chk(c))],
    };
    Transaction::new(TxnId(id), ops).expect("SmallBank programs have distinct operations")
}

/// A steady-state churn script: registers until the live population
/// reaches `live`, then alternates fresh registrations with retiring
/// the oldest live transaction.
fn churn_script(rng: &mut SmallRng, events: usize, customers: u32, live: usize) -> Vec<DeltaEvent> {
    let mut alive: VecDeque<u32> = VecDeque::new();
    let mut next_id = 1u32;
    let mut script = Vec::with_capacity(events);
    for _ in 0..events {
        if alive.len() >= live && rng.random_bool(0.5) {
            let id = alive.pop_front().expect("population is non-empty");
            script.push(DeltaEvent::Remove(TxnId(id)));
        } else {
            let id = next_id;
            next_id += 1;
            script.push(DeltaEvent::Add(program(rng, id, customers)));
            alive.push_back(id);
        }
    }
    script
}

/// The ground truth: the script applied one event at a time through the
/// sequential delta API.
fn sequential_baseline(script: &[DeltaEvent]) -> (Vec<Result<(), AllocError>>, Allocator<'static>) {
    let mut alloc = Allocator::from_owned(TransactionSet::default());
    let mut verdicts = Vec::with_capacity(script.len());
    for ev in script {
        verdicts.push(match ev.clone() {
            DeltaEvent::Add(txn) => alloc.add_txn(txn).map(|_| ()),
            DeltaEvent::Remove(id) => alloc.remove_txn(id).map(|_| ()),
        });
    }
    (verdicts, alloc)
}

struct Cell {
    batch: usize,
    events_per_s: f64,
    p99_event_us: f64,
    drains: usize,
}

/// Replays the script in drains of `batch` events, timing each drain;
/// panics (with the repro command) if verdicts or the final optimum
/// diverge from the sequential baseline.
fn measure(
    script: &[DeltaEvent],
    batch: usize,
    expected_verdicts: &[Result<(), AllocError>],
    expected_final: &mvisolation::Allocation,
) -> Cell {
    let mut alloc = Allocator::from_owned(TransactionSet::default());
    let mut verdicts = Vec::with_capacity(script.len());
    let mut drain_us: Vec<(f64, usize)> = Vec::new();
    let mut total = 0.0f64;
    for chunk in script.chunks(batch) {
        let start = Instant::now();
        let reply = alloc
            .apply_batch(chunk.to_vec())
            .expect("no deadline is configured, so batches never time out");
        let secs = start.elapsed().as_secs_f64();
        total += secs;
        drain_us.push((secs * 1e6, chunk.len()));
        verdicts.extend(reply.outcomes);
    }
    assert_eq!(
        verdicts.len(),
        expected_verdicts.len(),
        "batch={batch}: dropped events — repro: {REPRO}"
    );
    assert_eq!(
        verdicts, expected_verdicts,
        "batch={batch}: verdicts diverged from the sequential delta API — repro: {REPRO}"
    );
    assert_eq!(
        alloc.current().expect("survivor set is allocatable"),
        expected_final,
        "batch={batch}: final optimum diverged from the sequential engine — repro: {REPRO}"
    );

    // p99 per event: an event's latency is its drain's wall time.
    let mut per_event: Vec<f64> = drain_us
        .iter()
        .flat_map(|&(us, n)| std::iter::repeat_n(us, n))
        .collect();
    per_event.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let p99 = per_event[((per_event.len() - 1) * 99) / 100];

    Cell {
        batch,
        events_per_s: script.len() as f64 / total,
        p99_event_us: p99,
        drains: drain_us.len(),
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let json_path = argv.iter().position(|a| a == "--json").map(|i| {
        argv.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--json requires a path");
            std::process::exit(2);
        })
    });

    let (events, customers, live) = if smoke {
        (1024usize, 24u32, 96usize)
    } else {
        (4096usize, 48u32, 192usize)
    };

    let mut rng = SmallRng::seed_from_u64(SEED);
    let script = churn_script(&mut rng, events, customers, live);
    let (expected_verdicts, mut baseline) = sequential_baseline(&script);
    let expected_final = baseline
        .current()
        .expect("SmallBank churn stays allocatable over {RC, SI, SSI}")
        .clone();

    println!("## B13 — group-commit coalescing on SmallBank churn ({events} events)\n");
    println!("| batch | drains | events/s | p99 per event (µs) | speedup vs batch=1 |");
    println!("|---|---|---|---|---|");

    let cells: Vec<Cell> = BATCH_SIZES
        .iter()
        .map(|&b| measure(&script, b, &expected_verdicts, &expected_final))
        .collect();

    let base_rate = cells[0].events_per_s;
    let mut rows: Vec<Value> = Vec::new();
    for c in &cells {
        println!(
            "| {} | {} | {:.0} | {:.1} | {:.2}× |",
            c.batch,
            c.drains,
            c.events_per_s,
            c.p99_event_us,
            c.events_per_s / base_rate
        );
        rows.push(json!({
            "batch": c.batch as u64,
            "drains": c.drains as u64,
            "events_per_s": c.events_per_s,
            "p99_event_us": c.p99_event_us,
            "speedup": c.events_per_s / base_rate,
        }));
    }

    // The regression gate. Equivalence was already asserted inside
    // `measure`; here the coalescing payoff is enforced: batch=64 must
    // beat per-event reallocation by at least 2× on throughput.
    let payoff = cells
        .iter()
        .find(|c| c.batch == 64)
        .expect("64 is a swept size")
        .events_per_s
        / base_rate;
    let failed = payoff <= 2.0;
    if failed {
        eprintln!(
            "FAIL: batch=64 is only {payoff:.2}× batch=1 on events/sec \
             (gate: > 2×) — repro: {REPRO}"
        );
    }

    if let Some(path) = json_path {
        // Merge under "batch" without clobbering the other tables.
        let mut doc: Value = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| serde_json::from_str(&text).ok())
            .unwrap_or_else(|| json!({}));
        doc["batch"] = json!({
            "experiment": "B13-group-commit-coalescing",
            "seed": format!("{SEED:#x}"),
            "env": mvbench::bench_env(None),
            "smoke": smoke,
            "events": events as u64,
            "rows": rows,
        });
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&doc).expect("valid json"),
        )
        .unwrap_or_else(|e| {
            eprintln!("writing {path}: {e}");
            std::process::exit(1);
        });
        println!("\nmerged batch rows into {path}");
    }

    if failed {
        std::process::exit(1);
    }
    if smoke {
        println!("\nsmoke OK: batched engine bit-identical and the coalescing payoff holds");
    }
}
