//! B17 table generator: O(1) template-catalog admission (fast path) vs
//! per-transaction delta reallocation (delta path) at growing live
//! populations.
//!
//! ```sh
//! cargo run --release -p mvbench --bin sweep_admission [--json BENCH_alg.json] [--smoke]
//! ```
//!
//! Both paths run in-process against `mvservice::Registry` — exactly the
//! layer the server drives. For each population size the registry is
//! pre-loaded with that many live SmallBank program instances, then a
//! fixed-size probe stream of *further* arrivals is timed against it:
//! the population is the system state admission must not care about,
//! the probe is the measured work. The fast path admits probes through
//! `admit_instance` (param-count check + `Vec` lookup against the
//! precomputed catalog allocation, no allocator involvement); the delta
//! path feeds the same program shapes — rendered as concrete wire lines
//! — through `Registry::register` / `deregister` cycles, i.e. parse +
//! `Allocator::add_txn`, the production ad-hoc route. Customers are
//! cell-partitioned (as in B15) and scale with the population, so the
//! delta path keeps its component structure rather than degenerating
//! into one giant conflict clique.
//!
//! Correctness gates before any timing: the catalog levels must equal
//! `optimal_template_allocation` over the same set, and every fast-path
//! admission must return exactly the audited level of its template.
//! (Robustness of in-envelope populations at those levels is covered by
//! `mvservice/tests/template_admission.rs`.) `--smoke` additionally
//! fails unless fast-path admission against 100k live instances beats
//! the delta path against 1k in events/sec. Full mode also enforces the
//! fast path staying flat (≤1.5× spread) from 1k to 100k and a ≥100×
//! fast/delta ratio at 10k, and merges the rows into the JSON document
//! under `"admission"`.

use mvisolation::IsolationLevel;
use mvmodel::{OpKind, TxnId};
use mvrobustness::LevelSet;
use mvservice::{Registry, RegistryEvent};
use mvtemplates::{optimal_template_allocation, smallbank_templates, TemplateCatalog, TemplateSet};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use serde_json::{json, Value};
use std::time::Instant;

const SEED: u64 = 0xB17;
const REPRO: &str = "cargo run --release -p mvbench --bin sweep_admission -- --smoke";
/// Customers per conflict cell (matches B15): instances draw all their
/// customers from one cell, so delta components never merge across cells.
const CELL: u32 = 8;
/// Live instances per customer, on average — fixes per-cell contention
/// as the population grows so the delta path's per-event cost reflects
/// size, not a changing contention profile.
const LOAD: usize = 4;
/// Probe arrivals timed against each population.
const FAST_PROBE: usize = 1_000;
const DELTA_PROBE: usize = 64;

const POPULATIONS: [usize; 3] = [1_000, 10_000, 100_000];

/// One instance, params inline: streams stay contiguous so timing
/// measures admission, not pointer-chasing through per-instance heap
/// allocations.
#[derive(Clone, Copy)]
struct Inst {
    tid: usize,
    n: usize,
    params: [u32; mvtemplates::MAX_TEMPLATE_PARAMS],
}

impl Inst {
    fn args(&self) -> &[u32] {
        &self.params[..self.n]
    }
}

/// Customer universe for a population: `LOAD` instances per customer,
/// whole cells.
fn universe(population: usize) -> u32 {
    ((population / LOAD).max(CELL as usize) as u32).next_multiple_of(CELL)
}

/// A seeded SmallBank instance stream with cell-local customers drawn
/// from `customers`. Deterministic in `seed` and `count`.
fn instance_stream(set: &TemplateSet, count: usize, customers: u32, seed: u64) -> Vec<Inst> {
    let cells = customers / CELL;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let tid = rng.random_range(0..set.len());
        let k = set.get(tid).expect("tid < len").param_count();
        let cell = rng.random_range(0..cells) * CELL;
        let mut inst = Inst {
            tid,
            n: k,
            params: [0; mvtemplates::MAX_TEMPLATE_PARAMS],
        };
        for j in 0..k {
            let mut c = cell + rng.random_range(0..CELL);
            // Two-customer programs (Amalgamate) use distinct customers.
            if inst.params[..j].contains(&c) {
                c = cell + (c - cell + 1) % CELL;
            }
            inst.params[j] = c;
        }
        out.push(inst);
    }
    out
}

/// Renders an instance as the concrete wire line the ad-hoc `register`
/// verb would receive, e.g. `T7: R[sav:3] R[chk:3]`.
fn concrete_line(id: u32, set: &TemplateSet, inst: &Inst) -> String {
    let mut line = format!("T{id}:");
    for op in set.get(inst.tid).expect("tid < len").ops() {
        let k = match op.kind {
            OpKind::Read => 'R',
            OpKind::Write => 'W',
        };
        match op.param {
            Some(i) => line.push_str(&format!(" {k}[{}:{}]", op.table, inst.params[i])),
            None => line.push_str(&format!(" {k}[{}]", op.table)),
        }
    }
    line
}

/// A registry with the SmallBank catalog registered — the fast-path
/// starting state (nothing in the allocator).
fn catalog_registry(set: &TemplateSet) -> Registry {
    let mut reg = Registry::new(LevelSet::RcSiSsi, 1);
    for i in 0..set.len() {
        reg.register_template(&set.get(i).expect("i < len").render())
            .expect("smallbank registers");
    }
    reg
}

/// Fast path: events/sec admitting the probe stream against a registry
/// already holding `population` admitted instances, repeating the probe
/// until ≥ ~50ms of wall clock.
fn measure_fast(reg: &mut Registry, probe: &[Inst]) -> f64 {
    // Warm pass (also the last chance to catch an admission error).
    for inst in probe {
        reg.admit_instance(inst.tid, inst.args())
            .expect("in-catalog admit");
    }
    let mut events = 0u64;
    let start = Instant::now();
    loop {
        for inst in probe {
            std::hint::black_box(
                reg.admit_instance(inst.tid, inst.args())
                    .expect("in-catalog admit"),
            );
        }
        events += probe.len() as u64;
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed > 0.05 {
            return events as f64 / elapsed;
        }
    }
}

/// Delta path: events/sec for `register` arrivals against a registry
/// already holding `population` registered transactions. Each cycle
/// registers the probe lines and deregisters them again (restoring the
/// population); only the register events are counted.
fn measure_delta(reg: &mut Registry, probe: &[(u32, String)]) -> f64 {
    let cycle = |reg: &mut Registry| {
        for (_, line) in probe {
            reg.register(line).expect("allocatable probe");
        }
        for (id, _) in probe {
            reg.deregister(TxnId(*id)).expect("probe member");
        }
    };
    cycle(reg); // warm-up
    let mut events = 0u64;
    let start = Instant::now();
    loop {
        cycle(reg);
        events += probe.len() as u64;
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed > 0.05 {
            return events as f64 / elapsed;
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let json_path = argv.iter().position(|a| a == "--json").map(|i| {
        argv.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--json requires a path");
            std::process::exit(2);
        })
    });

    let set = smallbank_templates();
    let audited: Vec<IsolationLevel> = optimal_template_allocation(
        &set,
        TemplateCatalog::DEFAULT_COPIES,
        TemplateCatalog::DEFAULT_DOMAIN,
    );

    // Correctness before throughput: the registry's catalog levels must
    // be the whole-set audit, and every admission must return them.
    let mut reg = catalog_registry(&set);
    let listed = reg.templates();
    for (tid, want) in audited.iter().enumerate() {
        assert_eq!(
            listed[tid].level, *want,
            "catalog level for template {tid} diverged from the audit ({REPRO})"
        );
    }
    for inst in instance_stream(&set, FAST_PROBE, universe(POPULATIONS[0]), SEED) {
        let (level, _) = reg
            .admit_instance(inst.tid, inst.args())
            .expect("in-catalog admit");
        assert_eq!(
            level, audited[inst.tid],
            "fast-path admission for template {} diverged from the audit ({REPRO})",
            inst.tid
        );
    }

    println!("## B17 — template-catalog admission vs per-transaction delta (events/sec, by live population)\n");
    println!("| population | fast path (ev/s) | delta path (ev/s) | speedup |");
    println!("|---|---|---|---|");

    let mut fast = Vec::new();
    let mut delta = Vec::new();
    for &population in &POPULATIONS {
        let customers = universe(population);
        let live = instance_stream(&set, population, customers, SEED ^ population as u64);

        // Fast path: pre-admit the live population, probe further arrivals.
        let mut freg = catalog_registry(&set);
        for inst in &live {
            freg.admit_instance(inst.tid, inst.args())
                .expect("in-catalog admit");
        }
        let probe = instance_stream(&set, FAST_PROBE, customers, SEED ^ 0xFA57);
        let ev_s = measure_fast(&mut freg, &probe);
        fast.push((population, ev_s));

        // Delta path: per-event probing against 100k live transactions
        // is minutes of reallocation work; it is omitted (and said so)
        // rather than silently sampled. Smoke only needs the 1k anchor.
        let run_delta = population == 1_000 || (!smoke && population == 10_000);
        if run_delta {
            // Pre-load through the group-commit batch path (one
            // coalesced reallocation; per-event verdicts identical to
            // the single-event API) — the probe, not the backfill, is
            // what gets timed per event.
            let mut dreg = Registry::new(LevelSet::RcSiSsi, 1);
            let backfill: Vec<RegistryEvent> = live
                .iter()
                .enumerate()
                .map(|(i, inst)| RegistryEvent::Register(concrete_line(i as u32 + 1, &set, inst)))
                .collect();
            for outcome in dreg
                .apply_events(&backfill)
                .expect("batch reallocation")
                .outcomes
            {
                outcome.expect("allocatable instance");
            }
            let probe: Vec<(u32, String)> =
                instance_stream(&set, DELTA_PROBE, customers, SEED ^ 0xDE17)
                    .iter()
                    .enumerate()
                    .map(|(i, inst)| {
                        let id = population as u32 + 1 + i as u32;
                        (id, concrete_line(id, &set, inst))
                    })
                    .collect();
            let d_ev_s = measure_delta(&mut dreg, &probe);
            delta.push((population, d_ev_s));
            println!(
                "| {population} | {ev_s:.3e} | {d_ev_s:.3e} | {:.0}× |",
                ev_s / d_ev_s
            );
        } else {
            println!("| {population} | {ev_s:.3e} | — | — |");
        }
    }
    println!("\ndelta path omitted at 100k (pre-registering 100k transactions is minutes of reallocation); smoke mode also skips 10k");

    let mut failed = false;
    let fast_100k = fast
        .iter()
        .find(|(p, _)| *p == 100_000)
        .expect("100k row")
        .1;
    let delta_1k = delta.iter().find(|(p, _)| *p == 1_000).expect("1k row").1;
    if fast_100k <= delta_1k {
        println!(
            "FAIL: fast path against 100k live instances ({fast_100k:.3e} ev/s) does not beat \
             delta against 1k ({delta_1k:.3e} ev/s) ({REPRO})"
        );
        failed = true;
    }
    let spread = {
        let rates: Vec<f64> = fast.iter().map(|&(_, r)| r).collect();
        rates.iter().cloned().fold(f64::MIN, f64::max)
            / rates.iter().cloned().fold(f64::MAX, f64::min)
    };
    if !smoke && spread > 1.5 {
        println!(
            "FAIL: fast path is not flat across 1k→100k (max/min spread {spread:.2}× > 1.5×) \
             ({REPRO})"
        );
        failed = true;
    }
    let ratio_10k = delta
        .iter()
        .find(|(p, _)| *p == 10_000)
        .map(|&(_, d)| fast.iter().find(|(p, _)| *p == 10_000).expect("10k row").1 / d);
    if let Some(r) = ratio_10k {
        if r < 100.0 {
            println!("FAIL: fast/delta ratio at 10k is {r:.0}× (< 100×) ({REPRO})");
            failed = true;
        }
    }

    if let Some(path) = json_path {
        // Merge under "admission" without clobbering the other tables.
        let mut doc: Value = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| serde_json::from_str(&text).ok())
            .unwrap_or_else(|| json!({}));
        let row = |&(population, ev_s): &(usize, f64)| json!({ "population": population as u64, "events_per_s": ev_s });
        doc["admission"] = json!({
            "experiment": "B17-template-admission",
            "seed": "0xB17",
            "env": mvbench::bench_env(None),
            "templates": "smallbank",
            "cell": CELL,
            "load_per_customer": LOAD as u64,
            "fast_probe": FAST_PROBE as u64,
            "delta_probe": DELTA_PROBE as u64,
            "fast": Value::Array(fast.iter().map(row).collect()),
            "delta": Value::Array(delta.iter().map(row).collect()),
            "fast_spread": spread,
            "ratio_at_10k": match ratio_10k {
                Some(r) => json!(r),
                None => Value::Null,
            },
        });
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&doc).expect("valid json"),
        )
        .unwrap_or_else(|e| {
            eprintln!("writing {path}: {e}");
            std::process::exit(1);
        });
        println!("\nmerged admission rows into {path}");
    }

    if failed {
        std::process::exit(1);
    }
    println!("\nadmission gates passed");
}
