//! B8 table generator: the classic static-SDG baseline (Fekete et al.,
//! TODS 2005) vs the paper's exact Algorithm 1, on random workloads —
//! agreement, false-alarm rate, and runtime.
//!
//! ```sh
//! cargo run --release -p mvbench --bin sweep_baseline
//! ```

use mvbench::{workload, Contention};
use mvisolation::Allocation;
use mvrobustness::{is_robust, static_si_robust};
use std::time::Instant;

fn main() {
    println!("## B8 — static SDG baseline vs exact Algorithm 1 (robustness against A_SI)\n");
    println!("| contention | |T| | cases | both robust | both non-robust | false alarms | sound? | static (s) | exact (s) |");
    println!("|---|---|---|---|---|---|---|---|---|");
    const CASES: u64 = 50;
    for contention in Contention::ALL {
        for n in [5u32, 10, 20] {
            let mut both_robust = 0u64;
            let mut both_bad = 0u64;
            let mut false_alarms = 0u64;
            let mut sound = true;
            let mut t_static = 0.0f64;
            let mut t_exact = 0.0f64;
            for seed in 0..CASES {
                let txns = workload(n, contention, 0xB8 + seed);
                let start = Instant::now();
                let certified = static_si_robust(&txns).certified();
                t_static += start.elapsed().as_secs_f64();
                let start = Instant::now();
                let exact = is_robust(&txns, &Allocation::uniform_si(&txns)).robust();
                t_exact += start.elapsed().as_secs_f64();
                match (certified, exact) {
                    (true, true) => both_robust += 1,
                    (false, false) => both_bad += 1,
                    (false, true) => false_alarms += 1,
                    (true, false) => sound = false,
                }
            }
            println!(
                "| {} | {} | {} | {} | {} | {} | {} | {:.2e} | {:.2e} |",
                contention.label(),
                n,
                CASES,
                both_robust,
                both_bad,
                false_alarms,
                sound,
                t_static / CASES as f64,
                t_exact / CASES as f64,
            );
        }
    }
    println!(
        "\nfalse alarm = the static test flags a workload the exact algorithm \
         proves robust; `sound?` must always be true (certified ⟹ robust)."
    );
}
