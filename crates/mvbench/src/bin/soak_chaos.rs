//! B11 table generator: chaos soak — recovery latency of the online
//! allocation service under sustained seeded fault injection.
//!
//! ```sh
//! cargo run --release -p mvbench --bin soak_chaos \
//!     [--events N] [--seed S] [--json BENCH_alg.json]
//! ```
//!
//! For each fault intensity an in-process server is started with a
//! seeded [`FaultPlan`] (no budget: faults keep firing for the whole
//! soak) and driven through `N` register/deregister events by a
//! [`RetryClient`]. A *recovered request* is one that needed at least
//! one retry before succeeding; its wall time — first attempt to final
//! outcome — is the recovery latency. After the soak the served
//! allocation is re-verified: Algorithm 1 must certify it robust and it
//! must be bit-identical to a batch `Allocator::optimal` over exactly
//! the applied transactions (the binary aborts otherwise, so a printed
//! row *is* the certificate). Fully deterministic per `--seed` up to
//! scheduler timing; latencies are wall-clock, the schedule is not.

use mvisolation::{Allocation, IsolationLevel};
use mvmodel::{parse_transaction_line, TransactionSet, TxnId};
use mvrobustness::{is_robust, Allocator};
use mvservice::{ClientError, Config, FaultPlan, RetryClient, RetryPolicy, Server};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use serde_json::{json, Value};
use std::time::{Duration, Instant};

struct Intensity {
    label: &'static str,
    plan: FaultPlan,
}

fn intensities(seed: u64) -> Vec<Intensity> {
    let base = FaultPlan {
        seed,
        delay: Duration::from_millis(1),
        budget: None,
        ..FaultPlan::default()
    };
    vec![
        Intensity {
            label: "off",
            plan: FaultPlan {
                seed,
                ..FaultPlan::default()
            },
        },
        Intensity {
            label: "light",
            plan: FaultPlan {
                drop: 0.05,
                truncate: 0.03,
                slow: 0.05,
                realloc_fail: 0.02,
                realloc_timeout: 0.01,
                ..base
            },
        },
        Intensity {
            label: "moderate",
            plan: FaultPlan {
                drop: 0.12,
                truncate: 0.08,
                slow: 0.08,
                realloc_fail: 0.05,
                realloc_timeout: 0.04,
                ..base
            },
        },
        Intensity {
            label: "heavy",
            plan: FaultPlan {
                drop: 0.25,
                truncate: 0.15,
                slow: 0.10,
                realloc_fail: 0.10,
                realloc_timeout: 0.08,
                delay: Duration::from_millis(2),
                ..base
            },
        },
    ]
}

struct SoakRow {
    label: &'static str,
    events: usize,
    applied: usize,
    rejected: usize,
    faults: u64,
    retried: usize,
    mean_recovery_ms: f64,
    max_recovery_ms: f64,
}

/// One soak at one intensity. Panics if any invariant breaks, so every
/// returned row doubles as a pass certificate.
fn soak(intensity: &Intensity, events: usize, seed: u64) -> SoakRow {
    let server = Server::bind(Config {
        addr: "127.0.0.1:0".to_string(),
        realloc_timeout: Some(Duration::from_secs(10)),
        faults: Some(intensity.plan.clone()),
        ..Config::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));

    let mut client = RetryClient::new(
        addr.to_string(),
        RetryPolicy {
            retries: 8,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(20),
            seed,
        },
    );
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x50AC);
    let mut mirror: Vec<(u32, String)> = Vec::new();
    let mut next_id = 1u32;
    let (mut applied, mut rejected, mut retried) = (0usize, 0usize, 0usize);
    let mut recoveries_ms: Vec<f64> = Vec::new();

    // Is `id` registered? Rides out residual faults via `assign`.
    let resolve = |client: &mut RetryClient, id: u32| -> bool {
        for _ in 0..400 {
            match client.assign(id) {
                Ok(_) => return true,
                Err(ClientError::Server(_)) => return false,
                Err(_) => continue,
            }
        }
        panic!("could not resolve state of T{id} (seed {seed})");
    };

    for _ in 0..events {
        let retries_before = client.retry_stats().retries;
        let started = Instant::now();
        let deregister = mirror.len() >= 4 && rng.next_u64() % 100 < 35;
        if deregister {
            let idx = (rng.next_u64() % mirror.len() as u64) as usize;
            let (id, line) = mirror.remove(idx);
            match client.deregister(id) {
                Ok(_) => applied += 1,
                Err(ClientError::Server(_)) => {
                    mirror.insert(idx, (id, line));
                    rejected += 1;
                }
                Err(_) => {
                    if resolve(&mut client, id) {
                        mirror.insert(idx, (id, line));
                        rejected += 1;
                    } else {
                        applied += 1;
                    }
                }
            }
        } else {
            const OBJECTS: [&str; 6] = ["a", "b", "c", "d", "e", "f"];
            let id = next_id;
            next_id += 1;
            let count = 1 + (rng.next_u64() % 3) as usize;
            let mut pool: Vec<&str> = OBJECTS.to_vec();
            let mut line = format!("T{id}:");
            for _ in 0..count {
                let obj = pool.remove((rng.next_u64() % pool.len() as u64) as usize);
                match rng.next_u64() % 3 {
                    0 => line.push_str(&format!(" R[{obj}]")),
                    1 => line.push_str(&format!(" W[{obj}]")),
                    _ => line.push_str(&format!(" R[{obj}] W[{obj}]")),
                }
            }
            match client.register(&line) {
                Ok(_) => {
                    mirror.push((id, line));
                    applied += 1;
                }
                Err(ClientError::Server(_)) => rejected += 1,
                Err(_) => {
                    if resolve(&mut client, id) {
                        mirror.push((id, line));
                        applied += 1;
                    } else {
                        rejected += 1;
                    }
                }
            }
        }
        if client.retry_stats().retries > retries_before {
            retried += 1;
            recoveries_ms.push(started.elapsed().as_secs_f64() * 1e3);
        }
    }

    // Post-soak verification: served set == applied set, Algorithm 1
    // re-certifies the allocation, and it matches the batch optimum.
    let listed = loop {
        match client.list() {
            Ok(v) => break v,
            Err(ClientError::Server(m)) => panic!("list rejected: {m}"),
            Err(_) => continue,
        }
    };
    let served: Vec<(u32, IsolationLevel)> = listed["txns"]
        .as_array()
        .expect("list reply has txns")
        .iter()
        .map(|t| {
            (
                t["id"].as_u64().expect("listed id") as u32,
                t["level"]
                    .as_str()
                    .expect("listed level")
                    .parse()
                    .expect("level"),
            )
        })
        .collect();
    let mut served_ids: Vec<u32> = served.iter().map(|(id, _)| *id).collect();
    served_ids.sort_unstable();
    let mut mirror_ids: Vec<u32> = mirror.iter().map(|(id, _)| *id).collect();
    mirror_ids.sort_unstable();
    assert_eq!(
        served_ids, mirror_ids,
        "{}: served set diverged from applied set (seed {seed})",
        intensity.label
    );
    let mut set = TransactionSet::default();
    for (_, line) in &mirror {
        let parsed = parse_transaction_line(line, &mut set).expect("mirror parses");
        set.insert(parsed).expect("unique ids");
    }
    let allocation = Allocation::from_pairs(served.iter().map(|&(id, l)| (TxnId(id), l)));
    if !set.is_empty() {
        assert!(
            is_robust(&set, &allocation).robust(),
            "{}: served allocation not robust (seed {seed})",
            intensity.label
        );
    }
    let (expected, _) = Allocator::new(&set).optimal();
    for (id, level) in &served {
        assert_eq!(
            *level,
            expected.level(TxnId(*id)),
            "{}: T{id} diverged from batch optimum (seed {seed})",
            intensity.label
        );
    }

    // Shut down through whatever faults remain in flight.
    for _ in 0..400 {
        match client.shutdown() {
            Ok(()) => break,
            Err(_) if handle.is_shutting_down() => break,
            Err(_) => continue,
        }
    }
    join.join().expect("server joins cleanly");

    let mean = if recoveries_ms.is_empty() {
        0.0
    } else {
        recoveries_ms.iter().sum::<f64>() / recoveries_ms.len() as f64
    };
    let max = recoveries_ms.iter().cloned().fold(0.0, f64::max);
    SoakRow {
        label: intensity.label,
        events,
        applied,
        rejected,
        faults: handle.faults_injected(),
        retried,
        mean_recovery_ms: mean,
        max_recovery_ms: max,
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let opt = |name: &str| -> Option<String> {
        argv.iter().position(|a| a == name).map(|i| {
            argv.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{name} requires a value");
                std::process::exit(2);
            })
        })
    };
    let events: usize = opt("--events").map_or(150, |v| v.parse().expect("--events N"));
    let seed: u64 = opt("--seed").map_or(0xB11, |v| v.parse().expect("--seed N"));
    let json_path = opt("--json");

    println!("## B11 — chaos soak: recovery latency vs. fault intensity (seed {seed}, {events} events)\n");
    println!("| intensity | applied | rejected | faults injected | retried reqs | mean recovery (ms) | max recovery (ms) | verified |");
    println!("|---|---|---|---|---|---|---|---|");

    let mut rows: Vec<Value> = Vec::new();
    for intensity in intensities(seed) {
        let row = soak(&intensity, events, seed);
        // soak() panics on any invariant breach, so reaching here means
        // the final state was robust and bit-identical to the optimum.
        println!(
            "| {} | {} | {} | {} | {} | {:.2} | {:.2} | yes |",
            row.label,
            row.applied,
            row.rejected,
            row.faults,
            row.retried,
            row.mean_recovery_ms,
            row.max_recovery_ms,
        );
        rows.push(json!({
            "intensity": row.label,
            "fault_plan": intensity.plan.to_string(),
            "events": row.events as u64,
            "applied": row.applied as u64,
            "rejected": row.rejected as u64,
            "faults_injected": row.faults,
            "retried_requests": row.retried as u64,
            "mean_recovery_ms": row.mean_recovery_ms,
            "max_recovery_ms": row.max_recovery_ms,
            "verified_robust_and_optimal": true,
        }));
    }

    if let Some(path) = json_path {
        // Merge under "chaos_soak" without clobbering other tables.
        let mut doc: Value = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| serde_json::from_str(&text).ok())
            .unwrap_or_else(|| json!({}));
        doc["chaos_soak"] = json!({
            "experiment": "B11-chaos-recovery-latency",
            "seed": seed,
            "env": mvbench::bench_env(None),
            "events": events as u64,
            "rows": rows,
        });
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&doc).expect("valid json"),
        )
        .unwrap_or_else(|e| {
            eprintln!("writing {path}: {e}");
            std::process::exit(1);
        });
        println!("\nmerged chaos_soak rows into {path}");
    }
}
