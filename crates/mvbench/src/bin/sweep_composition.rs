//! B5 table generator: composition of the optimal allocation (how many
//! transactions land on RC / SI / SSI) as contention varies, plus the
//! TPC-C and SmallBank case studies.
//!
//! ```sh
//! cargo run --release -p mvbench --bin sweep_composition
//! ```

use mvisolation::Allocation;
use mvrobustness::{is_robust, optimal_allocation, optimal_allocation_rc_si};
use mvworkloads::smallbank::SmallBank;
use mvworkloads::tpcc::Tpcc;
use mvworkloads::{RandomWorkload, Ycsb, YcsbMix};

fn main() {
    println!("## B5a — optimal composition vs Zipf skew (20 txns, 40 objects, 3 seeds avg)\n");
    println!("| θ | %RC | %SI | %SSI | SI-robust | RC-robust |");
    println!("|---|---|---|---|---|---|");
    for theta in [0.0, 0.4, 0.8, 1.2, 1.6] {
        let mut sums = (0usize, 0usize, 0usize);
        let mut si_robust = 0;
        let mut rc_robust = 0;
        const SEEDS: u64 = 3;
        for seed in 0..SEEDS {
            let txns = RandomWorkload::builder()
                .txns(20)
                .ops(2, 5)
                .objects(40)
                .theta(theta)
                .write_ratio(0.4)
                .seed(0xB5 + seed)
                .generate();
            let a = optimal_allocation(&txns);
            let (rc, si, ssi) = a.counts();
            sums = (sums.0 + rc, sums.1 + si, sums.2 + ssi);
            si_robust += is_robust(&txns, &Allocation::uniform_si(&txns)).robust() as u32;
            rc_robust += is_robust(&txns, &Allocation::uniform_rc(&txns)).robust() as u32;
        }
        let total = (sums.0 + sums.1 + sums.2) as f64;
        println!(
            "| {:.1} | {:.0}% | {:.0}% | {:.0}% | {}/{} | {}/{} |",
            theta,
            sums.0 as f64 / total * 100.0,
            sums.1 as f64 / total * 100.0,
            sums.2 as f64 / total * 100.0,
            si_robust,
            SEEDS,
            rc_robust,
            SEEDS,
        );
    }

    println!("\n## B5b — optimal composition vs write ratio (θ = 0.8)\n");
    println!("| write ratio | %RC | %SI | %SSI |");
    println!("|---|---|---|---|");
    for wr in [0.0, 0.2, 0.4, 0.6, 0.8] {
        let txns = RandomWorkload::builder()
            .txns(20)
            .ops(2, 5)
            .objects(40)
            .theta(0.8)
            .write_ratio(wr)
            .seed(0xB5)
            .generate();
        let (rc, si, ssi) = optimal_allocation(&txns).counts();
        let total = (rc + si + ssi) as f64;
        println!(
            "| {:.1} | {:.0}% | {:.0}% | {:.0}% |",
            wr,
            rc as f64 / total * 100.0,
            si as f64 / total * 100.0,
            ssi as f64 / total * 100.0,
        );
    }

    println!("\n## B5d — YCSB core mixes (20 txns, keyspace 50, θ = 0.99)\n");
    println!("| mix | RC-robust | SI-robust | optimal (RC/SI/SSI) |");
    println!("|---|---|---|---|");
    for mix in YcsbMix::ALL {
        let txns = Ycsb::new(mix).txns(20).keyspace(50).seed(0xB5D).generate();
        let rc = is_robust(&txns, &Allocation::uniform_rc(&txns)).robust();
        let si = is_robust(&txns, &Allocation::uniform_si(&txns)).robust();
        let (orc, osi, ossi) = optimal_allocation(&txns).counts();
        println!("| {} | {rc} | {si} | {orc}/{osi}/{ossi} |", mix.label());
    }

    println!("\n## B5c — benchmark case studies\n");
    println!("| workload | RC-robust | SI-robust | {{RC,SI}}-allocatable | optimal (RC/SI/SSI) |");
    println!("|---|---|---|---|---|");
    for (name, txns) in [
        ("TPC-C (canonical mix)", Tpcc::canonical_mix()),
        ("SmallBank (canonical mix)", SmallBank::canonical_mix()),
        ("SmallBank write-skew core", SmallBank::write_skew_core(1)),
    ] {
        let rc = is_robust(&txns, &Allocation::uniform_rc(&txns)).robust();
        let si = is_robust(&txns, &Allocation::uniform_si(&txns)).robust();
        let allocatable = optimal_allocation_rc_si(&txns).is_some();
        let (orc, osi, ossi) = optimal_allocation(&txns).counts();
        println!("| {name} | {rc} | {si} | {allocatable} | {orc}/{osi}/{ossi} |");
    }
}
