//! B6 table generator: simulator goodput, abort rate and serializability
//! under the allocation ladder at each contention preset, plus the
//! exact-vs-conservative SSI ablation.
//!
//! ```sh
//! cargo run --release -p mvbench --bin sweep_throughput
//! ```

use mvbench::{jobs, ladder, workload, Contention};
use mvmodel::serializability::is_conflict_serializable;
use mvsim::{run_jobs, Metrics, SimConfig, SsiMode};

const RUNS: u64 = 10;

fn measure(job_list: &[mvsim::Job], mode: SsiMode) -> (Metrics, u64) {
    let mut total = Metrics::default();
    let mut serializable = 0u64;
    for seed in 0..RUNS {
        let engine = run_jobs(
            job_list,
            SimConfig::default()
                .with_seed(seed)
                .with_concurrency(8)
                .with_ssi_mode(mode),
        );
        let m = engine.metrics;
        total.commits += m.commits;
        total.aborts_fcw += m.aborts_fcw;
        total.aborts_deadlock += m.aborts_deadlock;
        total.aborts_ssi += m.aborts_ssi;
        total.ticks += m.ticks;
        total.gave_up += m.gave_up;
        if let Some(exported) = engine.trace.export() {
            serializable += is_conflict_serializable(&exported.schedule) as u64;
        }
    }
    (total, serializable)
}

fn main() {
    println!("## B6a — goodput / abort rate under the allocation ladder ({RUNS} seeds)\n");
    println!("| contention | allocation | goodput | abort rate | serializable runs |");
    println!("|---|---|---|---|---|");
    for contention in Contention::ALL {
        let txns = workload(16, contention, 0xB6);
        for (label, alloc) in ladder(&txns) {
            let job_list = jobs(&txns, &alloc, 4);
            let (m, ser) = measure(&job_list, SsiMode::Exact);
            println!(
                "| {} | {} | {:.4} | {:.1}% | {}/{} |",
                contention.label(),
                label,
                m.goodput(),
                m.abort_rate() * 100.0,
                ser,
                RUNS,
            );
        }
    }

    println!("\n## B6b — SSI detector ablation (all-SSI, exact vs conservative)\n");
    println!("| contention | detector | goodput | SSI aborts | serializable runs |");
    println!("|---|---|---|---|---|");
    for contention in Contention::ALL {
        let txns = workload(16, contention, 0xB6);
        let ssi = mvisolation::Allocation::uniform_ssi(&txns);
        let job_list = jobs(&txns, &ssi, 4);
        for (name, mode) in [
            ("exact", SsiMode::Exact),
            ("conservative", SsiMode::Conservative),
        ] {
            let (m, ser) = measure(&job_list, mode);
            println!(
                "| {} | {} | {:.4} | {} | {}/{} |",
                contention.label(),
                name,
                m.goodput(),
                m.aborts_ssi,
                ser,
                RUNS,
            );
        }
    }
}
