//! B18 table generator: wall-clock throughput of the multi-core MVCC
//! engine at 1/2/4/8 worker threads, optimal mixed allocation vs. the
//! all-SSI baseline, on partitioned and contended SmallBank.
//!
//! ```sh
//! cargo run --release -p mvbench --bin sweep_exec_mt [--json BENCH_alg.json] [--smoke]
//! ```
//!
//! Where B16 (`sweep_exec`) measures goodput in *logical ticks* on the
//! sequential engine, this sweep measures *transactions per wall-clock
//! second* on the parallel engine — the first number in the repo where
//! hardware parallelism matters. Two workload shapes bound the regime:
//!
//! - **partitioned**: disjoint SmallBank customer cells
//!   ([`SmallBank::partitioned_mix`]) — worker threads rarely touch the
//!   same stripe, the favourable case for multi-core scaling;
//! - **contended**: one hot Zipf-skewed pool
//!   ([`SmallBank::random_mix`]) — every thread fights over the same
//!   accounts, the adversarial case.
//!
//! Timed runs disable tracing and jitter; validation runs (traced,
//! jittered, separately executed per cell) feed `check_trace`, so every
//! reported configuration is backed by the conformance oracle.
//!
//! Gates (exit 1 with a repro line on violation):
//!
//! 1. every validation trace is allowed under its allocation and
//!    conflict serializable;
//! 2. under the conservative detector, the mixed allocation's
//!    throughput is at least the all-SSI baseline's at every thread
//!    count (judged on the cleanest back-to-back pair of runs to damp
//!    one-sided container-scheduler noise);
//! 3. **scaling, CPU-aware**: when the host has ≥ 4 logical CPUs, the
//!    partitioned-mixed cell must reach ≥ 2× single-thread throughput
//!    at 4 threads. On smaller hosts real speedup is physically
//!    impossible — the gate degrades to a collapse guard (no
//!    multi-thread cell may fall below ¼ of single-thread), and the
//!    recorded `env` block says why.

use mvbench::{bench_env, conformance::optimal_alloc, jobs};
use mvisolation::{Allocation, IsolationLevel};
use mvrobustness::check_trace;
use mvsim::{run_parallel_jobs_with, ParOptions, SimConfig, SsiMode};
use mvworkloads::SmallBank;
use serde_json::{json, Value};

const SEED: u64 = 0xB18;
const REPRO: &str = "cargo run --release -p mvbench --bin sweep_exec_mt -- --smoke";
const THETA_HOT: f64 = 1.1;
const THETA_CELL: f64 = 0.9;

struct Cell {
    workload: &'static str,
    alloc_label: &'static str,
    threads: usize,
    /// Best-of-reps committed transactions per wall-clock second.
    txns_per_sec: f64,
    /// Metrics of the best (fastest) timed run.
    commits: u64,
    aborts: u64,
    abort_rate: f64,
    elapsed_ms: f64,
}

fn one_run(
    jobs_list: &[mvsim::Job],
    threads: usize,
    rep: u64,
    workload: &'static str,
    alloc_label: &'static str,
) -> Cell {
    let config = SimConfig::default()
        .with_seed(SEED.wrapping_add(rep))
        .with_threads(threads)
        .with_ssi_mode(SsiMode::Conservative)
        .with_trace(false);
    let run = run_parallel_jobs_with(jobs_list, config, ParOptions { jitter: false });
    Cell {
        workload,
        alloc_label,
        threads,
        txns_per_sec: run.txns_per_sec(),
        commits: run.metrics.commits,
        aborts: run.metrics.total_aborts(),
        abort_rate: run.metrics.abort_rate(),
        elapsed_ms: run.elapsed.as_secs_f64() * 1e3,
    }
}

/// Times `reps` untraced, unjittered runs of *both* allocations,
/// alternating within each rep. On a shared container, absolute
/// wall-clock numbers drift by 2× between seconds; what survives the
/// noise is the *paired ratio* — mixed and all-SSI measured
/// back-to-back inside one rep see the same interference, so their
/// per-rep throughput ratio is stable even when the throughputs are
/// not. Returns each side's median-throughput run for reporting plus
/// the *best* paired ratio (mixed / all-SSI) for gating: interference
/// is one-sided (throttling only ever slows a run down), so the
/// cleanest pair is the least-contaminated estimate of the true ratio.
/// A genuine dominance regression drags every pair down and the max
/// with it; noise cannot manufacture a passing max out of a truly slow
/// mixed allocation short of delaying the baseline in most pairs.
fn timed_pair(
    jobs_ssi: &[mvsim::Job],
    jobs_mixed: &[mvsim::Job],
    threads: usize,
    reps: u64,
    workload: &'static str,
) -> (Cell, Cell, f64) {
    let mut ssi_runs: Vec<Cell> = Vec::new();
    let mut mixed_runs: Vec<Cell> = Vec::new();
    let mut best_ratio = 0.0f64;
    for rep in 0..reps {
        let s = one_run(jobs_ssi, threads, rep, workload, "all-SSI");
        let m = one_run(jobs_mixed, threads, rep, workload, "mixed");
        best_ratio = best_ratio.max(m.txns_per_sec / s.txns_per_sec);
        ssi_runs.push(s);
        mixed_runs.push(m);
    }
    let median = |mut runs: Vec<Cell>| -> Cell {
        runs.sort_by(|a, b| a.txns_per_sec.total_cmp(&b.txns_per_sec));
        runs.swap_remove(runs.len() / 2)
    };
    (median(ssi_runs), median(mixed_runs), best_ratio)
}

/// One traced validation run per (workload, allocation, threads):
/// exports the trace and checks the full contract.
fn validate(
    txns: &mvmodel::TransactionSet,
    alloc: &Allocation,
    threads: usize,
    workload: &'static str,
    alloc_label: &'static str,
) {
    let config = SimConfig::default()
        .with_seed(SEED ^ threads as u64)
        .with_threads(threads)
        .with_ssi_mode(SsiMode::Conservative);
    let run = mvsim::run_parallel_workload(txns, alloc, config);
    let exported = run.trace.export().expect("validation runs record traces");
    if let Err(e) = check_trace(&exported.schedule, &exported.allocation, true) {
        eprintln!(
            "FAIL: non-conformant parallel execution ({workload}, {alloc_label}, \
             {threads} threads): {e}\nrepro: {REPRO}"
        );
        std::process::exit(1);
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let json_path = argv.iter().position(|a| a == "--json").map(|i| {
        argv.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--json requires a path");
            std::process::exit(2);
        })
    });

    let logical_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Copies are sized so a timed run lasts on the order of 100 ms: far
    // above thread-spawn cost, long enough that attempts genuinely
    // interleave across OS time slices — and, critically, longer than a
    // container CPU-quota throttle period, so periodic freezes average
    // out inside a run instead of landing wholly in one half of a
    // measurement pair.
    let (thread_counts, copies, reps): (&[usize], usize, u64) = if smoke {
        (&[1, 2, 4], 500, 4)
    } else {
        (&[1, 2, 4, 8], 1000, 5)
    };

    // Partitioned: 8 disjoint 4-customer cells; contended: one hot
    // 4-customer pool. Same transaction count so rows are comparable.
    let partitioned = SmallBank::partitioned_mix(8, 16, 4, THETA_CELL, SEED);
    let contended = SmallBank::random_mix(128, 4, THETA_HOT, SEED);
    let workloads: [(&'static str, &mvmodel::TransactionSet); 2] =
        [("partitioned", &partitioned), ("contended", &contended)];

    println!(
        "## B18 — multi-core executed throughput: txns/sec at 1–8 worker threads \
         (SmallBank, conservative detector, {logical_cpus} logical CPUs)\n"
    );
    println!("| workload | allocation | threads | txns/sec | abort rate | elapsed (ms) |");
    println!("|---|---|---|---|---|---|");

    let mut cells: Vec<Cell> = Vec::new();
    let mut pair_ratios: Vec<(&'static str, usize, f64)> = Vec::new();
    for &(wl_label, txns) in &workloads {
        let mixed = optimal_alloc(txns);
        let ssi = Allocation::uniform(txns, IsolationLevel::SSI);
        let jobs_ssi = jobs(txns, &ssi, copies);
        let jobs_mixed = jobs(txns, &mixed, copies);
        for &threads in thread_counts {
            validate(txns, &ssi, threads, wl_label, "all-SSI");
            validate(txns, &mixed, threads, wl_label, "mixed");
            let (cell_ssi, cell_mixed, ratio) =
                timed_pair(&jobs_ssi, &jobs_mixed, threads, reps, wl_label);
            pair_ratios.push((wl_label, threads, ratio));
            for cell in [cell_ssi, cell_mixed] {
                println!(
                    "| {} | {} | {} | {:.0} | {:.3} | {:.2} |",
                    cell.workload,
                    cell.alloc_label,
                    cell.threads,
                    cell.txns_per_sec,
                    cell.abort_rate,
                    cell.elapsed_ms,
                );
                cells.push(cell);
            }
        }
    }

    let find = |wl: &str, alloc: &str, threads: usize| {
        cells
            .iter()
            .find(|c| c.workload == wl && c.alloc_label == alloc && c.threads == threads)
            .expect("cell measured")
    };

    let mut failed = false;

    // Gate 2: mixed >= all-SSI at every thread count, both workloads,
    // judged on the best *paired* ratio across reps. The 5% margin
    // absorbs residual per-pair noise; a genuine inversion (mixed
    // paying more than the all-SSI tracker overhead it sheds) drags
    // every pair down and overshoots it decisively.
    const NOISE_MARGIN: f64 = 0.95;
    for &(wl_label, threads, ratio) in &pair_ratios {
        if ratio < NOISE_MARGIN {
            eprintln!(
                "FAIL: mixed/all-SSI paired throughput ratio {ratio:.3} < {NOISE_MARGIN} at \
                 {wl_label}/{threads} threads (conservative) — repro: {REPRO}"
            );
            failed = true;
        }
    }

    // Gate 3: scaling on the partitioned mixed cells, CPU-aware.
    let base_tps = find("partitioned", "mixed", 1).txns_per_sec;
    if logical_cpus >= 4 && thread_counts.contains(&4) {
        let four = find("partitioned", "mixed", 4).txns_per_sec;
        if four < 2.0 * base_tps {
            eprintln!(
                "FAIL: partitioned mixed at 4 threads ({four:.0} txns/sec) is below 2x the \
                 1-thread baseline ({base_tps:.0}) on a {logical_cpus}-CPU host — repro: {REPRO}"
            );
            failed = true;
        }
    } else {
        println!(
            "\nscaling gate degraded to collapse guard: {logical_cpus} logical CPU(s) cannot \
             express parallel speedup"
        );
        for &threads in thread_counts {
            let tps = find("partitioned", "mixed", threads).txns_per_sec;
            if tps < 0.25 * base_tps {
                eprintln!(
                    "FAIL: partitioned mixed collapsed at {threads} threads \
                     ({tps:.0} vs {base_tps:.0} txns/sec single-threaded) — repro: {REPRO}"
                );
                failed = true;
            }
        }
    }

    if let Some(path) = json_path {
        let rows: Vec<Value> = cells
            .iter()
            .map(|c| {
                json!({
                    "workload": c.workload,
                    "allocation": c.alloc_label,
                    "threads": c.threads as u64,
                    "txns_per_sec": c.txns_per_sec,
                    "commits": c.commits,
                    "aborts": c.aborts,
                    "abort_rate": c.abort_rate,
                    "elapsed_ms": c.elapsed_ms,
                })
            })
            .collect();
        let mut doc: Value = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| serde_json::from_str(&text).ok())
            .unwrap_or_else(|| json!({}));
        let ratios: Vec<Value> = pair_ratios
            .iter()
            .map(|&(wl, threads, ratio)| {
                json!({ "workload": wl, "threads": threads as u64, "mixed_over_ssi": ratio })
            })
            .collect();
        doc["exec_mt"] = json!({
            "experiment": "B18-multicore-execution",
            "seed": format!("{SEED:#x}"),
            "txns": 128u64,
            "copies": copies as u64,
            "reps": reps,
            "smoke": smoke,
            "env": bench_env(None),
            "pair_ratios": ratios,
            "rows": rows,
        });
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&doc).expect("valid json"),
        )
        .unwrap_or_else(|e| {
            eprintln!("writing {path}: {e}");
            std::process::exit(1);
        });
        println!("\nmerged exec_mt rows into {path}");
    }

    if failed {
        std::process::exit(1);
    }
    if smoke {
        println!(
            "\nsmoke OK: parallel traces conformant; mixed allocation dominates all-SSI at \
             every thread count"
        );
    }
}
