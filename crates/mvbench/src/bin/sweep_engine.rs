//! B9 table generator: the incremental/parallel robustness engine vs.
//! the retained pre-engine reference on the Algorithm 2 sweep.
//!
//! ```sh
//! cargo run --release -p mvbench --bin sweep_engine [--json BENCH_alg.json] [--threads N]
//! ```
//!
//! For each `(contention, |T|)` cell the reference implementation
//! (`optimal_allocation_reference`) and the engine
//! (`Allocator::optimal`, at 1 thread and — when more than one hardware
//! thread is actually available — at `--threads`/`available_parallelism`
//! threads) compute the optimal allocation on the *same* workload; the
//! verdicts are asserted equal, wall times and the engine's work
//! counters are reported, and the whole table is optionally dumped as
//! JSON.
//!
//! A single-threaded machine gets **no** multi-threaded column: timing
//! the 1-thread engine twice and labelling the copy "mt" would be a lie,
//! so the cell reads `n/a` and the JSON rows carry
//! `"mt_threads": null`. Pass `--threads N` (N ≥ 2) to force a
//! multi-threaded measurement anyway (e.g. to measure oversubscription
//! on one core).

use mvbench::{workload, Contention};
use mvrobustness::{optimal_allocation_reference, Allocator};
use serde_json::{json, Value};
use std::time::Instant;

fn time<R, F: FnMut() -> R>(mut f: F) -> f64 {
    // Warm up once, then time enough iterations for ≥ ~50ms.
    f();
    let mut iters = 1u32;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed > 0.05 || iters >= 1 << 16 {
            return elapsed / iters as f64;
        }
        iters *= 4;
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let json_path = argv.iter().position(|a| a == "--json").map(|i| {
        argv.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--json requires a path");
            std::process::exit(2);
        })
    });
    let threads_override = argv.iter().position(|a| a == "--threads").map(|i| {
        argv.get(i + 1)
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                eprintln!("--threads requires a count ≥ 1");
                std::process::exit(2);
            })
    });
    let hw_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // The honest multi-threaded column: an explicit override, or the
    // machine's real parallelism — and only when it exceeds one. A
    // 1-thread run must never be recorded under an "mt" label.
    let mt_threads = threads_override.or(Some(hw_threads)).filter(|&n| n >= 2);

    println!("## B9 — engine vs. reference, Algorithm 2 sweep (seconds per run)\n");
    match mt_threads {
        Some(n) => {
            println!("(machine reports {hw_threads} hardware thread(s); mt column uses {n})\n")
        }
        None => println!(
            "(machine reports {hw_threads} hardware thread(s): no honest \
             multi-threaded measurement is possible — mt column omitted; \
             pass `--threads N` to force one)\n"
        ),
    }
    let mt_label = match mt_threads {
        Some(n) => format!("engine {n}T (s)"),
        None => "engine mt (s)".to_string(),
    };
    println!(
        "| contention | |T| | reference (s) | engine 1T (s) | speedup | {mt_label} | probes | cache hits | iso builds |"
    );
    println!("|---|---|---|---|---|---|---|---|---|");

    let mut rows: Vec<Value> = Vec::new();
    for contention in Contention::ALL {
        for n in [64u32, 96, 128] {
            let txns = workload(n, contention, 0xB3);

            let expected = optimal_allocation_reference(&txns);
            let (got, stats) = Allocator::new(&txns).optimal();
            assert_eq!(
                got,
                expected,
                "engine optimum diverged at {} |T|={n}",
                contention.label()
            );
            let t_ref = time(|| optimal_allocation_reference(&txns).is_empty());
            let t_one = time(|| Allocator::new(&txns).optimal().0.is_empty());
            let t_par = mt_threads.map(|mt| {
                let (got_mt, _) = Allocator::new(&txns).with_threads(mt).optimal();
                assert_eq!(got_mt, expected, "parallel optimum diverged");
                time(|| {
                    Allocator::new(&txns)
                        .with_threads(mt)
                        .optimal()
                        .0
                        .is_empty()
                })
            });

            println!(
                "| {} | {} | {:.3e} | {:.3e} | {:.2}× | {} | {} | {} | {} |",
                contention.label(),
                n,
                t_ref,
                t_one,
                t_ref / t_one,
                t_par
                    .map(|t| format!("{t:.3e}"))
                    .unwrap_or_else(|| "n/a".to_string()),
                stats.probes,
                stats.cache_hits,
                stats.iso_builds,
            );
            rows.push(json!({
                "contention": contention.label(),
                "txns": n as u64,
                "reference_s": t_ref,
                "engine_1t_s": t_one,
                "speedup_1t": t_ref / t_one,
                "engine_mt_s": t_par,
                "mt_threads": mt_threads.map(|n| n as u64),
                "probes": stats.probes,
                "cache_hits": stats.cache_hits,
                "cached_specs": stats.cached_specs,
                "iso_builds": stats.iso_builds,
                "components_checked": stats.components_checked,
                "kernel_row_ops": stats.kernel_row_ops,
            }));
        }
    }

    if let Some(path) = json_path {
        // Merge into the existing document: the B10 ("delta"), B11
        // ("chaos_soak") and B12 ("components") sections live in the
        // same file and must survive a B9 re-run.
        let mut doc: Value = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| serde_json::from_str(&text).ok())
            .unwrap_or_else(|| json!({}));
        doc["experiment"] = json!("B9-engine-vs-reference");
        doc["seed"] = json!("0xB3");
        doc["hw_threads"] = json!(hw_threads as u64);
        doc["mt_threads"] = json!(mt_threads.map(|n| n as u64));
        doc["env"] = mvbench::bench_env(mt_threads.map(|n| n as u64));
        doc["rows"] = json!(rows);
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&doc).expect("valid json"),
        )
        .unwrap_or_else(|e| {
            eprintln!("writing {path}: {e}");
            std::process::exit(1);
        });
        println!("\nwrote {path}");
    }
}
