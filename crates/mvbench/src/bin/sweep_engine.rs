//! B9 table generator: the incremental/parallel robustness engine vs.
//! the retained pre-engine reference on the Algorithm 2 sweep.
//!
//! ```sh
//! cargo run --release -p mvbench --bin sweep_engine [--json BENCH_alg.json]
//! ```
//!
//! For each `(contention, |T|)` cell the reference implementation
//! (`optimal_allocation_reference`) and the engine
//! (`Allocator::optimal`, at 1 and at `available_parallelism` threads)
//! compute the optimal allocation on the *same* workload; the verdicts
//! are asserted equal, wall times and the engine's work counters are
//! reported, and the whole table is optionally dumped as JSON.

use mvbench::{workload, Contention};
use mvrobustness::{optimal_allocation_reference, Allocator};
use serde_json::{json, Value};
use std::time::Instant;

fn time<R, F: FnMut() -> R>(mut f: F) -> f64 {
    // Warm up once, then time enough iterations for ≥ ~50ms.
    f();
    let mut iters = 1u32;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed > 0.05 || iters >= 1 << 16 {
            return elapsed / iters as f64;
        }
        iters *= 4;
    }
}

fn main() {
    let json_path = {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        argv.iter().position(|a| a == "--json").map(|i| {
            argv.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("--json requires a path");
                std::process::exit(2);
            })
        })
    };
    let hw_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!("## B9 — engine vs. reference, Algorithm 2 sweep (seconds per run)\n");
    println!("(machine reports {hw_threads} hardware thread(s))\n");
    println!(
        "| contention | |T| | reference (s) | engine 1T (s) | speedup | engine {hw_threads}T (s) | probes | cache hits | iso builds |"
    );
    println!("|---|---|---|---|---|---|---|---|---|");

    let mut rows: Vec<Value> = Vec::new();
    for contention in Contention::ALL {
        for n in [64u32, 96, 128] {
            let txns = workload(n, contention, 0xB3);

            let expected = optimal_allocation_reference(&txns);
            let (got, stats) = Allocator::new(&txns).optimal();
            assert_eq!(
                got,
                expected,
                "engine optimum diverged at {} |T|={n}",
                contention.label()
            );
            let (got_mt, _) = Allocator::new(&txns).with_threads(hw_threads).optimal();
            assert_eq!(got_mt, expected, "parallel optimum diverged");

            let t_ref = time(|| optimal_allocation_reference(&txns).is_empty());
            let t_one = time(|| Allocator::new(&txns).optimal().0.is_empty());
            let t_par = time(|| {
                Allocator::new(&txns)
                    .with_threads(hw_threads)
                    .optimal()
                    .0
                    .is_empty()
            });

            println!(
                "| {} | {} | {:.3e} | {:.3e} | {:.2}× | {:.3e} | {} | {} | {} |",
                contention.label(),
                n,
                t_ref,
                t_one,
                t_ref / t_one,
                t_par,
                stats.probes,
                stats.cache_hits,
                stats.iso_builds,
            );
            rows.push(json!({
                "contention": contention.label(),
                "txns": n as u64,
                "reference_s": t_ref,
                "engine_1t_s": t_one,
                "speedup_1t": t_ref / t_one,
                "engine_mt_s": t_par,
                "mt_threads": hw_threads as u64,
                "probes": stats.probes,
                "cache_hits": stats.cache_hits,
                "cached_specs": stats.cached_specs,
                "iso_builds": stats.iso_builds,
            }));
        }
    }

    if let Some(path) = json_path {
        let doc = json!({
            "experiment": "B9-engine-vs-reference",
            "seed": "0xB3",
            "hw_threads": hw_threads as u64,
            "rows": rows,
        });
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&doc).expect("valid json"),
        )
        .unwrap_or_else(|e| {
            eprintln!("writing {path}: {e}");
            std::process::exit(1);
        });
        println!("\nwrote {path}");
    }
}
