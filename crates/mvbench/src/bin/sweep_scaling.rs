//! B1/B2/B3/B4 table generator: wall-clock scaling of Algorithm 1,
//! Algorithm 2 and the brute-force oracle.
//!
//! ```sh
//! cargo run --release -p mvbench --bin sweep_scaling
//! ```
//!
//! Prints the markdown rows recorded in EXPERIMENTS.md. The log-log slope
//! column estimates the local polynomial degree between consecutive
//! sizes; Theorem 3.3 predicts a constant (≤ 6-ish) degree, while the
//! oracle's slope grows with size (exponential).

use mvbench::{oracle_workload, workload, Contention};
use mvisolation::Allocation;
use mvrobustness::{is_robust, optimal_allocation, oracle_is_robust};
use std::sync::Arc;
use std::time::Instant;

fn time<F: FnMut() -> bool>(mut f: F) -> f64 {
    // Warm up once, then time enough iterations for ≥ ~20ms.
    f();
    let mut iters = 1u32;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed > 0.02 || iters >= 1 << 20 {
            return elapsed / iters as f64;
        }
        iters *= 4;
    }
}

fn main() {
    println!("## B1 — Algorithm 1 scaling in |T| (seconds per call)\n");
    println!("| contention | |T| | robust? | time (s) | log-log slope |");
    println!("|---|---|---|---|---|");
    for contention in Contention::ALL {
        let mut prev: Option<(f64, f64)> = None;
        for n in [5u32, 10, 20, 40, 80, 160] {
            let txns = workload(n, contention, 0xB1);
            let ssi = Allocation::uniform_ssi(&txns);
            let robust = is_robust(&txns, &ssi).robust();
            let t = time(|| is_robust(&txns, &ssi).robust());
            let slope = prev
                .map(|(pn, pt)| (t / pt).ln() / (n as f64 / pn).ln())
                .map(|s| format!("{s:.2}"))
                .unwrap_or_else(|| "—".into());
            println!(
                "| {} | {} | {} | {:.3e} | {} |",
                contention.label(),
                n,
                robust,
                t,
                slope
            );
            prev = Some((n as f64, t));
        }
    }

    println!("\n## B2 — Algorithm 1 scaling in ops/transaction (|T| = 15)\n");
    println!("| ops/txn | time (s) | log-log slope |");
    println!("|---|---|---|");
    let mut prev: Option<(f64, f64)> = None;
    for ell in [2usize, 4, 8, 16, 32] {
        let txns = mvworkloads::RandomWorkload::builder()
            .txns(15)
            .ops(ell, ell)
            .objects(ell * 12)
            .write_ratio(0.4)
            .seed(0xB2)
            .generate();
        let ssi = Allocation::uniform_ssi(&txns);
        let t = time(|| is_robust(&txns, &ssi).robust());
        let slope = prev
            .map(|(pe, pt)| (t / pt).ln() / (ell as f64 / pe).ln())
            .map(|s| format!("{s:.2}"))
            .unwrap_or_else(|| "—".into());
        println!("| {ell} | {t:.3e} | {slope} |");
        prev = Some((ell as f64, t));
    }

    println!("\n## B3 — Algorithm 2 (optimal allocation) scaling\n");
    println!("| contention | |T| | time (s) | composition (RC/SI/SSI) |");
    println!("|---|---|---|---|");
    for contention in [Contention::Low, Contention::High] {
        for n in [5u32, 10, 20, 40, 80] {
            let txns = workload(n, contention, 0xB3);
            let alloc = optimal_allocation(&txns);
            let t = time(|| !optimal_allocation(&txns).is_empty());
            let (rc, si, ssi) = alloc.counts();
            println!(
                "| {} | {} | {:.3e} | {}/{}/{} |",
                contention.label(),
                n,
                t,
                rc,
                si,
                ssi
            );
        }
    }

    println!("\n## B4 — Algorithm 1 vs brute-force oracle (same instances)\n");
    println!("| |T| | ops | algorithm 1 (s) | oracle (s) | ratio |");
    println!("|---|---|---|---|---|");
    for n in [2u32, 3, 4] {
        let txns = Arc::new(oracle_workload(n, 0xB4));
        let si = Allocation::uniform_si(&txns);
        let fast = time(|| is_robust(&txns, &si).robust());
        let slow = time(|| oracle_is_robust(&txns, &si));
        println!(
            "| {} | {} | {:.3e} | {:.3e} | {:.0}× |",
            n,
            txns.total_ops(),
            fast,
            slow,
            slow / fast
        );
    }
}
