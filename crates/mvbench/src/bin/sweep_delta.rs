//! B10 table generator: incremental delta reallocation (`add_txn` /
//! `remove_txn`) vs. recomputing `Allocator::optimal` from scratch.
//!
//! ```sh
//! cargo run --release -p mvbench --bin sweep_delta [--json BENCH_alg.json]
//! ```
//!
//! For each |T| a medium-contention workload of |T|+1 transactions is
//! built; the last transaction is the "churn" member. The delta path is
//! one steady-state `add_txn` + `remove_txn` cycle on a warm allocator
//! (two reallocation events); the baseline is two cold `optimal()`
//! recomputations over the corresponding sets. Before timing, the delta
//! results are asserted bit-identical to the full recomputation on the
//! same membership. With `--json PATH` the rows are merged into the
//! existing document under a `"delta"` key (B9 rows are preserved).

use mvbench::{workload, Contention};
use mvrobustness::Allocator;
use serde_json::{json, Value};
use std::time::Instant;

fn time<R, F: FnMut() -> R>(mut f: F) -> f64 {
    // Warm up once, then time enough iterations for ≥ ~50ms.
    f();
    let mut iters = 1u32;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed > 0.05 || iters >= 1 << 16 {
            return elapsed / iters as f64;
        }
        iters *= 4;
    }
}

fn main() {
    let json_path = {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        argv.iter().position(|a| a == "--json").map(|i| {
            argv.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("--json requires a path");
                std::process::exit(2);
            })
        })
    };

    println!("## B10 — delta reallocation vs. full recompute (seconds per reallocation)\n");
    println!("| |T| | full optimal (s) | delta add+remove (s) | per-event speedup | probes/add | cache hits/add |");
    println!("|---|---|---|---|---|---|");

    let mut rows: Vec<Value> = Vec::new();
    for n in [16u32, 64, 256] {
        let full_set = workload(n + 1, Contention::Medium, 0xD5);
        let churn_id = full_set.ids().max().expect("non-empty workload");
        let mut base = full_set.clone();
        let churn = base.remove(churn_id).expect("churn member present");

        // Correctness first: the delta path must match a recomputation
        // from scratch on the same membership, bit for bit.
        let (expect_full, _) = Allocator::new(&full_set).optimal();
        let (expect_base, _) = Allocator::new(&base).optimal();
        let mut alloc = Allocator::from_owned(base.clone());
        let added = alloc.add_txn(churn.clone()).expect("allocatable add");
        assert_eq!(
            added.allocation, expect_full,
            "delta add diverged at |T|={n}"
        );
        let removed = alloc.remove_txn(churn_id).expect("member removal");
        assert_eq!(
            removed.allocation, expect_base,
            "delta remove diverged at |T|={n}"
        );
        let add_stats = {
            let r = alloc.add_txn(churn.clone()).expect("allocatable re-add");
            alloc.remove_txn(churn_id).expect("member removal");
            r.stats
        };

        // One cycle = two reallocation events on each side.
        let t_full = time(|| {
            let a = Allocator::new(&full_set).optimal().0;
            let b = Allocator::new(&base).optimal().0;
            a.is_empty() ^ b.is_empty()
        });
        let t_delta = time(|| {
            alloc.add_txn(churn.clone()).expect("allocatable add");
            alloc.remove_txn(churn_id).expect("member removal");
        });
        let speedup = t_full / t_delta;

        println!(
            "| {} | {:.3e} | {:.3e} | {:.2}× | {} | {} |",
            n + 1,
            t_full / 2.0,
            t_delta / 2.0,
            speedup,
            add_stats.probes,
            add_stats.cache_hits,
        );
        rows.push(json!({
            "txns": (n + 1) as u64,
            "full_per_event_s": t_full / 2.0,
            "delta_per_event_s": t_delta / 2.0,
            "speedup": speedup,
            "add_probes": add_stats.probes,
            "add_cache_hits": add_stats.cache_hits,
        }));
    }

    if let Some(path) = json_path {
        // Merge under "delta" without clobbering whatever (e.g. the B9
        // table) is already in the file.
        let mut doc: Value = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| serde_json::from_str(&text).ok())
            .unwrap_or_else(|| json!({}));
        doc["delta"] = json!({
            "experiment": "B10-delta-vs-full",
            "contention": "medium",
            "env": mvbench::bench_env(None),
            "seed": "0xD5",
            "rows": rows,
        });
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&doc).expect("valid json"),
        )
        .unwrap_or_else(|e| {
            eprintln!("writing {path}: {e}");
            std::process::exit(1);
        });
        println!("\nmerged delta rows into {path}");
    }
}
