//! B14 table generator: connection scaling of the event-loop socket
//! core and the dual text/binary codec.
//!
//! ```sh
//! cargo run --release -p mvbench --bin sweep_conns [--json BENCH_alg.json] [--smoke]
//! ```
//!
//! Each cell boots an in-process [`mvservice::Server`] (event-loop or
//! thread-per-connection core), opens a fleet of N concurrent
//! connections, and drives a bounded in-flight window of them
//! closed-loop with `assign` reads over a small pre-registered
//! transaction pool (registered untimed at setup). Reads are O(1) in
//! the registry, so the measured path is parse → lookup → encode →
//! socket — the connection layer, not Algorithm 1/2 (B9/B12/B13 cover
//! the engine). Connections outside the window stay open but idle —
//! the realistic c10k shape: the server's poll set carries every
//! connection while a fixed offered load flows through it, so
//! events/sec compares core efficiency and p99 isolates the
//! per-connection cost of fleet size.
//!
//! The `pipeline` column is the batch-drain lever: how many requests
//! each active connection keeps in flight. At depth 1 every poll drain
//! carries one request per ready connection; at depth 16 a single
//! read/write cycle drains a batch, amortizing syscalls and poll scans
//! on both sides of the wire.
//!
//! The driver is itself nonblocking — [`mvservice::poll::wait`] over
//! raw fds, [`FrameBuf`] for reply framing — so one bench thread can
//! own 10k sockets without 10k threads, and speaks either codec via
//! [`encode_payload`]. `poll::raise_nofile_limit` lifts the fd ceiling
//! first; fleets that still don't fit are scaled down (and reported).
//!
//! Reported per row: aggregate events/sec and the log₂-bucketed p99
//! per-request latency (µs, bucket upper bound — same bucketing as
//! [`mvservice::Metrics`]). `--smoke` runs the event core at 1k/10k
//! connections on both codecs plus the threaded baseline, and *fails*
//! (exit 1, with the reproducing command) when the binary codec does
//! not beat line-JSON on events/sec at 1k connections, or when the
//! 10k-connection p99 regresses more than 2× over 1k on either codec —
//! the CI gate.

use mvservice::{encode_payload, Client, CodecKind, Config, CoreKind, FrameBuf, Payload, Server};
use serde_json::{json, Value};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

const REPRO: &str = "cargo run --release -p mvbench --bin sweep_conns -- --smoke";
/// Pre-registered transactions the reads fan over; object namespaces
/// are disjoint, so the pool allocates instantly at setup.
const POOL: u32 = 64;
/// In-flight window: how many connections are actively cycling at any
/// moment (the rest idle in the server's poll set).
const WINDOW: usize = 1024;
/// Timed passes per cell; the best is reported. Damps scheduler noise
/// so the smoke gates compare codecs rather than runs.
const TRIALS: usize = 3;

#[cfg(unix)]
fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let json_path = argv.iter().position(|a| a == "--json").map(|i| {
        argv.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--json requires a path");
            std::process::exit(2);
        })
    });

    // 2 fds per connection (client + server end, same process) plus
    // listener/waker/std slack.
    let biggest = 10_000u64;
    let limit = mvservice::poll::raise_nofile_limit(2 * biggest + 256);
    let fit = ((limit.saturating_sub(256)) / 2) as usize;
    if (fit as u64) < biggest {
        eprintln!("nofile limit {limit}: fleets capped at {fit} connections");
    }

    // (core, conns, pipeline depth) — both codecs are measured inside
    // one pair run, alternating trials in time, so the line/binary
    // comparison never straddles a shift in background machine load.
    let mut plan: Vec<(CoreKind, usize, usize)> = Vec::new();
    if smoke {
        plan.push((CoreKind::Event, 1_000, 1));
        plan.push((CoreKind::Event, 10_000, 1));
        plan.push((CoreKind::Threaded, 1_000, 1));
    } else {
        for conns in [100, 1_000, 10_000] {
            for pipeline in [1, 16] {
                plan.push((CoreKind::Event, conns, pipeline));
            }
        }
        for conns in [100, 1_000] {
            plan.push((CoreKind::Threaded, conns, 1));
        }
    }

    let events = if smoke { 50_000usize } else { 150_000usize };

    println!("## B14 — connection scaling: event loop vs threads, line vs binary\n");
    println!("| core | codec | conns | pipeline | events | events/s | p99 (µs, log2 bucket) |");
    println!("|---|---|---|---|---|---|---|");

    let mut cells: Vec<Cell> = Vec::new();
    for (core, want, pipeline) in plan {
        let conns = want.min(fit);
        if conns < want {
            eprintln!("(scaled {want}-connection cell down to {conns})");
        }
        for cell in run_pair(core, conns, pipeline, events) {
            println!(
                "| {} | {} | {} | {} | {} | {:.0} | {} |",
                cell.core.as_str(),
                cell.codec.as_str(),
                cell.conns,
                cell.pipeline,
                cell.events,
                cell.events_per_s,
                cell.p99_us
            );
            cells.push(cell);
        }
    }

    let find = |core: CoreKind, codec: CodecKind, conns: usize| {
        cells
            .iter()
            .find(|c| c.core == core && c.codec == codec && c.conns == conns && c.pipeline == 1)
    };

    // Context line for the acceptance story: the event loop at its
    // biggest fleet vs the thread-per-connection baseline at 1k.
    let big = fit.min(10_000);
    if let (Some(event_big), Some(threaded_1k)) = (
        find(CoreKind::Event, CodecKind::Frame, big),
        find(CoreKind::Threaded, CodecKind::Line, 1_000.min(fit)),
    ) {
        println!(
            "\nevent@{} {:.0} ev/s vs threaded@{} {:.0} ev/s ({:.2}×)",
            event_big.conns,
            event_big.events_per_s,
            threaded_1k.conns,
            threaded_1k.events_per_s,
            event_big.events_per_s / threaded_1k.events_per_s
        );
    }

    let mut failures: Vec<String> = Vec::new();
    if smoke {
        let c1 = 1_000.min(fit);
        let c10 = 10_000.min(fit);
        let line_1k = find(CoreKind::Event, CodecKind::Line, c1).expect("1k line cell");
        let frame_1k = find(CoreKind::Event, CodecKind::Frame, c1).expect("1k frame cell");
        if frame_1k.events_per_s <= line_1k.events_per_s {
            failures.push(format!(
                "binary codec {:.0} ev/s ≤ line-JSON {:.0} ev/s at {c1} connections",
                frame_1k.events_per_s, line_1k.events_per_s
            ));
        }
        for codec in [CodecKind::Line, CodecKind::Frame] {
            let small = find(CoreKind::Event, codec, c1).expect("1k cell");
            let large = find(CoreKind::Event, codec, c10).expect("10k cell");
            if large.p99_us > 2 * small.p99_us {
                failures.push(format!(
                    "{} codec p99 {}µs at {c10} connections > 2× {}µs at {c1}",
                    codec.as_str(),
                    large.p99_us,
                    small.p99_us
                ));
            }
        }
    }

    if let Some(path) = json_path {
        // Merge under "conns" without clobbering the other tables.
        let mut doc: Value = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| serde_json::from_str(&text).ok())
            .unwrap_or_else(|| json!({}));
        let rows: Vec<Value> = cells
            .iter()
            .map(|c| {
                json!({
                    "core": c.core.as_str(),
                    "codec": c.codec.as_str(),
                    "conns": c.conns as u64,
                    "pipeline": c.pipeline as u64,
                    "events": c.events as u64,
                    "events_per_s": c.events_per_s,
                    "p99_us": c.p99_us,
                })
            })
            .collect();
        doc["conns"] = json!({
            "experiment": "B14-connection-scaling",
            "smoke": smoke,
            "env": mvbench::bench_env(None),
            "window": WINDOW as u64,
            "pool": POOL as u64,
            "workload": "assign reads over a pre-registered pool",
            "rows": rows,
        });
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&doc).expect("valid json"),
        )
        .unwrap_or_else(|e| {
            eprintln!("writing {path}: {e}");
            std::process::exit(1);
        });
        println!("\nmerged conns rows into {path}");
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f} — repro: {REPRO}");
        }
        std::process::exit(1);
    }
    if smoke {
        println!("\nsmoke OK: binary beats line at 1k and the event loop holds p99 at 10k");
    }
}

#[cfg(not(unix))]
fn main() {
    eprintln!("sweep_conns needs raw-fd readiness polling (unix only); skipping");
}

#[cfg(unix)]
struct Cell {
    core: CoreKind,
    codec: CodecKind,
    conns: usize,
    pipeline: usize,
    events: usize,
    events_per_s: f64,
    p99_us: u64,
}

/// One bench connection: a nonblocking socket plus its reply framing,
/// write backlog, and in-order timestamps of in-flight requests.
#[cfg(unix)]
struct BenchConn {
    stream: TcpStream,
    fb: FrameBuf,
    backlog: Vec<u8>,
    written: usize,
    in_flight: VecDeque<Instant>,
    /// Which pool transaction the next assign reads (rotates).
    next_txn: u32,
}

#[cfg(unix)]
impl BenchConn {
    /// Queues one assign request and starts its latency clock.
    fn send_assign(&mut self, codec: CodecKind) {
        let value = json!({"op": "assign", "txn_id": self.next_txn});
        self.next_txn = self.next_txn % POOL + 1;
        encode_payload(codec, &value, &mut self.backlog);
        self.in_flight.push_back(Instant::now());
        self.flush();
    }

    /// Writes as much backlog as the socket takes right now.
    fn flush(&mut self) {
        while self.written < self.backlog.len() {
            match self.stream.write(&self.backlog[self.written..]) {
                Ok(0) => panic!("server closed mid-write — repro: {REPRO}"),
                Ok(n) => self.written += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => panic!("bench write: {e} — repro: {REPRO}"),
            }
        }
        self.backlog.clear();
        self.written = 0;
    }
}

/// Boots one server with the given core, pre-registers the read pool,
/// then measures BOTH codecs over `conns` connections in alternating
/// trials (line, binary, line, binary, …). Each trial opens a fresh
/// fleet, warms it up untimed, runs `events` assigns through a
/// `WINDOW`-wide window (each active connection keeping `pipeline`
/// requests in flight), then drains before the next fleet connects.
/// The best of `TRIALS` per codec is reported: alternation keeps the
/// line/binary comparison inside the same seconds of machine time, so
/// background-load drift hits both codecs instead of whichever cell
/// ran during the slow patch. Returns `[line, binary]` cells.
#[cfg(unix)]
fn run_pair(core: CoreKind, conns: usize, pipeline: usize, events: usize) -> [Cell; 2] {
    let server = Server::bind(Config {
        addr: "127.0.0.1:0".to_string(),
        core,
        ..Config::default()
    })
    .expect("bind bench server");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let serving = std::thread::spawn(move || server.run().expect("bench server run"));

    // Untimed setup: register the pool the reads will fan over.
    // Disjoint object namespaces keep every pool member its own
    // component, so this allocates instantly.
    {
        let mut setup = Client::connect(addr).expect("setup client");
        for j in 1..=POOL {
            let reply = setup
                .register(&format!("T{j}: R[o{}] W[o{}]", 2 * j, 2 * j + 1))
                .expect("pool register");
            assert_eq!(reply["ok"], true, "pool register rejected: {reply}");
        }
    }

    let window = WINDOW.min(conns);
    let mut best: [Option<(f64, u64)>; 2] = [None, None];
    for _ in 0..TRIALS {
        for (slot, codec) in [CodecKind::Line, CodecKind::Frame].into_iter().enumerate() {
            wait_drained(&handle);
            let mut fleet = connect_fleet(addr, conns, codec);
            drive(&mut fleet, window, codec, pipeline, events / 10, &mut None);
            let mut hist = Some([0u64; 64]);
            let elapsed = drive(&mut fleet, window, codec, pipeline, events, &mut hist);
            let rate = events as f64 / elapsed;
            let p99 = p99_us(&hist.expect("recording trial keeps its histogram"));
            if best[slot].is_none_or(|(r, _)| rate > r) {
                best[slot] = Some((rate, p99));
            }
            // Teardown order matters for the threaded core: dropping
            // the fleet EOFs every reader thread, freeing its fds
            // before the next fleet connects.
            drop(fleet);
        }
    }

    handle.shutdown();
    serving.join().expect("bench server thread");

    [CodecKind::Line, CodecKind::Frame].map(|codec| {
        let slot = usize::from(codec == CodecKind::Frame);
        let (events_per_s, p99_us) = best[slot].expect("at least one trial ran");
        Cell {
            core,
            codec,
            conns,
            pipeline,
            events,
            events_per_s,
            p99_us,
        }
    })
}

/// Opens `conns` connections speaking `codec`. Connects are blocking
/// (loopback: cheap) with a retry on transient accept-queue overflow;
/// sockets go nonblocking once connected.
#[cfg(unix)]
fn connect_fleet(addr: std::net::SocketAddr, conns: usize, codec: CodecKind) -> Vec<BenchConn> {
    let mut fleet: Vec<BenchConn> = Vec::with_capacity(conns);
    for i in 0..conns {
        let mut attempts = 0u32;
        let stream = loop {
            match TcpStream::connect(addr) {
                Ok(s) => break s,
                // Accept queue behind us — let the server drain it.
                Err(_) if attempts < 200 => {
                    attempts += 1;
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => panic!("connect #{i}: {e} — repro: {REPRO}"),
            }
        };
        stream.set_nodelay(true).ok();
        stream
            .set_nonblocking(true)
            .expect("nonblocking bench socket");
        fleet.push(BenchConn {
            stream,
            fb: FrameBuf::with_kind(codec),
            backlog: Vec::new(),
            written: 0,
            in_flight: VecDeque::new(),
            next_txn: (i as u32) % POOL + 1,
        });
    }
    fleet
}

/// Blocks until the server has reaped every connection from the
/// previous fleet (its fd budget is half the process limit), giving up
/// after 10s — a straggler or two won't sink the next trial.
#[cfg(unix)]
fn wait_drained(handle: &mvservice::ServerHandle) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.metrics_json()["connections"]["open"] != 0u64 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Issues exactly `events` assigns through the window and waits for
/// every reply, recording latencies into `hist` when present. Returns
/// the elapsed wall time.
#[cfg(unix)]
fn drive(
    fleet: &mut [BenchConn],
    window: usize,
    codec: CodecKind,
    pipeline: usize,
    events: usize,
    hist: &mut Option<[u64; 64]>,
) -> f64 {
    use std::os::unix::io::AsRawFd;

    let mut issued = 0usize;
    let mut completed = 0usize;
    let started = Instant::now();
    'prime: for conn in fleet.iter_mut().take(window) {
        for _ in 0..pipeline {
            if issued >= events {
                break 'prime;
            }
            conn.send_assign(codec);
            issued += 1;
        }
    }

    let mut interests: Vec<mvservice::poll::Interest> = Vec::with_capacity(window);
    let mut owners: Vec<usize> = Vec::with_capacity(window);
    let mut chunk = [0u8; 16 * 1024];
    while completed < issued || issued < events {
        interests.clear();
        owners.clear();
        for (i, c) in fleet.iter().enumerate().take(window) {
            if c.in_flight.is_empty() && c.backlog.is_empty() {
                continue;
            }
            interests.push(mvservice::poll::Interest {
                fd: c.stream.as_raw_fd(),
                read: !c.in_flight.is_empty(),
                write: !c.backlog.is_empty(),
            });
            owners.push(i);
        }
        let ready = mvservice::poll::wait(&interests, Duration::from_millis(50));
        for (slot, r) in ready.iter().enumerate() {
            let i = owners[slot];
            if r.writable {
                fleet[i].flush();
            }
            if !(r.readable || r.hangup) {
                continue;
            }
            loop {
                match fleet[i].stream.read(&mut chunk) {
                    Ok(0) => panic!("server hung up mid-bench — repro: {REPRO}"),
                    Ok(n) => {
                        fleet[i].fb.push(&chunk[..n]);
                        if n < chunk.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) => panic!("bench read: {e} — repro: {REPRO}"),
                }
            }
            while let Some(payload) = fleet[i]
                .fb
                .next_payload()
                .unwrap_or_else(|e| panic!("bench reply framing: {e:?} — repro: {REPRO}"))
            {
                let reply: Value = match payload {
                    Payload::Frame(v) => v,
                    Payload::Line(text) => serde_json::from_str(&text)
                        .unwrap_or_else(|e| panic!("bench reply JSON: {e} — repro: {REPRO}")),
                };
                assert_eq!(
                    reply["ok"], true,
                    "bench request rejected: {reply} — repro: {REPRO}"
                );
                let sent = fleet[i]
                    .in_flight
                    .pop_front()
                    .unwrap_or_else(|| panic!("unsolicited reply — repro: {REPRO}"));
                if let Some(h) = hist.as_mut() {
                    let us = sent.elapsed().as_micros() as u64;
                    h[(64 - us.leading_zeros() as usize).min(63)] += 1;
                }
                completed += 1;
                if issued < events {
                    fleet[i].send_assign(codec);
                    issued += 1;
                }
            }
        }
    }
    started.elapsed().as_secs_f64()
}

/// The log₂ bucket's upper bound at the 99th percentile, mirroring
/// `Metrics` (bucket 0 holds the sub-µs durations and reports 0).
#[cfg(unix)]
fn p99_us(hist: &[u64; 64]) -> u64 {
    let total: u64 = hist.iter().sum();
    let rank = ((total as f64) * 0.99).ceil() as u64;
    let mut seen = 0u64;
    for (i, &n) in hist.iter().enumerate() {
        seen += n;
        if seen >= rank {
            return if i == 0 { 0 } else { 1u64 << i };
        }
    }
    0
}
