//! B12 table generator: the component-sharded engine vs. the monolithic
//! engine, on multi-component and single-component workloads.
//!
//! ```sh
//! cargo run --release -p mvbench --bin sweep_components [--json BENCH_alg.json] [--smoke]
//! ```
//!
//! Two regimes per size:
//!
//! - **multi**: `clustered_workload` — many private conflict clusters.
//!   Sharding solves each component independently, so the one-shot
//!   optimum and the steady-state delta both collapse to per-cluster
//!   work, and untouched clusters are answered from the fingerprint
//!   cache on deltas.
//! - **single**: `ring_workload` — one giant rw ring, the adversarial
//!   case where decomposition can only add overhead.
//!
//! Every timed configuration is first asserted **bit-identical** to the
//! monolithic engine. `--smoke` runs a small pinned-seed subset and
//! *fails* (exit 1, with the reproducing command) when the sharded
//! engine disagrees with the unsharded one or regresses more than 2× on
//! the single-component worst case — the CI gate.

use mvbench::{clustered_workload, ring_workload};
use mvrobustness::Allocator;
use serde_json::{json, Value};
use std::time::Instant;

const SEED: u64 = 0xB12;
const REPRO: &str = "cargo run --release -p mvbench --bin sweep_components -- --smoke";

fn time<R, F: FnMut() -> R>(mut f: F) -> f64 {
    // Warm up once, then time enough iterations for ≥ ~50ms.
    f();
    let mut iters = 1u32;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed > 0.05 || iters >= 1 << 16 {
            return elapsed / iters as f64;
        }
        iters *= 4;
    }
}

struct Cell {
    regime: &'static str,
    txns: usize,
    components: usize,
    sharded_s: f64,
    unsharded_s: f64,
    delta_s: Option<f64>,
    delta_hit_rate: Option<f64>,
}

impl Cell {
    fn speedup(&self) -> f64 {
        self.unsharded_s / self.sharded_s
    }
}

/// Measures one workload in both engine modes; panics (with the cell
/// named) if they disagree anywhere.
fn measure(regime: &'static str, txns: mvmodel::TransactionSet, delta: bool) -> Cell {
    let n = txns.len();
    let index = mvrobustness::ConflictIndex::new(&txns);
    let components = mvrobustness::Components::new(&txns, &index).count();

    let (sharded, sharded_stats) = Allocator::new(&txns).optimal();
    let (unsharded, _) = Allocator::new(&txns).with_components(false).optimal();
    assert_eq!(
        sharded, unsharded,
        "sharded optimum diverged on {regime} |T|={n} — repro: {REPRO}"
    );
    if components > 1 {
        assert!(
            sharded_stats.components_checked > 0,
            "sharded engine did not shard {regime} |T|={n}"
        );
    }

    let sharded_s = time(|| Allocator::new(&txns).optimal().0.is_empty());
    let unsharded_s = time(|| {
        Allocator::new(&txns)
            .with_components(false)
            .optimal()
            .0
            .is_empty()
    });

    // Steady-state delta on the multi-component regime: churn one
    // transaction in and out; every untouched component must come from
    // the fingerprint cache.
    let (delta_s, delta_hit_rate) = if delta {
        let churn_id = txns.ids().max().expect("non-empty workload");
        let mut base = txns.clone();
        let churn = base.remove(churn_id).expect("churn member present");
        let mut alloc = Allocator::from_owned(base);
        let warm = alloc.add_txn(churn.clone()).expect("allocatable add");
        assert_eq!(
            warm.allocation, sharded,
            "delta add diverged on {regime} |T|={n} — repro: {REPRO}"
        );
        alloc.remove_txn(churn_id).expect("member removal");
        let t = time(|| {
            alloc.add_txn(churn.clone()).expect("allocatable add");
            alloc.remove_txn(churn_id).expect("member removal");
        });
        let s = alloc.last_stats().expect("delta ran").clone();
        let touched = s.components_checked + s.components_cached;
        let hit_rate = if touched == 0 {
            0.0
        } else {
            s.components_cached as f64 / touched as f64
        };
        (Some(t / 2.0), Some(hit_rate))
    } else {
        (None, None)
    };

    Cell {
        regime,
        txns: n,
        components,
        sharded_s,
        unsharded_s,
        delta_s,
        delta_hit_rate,
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let json_path = argv.iter().position(|a| a == "--json").map(|i| {
        argv.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--json requires a path");
            std::process::exit(2);
        })
    });

    // (clusters, per-cluster) for the multi regime; ring size for single.
    let (multi_sizes, ring_sizes): (&[(u32, u32)], &[u32]) = if smoke {
        (&[(16, 4), (32, 4)], &[48])
    } else {
        (&[(32, 4), (128, 4), (256, 4)], &[64, 128, 256])
    };

    println!("## B12 — component-sharded vs. monolithic engine (seconds per run)\n");
    println!(
        "| regime | |T| | components | sharded (s) | unsharded (s) | speedup | delta/event (s) | delta cache hit-rate |"
    );
    println!("|---|---|---|---|---|---|---|---|");

    let mut cells: Vec<Cell> = Vec::new();
    for &(clusters, per) in multi_sizes {
        cells.push(measure(
            "multi",
            clustered_workload(clusters, per, SEED),
            true,
        ));
    }
    for &n in ring_sizes {
        cells.push(measure("single", ring_workload(n), false));
    }

    let mut rows: Vec<Value> = Vec::new();
    for c in &cells {
        println!(
            "| {} | {} | {} | {:.3e} | {:.3e} | {:.2}× | {} | {} |",
            c.regime,
            c.txns,
            c.components,
            c.sharded_s,
            c.unsharded_s,
            c.speedup(),
            c.delta_s
                .map(|t| format!("{t:.3e}"))
                .unwrap_or_else(|| "n/a".to_string()),
            c.delta_hit_rate
                .map(|r| format!("{:.0}%", r * 100.0))
                .unwrap_or_else(|| "n/a".to_string()),
        );
        rows.push(json!({
            "regime": c.regime,
            "txns": c.txns as u64,
            "components": c.components as u64,
            "sharded_s": c.sharded_s,
            "unsharded_s": c.unsharded_s,
            "speedup": c.speedup(),
            "delta_per_event_s": c.delta_s,
            "delta_cache_hit_rate": c.delta_hit_rate,
        }));
    }

    // The regression gate. Equality was already asserted inside
    // `measure`; here the single-component overhead budget is enforced
    // (generous in smoke mode, where absolute times are tiny and noisy).
    let budget = if smoke { 2.0 } else { 1.1 };
    let mut failed = false;
    for c in cells.iter().filter(|c| c.regime == "single") {
        let overhead = c.sharded_s / c.unsharded_s;
        if overhead > budget {
            eprintln!(
                "FAIL: sharded engine is {overhead:.2}× the monolithic engine on the \
                 single-component worst case (|T|={}, budget {budget}×) — repro: {REPRO}",
                c.txns
            );
            failed = true;
        }
    }

    if let Some(path) = json_path {
        // Merge under "components" without clobbering the B9/B10 tables.
        let mut doc: Value = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| serde_json::from_str(&text).ok())
            .unwrap_or_else(|| json!({}));
        doc["components"] = json!({
            "experiment": "B12-component-sharding",
            "seed": format!("{SEED:#x}"),
            "env": mvbench::bench_env(None),
            "smoke": smoke,
            "rows": rows,
        });
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&doc).expect("valid json"),
        )
        .unwrap_or_else(|e| {
            eprintln!("writing {path}: {e}");
            std::process::exit(1);
        });
        println!("\nmerged component rows into {path}");
    }

    if failed {
        std::process::exit(1);
    }
    if smoke {
        println!("\nsmoke OK: sharded engine bit-identical and within the overhead budget");
    }
}
