//! B16 table generator: executed throughput of the optimal robust mixed
//! allocation vs. the all-SSI baseline on Zipf-skewed SmallBank.
//!
//! ```sh
//! cargo run --release -p mvbench --bin sweep_exec [--json BENCH_alg.json] [--smoke]
//! ```
//!
//! This is the payoff experiment for the allocate→execute loop: the paper
//! argues that running every transaction at the lowest robust level
//! preserves serializability while shedding SSI's certification aborts.
//! Each cell executes the same SmallBank workload on the MVCC simulator
//! under both allocations and both SSI detectors (exact and
//! Cahill-style conservative), and reports goodput (commits per logical
//! tick), abort rate, and p99 commit latency. Every run's committed
//! trace is validated against the allocation — allowed under it and
//! conflict serializable (both allocations are robust) — so the numbers
//! are backed by the conformance oracle, not just trusted.
//!
//! Everything is deterministic in the pinned seeds: logical-tick timing,
//! seeded scheduling, seeded workloads. `--smoke` runs a small subset and
//! fails (exit 1, with the reproducing command) when the mixed
//! allocation stops dominating the all-SSI baseline under the
//! conservative detector — the CI gate.

use mvbench::conformance::optimal_alloc;
use mvisolation::{Allocation, IsolationLevel};
use mvrobustness::check_trace;
use mvsim::{level_index, run_workload, LatencyStats, SimConfig, SsiMode};
use mvworkloads::SmallBank;
use serde_json::{json, Value};

const SEED: u64 = 0xB16;
const REPRO: &str = "cargo run --release -p mvbench --bin sweep_exec -- --smoke";
const THETA: f64 = 0.9;
const CONCURRENCY: usize = 8;

fn mode_label(mode: SsiMode) -> &'static str {
    match mode {
        SsiMode::Exact => "exact",
        SsiMode::Conservative => "conservative",
    }
}

/// Per-level transaction counts of an allocation, RC/SI/SSI.
fn level_histogram(alloc: &Allocation, txns: &mvmodel::TransactionSet) -> [usize; 3] {
    let mut h = [0usize; 3];
    for id in txns.ids() {
        h[level_index(alloc.level(id))] += 1;
    }
    h
}

struct Cell {
    customers: usize,
    mode: SsiMode,
    alloc_label: &'static str,
    /// RC/SI/SSI transaction counts in the allocation.
    histogram: [usize; 3],
    goodput: f64,
    abort_rate: f64,
    commits: u64,
    aborts: u64,
    aborts_ssi: u64,
    p99: u64,
    gave_up: u64,
}

impl Cell {
    fn attempts(&self) -> u64 {
        self.commits + self.aborts
    }
}

/// Executes `txns` under `alloc` across all sim seeds and pools the
/// metrics. Every run's trace is validated against the allocation.
fn measure(
    customers: usize,
    mode: SsiMode,
    alloc_label: &'static str,
    txns: &mvmodel::TransactionSet,
    alloc: &Allocation,
    sim_seeds: u64,
) -> Cell {
    let mut commits = 0u64;
    let mut aborts = 0u64;
    let mut aborts_ssi = 0u64;
    let mut ticks = 0u64;
    let mut gave_up = 0u64;
    let mut latency = LatencyStats::default();
    for s in 0..sim_seeds {
        let config = SimConfig::default()
            .with_seed(SEED.wrapping_add(s))
            .with_concurrency(CONCURRENCY)
            .with_ssi_mode(mode)
            // Cap retries: under the conservative detector the all-SSI
            // baseline can cascade into certification-abort livelock —
            // that *is* the finding, and the cap keeps it bounded.
            .with_max_retries(50);
        let engine = run_workload(txns, alloc, config);
        let exported = engine.trace.export().expect("traces recorded");
        // Both compared allocations are robust, so every committed trace
        // must be allowed *and* serializable.
        if let Err(e) = check_trace(&exported.schedule, &exported.allocation, true) {
            eprintln!(
                "FAIL: non-conformant execution ({alloc_label}, customers={customers}, \
                 mode={}, sim seed {}): {e}\nrepro: {REPRO}",
                mode_label(mode),
                SEED.wrapping_add(s)
            );
            std::process::exit(1);
        }
        commits += engine.metrics.commits;
        aborts += engine.metrics.total_aborts();
        aborts_ssi += engine.metrics.aborts_ssi;
        ticks += engine.metrics.ticks;
        gave_up += engine.metrics.gave_up;
        latency.merge(&engine.latency);
    }
    Cell {
        customers,
        mode,
        alloc_label,
        histogram: level_histogram(alloc, txns),
        goodput: commits as f64 / ticks as f64,
        abort_rate: aborts as f64 / (commits + aborts) as f64,
        commits,
        aborts,
        aborts_ssi,
        p99: latency.p99(),
        gave_up,
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let json_path = argv.iter().position(|a| a == "--json").map(|i| {
        argv.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--json requires a path");
            std::process::exit(2);
        })
    });

    // The transaction count stays fixed across modes: the mixed-vs-SSI
    // contrast needs enough instances that Algorithm 2 finds demotable
    // satellites (read-only Balances, no-savings customers, bridging
    // Amalgamates) around the hot write-skew core.
    let (n_txns, customer_sizes, sim_seeds): (usize, &[usize], u64) = if smoke {
        (64, &[4, 16], 3)
    } else {
        (64, &[4, 16, 64], 5)
    };

    println!("## B16 — executed goodput: optimal mixed allocation vs. all-SSI (SmallBank, Zipf θ={THETA}, {CONCURRENCY} sessions)\n");
    println!("| customers | detector | allocation | RC/SI/SSI | goodput (commits/tick) | abort rate | SSI aborts | p99 (ticks) |");
    println!("|---|---|---|---|---|---|---|---|");

    let mut cells: Vec<Cell> = Vec::new();
    for &customers in customer_sizes {
        let txns = SmallBank::random_mix(n_txns, customers, THETA, SEED + customers as u64);
        let mixed = optimal_alloc(&txns);
        let ssi = Allocation::uniform(&txns, IsolationLevel::SSI);
        for mode in [SsiMode::Exact, SsiMode::Conservative] {
            cells.push(measure(customers, mode, "all-SSI", &txns, &ssi, sim_seeds));
            cells.push(measure(customers, mode, "mixed", &txns, &mixed, sim_seeds));
        }
    }

    let mut rows: Vec<Value> = Vec::new();
    for c in &cells {
        println!(
            "| {} | {} | {} | {}/{}/{} | {:.4} | {:.3} | {} | {} |",
            c.customers,
            mode_label(c.mode),
            c.alloc_label,
            c.histogram[0],
            c.histogram[1],
            c.histogram[2],
            c.goodput,
            c.abort_rate,
            c.aborts_ssi,
            c.p99,
        );
        rows.push(json!({
            "customers": c.customers as u64,
            "detector": mode_label(c.mode),
            "allocation": c.alloc_label,
            "rc": c.histogram[0] as u64,
            "si": c.histogram[1] as u64,
            "ssi": c.histogram[2] as u64,
            "goodput": c.goodput,
            "abort_rate": c.abort_rate,
            "aborts_ssi": c.aborts_ssi,
            "p99_ticks": c.p99,
            "gave_up": c.gave_up,
        }));
    }

    // The gate, on the conservative (deployed-style) detector cells:
    //
    // 1. per cell, the mixed allocation commits at least as fast as
    //    all-SSI (ties are legitimate — on cells whose abort cascades
    //    involve only transactions that stay SSI in both allocations, the
    //    two executions are bit-identical);
    // 2. in aggregate, mixed aborts *strictly* less than all-SSI — the
    //    demoted satellites must shed real certification aborts somewhere;
    // 3. the optimal allocation is genuinely mixed on some cell.
    //
    // The exact detector is reported but not gated: with zero false
    // positives there is nothing for the mixed allocation to shed, and
    // the observed tie is itself the result.
    let mut failed = false;
    let mut any_mixed = false;
    let mut agg_ssi_rate = (0u64, 0u64); // (aborts, attempts) all-SSI
    let mut agg_mixed_rate = (0u64, 0u64);
    for &customers in customer_sizes {
        let find = |mode: SsiMode, label: &str| {
            cells
                .iter()
                .find(|c| c.customers == customers && c.mode == mode && c.alloc_label == label)
                .expect("cell measured")
        };
        let ssi = find(SsiMode::Conservative, "all-SSI");
        let mixed = find(SsiMode::Conservative, "mixed");
        any_mixed |= mixed.histogram.iter().filter(|&&n| n > 0).count() >= 2;
        agg_ssi_rate.0 += ssi.aborts;
        agg_ssi_rate.1 += ssi.attempts();
        agg_mixed_rate.0 += mixed.aborts;
        agg_mixed_rate.1 += mixed.attempts();
        if mixed.goodput < ssi.goodput {
            eprintln!(
                "FAIL: mixed goodput {:.4} < all-SSI {:.4} at customers={customers} \
                 (conservative) — repro: {REPRO}",
                mixed.goodput, ssi.goodput
            );
            failed = true;
        }
    }
    let rate = |(aborts, attempts): (u64, u64)| aborts as f64 / attempts as f64;
    if rate(agg_mixed_rate) >= rate(agg_ssi_rate) {
        eprintln!(
            "FAIL: aggregate mixed abort rate {:.3} not strictly below all-SSI {:.3} \
             (conservative) — repro: {REPRO}",
            rate(agg_mixed_rate),
            rate(agg_ssi_rate)
        );
        failed = true;
    }
    if !any_mixed {
        eprintln!(
            "FAIL: the optimal allocation degenerated to a uniform level on every cell — \
             the workload no longer exercises mixing — repro: {REPRO}"
        );
        failed = true;
    }

    if let Some(path) = json_path {
        // Merge under "exec" without clobbering the other tables.
        let mut doc: Value = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| serde_json::from_str(&text).ok())
            .unwrap_or_else(|| json!({}));
        doc["exec"] = json!({
            "experiment": "B16-mixed-vs-ssi-execution",
            "seed": format!("{SEED:#x}"),
            "env": mvbench::bench_env(None),
            "txns": n_txns as u64,
            "theta": THETA,
            "concurrency": CONCURRENCY as u64,
            "sim_seeds": sim_seeds,
            "smoke": smoke,
            "rows": rows,
        });
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&doc).expect("valid json"),
        )
        .unwrap_or_else(|e| {
            eprintln!("writing {path}: {e}");
            std::process::exit(1);
        });
        println!("\nmerged exec rows into {path}");
    }

    if failed {
        std::process::exit(1);
    }
    if smoke {
        println!("\nsmoke OK: traces conformant; mixed allocation dominates all-SSI under the conservative detector");
    }
}
