//! B15 table generator: multi-tenant durability — tenant fleets over
//! one shared fingerprint cache, recovery time, and fsync-policy
//! throughput.
//!
//! ```sh
//! cargo run --release -p mvbench --bin sweep_tenants [--json BENCH_alg.json] [--smoke]
//! ```
//!
//! Three tables against a live durable server (WAL + snapshots in a
//! scratch dir, real sockets, the event core):
//!
//! 1. **Tenant fleet**: N tenants each admit the *same* SmallBank-style
//!    script (template fleets run the same shapes — the Vandevoort
//!    et al. template line of work). Tenant 0 warms the shared
//!    component cache; tenants 1..N then replay concurrently. Reported:
//!    fleet events/sec and the cross-tenant hit rate of the shared
//!    cache. Customers are partitioned into 8-customer cells (programs
//!    never span cells), so the conflict graph keeps many components —
//!    the component-sharded engine and its cache only engage with ≥ 2.
//! 2. **Recovery**: after each fleet, the server is killed without
//!    ceremony and restarted on the same data dir; the recovery wall
//!    time and replay/snapshot split come from the recovered server's
//!    own `stats`. Recovered per-tenant registry sizes are asserted
//!    against the fleet's.
//! 3. **Fsync policy**: the same single-tenant script under
//!    `--durability none | batch | event`, reporting events/sec and
//!    fsync counts.
//!
//! `--smoke` runs pinned smaller sizes and *fails* (exit 1, with the
//! reproducing command) when the cross-tenant hit rate at N=4 is ≤ 50%,
//! when recovery exceeds 10 s, or when any recovered registry diverges
//! — the CI gate.

use mvservice::{Config, Durability, RetryClient, RetryPolicy, Server, ServerHandle};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use serde_json::{json, Value};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const SEED: u64 = 0xB15;
const REPRO: &str = "cargo run --release -p mvbench --bin sweep_tenants -- --smoke";
/// Customers per conflict cell: programs draw all their customers from
/// one cell, so components never merge across cells.
const CELL: u32 = 8;

fn tenant_name(i: usize) -> String {
    format!("t{i}")
}

/// The per-tenant script: SmallBank program instances as wire lines,
/// every tenant replaying the identical sequence. `sav(c)` / `chk(c)`
/// are the objects `s<c>` / `c<c>`.
fn script(events: usize, customers: u32) -> Vec<String> {
    assert!(
        customers.is_multiple_of(CELL),
        "customers must fill whole cells"
    );
    let mut rng = SmallRng::seed_from_u64(SEED);
    let mut lines = Vec::with_capacity(events);
    for id in 1..=events as u32 {
        let cell = rng.random_range(0..customers / CELL) * CELL;
        let c = cell + rng.random_range(0..CELL);
        let line = match rng.random_range(0..5u32) {
            0 => format!("T{id}: R[s{c}] R[c{c}]"),
            1 => format!("T{id}: R[c{c}] W[c{c}]"),
            2 => format!("T{id}: R[s{c}] W[s{c}]"),
            3 => {
                let mut c2 = cell + rng.random_range(0..CELL);
                if c2 == c {
                    c2 = cell + (c2 - cell + 1) % CELL;
                }
                format!("T{id}: R[s{c}] W[s{c}] R[c{c}] W[c{c}] R[c{c2}] W[c{c2}]")
            }
            _ => format!("T{id}: R[s{c}] R[c{c}] W[c{c}]"),
        };
        lines.push(line);
    }
    lines
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("mvsweep-tenants-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

struct Running {
    addr: SocketAddr,
    handle: ServerHandle,
    join: std::thread::JoinHandle<()>,
}

fn start(dir: &std::path::Path, durability: Durability) -> Running {
    let server = Server::bind(Config {
        addr: "127.0.0.1:0".to_string(),
        data_dir: Some(dir.to_path_buf()),
        snapshot_every: 256,
        durability,
        ..Config::default()
    })
    .unwrap_or_else(|e| panic!("bind/recover failed: {e} — repro: {REPRO}"));
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    Running { addr, handle, join }
}

/// Kill without ceremony: stop the accept loop; durable state is
/// whatever the store already wrote.
fn crash(running: Running) {
    running.handle.shutdown();
    let _ = std::net::TcpStream::connect(running.addr);
    running.join.join().expect("server joins");
}

fn client(addr: SocketAddr, tenant: &str, seed: u64) -> RetryClient {
    let mut c = RetryClient::new(
        addr.to_string(),
        RetryPolicy {
            retries: 4,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(50),
            seed,
        },
    )
    .with_tenant(tenant);
    c.set_timeout(Some(Duration::from_secs(30)));
    c
}

/// Registers the whole script for one tenant; panics on any rejection.
fn replay(addr: SocketAddr, tenant: &str, lines: &[String], seed: u64) {
    let mut c = client(addr, tenant, seed);
    for line in lines {
        let reply = c
            .register(line)
            .unwrap_or_else(|e| panic!("register in {tenant} failed: {e} — repro: {REPRO}"));
        assert_eq!(reply["ok"], true, "repro: {REPRO}");
    }
}

struct FleetRow {
    tenants: usize,
    events_per_s: f64,
    hit_rate: f64,
    recovery_ms: f64,
    replayed: u64,
    snapshot_tenants: u64,
}

fn measure_fleet(n: usize, lines: &[String]) -> FleetRow {
    let data = TempDir::new(&format!("fleet{n}"));
    let running = start(&data.0, Durability::Batch);

    // Tenant 0 warms the shared cache; the rest of the fleet replays
    // concurrently (first-touch races would otherwise blur the
    // cross-tenant hit rate).
    let start_t = Instant::now();
    replay(running.addr, &tenant_name(0), lines, SEED);
    std::thread::scope(|s| {
        for i in 1..n {
            let addr = running.addr;
            s.spawn(move || replay(addr, &tenant_name(i), lines, SEED.wrapping_add(i as u64)));
        }
    });
    let wall = start_t.elapsed().as_secs_f64();

    let mut c = client(running.addr, &tenant_name(0), SEED ^ 0x57A7);
    let stats = c.stats().expect("stats");
    let hit_rate = stats["shared_cache"]["hit_rate"]
        .as_f64()
        .expect("hit_rate");

    // Kill + restart on the same directory: recovery time is the
    // recovered server's own measurement, not ours.
    crash(running);
    let running = start(&data.0, Durability::Batch);
    let mut c = client(running.addr, &tenant_name(0), SEED ^ 0x7EC0);
    let stats = c.stats().expect("recovered stats");
    let rec = &stats["durability"]["recovery"];
    let recovery_ms = rec["recovery_us"].as_u64().expect("recovery_us") as f64 / 1e3;
    for i in 0..n {
        let mut c = client(
            running.addr,
            &tenant_name(i),
            SEED.wrapping_add(0x99 + i as u64),
        );
        let s = c.stats().expect("per-tenant stats");
        assert_eq!(
            s["registry_size"].as_u64(),
            Some(lines.len() as u64),
            "tenant {i} diverged after recovery — repro: {REPRO}"
        );
    }
    let row = FleetRow {
        tenants: n,
        events_per_s: (n * lines.len()) as f64 / wall,
        hit_rate,
        recovery_ms,
        replayed: rec["wal_records_replayed"].as_u64().expect("replayed"),
        snapshot_tenants: rec["snapshot_tenants"].as_u64().expect("snapshot_tenants"),
    };
    let mut c = client(running.addr, "shutdown", 0);
    c.shutdown().expect("shutdown");
    running.join.join().expect("joins");
    row
}

struct FsyncRow {
    policy: Durability,
    events_per_s: f64,
    fsyncs: u64,
}

fn measure_fsync(policy: Durability, lines: &[String]) -> FsyncRow {
    let data = TempDir::new(&format!("fsync-{policy}"));
    let running = start(&data.0, policy);
    let start_t = Instant::now();
    replay(running.addr, "t0", lines, SEED ^ 0xF5);
    let wall = start_t.elapsed().as_secs_f64();
    let mut c = client(running.addr, "t0", SEED ^ 0xF6);
    let stats = c.stats().expect("stats");
    let fsyncs = stats["durability"]["fsyncs"].as_u64().expect("fsyncs");
    c.shutdown().expect("shutdown");
    running.join.join().expect("joins");
    FsyncRow {
        policy,
        events_per_s: lines.len() as f64 / wall,
        fsyncs,
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let json_path = argv.iter().position(|a| a == "--json").map(|i| {
        argv.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--json requires a path");
            std::process::exit(2);
        })
    });

    let (events, customers, counts): (usize, u32, &[usize]) = if smoke {
        (96, 32, &[1, 4])
    } else {
        (256, 64, &[1, 2, 4, 8])
    };
    let lines = script(events, customers);

    println!("## B15 — multi-tenant durability ({events} events/tenant)\n");
    println!("| tenants | events/s | shared-cache hit rate | recovery (ms) | wal replayed | snapshot tenants |");
    println!("|---|---|---|---|---|---|");
    let fleet: Vec<FleetRow> = counts.iter().map(|&n| measure_fleet(n, &lines)).collect();
    for r in &fleet {
        println!(
            "| {} | {:.0} | {:.1}% | {:.1} | {} | {} |",
            r.tenants,
            r.events_per_s,
            r.hit_rate * 100.0,
            r.recovery_ms,
            r.replayed,
            r.snapshot_tenants
        );
    }

    println!("\n| fsync policy | events/s | fsyncs |");
    println!("|---|---|---|");
    let fsync: Vec<FsyncRow> = [Durability::None, Durability::Batch, Durability::Event]
        .iter()
        .map(|&p| measure_fsync(p, &lines))
        .collect();
    for r in &fsync {
        println!("| {} | {:.0} | {} |", r.policy, r.events_per_s, r.fsyncs);
    }

    // The CI gates: tenants sharing template shapes must actually share
    // solved components, and recovery must stay interactive.
    let four = fleet
        .iter()
        .find(|r| r.tenants == 4)
        .or_else(|| fleet.last())
        .expect("at least one fleet row");
    let mut failed = false;
    if four.tenants >= 2 && four.hit_rate <= 0.5 {
        eprintln!(
            "FAIL: cross-tenant hit rate at {} tenants is {:.1}% (gate: > 50%) — repro: {REPRO}",
            four.tenants,
            four.hit_rate * 100.0
        );
        failed = true;
    }
    let slowest = fleet.iter().map(|r| r.recovery_ms).fold(0.0, f64::max);
    if slowest > 10_000.0 {
        eprintln!("FAIL: recovery took {slowest:.0} ms (gate: < 10 s) — repro: {REPRO}");
        failed = true;
    }

    if let Some(path) = json_path {
        // Merge under "tenants" without clobbering the other tables.
        let mut doc: Value = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| serde_json::from_str(&text).ok())
            .unwrap_or_else(|| json!({}));
        doc["tenants"] = json!({
            "experiment": "B15-multi-tenant-durability",
            "seed": format!("{SEED:#x}"),
            "env": mvbench::bench_env(None),
            "smoke": smoke,
            "events_per_tenant": events as u64,
            "fleet": fleet.iter().map(|r| json!({
                "tenants": r.tenants as u64,
                "events_per_s": r.events_per_s,
                "shared_cache_hit_rate": r.hit_rate,
                "recovery_ms": r.recovery_ms,
                "wal_records_replayed": r.replayed,
                "snapshot_tenants": r.snapshot_tenants,
            })).collect::<Vec<_>>(),
            "fsync": fsync.iter().map(|r| json!({
                "policy": r.policy.as_str(),
                "events_per_s": r.events_per_s,
                "fsyncs": r.fsyncs,
            })).collect::<Vec<_>>(),
        });
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&doc).expect("valid json"),
        )
        .unwrap_or_else(|e| {
            eprintln!("writing {path}: {e}");
            std::process::exit(1);
        });
        println!("\nmerged tenant rows into {path}");
    }

    if failed {
        std::process::exit(1);
    }
    if smoke {
        println!(
            "\nsmoke OK: cross-tenant cache sharing and recovery hold \
             (hit rate {:.1}% at {} tenants, slowest recovery {:.1} ms)",
            four.hit_rate * 100.0,
            four.tenants,
            slowest
        );
    }
}
