//! The execution conformance harness: the allocate→execute loop as a
//! differential oracle.
//!
//! A round draws a workload from one of five families, computes its
//! optimal robust allocation (Algorithm 2), executes it on the `mvsim`
//! MVCC engine under a seeded scheduler, exports the committed execution
//! as a formal [`mvmodel::Schedule`], and checks the theory's two
//! predictions (via [`mvrobustness::check_trace`]):
//!
//! 1. the trace is **allowed under** the allocation (Definition 2.4) —
//!    the engine faithfully implements RC/SI/SSI semantics;
//! 2. since the allocation is robust (Theorem 3.2), the trace is
//!    **conflict serializable**.
//!
//! The converse direction is probed by [`find_executed_anomaly`]:
//! deliberately non-robust allocations are executed under many seeds and
//! scheduling policies until a committed trace exhibits a real anomaly,
//! which the caller then cross-checks against Algorithm 1's static
//! counterexample ([`mvrobustness::corroborate_anomaly`]). The two
//! oracles — symbolic split-schedule search and randomized execution —
//! must never disagree.
//!
//! Every round is replayable: the driver's interleaving is a
//! deterministic function of `(workload seed, SIM_SEED, concurrency,
//! SSI mode)`, so a failure reported by the conformance suite reproduces
//! with `SIM_SEED=<seed> cargo test -p mvbench --test conformance`.

use crate::{clustered_workload, ring_workload, workload, Contention};
use mvisolation::Allocation;
use mvmodel::{Op, OpKind, Schedule, Transaction, TransactionSet};
use mvrobustness::{check_trace, Allocator, TraceError, TraceVerdict};
use mvsim::{run_workload_with, RoundRobinScheduler, Scheduler, SeededScheduler, SimConfig};
use mvtemplates::smallbank_templates;
use mvworkloads::SmallBank;

/// Reorders each transaction's program so that the read of an object
/// precedes the write of the same object (stable otherwise).
///
/// The formal model permits either order, but the simulator forbids
/// own-write reads (a transaction reading a version it wrote is outside
/// the paper's model), so workload generators that sample operation order
/// freely must be normalized before execution. Conflicts and therefore
/// robustness are order-insensitive at the transaction level, so the
/// allocation computed on the normalized set is the one executed.
pub fn normalize_read_before_write(txns: &TransactionSet) -> TransactionSet {
    let mut out: Vec<Transaction> = Vec::with_capacity(txns.len());
    for t in txns.iter() {
        let ops = t.ops();
        let mut new_ops: Vec<Op> = Vec::with_capacity(ops.len());
        for op in ops {
            if op.kind == OpKind::Write {
                if let Some(r) = ops
                    .iter()
                    .find(|o| o.kind == OpKind::Read && o.object == op.object)
                {
                    if !new_ops.contains(r) {
                        new_ops.push(*r);
                    }
                }
            }
            if !new_ops.contains(op) {
                new_ops.push(*op);
            }
        }
        out.push(Transaction::new(t.id(), new_ops).expect("reordering preserves validity"));
    }
    TransactionSet::with_object_names(out, txns.object_names().to_vec())
        .expect("ids and objects unchanged")
}

/// The workload families exercised by the conformance suite.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Family {
    /// Parametrized random workload at medium contention.
    Random,
    /// Independent conflict clusters over private object pools.
    Clustered,
    /// A single rw-conflict ring (one conflict-graph component).
    Ring,
    /// Zipf-skewed SmallBank program mix.
    SmallBank,
    /// Bounded instantiation of the SmallBank templates.
    Templates,
}

impl Family {
    pub const ALL: [Family; 5] = [
        Family::Random,
        Family::Clustered,
        Family::Ring,
        Family::SmallBank,
        Family::Templates,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Family::Random => "random",
            Family::Clustered => "clustered",
            Family::Ring => "ring",
            Family::SmallBank => "smallbank",
            Family::Templates => "templates",
        }
    }

    /// Draws the family's workload for `seed`. Sizes are kept modest
    /// (≤ ~16 transactions) so Algorithm 2 and serializability checking
    /// stay fast across hundreds of rounds.
    pub fn workload(self, seed: u64) -> TransactionSet {
        match self {
            Family::Random => normalize_read_before_write(&workload(10, Contention::Medium, seed)),
            Family::Clustered => normalize_read_before_write(&clustered_workload(4, 3, seed)),
            Family::Ring => ring_workload(6 + (seed % 5) as u32),
            Family::SmallBank => SmallBank::random_mix(12, 4, 0.9, seed),
            Family::Templates => {
                // Deterministic in the template structure; the seed picks
                // the parameter domain so rounds still differ.
                let domain = 2 + (seed % 2) as u32;
                let (txns, _origin) = smallbank_templates()
                    .bounded_instantiation(1, domain)
                    .expect("bounded instantiation is well-formed");
                txns
            }
        }
    }
}

/// What one conformance round established.
#[derive(Clone, Debug)]
pub struct RoundReport {
    pub family: &'static str,
    /// Transactions in the workload.
    pub txns: usize,
    /// Transactions that committed (the rest exhausted retries).
    pub committed: usize,
    /// The verdict on the exported trace.
    pub verdict: TraceVerdict,
    /// Canonical rendering of the exported schedule — the round's
    /// fingerprint, compared verbatim for same-seed replay tests.
    pub fingerprint: String,
}

/// The optimal robust allocation for a workload (Algorithm 2 via the
/// engine [`Allocator`]).
pub fn optimal_alloc(txns: &TransactionSet) -> Allocation {
    Allocator::new(txns).optimal().0
}

/// Runs one conformance round: allocate optimally (robust by
/// construction), execute under `config`, export, and check the trace
/// contract — allowed under the allocation *and* conflict serializable.
pub fn run_round(family: Family, wl_seed: u64, config: SimConfig) -> Result<RoundReport, String> {
    let txns = family.workload(wl_seed);
    let alloc = optimal_alloc(&txns);
    run_allocated_round(family.label(), &txns, &alloc, true, config)
}

/// [`run_round`] over an explicit allocation. `robust` states whether the
/// allocation is certified robust — when true, a non-serializable trace
/// is a conformance failure; when false it is merely reported in the
/// verdict.
pub fn run_allocated_round(
    label: &'static str,
    txns: &TransactionSet,
    alloc: &Allocation,
    robust: bool,
    config: SimConfig,
) -> Result<RoundReport, String> {
    let config = SimConfig {
        record_trace: true,
        ..config
    };
    let mut scheduler = SeededScheduler::new(config.seed);
    exec_round(label, txns, alloc, robust, config, &mut scheduler)
}

/// The scheduler-generic core of a round.
pub fn exec_round(
    label: &'static str,
    txns: &TransactionSet,
    alloc: &Allocation,
    robust: bool,
    config: SimConfig,
    scheduler: &mut dyn Scheduler,
) -> Result<RoundReport, String> {
    let engine = run_workload_with(txns, alloc, config, scheduler);
    let exported = engine
        .trace
        .export()
        .expect("conformance rounds record traces");
    // The exported allocation covers exactly the committed (renumbered)
    // transactions — a sub-allocation of `alloc`, so robustness carries
    // over (every subset of a robust set is robust).
    let verdict = check_trace(&exported.schedule, &exported.allocation, robust)
        .map_err(|e: TraceError| format!("[{label} wl_seed] {e}"))?;
    Ok(RoundReport {
        family: label,
        txns: txns.len(),
        committed: engine.trace.committed_count(),
        verdict,
        fingerprint: mvmodel::fmt::schedule_full(&exported.schedule),
    })
}

/// The multi-core analogue of [`run_allocated_round`]: executes the
/// workload on the parallel engine ([`mvsim::run_parallel_workload`])
/// with `config.threads` worker threads, exports the commit-ordered
/// trace, and checks the identical contract. Parallel interleavings are
/// OS-nondeterministic, so the fingerprint identifies *this* run rather
/// than replaying a seed — the conformance claim (allowed under the
/// allocation; serializable when robust) holds for every interleaving.
pub fn run_parallel_round(
    label: &'static str,
    txns: &TransactionSet,
    alloc: &Allocation,
    robust: bool,
    config: SimConfig,
) -> Result<RoundReport, String> {
    let config = SimConfig {
        record_trace: true,
        ..config
    };
    let run = mvsim::run_parallel_workload(txns, alloc, config);
    let exported = run
        .trace
        .export()
        .expect("conformance rounds record traces");
    let verdict = check_trace(&exported.schedule, &exported.allocation, robust)
        .map_err(|e: TraceError| format!("[{label} parallel x{}] {e}", run.threads))?;
    Ok(RoundReport {
        family: label,
        txns: txns.len(),
        committed: run.trace.committed_count(),
        verdict,
        fingerprint: mvmodel::fmt::schedule_full(&exported.schedule),
    })
}

/// Searches execution for a real anomaly under a (non-robust)
/// allocation: runs `attempts` seeded rounds plus one round-robin round
/// at each concurrency in `concurrencies`, returning the first committed
/// trace that is allowed under the allocation yet not conflict
/// serializable.
///
/// Returns `None` when no anomaly surfaced — which for a *robust*
/// allocation is guaranteed, and for a non-robust one merely means the
/// sampled interleavings missed the window.
pub fn find_executed_anomaly(
    txns: &TransactionSet,
    alloc: &Allocation,
    base_seed: u64,
    attempts: u64,
    concurrencies: &[usize],
) -> Option<Schedule> {
    let probe = |scheduler: &mut dyn Scheduler, seed: u64, conc: usize| -> Option<Schedule> {
        let config = SimConfig::default()
            .with_seed(seed)
            .with_concurrency(conc)
            .with_max_retries(2);
        let engine = run_workload_with(txns, alloc, config, scheduler);
        let exported = engine.trace.export()?;
        let verdict = mvrobustness::validate_trace(&exported.schedule, &exported.allocation);
        assert!(
            verdict.allowed,
            "engine emitted a schedule its allocation forbids: {}",
            mvmodel::fmt::schedule_full(&exported.schedule)
        );
        (!verdict.serializable).then_some(exported.schedule)
    };
    for &conc in concurrencies {
        for i in 0..attempts {
            let seed = base_seed.wrapping_add(i);
            let mut sched = SeededScheduler::new(seed);
            if let Some(s) = probe(&mut sched, seed, conc) {
                return Some(s);
            }
        }
        let mut rr = RoundRobinScheduler::new();
        if let Some(s) = probe(&mut rr, base_seed, conc) {
            return Some(s);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_cover_their_labels() {
        for f in Family::ALL {
            let w = f.workload(3);
            assert!(!w.is_empty(), "{} produced an empty workload", f.label());
            assert!(!f.label().is_empty());
        }
    }

    #[test]
    fn ring_round_conforms() {
        let r = run_round(Family::Ring, 1, SimConfig::default().with_seed(5)).unwrap();
        assert!(r.verdict.conformant());
        assert_eq!(r.committed, r.txns, "unbounded retries commit everything");
        assert!(!r.fingerprint.is_empty());
    }

    #[test]
    fn parallel_ring_round_conforms() {
        let txns = Family::Ring.workload(1);
        let alloc = optimal_alloc(&txns);
        let r = run_parallel_round(
            "ring",
            &txns,
            &alloc,
            true,
            SimConfig::default().with_seed(5).with_threads(4),
        )
        .unwrap();
        assert!(r.verdict.conformant());
        assert_eq!(r.committed, r.txns, "unbounded retries commit everything");
    }

    #[test]
    fn anomaly_search_on_robust_allocation_finds_nothing() {
        let txns = SmallBank::write_skew_core(1);
        let alloc = optimal_alloc(&txns);
        assert!(find_executed_anomaly(&txns, &alloc, 0, 10, &[2, 4]).is_none());
    }
}
