//! Shared workload construction for the evaluation harness.
//!
//! Every experiment in `EXPERIMENTS.md` (B1–B7) is driven either by a
//! criterion microbenchmark in `benches/` or by a sweep binary in
//! `src/bin/`; both build their inputs through this module so the
//! parameters are recorded in one place.

pub mod conformance;

use mvisolation::{Allocation, IsolationLevel};
use mvmodel::{TransactionSet, TxnSetBuilder};
use mvsim::Job;
use mvworkloads::RandomWorkload;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Contention presets used across experiments.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Contention {
    /// Large object pool, uniform access.
    Low,
    /// Moderate pool, mild skew.
    Medium,
    /// Small pool, strong Zipf skew.
    High,
}

impl Contention {
    pub const ALL: [Contention; 3] = [Contention::Low, Contention::Medium, Contention::High];

    pub fn label(self) -> &'static str {
        match self {
            Contention::Low => "low",
            Contention::Medium => "medium",
            Contention::High => "high",
        }
    }

    fn params(self, n_txns: u32) -> (usize, f64) {
        // Scale the pool with the workload so contention stays comparable
        // across sizes.
        match self {
            Contention::Low => ((n_txns as usize * 8).max(16), 0.0),
            Contention::Medium => ((n_txns as usize * 2).max(8), 0.6),
            Contention::High => ((n_txns as usize / 2).max(4), 1.1),
        }
    }
}

/// The standard random workload for experiment sweeps: `n` transactions
/// of 2–5 operations at the given contention preset.
pub fn workload(n: u32, contention: Contention, seed: u64) -> TransactionSet {
    let (objects, theta) = contention.params(n);
    RandomWorkload::builder()
        .txns(n)
        .ops(2, 5)
        .objects(objects)
        .theta(theta)
        .write_ratio(0.4)
        .seed(seed)
        .generate()
}

/// A multi-component workload: `clusters` independent conflict clusters
/// of `per` transactions each, every cluster confined to a private
/// object pool. The conflict graph decomposes into at least `clusters`
/// components (a cluster may split further when its random accesses
/// happen not to overlap) — the favourable regime for the
/// component-sharded engine.
pub fn clustered_workload(clusters: u32, per: u32, seed: u64) -> TransactionSet {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = TxnSetBuilder::new();
    let mut id = 0u32;
    for c in 0..clusters {
        // A pool small enough that cluster members actually conflict.
        let pool: Vec<mvmodel::Object> = (0..per.max(2))
            .map(|j| b.object(&format!("c{c}_o{j}")))
            .collect();
        for _ in 0..per.max(1) {
            id += 1;
            let mut t = b.txn(id);
            // Sample distinct (kind, object) ops — the model rejects a
            // transaction reading or writing the same object twice.
            let mut used: Vec<(bool, mvmodel::Object)> = Vec::new();
            let n_ops = rng.random_range(2..=4usize).min(pool.len());
            while used.len() < n_ops {
                let obj = pool[rng.random_range(0..pool.len())];
                let write = rng.random_bool(0.4);
                if used.contains(&(write, obj)) {
                    continue;
                }
                used.push((write, obj));
                t = if write { t.write(obj) } else { t.read(obj) };
            }
            t.finish();
        }
    }
    b.build().expect("ids are distinct by construction")
}

/// The single-component adversarial workload: `n` transactions in one
/// rw-conflict ring (`T_i: R[o_{i-1}] W[o_i]`, indices mod `n`). Every
/// transaction reaches every other, so the conflict graph is one
/// component and the sharded engine can only add overhead — the
/// worst case its regression budget is measured against.
pub fn ring_workload(n: u32) -> TransactionSet {
    let n = n.max(2);
    let mut b = TxnSetBuilder::new();
    let ring: Vec<mvmodel::Object> = (0..n).map(|j| b.object(&format!("o{j}"))).collect();
    for i in 0..n {
        let prev = ring[((i + n - 1) % n) as usize];
        b.txn(i + 1).read(prev).write(ring[i as usize]).finish();
    }
    b.build().expect("ids are distinct by construction")
}

/// A *small* workload suitable for the brute-force oracle (≤ `n` ≤ 4,
/// short transactions).
pub fn oracle_workload(n: u32, seed: u64) -> TransactionSet {
    RandomWorkload::builder()
        .txns(n)
        .ops(1, 2)
        .objects(3)
        .theta(0.4)
        .write_ratio(0.5)
        .seed(seed)
        .generate()
}

/// Simulator jobs: `copies` instances of each transaction under `alloc`.
pub fn jobs(txns: &TransactionSet, alloc: &Allocation, copies: usize) -> Vec<Job> {
    (0..copies)
        .flat_map(|_| {
            txns.iter()
                .map(|t| Job::new(t.ops().to_vec(), alloc.level(t.id())))
        })
        .collect()
}

/// The benchmark environment block recorded in every `BENCH_alg.json`
/// table: logical CPU count plus the worker-thread count the experiment
/// ran with (`None` for logically-timed, single-threaded experiments).
/// Wall-clock numbers are not comparable across hosts without it — a
/// "4-thread" run on a 1-CPU container measures time-slicing, not
/// parallel speedup.
pub fn bench_env(threads: Option<u64>) -> serde_json::Value {
    let logical_cpus = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    match threads {
        Some(t) => serde_json::json!({ "logical_cpus": logical_cpus, "threads": t }),
        None => {
            serde_json::json!({ "logical_cpus": logical_cpus, "threads": serde_json::Value::Null })
        }
    }
}

/// The allocation ladder compared in the throughput experiments.
pub fn ladder(txns: &TransactionSet) -> Vec<(&'static str, Allocation)> {
    vec![
        ("all-RC", Allocation::uniform(txns, IsolationLevel::RC)),
        ("all-SI", Allocation::uniform(txns, IsolationLevel::SI)),
        ("all-SSI", Allocation::uniform(txns, IsolationLevel::SSI)),
        ("optimal", mvrobustness::optimal_allocation(txns)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_presets_scale() {
        for c in Contention::ALL {
            let w = workload(20, c, 1);
            assert_eq!(w.len(), 20);
            assert!(!c.label().is_empty());
        }
        // High contention must produce more conflicting pairs than low.
        let count = |w: &TransactionSet| {
            let ids: Vec<_> = w.ids().collect();
            let mut n = 0;
            for (i, &a) in ids.iter().enumerate() {
                for &b in &ids[i + 1..] {
                    if mvmodel::conflict::txns_conflict(w, a, b) {
                        n += 1;
                    }
                }
            }
            n
        };
        assert!(
            count(&workload(20, Contention::High, 1)) > count(&workload(20, Contention::Low, 1))
        );
    }

    #[test]
    fn jobs_replicate() {
        let w = workload(5, Contention::Low, 2);
        let a = Allocation::uniform_si(&w);
        assert_eq!(jobs(&w, &a, 3).len(), 15);
    }

    #[test]
    fn ladder_has_four_rungs() {
        let w = workload(6, Contention::Medium, 3);
        let l = ladder(&w);
        assert_eq!(l.len(), 4);
        assert_eq!(l[0].0, "all-RC");
        assert_eq!(l[3].0, "optimal");
    }

    #[test]
    fn clustered_workload_decomposes() {
        let w = clustered_workload(8, 4, 0xB12);
        assert_eq!(w.len(), 32);
        let index = mvrobustness::ConflictIndex::new(&w);
        let comps = mvrobustness::Components::new(&w, &index);
        // Private pools: at least one component per cluster, and no
        // component larger than a cluster.
        assert!(comps.count() >= 8, "got {} components", comps.count());
        assert!(comps.largest() <= 4);
    }

    #[test]
    fn ring_workload_is_one_component() {
        let w = ring_workload(16);
        assert_eq!(w.len(), 16);
        let index = mvrobustness::ConflictIndex::new(&w);
        let comps = mvrobustness::Components::new(&w, &index);
        assert_eq!(comps.count(), 1);
        assert_eq!(comps.largest(), 16);
    }

    #[test]
    fn oracle_workload_is_small() {
        let w = oracle_workload(3, 4);
        assert!(w.total_ops() <= 6);
    }
}
