//! B1 — Algorithm 1 scaling in |𝒯| (Theorem 3.3).
//!
//! Measures `is_robust` on random workloads of growing size at each
//! contention preset, against `𝒜_SSI` (always robust — worst case, the
//! search must exhaust every triple) and against the optimal allocation.
//! Theorem 3.3 predicts polynomial growth; compare against the
//! exponential oracle in `oracle_gap`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvbench::{workload, Contention};
use mvisolation::Allocation;
use mvrobustness::is_robust;
use std::hint::black_box;

fn bench_alg1(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg1_is_robust");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for contention in Contention::ALL {
        for n in [5u32, 10, 20, 40, 80] {
            let txns = workload(n, contention, 0xB1);
            let ssi = Allocation::uniform_ssi(&txns);
            group.bench_with_input(
                BenchmarkId::new(format!("ssi_{}", contention.label()), n),
                &n,
                |b, _| b.iter(|| black_box(is_robust(&txns, &ssi).robust())),
            );
            let si = Allocation::uniform_si(&txns);
            group.bench_with_input(
                BenchmarkId::new(format!("si_{}", contention.label()), n),
                &n,
                |b, _| b.iter(|| black_box(is_robust(&txns, &si).robust())),
            );
        }
    }
    group.finish();
}

fn bench_alg1_op_count(c: &mut Criterion) {
    // B2 — scaling in ℓ (operations per transaction) at fixed |𝒯|.
    let mut group = c.benchmark_group("alg1_ops_per_txn");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for ell in [2usize, 4, 8, 16, 32] {
        let txns = mvworkloads::RandomWorkload::builder()
            .txns(15)
            .ops(ell, ell)
            .objects(ell * 12)
            .write_ratio(0.4)
            .seed(0xB2)
            .generate();
        let ssi = Allocation::uniform_ssi(&txns);
        group.bench_with_input(BenchmarkId::new("ssi", ell), &ell, |b, _| {
            b.iter(|| black_box(is_robust(&txns, &ssi).robust()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_alg1, bench_alg1_op_count);
criterion_main!(benches);
