//! B4 — the polynomial/exponential gap: Algorithm 1 vs the brute-force
//! oracle on the same (small) instances. The oracle's cost is the
//! multinomial interleaving count; Algorithm 1 stays microseconds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvbench::oracle_workload;
use mvisolation::Allocation;
use mvrobustness::{is_robust, oracle_is_robust};
use std::hint::black_box;
use std::sync::Arc;

fn bench_gap(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_gap");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for n in [2u32, 3, 4] {
        let txns = Arc::new(oracle_workload(n, 0xB4));
        let si = Allocation::uniform_si(&txns);
        group.bench_with_input(BenchmarkId::new("algorithm1", n), &n, |b, _| {
            b.iter(|| black_box(is_robust(&txns, &si).robust()))
        });
        group.bench_with_input(BenchmarkId::new("oracle", n), &n, |b, _| {
            b.iter(|| black_box(oracle_is_robust(&txns, &si)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gap);
criterion_main!(benches);
