//! B7 — cost of materializing and verifying counterexample schedules
//! (the constructive side of Theorem 3.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvbench::{workload, Contention};
use mvisolation::Allocation;
use mvrobustness::find_counterexample;
use mvrobustness::witness::{materialize, verify_witness};
use std::hint::black_box;
use std::sync::Arc;

fn bench_witness(c: &mut Criterion) {
    let mut group = c.benchmark_group("witness");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for n in [10u32, 20, 40] {
        let txns = Arc::new(workload(n, Contention::High, 0xB7));
        let si = Allocation::uniform_si(&txns);
        let Some(spec) = find_counterexample(&txns, &si) else {
            continue; // contended workloads are virtually never SI-robust
        };
        group.bench_with_input(BenchmarkId::new("find", n), &n, |b, _| {
            b.iter(|| black_box(find_counterexample(&txns, &si)))
        });
        group.bench_with_input(BenchmarkId::new("materialize", n), &n, |b, _| {
            b.iter(|| black_box(materialize(Arc::clone(&txns), &si, &spec)))
        });
        let schedule = materialize(Arc::clone(&txns), &si, &spec);
        group.bench_with_input(BenchmarkId::new("verify", n), &n, |b, _| {
            b.iter(|| black_box(verify_witness(&schedule, &si).is_ok()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_witness);
criterion_main!(benches);
