//! B6 — simulator throughput under the allocation ladder
//! (all-RC / all-SI / all-SSI / optimal) at each contention preset.
//!
//! Criterion measures wall time per full run of the job list; the
//! companion sweep binary (`sweep_throughput`) reports goodput and abort
//! rates from the engine's own logical-clock metrics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvbench::{jobs, ladder, workload, Contention};
use mvsim::{run_jobs, SimConfig};
use std::hint::black_box;

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_throughput");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for contention in [Contention::Low, Contention::High] {
        let txns = workload(16, contention, 0xB6);
        for (label, alloc) in ladder(&txns) {
            let job_list = jobs(&txns, &alloc, 4);
            group.bench_with_input(
                BenchmarkId::new(label, contention.label()),
                &job_list,
                |b, jl| {
                    b.iter(|| {
                        let config = SimConfig::default()
                            .with_seed(7)
                            .with_concurrency(8)
                            .with_trace(false);
                        black_box(run_jobs(jl, config).metrics.commits)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
