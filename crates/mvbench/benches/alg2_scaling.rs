//! B3 — Algorithm 2 scaling: optimal-allocation computation time vs |𝒯|
//! (Theorem 4.3), plus the {RC, SI} variant (Theorem 5.5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvbench::{workload, Contention};
use mvrobustness::{optimal_allocation, optimal_allocation_rc_si};
use std::hint::black_box;

fn bench_alg2(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg2_optimal_allocation");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for contention in [Contention::Low, Contention::High] {
        for n in [5u32, 10, 20, 40] {
            let txns = workload(n, contention, 0xB3);
            group.bench_with_input(BenchmarkId::new(contention.label(), n), &n, |b, _| {
                b.iter(|| black_box(optimal_allocation(&txns)))
            });
        }
    }
    group.finish();
}

fn bench_alg2_rc_si(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg2_rc_si");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for n in [5u32, 10, 20, 40] {
        let txns = workload(n, Contention::Low, 0xB3);
        group.bench_with_input(BenchmarkId::new("low", n), &n, |b, _| {
            b.iter(|| black_box(optimal_allocation_rc_si(&txns)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_alg2, bench_alg2_rc_si);
criterion_main!(benches);
