//! Parallel-vs-sequential execution conformance: the multi-core engine
//! run across the workload families must satisfy the same trace
//! contract as the sequential oracle — every exported schedule allowed
//! under its allocation (Definition 2.4) and, the allocations being
//! robust, conflict serializable.
//!
//! Parallel interleavings are OS-scheduled and therefore not seed-
//! replayable; what `SIM_SEED` pins is the workload construction, the
//! allocation, and the engines' retry jitter. A failure still prints
//! the `SIM_SEED=… cargo test` line — rerunning it drives the identical
//! workload through fresh interleavings, which is how a real race is
//! hunted down.

use mvbench::conformance::{optimal_alloc, run_allocated_round, run_parallel_round, Family};
use mvsim::{SimConfig, SsiMode};

/// Default simulator base seed; override with `SIM_SEED=<u64>`.
fn sim_seed() -> u64 {
    std::env::var("SIM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xB18)
}

fn repro(seed: u64) -> String {
    format!("reproduce with: SIM_SEED={seed} cargo test -p mvbench --test exec_mt")
}

/// 5 families × 4 workload seeds × {2, 4} threads × both detectors:
/// 80 parallel rounds, each validated end to end.
#[test]
fn parallel_rounds_execute_conformantly() {
    let base = sim_seed();
    let mut rounds = 0u64;
    for family in Family::ALL {
        for wl_seed in 0..4u64 {
            let txns = family.workload(wl_seed);
            let alloc = optimal_alloc(&txns);
            for threads in [2usize, 4] {
                for mode in [SsiMode::Exact, SsiMode::Conservative] {
                    let config = SimConfig::default()
                        .with_seed(base.wrapping_add(rounds))
                        .with_threads(threads)
                        .with_ssi_mode(mode);
                    let report = run_parallel_round(family.label(), &txns, &alloc, true, config)
                        .unwrap_or_else(|e| {
                            panic!(
                                "parallel conformance violated: {} family, wl_seed={wl_seed}, \
                                 threads={threads}, mode={mode:?}: {e}\n{}",
                                family.label(),
                                repro(base)
                            )
                        });
                    assert!(
                        report.verdict.conformant(),
                        "non-conformant parallel verdict: {report:?}\n{}",
                        repro(base)
                    );
                    assert_eq!(
                        report.committed,
                        report.txns,
                        "unbounded retries must commit every job\n{}",
                        repro(base)
                    );
                    rounds += 1;
                }
            }
        }
    }
    assert!(rounds >= 80, "suite shrank below 80 rounds: {rounds}");
}

/// The sequential engine and the parallel engine at 1 thread agree on
/// completion for the same workloads: all jobs commit, both traces
/// conform. (Interleavings differ — the sequential driver multiplexes
/// `concurrency` sessions, one worker thread runs jobs back to back —
/// so the contract, not the fingerprint, is compared.)
#[test]
fn one_thread_matches_the_sequential_contract() {
    let base = sim_seed();
    for family in Family::ALL {
        let txns = family.workload(2);
        let alloc = optimal_alloc(&txns);
        let seq = run_allocated_round(
            family.label(),
            &txns,
            &alloc,
            true,
            SimConfig::default().with_seed(base).with_concurrency(4),
        )
        .unwrap_or_else(|e| panic!("sequential round failed: {e}\n{}", repro(base)));
        let par = run_parallel_round(
            family.label(),
            &txns,
            &alloc,
            true,
            SimConfig::default().with_seed(base).with_threads(1),
        )
        .unwrap_or_else(|e| panic!("parallel round failed: {e}\n{}", repro(base)));
        assert!(seq.verdict.conformant() && par.verdict.conformant());
        assert_eq!(seq.committed, seq.txns, "{}", repro(base));
        assert_eq!(par.committed, par.txns, "{}", repro(base));
    }
}

/// Repeated hammering of the contended SmallBank family at 4 threads —
/// the highest-risk configuration for publication-order races.
#[test]
fn contended_smallbank_hammer_stays_conformant() {
    let base = sim_seed();
    let txns = mvworkloads::SmallBank::random_mix(24, 4, 1.1, base);
    let alloc = optimal_alloc(&txns);
    for round in 0..6u64 {
        for mode in [SsiMode::Exact, SsiMode::Conservative] {
            let report = run_parallel_round(
                "smallbank-hot",
                &txns,
                &alloc,
                true,
                SimConfig::default()
                    .with_seed(base.wrapping_add(round))
                    .with_threads(4)
                    .with_ssi_mode(mode),
            )
            .unwrap_or_else(|e| {
                panic!(
                    "hammer round {round} ({mode:?}) violated conformance: {e}\n{}",
                    repro(base)
                )
            });
            assert!(report.verdict.conformant(), "{}", repro(base));
        }
    }
}
