//! The execution conformance suite: ≥100 seeded allocate→execute→validate
//! rounds across five workload families, plus the converse probe that
//! executed anomalies under non-robust allocations agree with Algorithm 1.
//!
//! Every round is deterministic in `(workload seed, SIM_SEED, concurrency,
//! SSI mode)`. Override the simulator base seed with `SIM_SEED=<u64>`; a
//! failure message always carries the `SIM_SEED=… cargo test` line that
//! replays it.

use mvbench::conformance::{exec_round, find_executed_anomaly, optimal_alloc, run_round, Family};
use mvisolation::{allowed_under, Allocation};
use mvmodel::serializability::is_conflict_serializable;
use mvrobustness::{corroborate_anomaly, is_robust};
use mvsim::{RoundRobinScheduler, SimConfig, SsiMode};
use mvworkloads::SmallBank;
use std::sync::Arc;

/// Default simulator base seed; override with `SIM_SEED=<u64>`.
fn sim_seed() -> u64 {
    std::env::var("SIM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xB16)
}

fn repro(seed: u64) -> String {
    format!("reproduce with: SIM_SEED={seed} cargo test -p mvbench --test conformance")
}

/// The tentpole: 5 families × 7 workload seeds × 3 execution configs =
/// 105 rounds. Each round allocates optimally (robust by Theorem 4.3),
/// executes on the MVCC engine, and asserts the exported trace is allowed
/// under the allocation and conflict serializable.
#[test]
fn hundred_plus_rounds_execute_conformantly() {
    let base = sim_seed();
    let mut rounds = 0usize;
    for family in Family::ALL {
        for wl_seed in 0..7u64 {
            for (concurrency, mode) in [
                (2, SsiMode::Exact),
                (4, SsiMode::Conservative),
                (8, SsiMode::Exact),
            ] {
                let config = SimConfig::default()
                    .with_seed(base.wrapping_add(rounds as u64))
                    .with_concurrency(concurrency)
                    .with_ssi_mode(mode);
                let report = run_round(family, wl_seed, config).unwrap_or_else(|e| {
                    panic!(
                        "conformance violated: {} family, wl_seed={wl_seed}, \
                         concurrency={concurrency}, mode={mode:?}: {e}\n{}",
                        family.label(),
                        repro(base)
                    )
                });
                assert!(
                    report.verdict.conformant(),
                    "non-conformant verdict slipped through: {report:?}\n{}",
                    repro(base)
                );
                assert_eq!(
                    report.committed,
                    report.txns,
                    "unbounded retries must commit every job\n{}",
                    repro(base)
                );
                rounds += 1;
            }
        }
    }
    assert!(rounds >= 100, "suite shrank below 100 rounds: {rounds}");
}

/// Replay: the same (workload seed, sim seed, concurrency) must reproduce
/// the exported schedule bit-for-bit; a different sim seed must be able
/// to produce a different interleaving somewhere across the families.
#[test]
fn same_seed_replays_bit_identical_traces() {
    let base = sim_seed();
    let mut any_divergence = false;
    for family in Family::ALL {
        let config = SimConfig::default().with_seed(base).with_concurrency(4);
        let a = run_round(family, 1, config.clone()).unwrap();
        let b = run_round(family, 1, config).unwrap();
        assert_eq!(
            a.fingerprint,
            b.fingerprint,
            "same-seed replay diverged on {} family\n{}",
            family.label(),
            repro(base)
        );
        let other = run_round(
            family,
            1,
            SimConfig::default()
                .with_seed(base.wrapping_add(0x5EED))
                .with_concurrency(4),
        )
        .unwrap();
        any_divergence |= other.fingerprint != a.fingerprint;
    }
    assert!(
        any_divergence,
        "changing the sim seed never changed any trace — scheduler ignores its seed?\n{}",
        repro(base)
    );
}

/// The adversarial deterministic policy must conform too: round-robin
/// scheduling across every family.
#[test]
fn round_robin_rounds_conform() {
    for family in Family::ALL {
        for wl_seed in 0..3u64 {
            let txns = family.workload(wl_seed);
            let alloc = optimal_alloc(&txns);
            let mut rr = RoundRobinScheduler::new();
            let report = exec_round(
                family.label(),
                &txns,
                &alloc,
                true,
                SimConfig::default().with_concurrency(3),
                &mut rr,
            )
            .unwrap_or_else(|e| {
                panic!(
                    "round-robin conformance violated on {} wl_seed={wl_seed}: {e}",
                    family.label()
                )
            });
            assert!(report.verdict.conformant());
        }
    }
}

/// Converse probe, SI write skew: under the deliberately non-robust
/// all-SI allocation of the SmallBank write-skew core, execution finds a
/// real anomaly, and Algorithm 1 corroborates it with a verified static
/// counterexample.
#[test]
fn executed_si_write_skew_is_corroborated() {
    let base = sim_seed();
    let txns = SmallBank::write_skew_core(1);
    let alloc = Allocation::uniform_si(&txns);
    assert!(
        !is_robust(&Arc::new(txns.clone()), &alloc).robust(),
        "write-skew core must not be SI-robust"
    );
    let anomaly = find_executed_anomaly(&txns, &alloc, base, 40, &[2, 3, 4]).unwrap_or_else(|| {
        panic!(
            "no executed anomaly in 40 seeds × 3 concurrencies — engine too strict?\n{}",
            repro(base)
        )
    });
    assert!(!is_conflict_serializable(&anomaly));
    // Cross-check: the static oracle agrees and its witness verifies.
    let arc = Arc::new(txns);
    let witness = corroborate_anomaly(&arc, &alloc)
        .unwrap_or_else(|e| panic!("static oracle disagrees with execution: {e}"));
    assert!(allowed_under(&witness, &alloc));
    assert!(!is_conflict_serializable(&witness));
}

/// Converse probe, RC lost update: two read-modify-writes at RC admit the
/// classic lost update; execution finds it and Algorithm 1 corroborates.
#[test]
fn executed_rc_lost_update_is_corroborated() {
    let base = sim_seed();
    let mut b = mvmodel::TxnSetBuilder::new();
    let x = b.object("x");
    b.txn(1).read(x).write(x).finish();
    b.txn(2).read(x).write(x).finish();
    let txns = b.build().unwrap();
    let alloc = Allocation::uniform(&txns, mvisolation::IsolationLevel::RC);
    let anomaly = find_executed_anomaly(&txns, &alloc, base, 40, &[2]).unwrap_or_else(|| {
        panic!(
            "lost update never executed in 40 seeds — RC reads misimplemented?\n{}",
            repro(base)
        )
    });
    assert!(!is_conflict_serializable(&anomaly));
    let arc = Arc::new(txns);
    let witness = corroborate_anomaly(&arc, &alloc)
        .unwrap_or_else(|e| panic!("static oracle disagrees with execution: {e}"));
    assert!(allowed_under(&witness, &alloc));
    assert!(!is_conflict_serializable(&witness));
}

/// A robust allocation never yields an executed anomaly, however hard the
/// probe searches — the (1)→(2) direction of Theorem 3.2, executed.
#[test]
fn robust_allocations_never_execute_anomalies() {
    let base = sim_seed();
    for family in [Family::SmallBank, Family::Ring] {
        let txns = family.workload(2);
        let alloc = optimal_alloc(&txns);
        assert!(
            find_executed_anomaly(&txns, &alloc, base, 15, &[2, 4]).is_none(),
            "robust allocation executed an anomaly on {} family\n{}",
            family.label(),
            repro(base)
        );
    }
}
