//! Robustness and allocation results for the benchmark workloads —
//! the repository's regression pins for the literature's classic facts.

use mvisolation::{Allocation, IsolationLevel};
use mvrobustness::witness::counterexample_schedule;
use mvrobustness::{is_robust, optimal_allocation, optimal_allocation_rc_si};
use mvworkloads::smallbank::SmallBank;
use mvworkloads::tpcc::Tpcc;
use std::sync::Arc;

/// The folklore result the paper's introduction recalls: TPC-C is robust
/// against SI — no stronger concurrency control than SI is needed.
#[test]
fn tpcc_robust_against_si() {
    let tpcc = Tpcc::canonical_mix();
    assert!(is_robust(&tpcc, &Allocation::uniform_si(&tpcc)).robust());
    assert!(is_robust(&tpcc, &Allocation::uniform_ssi(&tpcc)).robust());
}

/// TPC-C is *not* robust against RC: two Payments on the same warehouse
/// race on `W_YTD` (a lost update).
#[test]
fn tpcc_not_robust_against_rc() {
    let tpcc = Arc::new(Tpcc::canonical_mix());
    let rc = Allocation::uniform_rc(&tpcc);
    let report = is_robust(&tpcc, &rc);
    assert!(!report.robust());
    // The witness materializes and verifies.
    let (spec, s) = counterexample_schedule(&tpcc, &rc).unwrap();
    assert!(!mvmodel::serializability::is_conflict_serializable(&s));
    // The cycle runs between the two Payments (T2, T3 in the canonical
    // mix share W_YTD).
    let mut cycle: Vec<_> = std::iter::once(spec.t1).chain(spec.chain.clone()).collect();
    cycle.sort_unstable();
    assert_eq!(cycle, vec![mvmodel::TxnId(2), mvmodel::TxnId(3)]);
}

/// Since TPC-C is robust against 𝒜_SI, it is robustly allocatable against
/// {RC, SI} (Proposition 5.4) — relevant for Oracle deployments.
#[test]
fn tpcc_rc_si_allocatable() {
    let tpcc = Tpcc::canonical_mix();
    let a = optimal_allocation_rc_si(&tpcc).expect("TPC-C is SI-robust");
    assert!(is_robust(&tpcc, &a).robust());
    assert!(a.iter().all(|(_, l)| l <= IsolationLevel::SI));
}

/// The optimal {RC, SI, SSI} allocation for the canonical TPC-C mix:
/// both NewOrders drop to RC; Payments, OrderStatus, Delivery and
/// StockLevel need SI; nothing needs SSI.
#[test]
fn tpcc_optimal_allocation_pinned() {
    let tpcc = Tpcc::canonical_mix();
    let a = optimal_allocation(&tpcc);
    assert!(is_robust(&tpcc, &a).robust());
    assert_eq!(a.to_string(), "T1=RC T2=SI T3=SI T4=SI T5=SI T6=SI T7=RC");
    // Optimality: every single-transaction lowering breaks robustness.
    for t in tpcc.ids() {
        for &lower in a.level(t).lower_levels() {
            assert!(!is_robust(&tpcc, &a.with(t, lower)).robust());
        }
    }
}

/// SmallBank was designed to break SI: not robust against 𝒜_SI (hence not
/// {RC, SI}-allocatable), only SSI restores serializability.
#[test]
fn smallbank_breaks_si() {
    let sb = Arc::new(SmallBank::canonical_mix());
    assert!(!is_robust(&sb, &Allocation::uniform_si(&sb)).robust());
    assert!(!is_robust(&sb, &Allocation::uniform_rc(&sb)).robust());
    assert!(is_robust(&sb, &Allocation::uniform_ssi(&sb)).robust());
    assert_eq!(optimal_allocation_rc_si(&sb), None);
    // SI witness materializes and verifies.
    let si = Allocation::uniform_si(&sb);
    let (_, s) = counterexample_schedule(&sb, &si).unwrap();
    assert!(!mvmodel::serializability::is_conflict_serializable(&s));
}

/// The optimal allocation for the canonical SmallBank mix: Balance,
/// TransactSavings and WriteCheck (the write-skew triangle) need SSI;
/// DepositChecking and Amalgamate get away with SI; nothing is robust at
/// RC.
#[test]
fn smallbank_optimal_allocation_pinned() {
    let sb = SmallBank::canonical_mix();
    let a = optimal_allocation(&sb);
    assert!(is_robust(&sb, &a).robust());
    assert_eq!(a.to_string(), "T1=SSI T2=SI T3=SSI T4=SI T5=SSI");
    for t in sb.ids() {
        for &lower in a.level(t).lower_levels() {
            assert!(!is_robust(&sb, &a.with(t, lower)).robust());
        }
    }
}

/// The write-skew core cannot be rescued below all-SSI.
#[test]
fn smallbank_write_skew_core_needs_full_ssi() {
    let core = SmallBank::write_skew_core(1);
    let a = optimal_allocation(&core);
    assert_eq!(a, Allocation::uniform_ssi(&core));
}

/// Scaling sanity: a larger TPC-C instantiation (more districts,
/// customers and orders) stays robust against SI.
#[test]
fn tpcc_larger_mix_still_si_robust() {
    let mut t = Tpcc::new();
    let mut order_no = 100;
    for d in 1..=3u32 {
        for c in 1..=2u32 {
            order_no += 1;
            t.new_order(1, d, c, order_no, &[d * 10 + c, 99]);
            t.payment(1, d, c);
            t.order_status(1, d, c, order_no - 50, 2);
        }
        t.delivery(1, d, 1, order_no - 50, 2);
        t.stock_level(
            1,
            d,
            &[(order_no, 2), (order_no - 50, 2)],
            &[99, d * 10 + 1],
        );
    }
    let set = t.build().unwrap();
    assert!(set.len() >= 24);
    assert!(is_robust(&set, &Allocation::uniform_si(&set)).robust());
    assert!(!is_robust(&set, &Allocation::uniform_rc(&set)).robust());
    let opt = optimal_allocation(&set);
    assert!(is_robust(&set, &opt).robust());
    let (_rc, _si, ssi) = opt.counts();
    assert_eq!(
        ssi, 0,
        "an SI-robust workload never needs SSI in its optimum"
    );
}

/// YCSB mixes, pinned at a fixed seed: the read-only mix C is robust
/// even at RC (all-RC optimal); the update-heavy mixes A and F are not
/// robust at SI and need SSI for part of the workload.
#[test]
fn ycsb_mix_robustness() {
    use mvworkloads::{Ycsb, YcsbMix};
    let c = Ycsb::new(YcsbMix::C)
        .txns(20)
        .keyspace(50)
        .seed(0xB5D)
        .generate();
    assert!(is_robust(&c, &Allocation::uniform_rc(&c)).robust());
    assert_eq!(optimal_allocation(&c), Allocation::uniform_rc(&c));

    for mix in [YcsbMix::A, YcsbMix::F] {
        let w = Ycsb::new(mix).txns(20).keyspace(50).seed(0xB5D).generate();
        assert!(!is_robust(&w, &Allocation::uniform_si(&w)).robust());
        let best = optimal_allocation(&w);
        assert!(is_robust(&w, &best).robust());
        let (_, _, ssi) = best.counts();
        assert!(ssi > 0, "update mixes need SSI somewhere ({})", mix.label());
    }
}
