//! YCSB-style workloads: the standard cloud-serving benchmark mixes,
//! adapted to the transaction model (each "operation" batch = one
//! transaction over a Zipf-distributed keyspace).
//!
//! Core workload letters follow the YCSB defaults:
//!
//! | mix | reads | updates (R+W) | read-modify-write | scans (multi-read) |
//! |-----|-------|---------------|-------------------|--------------------|
//! | A   | 50%   | 50%           | —                 | —                  |
//! | B   | 95%   | 5%            | —                 | —                  |
//! | C   | 100%  | —             | —                 | —                  |
//! | F   | 50%   | —             | 50%               | —                  |
//! | E-ish | 95% scans | 5% inserts (writes) | —       | scan = 4 reads     |
//!
//! YCSB "transactions" are single operations; to make the robustness
//! question non-trivial each generated transaction here groups
//! `ops_per_txn` operations, which matches how YCSB is run against
//! transactional stores.

use crate::zipf::Zipf;
use mvmodel::{TransactionSet, TxnSetBuilder};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// The YCSB core mix.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum YcsbMix {
    /// 50/50 read/update.
    A,
    /// 95/5 read/update.
    B,
    /// Read only.
    C,
    /// Scan-heavy (scan = 4 consecutive keys) with 5% inserts.
    E,
    /// 50/50 read / read-modify-write.
    F,
}

impl YcsbMix {
    pub const ALL: [YcsbMix; 5] = [YcsbMix::A, YcsbMix::B, YcsbMix::C, YcsbMix::E, YcsbMix::F];

    pub fn label(self) -> &'static str {
        match self {
            YcsbMix::A => "A",
            YcsbMix::B => "B",
            YcsbMix::C => "C",
            YcsbMix::E => "E",
            YcsbMix::F => "F",
        }
    }
}

/// YCSB workload generator.
#[derive(Clone, Debug)]
pub struct Ycsb {
    pub mix: YcsbMix,
    pub num_txns: u32,
    pub ops_per_txn: usize,
    pub keyspace: usize,
    /// Zipf skew over the keyspace (YCSB default ≈ 0.99).
    pub theta: f64,
    pub seed: u64,
}

impl Ycsb {
    pub fn new(mix: YcsbMix) -> Self {
        Ycsb {
            mix,
            num_txns: 10,
            ops_per_txn: 3,
            keyspace: 50,
            theta: 0.99,
            seed: 0,
        }
    }

    pub fn txns(mut self, n: u32) -> Self {
        self.num_txns = n;
        self
    }

    pub fn ops_per_txn(mut self, n: usize) -> Self {
        self.ops_per_txn = n.max(1);
        self
    }

    pub fn keyspace(mut self, n: usize) -> Self {
        self.keyspace = n.max(4);
        self
    }

    pub fn theta(mut self, theta: f64) -> Self {
        self.theta = theta;
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the transaction set.
    pub fn generate(&self) -> TransactionSet {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let zipf = Zipf::new(self.keyspace, self.theta);
        let mut b = TxnSetBuilder::new();
        let keys: Vec<_> = (0..self.keyspace)
            .map(|k| b.object(&format!("user{k}")))
            .collect();
        let mut next_insert = self.keyspace as u32;
        for id in 1..=self.num_txns {
            // (kind, key): kind 0 = read, 1 = update (R+W), 2 = rmw (R+W),
            // 3 = scan (4 reads), 4 = insert (fresh write).
            let mut reads: Vec<usize> = Vec::new();
            let mut writes: Vec<usize> = Vec::new();
            let mut inserts = 0u32;
            for _ in 0..self.ops_per_txn {
                let p: f64 = rng.random_range(0.0..1.0);
                let key = zipf.sample(&mut rng);
                match self.mix {
                    YcsbMix::A => {
                        if p < 0.5 {
                            reads.push(key);
                        } else {
                            reads.push(key);
                            writes.push(key);
                        }
                    }
                    YcsbMix::B => {
                        if p < 0.95 {
                            reads.push(key);
                        } else {
                            reads.push(key);
                            writes.push(key);
                        }
                    }
                    YcsbMix::C => reads.push(key),
                    YcsbMix::E => {
                        if p < 0.95 {
                            for off in 0..4 {
                                reads.push((key + off) % self.keyspace);
                            }
                        } else {
                            inserts += 1;
                        }
                    }
                    YcsbMix::F => {
                        if p < 0.5 {
                            reads.push(key);
                        } else {
                            reads.push(key);
                            writes.push(key);
                        }
                    }
                }
            }
            reads.sort_unstable();
            reads.dedup();
            writes.sort_unstable();
            writes.dedup();
            let mut t = b.txn(id);
            for &k in &reads {
                t = t.read(keys[k]);
            }
            for &k in &writes {
                t = t.write(keys[k]);
            }
            for _ in 0..inserts {
                next_insert += 1;
                t = t.write_named(&format!("user{next_insert}"));
            }
            t.finish();
        }
        b.build().expect("deduplicated operations are well-formed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvmodel::TxnId;

    #[test]
    fn mixes_have_expected_op_kinds() {
        let c = Ycsb::new(YcsbMix::C).txns(20).seed(1).generate();
        assert!(c.iter().all(|t| t.writes().count() == 0), "C is read-only");

        let a = Ycsb::new(YcsbMix::A).txns(40).seed(2).generate();
        let writes: usize = a.iter().map(|t| t.writes().count()).sum();
        let reads: usize = a.iter().map(|t| t.reads().count()).sum();
        assert!(writes > 0 && reads >= writes, "A mixes reads and updates");
    }

    #[test]
    fn updates_are_read_modify_write() {
        let a = Ycsb::new(YcsbMix::A).txns(30).seed(3).generate();
        for t in a.iter() {
            for (_, obj) in t.writes() {
                assert!(
                    t.read_of(obj).is_some(),
                    "updates read before writing ({})",
                    t.id()
                );
                assert!(t.read_of(obj).unwrap() < t.write_of(obj).unwrap());
            }
        }
    }

    #[test]
    fn e_mix_scans_and_inserts() {
        let e = Ycsb::new(YcsbMix::E)
            .txns(40)
            .ops_per_txn(2)
            .seed(4)
            .generate();
        // Scans produce read-heavy transactions; inserts write fresh keys.
        let reads: usize = e.iter().map(|t| t.reads().count()).sum();
        assert!(reads > 40, "scans dominate");
        let fresh_writes: usize = e
            .iter()
            .flat_map(|t| t.writes())
            .filter(|&(_, o)| {
                e.object_name(o)
                    .trim_start_matches("user")
                    .parse::<usize>()
                    .unwrap()
                    >= 50
            })
            .count();
        let total_writes: usize = e.iter().map(|t| t.writes().count()).sum();
        assert_eq!(fresh_writes, total_writes, "E writes only fresh keys");
    }

    #[test]
    fn deterministic_and_parameterized() {
        let a = Ycsb::new(YcsbMix::F)
            .txns(10)
            .keyspace(20)
            .theta(0.5)
            .seed(9)
            .generate();
        let b = Ycsb::new(YcsbMix::F)
            .txns(10)
            .keyspace(20)
            .theta(0.5)
            .seed(9)
            .generate();
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert!(a.contains(TxnId(10)));
        assert!(a.objects().len() <= 20);
    }

    #[test]
    fn labels() {
        for m in YcsbMix::ALL {
            assert!(!m.label().is_empty());
        }
    }
}
