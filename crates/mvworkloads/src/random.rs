//! Parametrized random workload generation.

use crate::zipf::Zipf;
use mvmodel::{TransactionSet, TxnSetBuilder};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Configuration for random workloads; build with
/// [`RandomWorkload::builder`].
///
/// The generator draws, per transaction, a length uniform in
/// `ops_per_txn`, then repeatedly samples an object from a Zipf(θ) pool
/// and flips a write coin. Duplicate (kind, object) draws are retried a
/// few times and then skipped, so transactions respect the model's
/// one-read/one-write-per-object rule; a transaction never ends up empty.
#[derive(Clone, Debug)]
pub struct RandomWorkload {
    pub num_txns: u32,
    pub min_ops: usize,
    pub max_ops: usize,
    pub num_objects: usize,
    /// Probability a sampled operation is a write.
    pub write_ratio: f64,
    /// Zipf skew over the object pool (0 = uniform).
    pub theta: f64,
    pub seed: u64,
}

impl RandomWorkload {
    pub fn builder() -> RandomWorkloadBuilder {
        RandomWorkloadBuilder::default()
    }

    /// Generates the transaction set.
    pub fn generate(&self) -> TransactionSet {
        assert!(self.num_objects > 0, "object pool must be nonempty");
        assert!(
            self.min_ops >= 1 && self.min_ops <= self.max_ops,
            "need 1 <= min_ops <= max_ops"
        );
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let zipf = Zipf::new(self.num_objects, self.theta);
        let mut b = TxnSetBuilder::new();
        let objects: Vec<_> = (0..self.num_objects)
            .map(|i| b.object(&format!("x{i}")))
            .collect();
        for id in 1..=self.num_txns {
            let len = rng.random_range(self.min_ops..=self.max_ops);
            let mut ops: Vec<(bool, usize)> = Vec::with_capacity(len);
            let mut attempts = 0;
            while ops.len() < len && attempts < len * 8 {
                attempts += 1;
                let obj = zipf.sample(&mut rng);
                let write = rng.random_bool(self.write_ratio);
                if !ops.contains(&(write, obj)) {
                    ops.push((write, obj));
                }
            }
            if ops.is_empty() {
                // Degenerate pools (1 object) can exhaust retries; fall
                // back to a single read.
                ops.push((false, zipf.sample(&mut rng)));
            }
            // Normalize to read-before-write per object: the realistic
            // read-modify-write pattern, and required by the simulator
            // (own-write reads fall outside the paper's formal model).
            for i in 0..ops.len() {
                if ops[i].0 {
                    if let Some(j) = ops[i + 1..].iter().position(|&(w, o)| !w && o == ops[i].1) {
                        ops.swap(i, i + 1 + j);
                    }
                }
            }
            let mut t = b.txn(id);
            for (write, obj) in ops {
                t = if write {
                    t.write(objects[obj])
                } else {
                    t.read(objects[obj])
                };
            }
            t.finish();
        }
        b.build()
            .expect("generator never emits duplicate operations")
    }
}

/// Builder for [`RandomWorkload`] with sensible defaults.
#[derive(Clone, Debug)]
pub struct RandomWorkloadBuilder {
    cfg: RandomWorkload,
}

impl Default for RandomWorkloadBuilder {
    fn default() -> Self {
        RandomWorkloadBuilder {
            cfg: RandomWorkload {
                num_txns: 10,
                min_ops: 2,
                max_ops: 5,
                num_objects: 20,
                write_ratio: 0.4,
                theta: 0.0,
                seed: 0,
            },
        }
    }
}

impl RandomWorkloadBuilder {
    pub fn txns(mut self, n: u32) -> Self {
        self.cfg.num_txns = n;
        self
    }

    pub fn ops(mut self, min: usize, max: usize) -> Self {
        self.cfg.min_ops = min;
        self.cfg.max_ops = max;
        self
    }

    pub fn objects(mut self, n: usize) -> Self {
        self.cfg.num_objects = n;
        self
    }

    pub fn write_ratio(mut self, p: f64) -> Self {
        self.cfg.write_ratio = p;
        self
    }

    pub fn theta(mut self, theta: f64) -> Self {
        self.cfg.theta = theta;
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    pub fn build(self) -> RandomWorkload {
        self.cfg
    }

    /// Shorthand: build the config and generate immediately.
    pub fn generate(self) -> TransactionSet {
        self.cfg.generate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let set = RandomWorkload::builder()
            .txns(12)
            .ops(2, 4)
            .objects(10)
            .seed(7)
            .generate();
        assert_eq!(set.len(), 12);
        for t in set.iter() {
            assert!(!t.is_empty() && t.len() <= 4);
        }
        assert!(set.objects().len() <= 10);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = RandomWorkload::builder().seed(42).generate();
        let b = RandomWorkload::builder().seed(42).generate();
        let c = RandomWorkload::builder().seed(43).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn write_ratio_extremes() {
        let all_reads = RandomWorkload::builder()
            .write_ratio(0.0)
            .seed(1)
            .generate();
        assert!(all_reads.iter().all(|t| t.writes().count() == 0));
        let all_writes = RandomWorkload::builder()
            .write_ratio(1.0)
            .seed(1)
            .generate();
        assert!(all_writes.iter().all(|t| t.reads().count() == 0));
    }

    #[test]
    fn skew_increases_contention() {
        // With high θ, far more transaction pairs share an object.
        let count_conflicting_pairs = |set: &TransactionSet| {
            let ids: Vec<_> = set.ids().collect();
            let mut n = 0;
            for (i, &a) in ids.iter().enumerate() {
                for &b in &ids[i + 1..] {
                    if mvmodel::conflict::txns_conflict(set, a, b) {
                        n += 1;
                    }
                }
            }
            n
        };
        let uniform = RandomWorkload::builder()
            .txns(20)
            .objects(200)
            .theta(0.0)
            .seed(5)
            .generate();
        let skewed = RandomWorkload::builder()
            .txns(20)
            .objects(200)
            .theta(1.5)
            .seed(5)
            .generate();
        assert!(
            count_conflicting_pairs(&skewed) > count_conflicting_pairs(&uniform),
            "skew should raise contention"
        );
    }

    #[test]
    fn tiny_pool_still_generates() {
        let set = RandomWorkload::builder()
            .txns(5)
            .ops(3, 5)
            .objects(1)
            .seed(9)
            .generate();
        assert_eq!(set.len(), 5);
        // With one object, transactions have at most 2 ops (R + W).
        for t in set.iter() {
            assert!(t.len() <= 2 && !t.is_empty());
        }
    }
}
