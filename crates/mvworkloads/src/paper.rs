//! Executable reconstructions of every example in the paper.
//!
//! Each function builds the exact schedule the paper describes — operation
//! order, version order and version function — so the test suite (and the
//! `paper_examples` integration tests) can assert every claim the paper
//! makes about it.

use mvmodel::{OpAddr, OpId, Schedule, TransactionSet, TxnId, TxnSetBuilder};
use std::collections::HashMap;
use std::sync::Arc;

/// The transactions of Figure 2: T1 = `R[t]`, T2 = `R[t] W[t] R[v]`,
/// T3 = `R[v] W[v]`, T4 = `R[t] R[v] W[t]`.
pub fn figure_2_txns() -> Arc<TransactionSet> {
    let mut b = TxnSetBuilder::new();
    let t = b.object("t");
    let v = b.object("v");
    b.txn(1).read(t).finish();
    b.txn(2).read(t).write(t).read(v).finish();
    b.txn(3).read(v).write(v).finish();
    b.txn(4).read(t).read(v).write(t).finish();
    Arc::new(b.build().expect("figure 2 transactions are well-formed"))
}

/// The schedule `s` of Figure 2, reconstructed from every fact the paper
/// states about it (§2.1, §2.2, Example 2.5):
///
/// ```text
/// R2[t] W2[t] R4[t] R3[v] W3[v] C3 R1[t] R2[v] C2 R4[v] W4[t] C4 C1
/// ```
///
/// with version order `t: W2[t] ≪ W4[t]`, `v: W3[v]`, and every read
/// observing `op₀` except `R4[v] → W3[v]`. Satisfied claims: the reads on
/// `t` in T1 and T4 happen while T2's write is uncommitted; `C3 <_s R2[v]`;
/// `W4[t]` follows `C2` (a concurrent, not dirty, write); T1 is concurrent
/// with T2 and T4 but not T3; all other pairs are concurrent; and
/// T1 → T2 → T3 is a dangerous structure.
pub fn figure_2_schedule() -> Schedule {
    let txns = figure_2_txns();
    let r1t = OpAddr {
        txn: TxnId(1),
        idx: 0,
    };
    let r2t = OpAddr {
        txn: TxnId(2),
        idx: 0,
    };
    let w2t = OpAddr {
        txn: TxnId(2),
        idx: 1,
    };
    let r2v = OpAddr {
        txn: TxnId(2),
        idx: 2,
    };
    let r3v = OpAddr {
        txn: TxnId(3),
        idx: 0,
    };
    let w3v = OpAddr {
        txn: TxnId(3),
        idx: 1,
    };
    let r4t = OpAddr {
        txn: TxnId(4),
        idx: 0,
    };
    let r4v = OpAddr {
        txn: TxnId(4),
        idx: 1,
    };
    let w4t = OpAddr {
        txn: TxnId(4),
        idx: 2,
    };
    let order = vec![
        OpId::Op(r2t),
        OpId::Op(w2t),
        OpId::Op(r4t),
        OpId::Op(r3v),
        OpId::Op(w3v),
        OpId::Commit(TxnId(3)),
        OpId::Op(r1t),
        OpId::Op(r2v),
        OpId::Commit(TxnId(2)),
        OpId::Op(r4v),
        OpId::Op(w4t),
        OpId::Commit(TxnId(4)),
        OpId::Commit(TxnId(1)),
    ];
    let t = txns.object_by_name("t").expect("object t");
    let v = txns.object_by_name("v").expect("object v");
    let mut versions = HashMap::new();
    versions.insert(t, vec![w2t, w4t]);
    versions.insert(v, vec![w3v]);
    let mut rf = HashMap::new();
    rf.insert(r1t, OpId::Init);
    rf.insert(r2t, OpId::Init);
    rf.insert(r2v, OpId::Init);
    rf.insert(r3v, OpId::Init);
    rf.insert(r4t, OpId::Init);
    rf.insert(r4v, OpId::Op(w3v));
    Schedule::new(txns, order, versions, rf).expect("figure 2 schedule is well-formed")
}

/// The transactions of Example 2.6 / Figure 4: two concurrent
/// transactions both writing `v`. The figure depicts the overlap with
/// transaction boxes; we make it explicit by giving T2 a leading read on
/// a separate object `u`, so `first(T2) <_s C1` while `W2[v]` still
/// follows `C1`.
pub fn example_2_6_txns() -> Arc<TransactionSet> {
    let mut b = TxnSetBuilder::new();
    let v = b.object("v");
    let u = b.object("u");
    b.txn(1).write(v).finish();
    b.txn(2).read(u).write(v).finish();
    Arc::new(b.build().expect("example 2.6 transactions are well-formed"))
}

/// The schedule of Example 2.6: `R2[u] W1[v] C1 W2[v] C2` — T2 exhibits a
/// concurrent (but not dirty) write. Allowed under
/// `𝒜₃ = {T1 ↦ SI, T2 ↦ RC}` but not under `𝒜_SI` or
/// `{T1 ↦ RC, T2 ↦ SI}`.
pub fn example_2_6_schedule() -> Schedule {
    let txns = example_2_6_txns();
    let w1 = OpAddr {
        txn: TxnId(1),
        idx: 0,
    };
    let r2 = OpAddr {
        txn: TxnId(2),
        idx: 0,
    };
    let w2 = OpAddr {
        txn: TxnId(2),
        idx: 1,
    };
    let order = vec![
        OpId::Op(r2),
        OpId::Op(w1),
        OpId::Commit(TxnId(1)),
        OpId::Op(w2),
        OpId::Commit(TxnId(2)),
    ];
    let v = txns.object_by_name("v").expect("object v");
    let mut versions = HashMap::new();
    versions.insert(v, vec![w1, w2]);
    let mut rf = HashMap::new();
    rf.insert(r2, OpId::Init);
    Schedule::new(txns, order, versions, rf).expect("example 2.6 schedule is well-formed")
}

/// The transactions of Example 5.2 / Figure 5: T1 = `W[t]`,
/// T2 = `R[v] R[t]`.
pub fn example_5_2_txns() -> Arc<TransactionSet> {
    let mut b = TxnSetBuilder::new();
    let t = b.object("t");
    let v = b.object("v");
    b.txn(1).write(t).finish();
    b.txn(2).read(v).read(t).finish();
    Arc::new(b.build().expect("example 5.2 transactions are well-formed"))
}

/// The schedule of Example 5.2: `W1[t] R2[v] C1 R2[t] C2` with both reads
/// observing `op₀` — allowed under `𝒜_SI` but **not** under `𝒜_RC`
/// (`R2[t]` is not read-last-committed relative to itself). This is the
/// paper's witness that the preference order RC < SI is not an inclusion
/// of schedule sets.
pub fn example_5_2_schedule() -> Schedule {
    let txns = example_5_2_txns();
    let w1t = OpAddr {
        txn: TxnId(1),
        idx: 0,
    };
    let r2v = OpAddr {
        txn: TxnId(2),
        idx: 0,
    };
    let r2t = OpAddr {
        txn: TxnId(2),
        idx: 1,
    };
    let order = vec![
        OpId::Op(w1t),
        OpId::Op(r2v),
        OpId::Commit(TxnId(1)),
        OpId::Op(r2t),
        OpId::Commit(TxnId(2)),
    ];
    let t = txns.object_by_name("t").expect("object t");
    let mut versions = HashMap::new();
    versions.insert(t, vec![w1t]);
    let mut rf = HashMap::new();
    rf.insert(r2v, OpId::Init);
    rf.insert(r2t, OpId::Init);
    Schedule::new(txns, order, versions, rf).expect("example 5.2 schedule is well-formed")
}

/// The classic write-skew pair — the running two-transaction example used
/// throughout the robustness literature: T1 = `R[x] W[y]`,
/// T2 = `R[y] W[x]`.
pub fn write_skew_txns() -> Arc<TransactionSet> {
    let mut b = TxnSetBuilder::new();
    let x = b.object("x");
    let y = b.object("y");
    b.txn(1).read(x).write(y).finish();
    b.txn(2).read(y).write(x).finish();
    Arc::new(b.build().expect("write-skew transactions are well-formed"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvisolation::validator::per_txn_allowed_levels;
    use mvisolation::{allowed_under, Allocation, IsolationLevel};
    use mvmodel::fmt::schedule_order;
    use mvmodel::serializability::is_conflict_serializable;

    #[test]
    fn figure_2_order_renders_as_documented() {
        let s = figure_2_schedule();
        assert_eq!(
            schedule_order(&s),
            "R2[t] W2[t] R4[t] R3[v] W3[v] C3 R1[t] R2[v] C2 R4[v] W4[t] C4 C1"
        );
        assert!(!is_conflict_serializable(&s));
    }

    /// Example 2.5, exhaustively: enumerate all 3⁴ allocations and check
    /// the paper's characterization of exactly which are allowed.
    #[test]
    fn example_2_5_allowed_allocations() {
        let s = figure_2_schedule();
        let ids: Vec<TxnId> = s.txns().ids().collect();
        let levels = IsolationLevel::ALL;
        let mut allowed_count = 0;
        for i1 in levels {
            for i2 in levels {
                for i3 in levels {
                    for i4 in levels {
                        let a = Allocation::from_pairs([
                            (ids[0], i1),
                            (ids[1], i2),
                            (ids[2], i3),
                            (ids[3], i4),
                        ]);
                        // Paper: allowed iff T4 = RC, T2 ∈ {SI, SSI}, and
                        // not all of T1, T2, T3 on SSI.
                        let expected = i4 == IsolationLevel::RC
                            && i2 >= IsolationLevel::SI
                            && !(i1 == IsolationLevel::SSI
                                && i2 == IsolationLevel::SSI
                                && i3 == IsolationLevel::SSI);
                        assert_eq!(allowed_under(&s, &a), expected, "allocation {a} misjudged");
                        if expected {
                            allowed_count += 1;
                        }
                    }
                }
            }
        }
        // T4 fixed to RC (1 way), T2 ∈ {SI, SSI} (2 ways), (T1, T3) free
        // (9 ways) = 18, minus the (SSI, SSI, SSI) cases: T2=SSI, T1=T3=SSI
        // is 1 combination → 17.
        assert_eq!(allowed_count, 17);
    }

    #[test]
    fn example_2_5_per_txn_levels() {
        let s = figure_2_schedule();
        let lvls: std::collections::HashMap<_, _> =
            per_txn_allowed_levels(&s).into_iter().collect();
        // T2's read is RLC relative to start but not itself: no RC.
        assert!(!lvls[&TxnId(2)].contains(&IsolationLevel::RC));
        assert!(lvls[&TxnId(2)].contains(&IsolationLevel::SI));
        // T4 exhibits a concurrent write: RC only.
        assert_eq!(lvls[&TxnId(4)], vec![IsolationLevel::RC]);
        // T1 and T3 are unconstrained individually.
        assert_eq!(lvls[&TxnId(1)].len(), 3);
        assert_eq!(lvls[&TxnId(3)].len(), 3);
    }

    #[test]
    fn example_2_6_verdicts() {
        let s = example_2_6_schedule();
        assert!(!allowed_under(&s, &Allocation::uniform_si(s.txns())));
        assert!(!allowed_under(
            &s,
            &Allocation::parse("T1=RC T2=SI").unwrap()
        ));
        assert!(allowed_under(
            &s,
            &Allocation::parse("T1=SI T2=RC").unwrap()
        ));
    }

    #[test]
    fn example_5_2_verdicts() {
        let s = example_5_2_schedule();
        assert!(allowed_under(&s, &Allocation::uniform_si(s.txns())));
        assert!(!allowed_under(&s, &Allocation::uniform_rc(s.txns())));
        // The schedule itself is perfectly serializable — the point is
        // about allowed-ness, not anomalies.
        assert!(is_conflict_serializable(&s));
    }

    #[test]
    fn write_skew_txns_shape() {
        let txns = write_skew_txns();
        assert_eq!(txns.len(), 2);
        assert_eq!(txns.total_ops(), 4);
    }
}
