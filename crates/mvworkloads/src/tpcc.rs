//! Transaction-level instantiations of the five TPC-C programs.
//!
//! The paper (§1) recalls the folklore result that TPC-C is robust against
//! SI, so running it under SI yields serializability "for free". That
//! result (Fekete et al., TODS 2005) holds at *column-level* conflict
//! granularity: e.g. NewOrder reads `W_TAX` while Payment updates `W_YTD`
//! — same warehouse row, disjoint columns, hence no conflict. This module
//! therefore models each row as a small set of column-group objects, and
//! materializes predicate reads (Delivery's `min(NO_O_ID)` scan,
//! StockLevel's recent-order-lines scan, OrderStatus's latest-order
//! lookup) as reads/writes on per-district or per-customer *index
//! objects*, so phantoms are visible to the conflict analysis.
//!
//! Objects per table:
//!
//! | table      | objects                                | written by      |
//! |------------|----------------------------------------|-----------------|
//! | WAREHOUSE  | `w.tax` (NO reads), `w.ytd`            | Payment (ytd)   |
//! | DISTRICT   | `d.no` (D_TAX + D_NEXT_O_ID), `d.ytd`  | NewOrder (no), Payment (ytd) |
//! | CUSTOMER   | `c.info` (discount/credit), `c.bal`    | Payment, Delivery (bal) |
//! | STOCK      | `s.qty` (quantity/ytd/cnt)             | NewOrder        |
//! | ITEM       | `i` (read-only catalog)                | —               |
//! | ORDER      | `o` (row incl. carrier), `oidx` (per-customer index) | NewOrder (insert), Delivery (carrier) |
//! | NEW_ORDER  | `no` (row), `noidx` (per-district index) | NewOrder (insert), Delivery (scan+delete) |
//! | ORDER_LINE | `ol.item` (OL_I_ID/AMOUNT), `ol.dlv` (OL_DELIVERY_D), `olidx` (per-district index) | NewOrder (insert), Delivery (dlv) |
//! | HISTORY    | `h` (fresh row per Payment)            | Payment         |

use mvmodel::{ModelError, Object, TransactionSet, TxnId, TxnSetBuilder};

/// Builder for TPC-C transaction instantiations.
///
/// Each call to a program method appends one concrete transaction; ids are
/// assigned sequentially starting at 1.
#[derive(Debug, Default)]
pub struct Tpcc {
    b: TxnSetBuilder,
    next_id: u32,
    next_history: u32,
}

impl Tpcc {
    pub fn new() -> Self {
        Self::default()
    }

    fn id(&mut self) -> u32 {
        self.next_id += 1;
        self.next_id
    }

    fn obj(&mut self, name: String) -> Object {
        self.b.object(&name)
    }

    /// NEW-ORDER: warehouse `w`, district `d`, customer `c`, ordering
    /// `items`; creates order `o`.
    ///
    /// Reads `W_TAX`, reads+increments `D_NEXT_O_ID`, reads customer info;
    /// per item reads the catalog and reads+updates stock quantity;
    /// inserts the ORDER / NEW_ORDER / ORDER_LINE rows and their indexes.
    pub fn new_order(&mut self, w: u32, d: u32, c: u32, o: u32, items: &[u32]) -> TxnId {
        let id = self.id();
        let w_tax = self.obj(format!("w{w}.tax"));
        let d_no = self.obj(format!("d{w}.{d}.no"));
        let c_info = self.obj(format!("c{w}.{d}.{c}.info"));
        let item_objs: Vec<(Object, Object)> = items
            .iter()
            .map(|i| (self.obj(format!("i{i}")), self.obj(format!("s{w}.{i}.qty"))))
            .collect();
        let o_row = self.obj(format!("o{w}.{d}.{o}"));
        let oidx = self.obj(format!("oidx{w}.{d}.{c}"));
        let no_row = self.obj(format!("no{w}.{d}.{o}"));
        let noidx = self.obj(format!("noidx{w}.{d}"));
        let ol_rows: Vec<(Object, Object)> = (0..items.len())
            .map(|l| {
                (
                    self.obj(format!("ol{w}.{d}.{o}.{l}.item")),
                    self.obj(format!("ol{w}.{d}.{o}.{l}.dlv")),
                )
            })
            .collect();
        let olidx = self.obj(format!("olidx{w}.{d}"));

        let mut t = self
            .b
            .txn(id)
            .read(w_tax)
            .read(d_no)
            .write(d_no)
            .read(c_info);
        for (item, stock) in item_objs {
            t = t.read(item).read(stock).write(stock);
        }
        t = t.write(o_row).write(oidx).write(no_row).write(noidx);
        for (ol_item, ol_dlv) in ol_rows {
            t = t.write(ol_item).write(ol_dlv);
        }
        t.write(olidx).finish();
        TxnId(id)
    }

    /// PAYMENT: customer `c` of district `d` pays at warehouse `w`.
    ///
    /// Reads+updates `W_YTD`, `D_YTD` and the customer balance; inserts a
    /// fresh HISTORY row.
    pub fn payment(&mut self, w: u32, d: u32, c: u32) -> TxnId {
        let id = self.id();
        let w_ytd = self.obj(format!("w{w}.ytd"));
        let d_ytd = self.obj(format!("d{w}.{d}.ytd"));
        let c_info = self.obj(format!("c{w}.{d}.{c}.info"));
        let c_bal = self.obj(format!("c{w}.{d}.{c}.bal"));
        self.next_history += 1;
        let h = self.obj(format!("h{}", self.next_history));
        self.b
            .txn(id)
            .read(w_ytd)
            .write(w_ytd)
            .read(d_ytd)
            .write(d_ytd)
            .read(c_info)
            .read(c_bal)
            .write(c_bal)
            .write(h)
            .finish();
        TxnId(id)
    }

    /// ORDER-STATUS: read-only — customer info + balance, the customer's
    /// latest order `o` (via the per-customer order index) and its `lines`
    /// order lines.
    pub fn order_status(&mut self, w: u32, d: u32, c: u32, o: u32, lines: usize) -> TxnId {
        let id = self.id();
        let c_info = self.obj(format!("c{w}.{d}.{c}.info"));
        let c_bal = self.obj(format!("c{w}.{d}.{c}.bal"));
        let oidx = self.obj(format!("oidx{w}.{d}.{c}"));
        let o_row = self.obj(format!("o{w}.{d}.{o}"));
        let ol_objs: Vec<(Object, Object)> = (0..lines)
            .map(|l| {
                (
                    self.obj(format!("ol{w}.{d}.{o}.{l}.item")),
                    self.obj(format!("ol{w}.{d}.{o}.{l}.dlv")),
                )
            })
            .collect();
        let mut t = self
            .b
            .txn(id)
            .read(c_info)
            .read(c_bal)
            .read(oidx)
            .read(o_row);
        for (ol_item, ol_dlv) in ol_objs {
            t = t.read(ol_item).read(ol_dlv);
        }
        t.finish();
        TxnId(id)
    }

    /// DELIVERY (one district of the batch): pops the oldest NEW_ORDER row
    /// `o` (index scan + delete), stamps the order's carrier, sets the
    /// delivery date on its `lines` order lines (reading their amounts),
    /// and credits customer `c`'s balance.
    pub fn delivery(&mut self, w: u32, d: u32, c: u32, o: u32, lines: usize) -> TxnId {
        let id = self.id();
        let noidx = self.obj(format!("noidx{w}.{d}"));
        let no_row = self.obj(format!("no{w}.{d}.{o}"));
        let o_row = self.obj(format!("o{w}.{d}.{o}"));
        let ol_objs: Vec<(Object, Object)> = (0..lines)
            .map(|l| {
                (
                    self.obj(format!("ol{w}.{d}.{o}.{l}.item")),
                    self.obj(format!("ol{w}.{d}.{o}.{l}.dlv")),
                )
            })
            .collect();
        let c_bal = self.obj(format!("c{w}.{d}.{c}.bal"));
        let mut t = self
            .b
            .txn(id)
            .read(noidx)
            .write(noidx)
            .read(no_row)
            .write(no_row)
            .read(o_row)
            .write(o_row);
        for (ol_item, ol_dlv) in ol_objs {
            t = t.read(ol_item).read(ol_dlv).write(ol_dlv);
        }
        t.read(c_bal).write(c_bal).finish();
        TxnId(id)
    }

    /// STOCK-LEVEL: read-only — reads `D_NEXT_O_ID`, scans the recent
    /// order lines of the district (index + `ol.item` of the given orders)
    /// and the stock quantity of the `items` they mention.
    ///
    /// `recent` lists `(order, lines)` pairs in the 20-order window.
    pub fn stock_level(&mut self, w: u32, d: u32, recent: &[(u32, usize)], items: &[u32]) -> TxnId {
        let id = self.id();
        let d_no = self.obj(format!("d{w}.{d}.no"));
        let olidx = self.obj(format!("olidx{w}.{d}"));
        let ol_objs: Vec<Object> = recent
            .iter()
            .flat_map(|&(o, lines)| (0..lines).map(move |l| (o, l)).collect::<Vec<_>>())
            .map(|(o, l)| self.obj(format!("ol{w}.{d}.{o}.{l}.item")))
            .collect();
        let stock_objs: Vec<Object> = items
            .iter()
            .map(|i| self.obj(format!("s{w}.{i}.qty")))
            .collect();
        let mut t = self.b.txn(id).read(d_no).read(olidx);
        for ol in ol_objs {
            t = t.read(ol);
        }
        for s in stock_objs {
            t = t.read(s);
        }
        t.finish();
        TxnId(id)
    }

    pub fn build(self) -> Result<TransactionSet, ModelError> {
        self.b.build()
    }

    /// A canonical small instantiation exercising every program and every
    /// documented conflict: two districts of one warehouse, overlapping
    /// items, a delivery + status of a prior order, and a stock-level scan
    /// covering both the old and the new order.
    pub fn canonical_mix() -> TransactionSet {
        let mut t = Tpcc::new();
        // Order 100 already exists (created earlier); order 101 is new.
        t.new_order(1, 1, 7, 101, &[10, 11]); // T1
        t.payment(1, 1, 7); // T2: same customer as T1
        t.payment(1, 2, 3); // T3: other district, same warehouse
        t.order_status(1, 1, 7, 100, 2); // T4: customer 7's last order
        t.delivery(1, 1, 7, 100, 2); // T5: delivers order 100
        t.stock_level(1, 1, &[(100, 2), (101, 2)], &[10, 11, 12]); // T6
        t.new_order(1, 2, 4, 200, &[12]); // T7: other district, item 12
        t.build().expect("canonical TPC-C mix is well-formed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvmodel::conflict::txns_conflict;

    #[test]
    fn canonical_mix_shape() {
        let set = Tpcc::canonical_mix();
        assert_eq!(set.len(), 7);
        assert!(set.total_ops() > 50);
        // Order-status (T4) and stock-level (T6) are read-only.
        assert_eq!(set.txn(TxnId(4)).writes().count(), 0);
        assert_eq!(set.txn(TxnId(6)).writes().count(), 0);
    }

    #[test]
    fn column_granularity_no_newo_payment_conflict() {
        // The linchpin of SI-robustness: NewOrder and Payment on the same
        // warehouse+district+customer do not conflict (disjoint columns).
        let set = Tpcc::canonical_mix();
        assert!(
            !txns_conflict(&set, TxnId(1), TxnId(2)),
            "NewOrder and Payment must be column-disjoint"
        );
        assert!(!txns_conflict(&set, TxnId(1), TxnId(3)));
    }

    #[test]
    fn documented_conflicts_exist() {
        let set = Tpcc::canonical_mix();
        // StockLevel reads D_NEXT_O_ID + stock that NewOrder writes.
        assert!(txns_conflict(&set, TxnId(6), TxnId(1)));
        // StockLevel reads stock written by the other district's NewOrder
        // (item 12).
        assert!(txns_conflict(&set, TxnId(6), TxnId(7)));
        // OrderStatus reads the balance Payment updates.
        assert!(txns_conflict(&set, TxnId(4), TxnId(2)));
        // OrderStatus reads the order/lines Delivery stamps.
        assert!(txns_conflict(&set, TxnId(4), TxnId(5)));
        // Payment and Delivery both update customer 7's balance.
        assert!(txns_conflict(&set, TxnId(2), TxnId(5)));
        // Delivery's NEW_ORDER scan conflicts with NewOrder's insert in
        // the same district (phantom made visible via noidx).
        assert!(txns_conflict(&set, TxnId(5), TxnId(1)));
        // The two Payments share W_YTD.
        assert!(txns_conflict(&set, TxnId(2), TxnId(3)));
        // Different-district NewOrders with disjoint items: no conflict.
        assert!(!txns_conflict(&set, TxnId(1), TxnId(7)));
    }

    #[test]
    fn same_district_neworders_share_ww() {
        let mut t = Tpcc::new();
        let a = t.new_order(1, 1, 1, 101, &[1]);
        let b = t.new_order(1, 1, 2, 102, &[2]);
        let set = t.build().unwrap();
        // They share D_NEXT_O_ID (ww) and the index objects.
        assert!(txns_conflict(&set, a, b));
        let d_no = set.object_by_name("d1.1.no").unwrap();
        assert!(set.txn(a).write_of(d_no).is_some());
        assert!(set.txn(b).write_of(d_no).is_some());
    }

    #[test]
    fn fresh_history_rows_per_payment() {
        let mut t = Tpcc::new();
        let a = t.payment(1, 1, 1);
        let b = t.payment(2, 1, 1);
        let set = t.build().unwrap();
        // Different warehouses and fresh history rows: no conflict at all.
        assert!(!txns_conflict(&set, a, b));
    }

    #[test]
    fn ids_sequential() {
        let mut t = Tpcc::new();
        assert_eq!(t.payment(1, 1, 1), TxnId(1));
        assert_eq!(t.order_status(1, 1, 1, 5, 1), TxnId(2));
        assert_eq!(t.stock_level(1, 1, &[], &[]), TxnId(3));
        let set = t.build().unwrap();
        assert_eq!(set.len(), 3);
    }
}
