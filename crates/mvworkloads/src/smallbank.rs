//! Transaction-level instantiations of the SmallBank benchmark.
//!
//! SmallBank (Alomari et al., ICDE 2008 — reference \[4\] of the paper) was
//! designed as a minimal workload that is *not* serializable under SI: the
//! write-skew between `Balance`/`WriteCheck` reads of the savings balance
//! and `TransactSavings` updates. Each customer has a savings and a
//! checking account, modelled as one object each (`sav{c}`, `chk{c}`).
//!
//! Programs:
//! - `Balance(c)`: read both balances (read-only).
//! - `DepositChecking(c)`: read+update checking.
//! - `TransactSavings(c)`: read+update savings.
//! - `Amalgamate(c1, c2)`: zero `c1`'s accounts into `c2`'s checking —
//!   read+update `sav(c1)`, `chk(c1)`, `chk(c2)`.
//! - `WriteCheck(c)`: read both balances, then debit checking —
//!   read `sav(c)`, read+update `chk(c)`.

use crate::zipf::Zipf;
use mvmodel::{ModelError, Object, TransactionSet, TxnId, TxnSetBuilder};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Builder for SmallBank transaction instantiations.
#[derive(Debug, Default)]
pub struct SmallBank {
    b: TxnSetBuilder,
    next_id: u32,
}

impl SmallBank {
    pub fn new() -> Self {
        Self::default()
    }

    fn id(&mut self) -> u32 {
        self.next_id += 1;
        self.next_id
    }

    fn sav(&mut self, c: u32) -> Object {
        self.b.object(&format!("sav{c}"))
    }

    fn chk(&mut self, c: u32) -> Object {
        self.b.object(&format!("chk{c}"))
    }

    /// Balance(c): read-only inspection of both accounts.
    pub fn balance(&mut self, c: u32) -> TxnId {
        let id = self.id();
        let (s, k) = (self.sav(c), self.chk(c));
        self.b.txn(id).read(s).read(k).finish();
        TxnId(id)
    }

    /// DepositChecking(c).
    pub fn deposit_checking(&mut self, c: u32) -> TxnId {
        let id = self.id();
        let k = self.chk(c);
        self.b.txn(id).read(k).write(k).finish();
        TxnId(id)
    }

    /// TransactSavings(c).
    pub fn transact_savings(&mut self, c: u32) -> TxnId {
        let id = self.id();
        let s = self.sav(c);
        self.b.txn(id).read(s).write(s).finish();
        TxnId(id)
    }

    /// Amalgamate(c1, c2).
    pub fn amalgamate(&mut self, c1: u32, c2: u32) -> TxnId {
        let id = self.id();
        let (s1, k1, k2) = (self.sav(c1), self.chk(c1), self.chk(c2));
        self.b
            .txn(id)
            .read(s1)
            .write(s1)
            .read(k1)
            .write(k1)
            .read(k2)
            .write(k2)
            .finish();
        TxnId(id)
    }

    /// WriteCheck(c): the overdraft check — reads savings, debits
    /// checking.
    pub fn write_check(&mut self, c: u32) -> TxnId {
        let id = self.id();
        let (s, k) = (self.sav(c), self.chk(c));
        self.b.txn(id).read(s).read(k).write(k).finish();
        TxnId(id)
    }

    pub fn build(self) -> Result<TransactionSet, ModelError> {
        self.b.build()
    }

    /// One instance of each program over two customers — the canonical
    /// mix used in the robustness literature.
    pub fn canonical_mix() -> TransactionSet {
        let mut s = SmallBank::new();
        s.balance(1); // T1
        s.deposit_checking(1); // T2
        s.transact_savings(1); // T3
        s.amalgamate(1, 2); // T4
        s.write_check(1); // T5
        s.build().expect("canonical SmallBank mix is well-formed")
    }

    /// The minimal non-SI-serializable core: `WriteCheck(c)` concurrent
    /// with `TransactSavings(c)` plus a `Balance(c)` observer.
    pub fn write_skew_core(c: u32) -> TransactionSet {
        let mut s = SmallBank::new();
        s.write_check(c);
        s.transact_savings(c);
        s.balance(c);
        s.build().expect("write-skew core is well-formed")
    }

    /// A seeded random SmallBank workload: `n` transactions drawn from a
    /// check-heavy program mix (Balance 40%, DepositChecking 5%,
    /// TransactSavings 15%, Amalgamate 5%, WriteCheck 35%) over
    /// `customers` accounts with Zipf(θ)-skewed customer selection. The
    /// mix emphasizes the write-skew pair (`WriteCheck`/`TransactSavings`)
    /// and its `Balance` observers over blind read-modify-writes, so
    /// contention manifests as rw-antidependencies — the structures the
    /// SSI detectors act on — rather than write-write collisions.
    ///
    /// Skew concentrates the write-skew-prone programs on hot customers,
    /// so the optimal allocation is genuinely *mixed*: transactions on
    /// cold customers sit in small robust components and drop to RC/SI
    /// while the hot core needs SSI. Panics if `n == 0` or
    /// `customers < 2` (Amalgamate needs two distinct customers).
    pub fn random_mix(n: usize, customers: usize, theta: f64, seed: u64) -> TransactionSet {
        assert!(n > 0, "need at least one transaction");
        assert!(customers >= 2, "Amalgamate needs two distinct customers");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut s = SmallBank::new();
        s.mix_into(&mut rng, n, customers, theta, 0);
        s.build().expect("random SmallBank mix is well-formed")
    }

    /// A *partitioned* random mix: `cells` disjoint customer pools of
    /// `customers_per_cell` each, with `per_cell` transactions drawn
    /// inside every pool by the [`SmallBank::random_mix`] program mix.
    /// Transactions in different cells touch disjoint account objects,
    /// so the workload decomposes into `cells` independent conflict
    /// clusters — the favourable regime for multi-core execution, where
    /// worker threads rarely contend. Contrast with `random_mix` over a
    /// single hot pool, which bounds the contended end.
    pub fn partitioned_mix(
        cells: usize,
        per_cell: usize,
        customers_per_cell: usize,
        theta: f64,
        seed: u64,
    ) -> TransactionSet {
        assert!(cells > 0, "need at least one cell");
        assert!(per_cell > 0, "need at least one transaction per cell");
        assert!(
            customers_per_cell >= 2,
            "Amalgamate needs two distinct customers"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut s = SmallBank::new();
        for cell in 0..cells {
            let offset = (cell * customers_per_cell) as u32;
            s.mix_into(&mut rng, per_cell, customers_per_cell, theta, offset);
        }
        s.build().expect("partitioned SmallBank mix is well-formed")
    }

    /// Draws `n` mix transactions over customers `offset+1 ..=
    /// offset+customers`.
    fn mix_into(
        &mut self,
        rng: &mut SmallRng,
        n: usize,
        customers: usize,
        theta: f64,
        offset: u32,
    ) {
        let zipf = Zipf::new(customers, theta);
        for _ in 0..n {
            let c1 = offset + zipf.sample(rng) as u32 + 1;
            let p: f64 = rng.random_range(0.0..1.0);
            if p < 0.40 {
                self.balance(c1);
            } else if p < 0.45 {
                self.deposit_checking(c1);
            } else if p < 0.60 {
                self.transact_savings(c1);
            } else if p < 0.65 {
                // Resample until the second customer differs — the model
                // rejects duplicate operations on the same object.
                let c2 = loop {
                    let c = offset + zipf.sample(rng) as u32 + 1;
                    if c != c1 {
                        break c;
                    }
                };
                self.amalgamate(c1, c2);
            } else {
                self.write_check(c1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvmodel::conflict::txns_conflict;

    #[test]
    fn canonical_mix_shape() {
        let set = SmallBank::canonical_mix();
        assert_eq!(set.len(), 5);
        // Balance is read-only.
        assert_eq!(set.txn(TxnId(1)).writes().count(), 0);
        // Amalgamate touches three accounts.
        assert_eq!(set.txn(TxnId(4)).objects().len(), 3);
    }

    #[test]
    fn expected_conflicts() {
        let set = SmallBank::canonical_mix();
        // WriteCheck reads sav1 which TransactSavings updates.
        assert!(txns_conflict(&set, TxnId(5), TxnId(3)));
        // DepositChecking and WriteCheck share chk1 (ww).
        assert!(txns_conflict(&set, TxnId(2), TxnId(5)));
        // Balance observes both accounts.
        assert!(txns_conflict(&set, TxnId(1), TxnId(2)));
        assert!(txns_conflict(&set, TxnId(1), TxnId(3)));
        // DepositChecking(1) vs TransactSavings(1): disjoint accounts.
        assert!(!txns_conflict(&set, TxnId(2), TxnId(3)));
    }

    #[test]
    fn different_customers_do_not_conflict() {
        let mut s = SmallBank::new();
        let a = s.write_check(1);
        let b = s.transact_savings(2);
        let set = s.build().unwrap();
        assert!(!txns_conflict(&set, a, b));
    }

    #[test]
    fn amalgamate_bridges_customers() {
        let mut s = SmallBank::new();
        let a = s.amalgamate(1, 2);
        let b = s.deposit_checking(2);
        let set = s.build().unwrap();
        assert!(txns_conflict(&set, a, b));
    }

    #[test]
    fn write_skew_core_shape() {
        let set = SmallBank::write_skew_core(9);
        assert_eq!(set.len(), 3);
        assert!(set.object_by_name("sav9").is_some());
        assert!(set.object_by_name("chk9").is_some());
    }

    #[test]
    fn random_mix_is_deterministic_and_well_formed() {
        let a = SmallBank::random_mix(40, 8, 0.9, 7);
        let b = SmallBank::random_mix(40, 8, 0.9, 7);
        assert_eq!(a.len(), 40);
        for t in a.iter() {
            let t2 = b.txn(t.id());
            assert_eq!(t.ops().len(), t2.ops().len(), "same-seed divergence");
        }
        // A different seed produces a different workload (with
        // overwhelming probability at this size).
        let c = SmallBank::random_mix(40, 8, 0.9, 8);
        let ops = |s: &TransactionSet| s.iter().map(|t| t.ops().len()).collect::<Vec<_>>();
        assert_ne!(ops(&a), ops(&c));
    }

    #[test]
    fn random_mix_respects_customer_pool() {
        let set = SmallBank::random_mix(60, 3, 0.0, 11);
        // Only sav/chk objects for customers 1..=3 can appear.
        for c in 1..=3u32 {
            // At 60 txns over 3 customers, every account family exists.
            assert!(
                set.object_by_name(&format!("chk{c}")).is_some(),
                "customer {c} unused"
            );
        }
        assert!(set.object_by_name("chk4").is_none());
        assert!(set.object_by_name("sav4").is_none());
    }

    #[test]
    #[should_panic(expected = "two distinct customers")]
    fn random_mix_rejects_single_customer() {
        let _ = SmallBank::random_mix(10, 1, 0.0, 0);
    }

    #[test]
    fn partitioned_mix_cells_are_disjoint_clusters() {
        let set = SmallBank::partitioned_mix(4, 8, 4, 0.9, 3);
        assert_eq!(set.len(), 32);
        // Customers are confined to their cells: ids 1..=16 exist, none
        // beyond.
        assert!(set.object_by_name("chk17").is_none());
        assert!(set.object_by_name("sav17").is_none());
        // No transaction crosses a cell boundary: every pair of
        // transactions drawing on different cells is conflict-free.
        let cell_of = |name: &str| {
            let c: u32 = name[3..].parse().unwrap();
            (c - 1) / 4
        };
        for t in set.iter() {
            let cells: Vec<u32> = t
                .objects()
                .iter()
                .map(|&o| cell_of(set.object_names()[o.0 as usize].as_str()))
                .collect();
            assert!(
                cells.windows(2).all(|w| w[0] == w[1]),
                "transaction {} spans cells {cells:?}",
                t.id()
            );
        }
    }

    #[test]
    fn partitioned_mix_is_deterministic() {
        let a = SmallBank::partitioned_mix(2, 6, 3, 0.5, 9);
        let b = SmallBank::partitioned_mix(2, 6, 3, 0.5, 9);
        assert_eq!(a.len(), b.len());
        for t in a.iter() {
            assert_eq!(t.ops(), b.txn(t.id()).ops(), "same-seed divergence");
        }
    }
}
