//! A self-contained Zipf(θ) sampler over `{0, …, n−1}`.
//!
//! Implements the standard inverse-CDF method with a precomputed
//! cumulative table (workload pools are small enough that O(n) setup and
//! O(log n) sampling are ideal). θ = 0 degenerates to the uniform
//! distribution; larger θ concentrates probability on low indices —
//! the conventional knob for contention in OLTP benchmarks (YCSB uses
//! θ ≈ 0.99).

use rand::RngExt;

/// Zipf(θ) distribution over `{0, …, n−1}` with `P(i) ∝ 1 / (i+1)^θ`.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler. Panics if `n == 0` or θ is negative/NaN.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf domain must be nonempty");
        assert!(theta >= 0.0, "Zipf exponent must be nonnegative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the top.
        *cdf.last_mut().expect("nonempty") = 1.0;
        Zipf { cdf }
    }

    /// Domain size `n`.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    pub fn is_empty(&self) -> bool {
        false // domain is nonempty by construction
    }

    /// Draws an index in `{0, …, n−1}`.
    pub fn sample(&self, rng: &mut impl RngExt) -> usize {
        let u: f64 = rng.random_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let f = c as f64 / 40_000.0;
            assert!((f - 0.25).abs() < 0.02, "uniform sample skewed: {counts:?}");
        }
    }

    #[test]
    fn skew_concentrates_on_low_indices() {
        let z = Zipf::new(100, 1.2);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut low = 0usize;
        const N: usize = 20_000;
        for _ in 0..N {
            if z.sample(&mut rng) < 10 {
                low += 1;
            }
        }
        // With θ = 1.2 over 100 items, the top-10 mass is ≳ 70%.
        assert!(
            low as f64 / N as f64 > 0.6,
            "low mass: {}",
            low as f64 / N as f64
        );
    }

    #[test]
    fn samples_stay_in_domain() {
        let z = Zipf::new(3, 0.99);
        assert_eq!(z.len(), 3);
        assert!(!z.is_empty());
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    fn singleton_domain() {
        let z = Zipf::new(1, 2.0);
        let mut rng = SmallRng::seed_from_u64(4);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_domain_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_theta_panics() {
        let _ = Zipf::new(3, -1.0);
    }
}
