//! Workload generators for the robustness and allocation experiments.
//!
//! - [`random`]: parametrized random workloads (transaction count, ops per
//!   transaction, object-pool size, read/write mix, Zipf-skewed hotspots).
//! - [`zipf`]: a self-contained Zipf(θ) sampler (no external dependency
//!   beyond `rand`).
//! - [`tpcc`]: transaction-level instantiations of the five TPC-C
//!   programs — the workload behind the folklore result that TPC-C is
//!   robust against SI (paper §1).
//! - [`smallbank`]: the SmallBank benchmark's five programs, a standard
//!   non-SI-robust workload.
//! - [`ycsb`]: YCSB core mixes (A/B/C/E/F) over a Zipf keyspace.
//! - [`paper`]: executable reconstructions of every example schedule in
//!   the paper (Figure 2/Example 2.5, Figure 4/Example 2.6,
//!   Figure 5/Example 5.2).

pub mod paper;
pub mod random;
pub mod smallbank;
pub mod tpcc;
pub mod ycsb;
pub mod zipf;

pub use random::{RandomWorkload, RandomWorkloadBuilder};
pub use smallbank::SmallBank;
pub use tpcc::Tpcc;
pub use ycsb::{Ycsb, YcsbMix};
pub use zipf::Zipf;
