//! Equivalence of the cached/parallel robustness engine with the
//! retained pre-engine reference implementation on randomized
//! workloads, plus the engine's determinism and certificate contracts:
//!
//! - [`mvrobustness::RobustnessChecker`] (any thread count) and
//!   [`mvrobustness::ReferenceChecker`] return the *identical*
//!   counterexample spec, not merely the same verdict;
//! - every returned spec is a checked certificate
//!   (`spec.check(txns, alloc) == Ok(())`);
//! - the counterexample cache in Algorithm 2 never changes the computed
//!   optimal allocation.

use mvisolation::{Allocation, IsolationLevel};
use mvmodel::{TransactionSet, TxnSetBuilder};
use mvrobustness::{
    optimal_allocation, optimal_allocation_rc_si, optimal_allocation_reference, Allocator,
    ReferenceChecker, RobustnessChecker,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Random workload over `n_objects` objects: `n_txns` transactions of
/// 1..=`max_ops` operations each (duplicates skipped, so shorter
/// transactions occur too).
fn random_workload(
    rng: &mut SmallRng,
    n_txns: u32,
    max_ops: usize,
    n_objects: u32,
) -> TransactionSet {
    let mut b = TxnSetBuilder::new();
    let objects: Vec<_> = (0..n_objects).map(|i| b.object(&format!("o{i}"))).collect();
    for id in 1..=n_txns {
        let mut t = b.txn(id);
        let len = rng.random_range(1..=max_ops);
        let mut used: Vec<(bool, u32)> = Vec::new();
        for _ in 0..len {
            let obj = rng.random_range(0..n_objects);
            let write = rng.random_bool(0.5);
            if used.contains(&(write, obj)) {
                continue;
            }
            used.push((write, obj));
            t = if write {
                t.write(objects[obj as usize])
            } else {
                t.read(objects[obj as usize])
            };
        }
        t.finish();
    }
    b.build().expect("generator avoids duplicate operations")
}

fn random_allocation(rng: &mut SmallRng, txns: &TransactionSet) -> Allocation {
    txns.ids()
        .map(|t| {
            let lvl = match rng.random_range(0..3) {
                0 => IsolationLevel::RC,
                1 => IsolationLevel::SI,
                _ => IsolationLevel::SSI,
            };
            (t, lvl)
        })
        .collect()
}

/// Engine (at each thread count) vs. reference on one (workload,
/// allocation) pair; returns whether the pair was robust.
fn assert_equivalent(txns: &TransactionSet, alloc: &Allocation) -> bool {
    let reference = ReferenceChecker::new(txns);
    let expected = reference.find_counterexample(alloc);
    if let Some(spec) = &expected {
        assert_eq!(
            spec.check(txns, alloc),
            Ok(()),
            "reference spec must certify"
        );
    }
    for threads in [1, 2, 4] {
        let checker = RobustnessChecker::new(txns).with_threads(threads);
        let got = checker.find_counterexample(alloc);
        assert_eq!(
            got,
            expected,
            "engine at {threads} thread(s) disagrees with reference on {alloc}\n{}",
            mvmodel::fmt::transaction_set(txns)
        );
        if let Some(spec) = &got {
            assert_eq!(spec.check(txns, alloc), Ok(()), "engine spec must certify");
        }
    }
    expected.is_none()
}

/// Workloads large enough (|T| ≥ 8) that the engine actually takes the
/// multi-threaded outer-search path.
#[test]
fn engine_matches_reference_on_large_random_workloads() {
    let mut rng = SmallRng::seed_from_u64(0xE9E0_0001);
    let mut robust = 0usize;
    let mut probes = 0usize;
    for _ in 0..40 {
        let n_txns = rng.random_range(8..=16u32);
        let txns = random_workload(&mut rng, n_txns, 4, 6);
        let mut allocs = vec![random_allocation(&mut rng, &txns)];
        // Uniform levels hit the condition (6)/(7)/(8) filters in ways a
        // random mix rarely does — and 𝒜_SSI guarantees robust cases.
        allocs.extend(
            IsolationLevel::ALL
                .iter()
                .map(|&l| Allocation::uniform(&txns, l)),
        );
        for alloc in &allocs {
            if assert_equivalent(&txns, alloc) {
                robust += 1;
            }
            probes += 1;
        }
    }
    assert!(robust > 0, "no robust case generated — tune the generator");
    assert!(
        robust < probes,
        "no non-robust case generated — tune the generator"
    );
}

/// Small workloads (the single-threaded fast path, plus edge sizes 0–3).
#[test]
fn engine_matches_reference_on_small_random_workloads() {
    let mut rng = SmallRng::seed_from_u64(0xE9E0_0002);
    for _ in 0..120 {
        let n_txns = rng.random_range(0..=4u32);
        let txns = random_workload(&mut rng, n_txns, 3, 3);
        if txns.is_empty() {
            continue;
        }
        let alloc = random_allocation(&mut rng, &txns);
        assert_equivalent(&txns, &alloc);
    }
}

/// A checker instance must stay consistent across many probes of the
/// same workload (the per-`T₁` iso cache is shared between probes).
#[test]
fn cached_checker_is_consistent_across_probes() {
    let mut rng = SmallRng::seed_from_u64(0xE9E0_0003);
    let txns = random_workload(&mut rng, 12, 4, 5);
    let checker = RobustnessChecker::new(&txns);
    let reference = ReferenceChecker::new(&txns);
    for _ in 0..24 {
        let alloc = random_allocation(&mut rng, &txns);
        assert_eq!(
            checker.find_counterexample(&alloc),
            reference.find_counterexample(&alloc),
            "shared-cache probe diverged on {alloc}"
        );
    }
    assert!(checker.stats().probes() >= 24);
    // The iso cache can never build more structures than transactions.
    assert!(checker.stats().iso_builds() <= txns.len() as u64);
}

/// Algorithm 2 with the counterexample cache computes the identical
/// optimal allocation as the uncached reference refinement — and the
/// thread count does not matter.
#[test]
fn refine_cache_never_changes_the_optimum() {
    let mut rng = SmallRng::seed_from_u64(0xE9E0_0004);
    for case in 0..30 {
        let n_txns = rng.random_range(2..=12u32);
        let txns = random_workload(&mut rng, n_txns, 4, 5);
        let expected = optimal_allocation_reference(&txns);
        assert_eq!(
            optimal_allocation(&txns),
            expected,
            "case {case}: cached optimum diverged\n{}",
            mvmodel::fmt::transaction_set(&txns)
        );
        for threads in [2, 4] {
            let (got, stats) = Allocator::new(&txns).with_threads(threads).optimal();
            assert_eq!(
                got, expected,
                "case {case}: optimum diverged at {threads} threads"
            );
            assert_eq!(stats.threads, threads);
        }
        // The {RC, SI} variant shares refine_cached; spot-check it too.
        let rc_si = optimal_allocation_rc_si(&txns);
        if let Some(a) = &rc_si {
            assert!(ReferenceChecker::new(&txns).is_robust(a));
            assert!(a.iter().all(|(_, l)| l <= IsolationLevel::SI));
        }
    }
}

/// Every reason reported by the explained variant is a certificate for
/// the exact candidate allocation it rejected.
#[test]
fn explained_reasons_certify_their_candidates() {
    let mut rng = SmallRng::seed_from_u64(0xE9E0_0005);
    for _ in 0..20 {
        let n_txns = rng.random_range(2..=10u32);
        let txns = random_workload(&mut rng, n_txns, 4, 4);
        let (alloc, reasons, stats) = Allocator::new(&txns).optimal_explained();
        assert_eq!(alloc, optimal_allocation_reference(&txns));
        // Replay the refinement to reconstruct each rejected candidate.
        let mut replay = Allocation::uniform_ssi(&txns);
        let mut reasons = reasons.iter();
        for t in txns.iter() {
            for &lvl in replay.level(t.id()).lower_levels() {
                let candidate = replay.with(t.id(), lvl);
                if ReferenceChecker::new(&txns).is_robust(&candidate) {
                    replay = candidate;
                    break;
                }
                let (rt, rl, spec) = reasons.next().expect("a reason per failed lowering");
                assert_eq!((*rt, *rl), (t.id(), lvl));
                assert_eq!(spec.check(&txns, &candidate), Ok(()), "reason must certify");
            }
        }
        assert!(reasons.next().is_none(), "no surplus reasons");
        assert_eq!(replay, alloc);
        // Cache accounting: every failed lowering was either probed or
        // answered from the cache (+1 debug-assert probe of 𝒜_SSI).
        assert!(stats.probes + stats.cache_hits >= stats.cached_specs);
    }
}

/// Component-heavy workload: `clusters` private conflict clusters of
/// `per` transactions each (3-object pools), plus `bridges` transactions
/// that each span two clusters and merge their components.
fn clustered_workload(rng: &mut SmallRng, clusters: u32, per: u32, bridges: u32) -> TransactionSet {
    let mut b = TxnSetBuilder::new();
    let pools: Vec<Vec<_>> = (0..clusters)
        .map(|c| (0..3).map(|j| b.object(&format!("c{c}_o{j}"))).collect())
        .collect();
    let mut id = 0u32;
    let fill = |b: &mut TxnSetBuilder, id: u32, rng: &mut SmallRng, members: &[u32]| {
        let mut t = b.txn(id);
        let mut used: Vec<(bool, u32, usize)> = Vec::new();
        for &c in members {
            let per_cluster = if members.len() > 1 { 1 } else { 2 };
            let mut placed = 0;
            while placed < per_cluster {
                let j = rng.random_range(0..3usize);
                let write = rng.random_bool(0.5);
                if used.contains(&(write, c, j)) {
                    continue;
                }
                used.push((write, c, j));
                let obj = pools[c as usize][j];
                t = if write { t.write(obj) } else { t.read(obj) };
                placed += 1;
            }
        }
        t.finish();
    };
    for c in 0..clusters {
        for _ in 0..per {
            id += 1;
            fill(&mut b, id, rng, &[c]);
        }
    }
    for _ in 0..bridges {
        id += 1;
        let a = rng.random_range(0..clusters);
        let other = (a + 1 + rng.random_range(0..clusters - 1)) % clusters;
        fill(&mut b, id, rng, &[a, other]);
    }
    b.build().expect("ids are distinct by construction")
}

/// On workloads that decompose into several components (with bridges
/// merging some of them) the sharded engine must agree with both the
/// monolithic engine and the reference — identical counterexamples
/// (lifted to global `TxnId`s), identical optima, at every thread count.
#[test]
fn sharded_engine_matches_monolith_on_clustered_workloads() {
    let mut rng = SmallRng::seed_from_u64(0xE9E0_0006);
    let mut multi_component_cases = 0usize;
    for case in 0..12 {
        let clusters = rng.random_range(3..=5u32);
        let bridges = rng.random_range(0..=2u32);
        let txns = clustered_workload(&mut rng, clusters, 3, bridges);
        let comps = mvrobustness::Components::new(&txns, &mvrobustness::ConflictIndex::new(&txns));
        if comps.count() > 1 {
            multi_component_cases += 1;
        }
        // Counterexample (spec) equality: the sharded checker is the
        // default inside assert_equivalent, so a lifted per-component
        // spec must be byte-identical to the reference's global one.
        let alloc = random_allocation(&mut rng, &txns);
        assert_equivalent(&txns, &alloc);
        // Optimum equality: sharded vs. monolithic vs. reference.
        let expected = optimal_allocation_reference(&txns);
        for threads in [1, 2, 4] {
            let (sharded, stats) = Allocator::new(&txns).with_threads(threads).optimal();
            assert_eq!(
                sharded,
                expected,
                "case {case}: sharded optimum diverged at {threads} threads\n{}",
                mvmodel::fmt::transaction_set(&txns)
            );
            if comps.count() > 1 {
                assert!(
                    stats.components_checked + stats.components_cached > 0,
                    "case {case}: multi-component workload was not sharded"
                );
            }
            let (mono, _) = Allocator::new(&txns)
                .with_threads(threads)
                .with_components(false)
                .optimal();
            assert_eq!(mono, expected, "case {case}: monolithic optimum diverged");
        }
        // The {RC, SI} variant: per-component Unallocatable detection
        // must agree with the monolithic verdict.
        let (rc_si, _) = Allocator::new(&txns).optimal_rc_si();
        let (rc_si_mono, _) = Allocator::new(&txns).with_components(false).optimal_rc_si();
        assert_eq!(
            rc_si, rc_si_mono,
            "case {case}: sharded rc-si verdict diverged"
        );
    }
    assert!(
        multi_component_cases > 6,
        "generator produced too few multi-component cases"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48 })]

    /// Property form: verdict + spec equivalence on arbitrary seeds and
    /// workload shapes.
    #[test]
    fn prop_engine_equals_reference(
        seed in any::<u64>(),
        n_txns in 2..10u32,
        max_ops in 1..5usize,
        n_objects in 1..6u32,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let txns = random_workload(&mut rng, n_txns, max_ops, n_objects);
        let alloc = random_allocation(&mut rng, &txns);
        assert_equivalent(&txns, &alloc);
    }

    /// Property form: sharded and monolithic optima agree on
    /// component-heavy workloads with arbitrary bridge counts.
    #[test]
    fn prop_sharded_equals_monolith_on_clusters(
        seed in any::<u64>(),
        clusters in 2..5u32,
        bridges in 0..3u32,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let txns = clustered_workload(&mut rng, clusters, 2, bridges);
        let (sharded, _) = Allocator::new(&txns).optimal();
        let (mono, _) = Allocator::new(&txns).with_components(false).optimal();
        prop_assert_eq!(sharded, mono);
    }

    /// Property form: the cached Algorithm 2 equals the reference
    /// refinement.
    #[test]
    fn prop_cached_optimum_equals_reference(
        seed in any::<u64>(),
        n_txns in 2..9u32,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let txns = random_workload(&mut rng, n_txns, 4, 4);
        prop_assert_eq!(optimal_allocation(&txns), optimal_allocation_reference(&txns));
    }
}
