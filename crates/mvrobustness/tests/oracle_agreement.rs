//! Cross-validation of Algorithm 1 against the brute-force oracle on
//! random small workloads — an empirical check of both directions of
//! Theorem 3.2 under every class of allocation.

use mvisolation::{Allocation, IsolationLevel};
use mvmodel::{TransactionSet, TxnSetBuilder};
use mvrobustness::witness::counterexample_schedule;
use mvrobustness::{is_robust, oracle_is_robust};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

/// Generates a random workload: `n_txns` transactions of up to
/// `max_ops` operations over `n_objects` objects.
fn random_workload(
    rng: &mut SmallRng,
    n_txns: u32,
    max_ops: usize,
    n_objects: u32,
) -> Arc<TransactionSet> {
    loop {
        let mut b = TxnSetBuilder::new();
        let objects: Vec<_> = (0..n_objects).map(|i| b.object(&format!("o{i}"))).collect();
        for id in 1..=n_txns {
            let mut t = b.txn(id);
            let len = rng.random_range(1..=max_ops);
            let mut used: Vec<(bool, u32)> = Vec::new();
            for _ in 0..len {
                let obj = rng.random_range(0..n_objects);
                let write = rng.random_bool(0.5);
                if used.contains(&(write, obj)) {
                    continue;
                }
                used.push((write, obj));
                t = if write {
                    t.write(objects[obj as usize])
                } else {
                    t.read(objects[obj as usize])
                };
            }
            t.finish();
        }
        if let Ok(set) = b.build() {
            return Arc::new(set);
        }
    }
}

fn random_allocation(rng: &mut SmallRng, txns: &TransactionSet) -> Allocation {
    txns.ids()
        .map(|t| {
            let lvl = match rng.random_range(0..3) {
                0 => IsolationLevel::RC,
                1 => IsolationLevel::SI,
                _ => IsolationLevel::SSI,
            };
            (t, lvl)
        })
        .collect()
}

/// The workhorse: for each random (workload, allocation) pair, Algorithm 1
/// and the oracle must agree; when non-robust, the materialized witness
/// must verify (allowed + non-serializable).
fn check_agreement(seed: u64, cases: usize, n_txns: u32, max_ops: usize, n_objects: u32) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut robust_count = 0usize;
    for case in 0..cases {
        let txns = random_workload(&mut rng, n_txns, max_ops, n_objects);
        let alloc = random_allocation(&mut rng, &txns);
        let fast = is_robust(&txns, &alloc).robust();
        let slow = oracle_is_robust(&txns, &alloc);
        assert_eq!(
            fast,
            slow,
            "case {case}: Algorithm 1 ({fast}) disagrees with oracle ({slow})\nworkload:\n{}alloc: {alloc}",
            mvmodel::fmt::transaction_set(&txns),
        );
        if fast {
            robust_count += 1;
        } else {
            // Materialize + verify the witness (panics internally if the
            // Theorem 3.2 construction fails).
            let (_, s) = counterexample_schedule(&txns, &alloc).unwrap();
            assert!(!mvmodel::serializability::is_conflict_serializable(&s));
        }
    }
    // Sanity: the generator must produce a healthy mix of robust and
    // non-robust cases, or the test checks nothing.
    assert!(robust_count > 0, "no robust case generated");
    assert!(robust_count < cases, "no non-robust case generated");
}

#[test]
fn agreement_two_txns_mixed_allocations() {
    check_agreement(0xA11C_0001, 150, 2, 3, 3);
}

#[test]
fn agreement_three_txns_mixed_allocations() {
    check_agreement(0xA11C_0002, 40, 3, 3, 2);
}

#[test]
fn agreement_three_txns_few_objects_high_contention() {
    check_agreement(0xA11C_0003, 60, 3, 2, 2);
}

#[test]
fn agreement_four_txns_short() {
    check_agreement(0xA11C_0004, 25, 4, 2, 2);
}

#[test]
fn agreement_uniform_levels() {
    let mut rng = SmallRng::seed_from_u64(0xA11C_0005);
    for _ in 0..60 {
        let txns = random_workload(&mut rng, 3, 2, 3);
        for lvl in IsolationLevel::ALL {
            let alloc = Allocation::uniform(&txns, lvl);
            assert_eq!(
                is_robust(&txns, &alloc).robust(),
                oracle_is_robust(&txns, &alloc),
                "disagreement at {lvl} on\n{}",
                mvmodel::fmt::transaction_set(&txns)
            );
        }
    }
}

/// Proposition 4.1(1) checked empirically: raising any transaction's level
/// preserves robustness.
#[test]
fn upward_closure_on_random_workloads() {
    let mut rng = SmallRng::seed_from_u64(0xA11C_0006);
    for _ in 0..80 {
        let txns = random_workload(&mut rng, 3, 3, 3);
        let alloc = random_allocation(&mut rng, &txns);
        if !is_robust(&txns, &alloc).robust() {
            continue;
        }
        for t in txns.ids() {
            for lvl in IsolationLevel::ALL {
                if lvl > alloc.level(t) {
                    let raised = alloc.with(t, lvl);
                    assert!(
                        is_robust(&txns, &raised).robust(),
                        "raising {t} to {lvl} broke robustness: {alloc}\n{}",
                        mvmodel::fmt::transaction_set(&txns)
                    );
                }
            }
        }
    }
}

/// Proposition 5.1 checked empirically: robust against 𝒜_RC ⇒ robust
/// against 𝒜_SI.
#[test]
fn prop_5_1_on_random_workloads() {
    let mut rng = SmallRng::seed_from_u64(0xA11C_0007);
    let mut rc_robust_seen = 0;
    for _ in 0..150 {
        let txns = random_workload(&mut rng, 3, 3, 4);
        if is_robust(&txns, &Allocation::uniform_rc(&txns)).robust() {
            rc_robust_seen += 1;
            assert!(
                is_robust(&txns, &Allocation::uniform_si(&txns)).robust(),
                "Proposition 5.1 violated on\n{}",
                mvmodel::fmt::transaction_set(&txns)
            );
        }
    }
    assert!(
        rc_robust_seen > 0,
        "generator produced no RC-robust workloads"
    );
}
