//! Bit-for-bit equivalence of the online delta API
//! ([`Allocator::add_txn`] / [`Allocator::remove_txn`]) with full
//! recomputation, on randomized mutation sequences:
//!
//! - after every successful mutation, the incrementally maintained
//!   optimum equals a fresh `Allocator::new(set).optimal()` (or
//!   `optimal_rc_si`) of the current set — the delta paths reuse cached
//!   counterexamples and refinement floors, but acceptances always come
//!   from a full probe, so the result is the identical allocation;
//! - over `{RC, SI}` a rejected add rolls the set back and the fresh
//!   recomputation of the attempted set indeed has no robust allocation;
//! - the reported `changed` list is exactly the diff of the previous and
//!   new optimum;
//! - the thread count of the delta allocator does not affect results.

use mvisolation::Allocation;
use mvmodel::{Op, Transaction, TransactionSet, TxnId};
use mvrobustness::{AllocError, Allocator, LevelSet, Realloc};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// A random transaction of 1..=`max_ops` distinct operations over
/// `n_objects` shared objects, interned against `set`.
fn random_txn(
    rng: &mut SmallRng,
    set: &mut TransactionSet,
    id: u32,
    n_objects: u32,
) -> Transaction {
    let len = rng.random_range(1..=4usize);
    let mut used: Vec<(bool, u32)> = Vec::new();
    let mut ops = Vec::new();
    for _ in 0..len {
        let obj = rng.random_range(0..n_objects);
        let write = rng.random_bool(0.5);
        if used.contains(&(write, obj)) {
            continue;
        }
        used.push((write, obj));
        let object = set.intern_object(&format!("o{obj}"));
        ops.push(if write {
            Op::write(object)
        } else {
            Op::read(object)
        });
    }
    Transaction::new(TxnId(id), ops).expect("generator avoids duplicate operations")
}

/// The from-scratch optimum of `txns` over `levels` — computed by the
/// *monolithic* engine, so the component-sharded delta paths are always
/// checked against an independent implementation.
fn full_recompute(txns: &TransactionSet, levels: LevelSet) -> Option<Allocation> {
    let full = Allocator::new(txns).with_components(false);
    match levels {
        LevelSet::RcSiSsi => Some(full.optimal().0),
        LevelSet::RcSi => full.optimal_rc_si().0,
    }
}

/// Checks one successful delta result against the previous optimum and a
/// fresh recomputation.
fn assert_delta_matches(
    r: &Realloc,
    prev: &Allocation,
    txns: &TransactionSet,
    levels: LevelSet,
    step: usize,
) {
    let expected = full_recompute(txns, levels)
        .expect("delta reported success, so the set must be allocatable");
    assert_eq!(
        r.allocation,
        expected,
        "step {step}: delta optimum diverged from full recomputation\n{}",
        mvmodel::fmt::transaction_set(txns)
    );
    assert_eq!(
        r.changed,
        prev.diff(&r.allocation),
        "step {step}: changed list is not the diff of prev and new optimum"
    );
}

fn run_sequence(seed: u64, levels: LevelSet, threads: usize) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut alloc = Allocator::from_owned(TransactionSet::default())
        .with_levels(levels)
        .with_threads(threads);
    let mut prev = alloc.current().expect("empty set is allocatable").clone();
    let mut present: Vec<u32> = Vec::new();
    let mut next_id = 1u32;
    let mut accepted = 0usize;
    let mut rejected = 0usize;

    for step in 0..40 {
        let add = present.len() < 12 && (present.is_empty() || rng.random_bool(0.65));
        if add {
            let id = next_id;
            next_id += 1;
            // Build the transaction against a scratch copy first so a
            // rejected add can be compared with the attempted set.
            let mut attempted = alloc.txns().clone();
            let txn = random_txn(&mut rng, &mut attempted, id, 5);
            attempted.insert(txn.clone()).unwrap();
            match alloc.add_txn(txn) {
                Ok(r) => {
                    assert_delta_matches(&r, &prev, alloc.txns(), levels, step);
                    prev = r.allocation;
                    present.push(id);
                    accepted += 1;
                }
                Err(AllocError::NotAllocatable(l)) => {
                    assert_eq!(l, levels);
                    assert_eq!(
                        full_recompute(&attempted, levels),
                        None,
                        "step {step}: delta rejected an allocatable set\n{}",
                        mvmodel::fmt::transaction_set(&attempted)
                    );
                    // The insertion rolled back; the old optimum stands.
                    assert_eq!(alloc.txns().len(), present.len());
                    assert!(!alloc.txns().contains(TxnId(id)));
                    assert_eq!(alloc.current().unwrap(), &prev);
                    rejected += 1;
                }
                Err(e) => panic!("step {step}: unexpected delta error {e}"),
            }
        } else {
            let idx = rng.random_range(0..present.len());
            let victim = present.remove(idx);
            let r = alloc
                .remove_txn(TxnId(victim))
                .expect("removal never fails");
            assert_delta_matches(&r, &prev, alloc.txns(), levels, step);
            prev = r.allocation;
        }
    }
    assert!(accepted > 0, "seed {seed:#x}: no add ever accepted");
    if levels == LevelSet::RcSi {
        assert!(
            rejected > 0,
            "seed {seed:#x}: no {{RC, SI}} rejection exercised — tune the generator"
        );
    }
}

/// A random transaction whose operations are confined to the private
/// object pools of the given `clusters` (3 objects per pool, addressed
/// by raw id — conflicts derive from ids, names are cosmetic, and
/// interning against a throwaway clone would alias the pools). A single
/// cluster yields a component-local transaction; two clusters yield a
/// *bridge* that merges their conflict components for as long as it is
/// present.
fn pooled_txn(rng: &mut SmallRng, id: u32, clusters: &[u32]) -> Transaction {
    let mut used: Vec<(bool, u32)> = Vec::new();
    let mut ops = Vec::new();
    for &c in clusters {
        // At least one op per listed cluster, so a bridge really spans.
        let per = if clusters.len() > 1 {
            1
        } else {
            rng.random_range(2..=3usize)
        };
        let mut placed = 0;
        while placed < per {
            let raw = c * 3 + rng.random_range(0..3u32);
            let write = rng.random_bool(0.5);
            if used.contains(&(write, raw)) {
                continue;
            }
            used.push((write, raw));
            let object = mvmodel::Object(raw);
            ops.push(if write {
                Op::write(object)
            } else {
                Op::read(object)
            });
            placed += 1;
        }
    }
    Transaction::new(TxnId(id), ops).expect("generator avoids duplicate operations")
}

/// Component-heavy mutation sequence: cluster-local transactions keep
/// several independent conflict components alive, while occasional
/// bridge transactions merge two of them (and their removal splits them
/// again). Every accepted delta must equal the monolithic from-scratch
/// optimum; returns the allocation trace so callers can compare thread
/// counts bit-for-bit.
fn run_clustered_sequence(seed: u64, levels: LevelSet, threads: usize) -> Vec<String> {
    const CLUSTERS: u32 = 4;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut alloc = Allocator::from_owned(TransactionSet::default())
        .with_levels(levels)
        .with_threads(threads);
    let mut prev = alloc.current().expect("empty set is allocatable").clone();
    let mut present: Vec<u32> = Vec::new();
    let mut next_id = 1u32;
    let mut trace = Vec::new();
    let mut saw_cached = false;
    let mut saw_bridge = false;

    for step in 0..36 {
        let add = present.len() < 14 && (present.len() < 4 || rng.random_bool(0.6));
        if add {
            let id = next_id;
            next_id += 1;
            let bridge = rng.random_bool(0.3);
            let clusters: Vec<u32> = if bridge {
                let a = rng.random_range(0..CLUSTERS);
                let b = (a + 1 + rng.random_range(0..CLUSTERS - 1)) % CLUSTERS;
                vec![a, b]
            } else {
                vec![rng.random_range(0..CLUSTERS)]
            };
            let mut attempted = alloc.txns().clone();
            let txn = pooled_txn(&mut rng, id, &clusters);
            attempted.insert(txn.clone()).unwrap();
            match alloc.add_txn(txn) {
                Ok(r) => {
                    assert_delta_matches(&r, &prev, alloc.txns(), levels, step);
                    if let Some(s) = alloc.last_stats() {
                        saw_cached |= s.components_cached > 0;
                    }
                    prev = r.allocation;
                    present.push(id);
                    saw_bridge |= bridge;
                }
                Err(AllocError::NotAllocatable(l)) => {
                    assert_eq!(l, levels);
                    assert_eq!(
                        full_recompute(&attempted, levels),
                        None,
                        "step {step}: delta rejected an allocatable set\n{}",
                        mvmodel::fmt::transaction_set(&attempted)
                    );
                    assert_eq!(alloc.txns().len(), present.len());
                    assert_eq!(alloc.current().unwrap(), &prev);
                }
                Err(e) => panic!("step {step}: unexpected delta error {e}"),
            }
        } else {
            let idx = rng.random_range(0..present.len());
            let victim = present.remove(idx);
            let r = alloc
                .remove_txn(TxnId(victim))
                .expect("removal never fails");
            assert_delta_matches(&r, &prev, alloc.txns(), levels, step);
            if let Some(s) = alloc.last_stats() {
                saw_cached |= s.components_cached > 0;
            }
            prev = r.allocation;
        }
        trace.push(prev.to_string());
    }
    assert!(
        saw_cached,
        "seed {seed:#x}: no delta ever reused a cached component — tune the generator"
    );
    assert!(saw_bridge, "seed {seed:#x}: no bridge accepted");
    trace
}

/// Bridges merge components on add and split them on remove; every
/// intermediate optimum must equal the monolithic recomputation, and the
/// whole trace must be bit-identical at every thread count.
#[test]
fn clustered_delta_equals_full_recompute_across_threads() {
    for seed in [0xDE17A0031u64, 0xDE17A0032] {
        let reference = run_clustered_sequence(seed, LevelSet::RcSiSsi, 1);
        for threads in [2, 4] {
            assert_eq!(
                run_clustered_sequence(seed, LevelSet::RcSiSsi, threads),
                reference,
                "seed {seed:#x}: trace diverged at {threads} threads"
            );
        }
    }
}

/// The same component-heavy sequence over `{RC, SI}` exercises the
/// per-component Unallocatable detection path.
#[test]
fn clustered_delta_equals_full_recompute_rc_si() {
    run_clustered_sequence(0xDE17A0041, LevelSet::RcSi, 1);
}

#[test]
fn delta_equals_full_recompute_rc_si_ssi() {
    for seed in [0xDE17A0001u64, 0xDE17A0002, 0xDE17A0003] {
        run_sequence(seed, LevelSet::RcSiSsi, 1);
    }
}

#[test]
fn delta_equals_full_recompute_rc_si() {
    for seed in [0xDE17A0011u64, 0xDE17A0012, 0xDE17A0013] {
        run_sequence(seed, LevelSet::RcSi, 1);
    }
}

#[test]
fn delta_results_independent_of_thread_count() {
    run_sequence(0xDE17A0021, LevelSet::RcSiSsi, 4);
    run_sequence(0xDE17A0022, LevelSet::RcSi, 2);
}
