//! Bit-for-bit equivalence of the online delta API
//! ([`Allocator::add_txn`] / [`Allocator::remove_txn`]) with full
//! recomputation, on randomized mutation sequences:
//!
//! - after every successful mutation, the incrementally maintained
//!   optimum equals a fresh `Allocator::new(set).optimal()` (or
//!   `optimal_rc_si`) of the current set — the delta paths reuse cached
//!   counterexamples and refinement floors, but acceptances always come
//!   from a full probe, so the result is the identical allocation;
//! - over `{RC, SI}` a rejected add rolls the set back and the fresh
//!   recomputation of the attempted set indeed has no robust allocation;
//! - the reported `changed` list is exactly the diff of the previous and
//!   new optimum;
//! - the thread count of the delta allocator does not affect results.

use mvisolation::Allocation;
use mvmodel::{Op, Transaction, TransactionSet, TxnId};
use mvrobustness::{AllocError, Allocator, LevelSet, Realloc};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// A random transaction of 1..=`max_ops` distinct operations over
/// `n_objects` shared objects, interned against `set`.
fn random_txn(
    rng: &mut SmallRng,
    set: &mut TransactionSet,
    id: u32,
    n_objects: u32,
) -> Transaction {
    let len = rng.random_range(1..=4usize);
    let mut used: Vec<(bool, u32)> = Vec::new();
    let mut ops = Vec::new();
    for _ in 0..len {
        let obj = rng.random_range(0..n_objects);
        let write = rng.random_bool(0.5);
        if used.contains(&(write, obj)) {
            continue;
        }
        used.push((write, obj));
        let object = set.intern_object(&format!("o{obj}"));
        ops.push(if write {
            Op::write(object)
        } else {
            Op::read(object)
        });
    }
    Transaction::new(TxnId(id), ops).expect("generator avoids duplicate operations")
}

/// The from-scratch optimum of `txns` over `levels`.
fn full_recompute(txns: &TransactionSet, levels: LevelSet) -> Option<Allocation> {
    let full = Allocator::new(txns);
    match levels {
        LevelSet::RcSiSsi => Some(full.optimal().0),
        LevelSet::RcSi => full.optimal_rc_si().0,
    }
}

/// Checks one successful delta result against the previous optimum and a
/// fresh recomputation.
fn assert_delta_matches(
    r: &Realloc,
    prev: &Allocation,
    txns: &TransactionSet,
    levels: LevelSet,
    step: usize,
) {
    let expected = full_recompute(txns, levels)
        .expect("delta reported success, so the set must be allocatable");
    assert_eq!(
        r.allocation,
        expected,
        "step {step}: delta optimum diverged from full recomputation\n{}",
        mvmodel::fmt::transaction_set(txns)
    );
    assert_eq!(
        r.changed,
        prev.diff(&r.allocation),
        "step {step}: changed list is not the diff of prev and new optimum"
    );
}

fn run_sequence(seed: u64, levels: LevelSet, threads: usize) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut alloc = Allocator::from_owned(TransactionSet::default())
        .with_levels(levels)
        .with_threads(threads);
    let mut prev = alloc.current().expect("empty set is allocatable").clone();
    let mut present: Vec<u32> = Vec::new();
    let mut next_id = 1u32;
    let mut accepted = 0usize;
    let mut rejected = 0usize;

    for step in 0..40 {
        let add = present.len() < 12 && (present.is_empty() || rng.random_bool(0.65));
        if add {
            let id = next_id;
            next_id += 1;
            // Build the transaction against a scratch copy first so a
            // rejected add can be compared with the attempted set.
            let mut attempted = alloc.txns().clone();
            let txn = random_txn(&mut rng, &mut attempted, id, 5);
            attempted.insert(txn.clone()).unwrap();
            match alloc.add_txn(txn) {
                Ok(r) => {
                    assert_delta_matches(&r, &prev, alloc.txns(), levels, step);
                    prev = r.allocation;
                    present.push(id);
                    accepted += 1;
                }
                Err(AllocError::NotAllocatable(l)) => {
                    assert_eq!(l, levels);
                    assert_eq!(
                        full_recompute(&attempted, levels),
                        None,
                        "step {step}: delta rejected an allocatable set\n{}",
                        mvmodel::fmt::transaction_set(&attempted)
                    );
                    // The insertion rolled back; the old optimum stands.
                    assert_eq!(alloc.txns().len(), present.len());
                    assert!(!alloc.txns().contains(TxnId(id)));
                    assert_eq!(alloc.current().unwrap(), &prev);
                    rejected += 1;
                }
                Err(e) => panic!("step {step}: unexpected delta error {e}"),
            }
        } else {
            let idx = rng.random_range(0..present.len());
            let victim = present.remove(idx);
            let r = alloc
                .remove_txn(TxnId(victim))
                .expect("removal never fails");
            assert_delta_matches(&r, &prev, alloc.txns(), levels, step);
            prev = r.allocation;
        }
    }
    assert!(accepted > 0, "seed {seed:#x}: no add ever accepted");
    if levels == LevelSet::RcSi {
        assert!(
            rejected > 0,
            "seed {seed:#x}: no {{RC, SI}} rejection exercised — tune the generator"
        );
    }
}

#[test]
fn delta_equals_full_recompute_rc_si_ssi() {
    for seed in [0xDE17A0001u64, 0xDE17A0002, 0xDE17A0003] {
        run_sequence(seed, LevelSet::RcSiSsi, 1);
    }
}

#[test]
fn delta_equals_full_recompute_rc_si() {
    for seed in [0xDE17A0011u64, 0xDE17A0012, 0xDE17A0013] {
        run_sequence(seed, LevelSet::RcSi, 1);
    }
}

#[test]
fn delta_results_independent_of_thread_count() {
    run_sequence(0xDE17A0021, LevelSet::RcSiSsi, 4);
    run_sequence(0xDE17A0022, LevelSet::RcSi, 2);
}
