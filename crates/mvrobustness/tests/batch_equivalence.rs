//! Bit-for-bit equivalence of coalesced batches
//! ([`Allocator::apply_batch`]) with the sequential delta API, on
//! randomized event sequences split at random cut-points:
//!
//! - the concatenated per-event verdicts of the batched run equal the
//!   verdicts of applying the same events one at a time through
//!   [`Allocator::add_txn`] / [`Allocator::remove_txn`] — including
//!   duplicate-add and unknown-remove rejections;
//! - after every batch the maintained optimum equals a fresh monolithic
//!   recomputation of the current set, and the reported `changed` list
//!   is exactly the diff of the pre-batch and post-batch optima;
//! - results are identical at every thread count and with component
//!   sharding on or off, over both level menus;
//! - a deadline that expires mid-batch rolls the *whole* batch back:
//!   the pre-batch set and optimum keep being served (the registry's
//!   last-known-good degradation story), and re-applying the same
//!   batch without the fault converges to the true optimum.

use mvisolation::Allocation;
use mvmodel::{Op, Transaction, TransactionSet, TxnId};
use mvrobustness::{AllocError, Allocator, DeltaEvent, LevelSet};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

/// A random transaction of 1..=4 distinct operations over `n_objects`
/// shared objects (raw ids — conflicts derive from ids, names are
/// cosmetic).
fn random_txn(rng: &mut SmallRng, id: u32, n_objects: u32) -> Transaction {
    let len = rng.random_range(1..=4usize);
    let mut used: Vec<(bool, u32)> = Vec::new();
    let mut ops = Vec::new();
    for _ in 0..len {
        let raw = rng.random_range(0..n_objects);
        let write = rng.random_bool(0.5);
        if used.contains(&(write, raw)) {
            continue;
        }
        used.push((write, raw));
        let object = mvmodel::Object(raw);
        ops.push(if write {
            Op::write(object)
        } else {
            Op::read(object)
        });
    }
    Transaction::new(TxnId(id), ops).expect("generator avoids duplicate operations")
}

/// A random event script: mostly live adds and removes, salted with
/// duplicate adds of present ids and removes of never-registered ids so
/// both rejection verdicts are exercised. The `present` bookkeeping is
/// optimistic (an `{RC, SI}` engine may reject an add it lists), which
/// only makes the script more adversarial — both runs see the same
/// events either way.
fn random_events(rng: &mut SmallRng, n: usize) -> Vec<DeltaEvent> {
    let mut present: Vec<u32> = Vec::new();
    let mut next_id = 1u32;
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        let roll = rng.random_range(0..100u32);
        if roll < 8 && !present.is_empty() {
            let id = present[rng.random_range(0..present.len())];
            events.push(DeltaEvent::Add(random_txn(rng, id, 5)));
        } else if roll < 14 {
            events.push(DeltaEvent::Remove(TxnId(next_id + 500)));
        } else if roll < 60 || present.len() < 3 {
            let id = next_id;
            next_id += 1;
            events.push(DeltaEvent::Add(random_txn(rng, id, 5)));
            present.push(id);
        } else {
            let idx = rng.random_range(0..present.len());
            let id = present.remove(idx);
            events.push(DeltaEvent::Remove(TxnId(id)));
        }
    }
    events
}

/// Splits the script at random cut-points into batches of 1..=9 events.
fn random_chunks(rng: &mut SmallRng, events: Vec<DeltaEvent>) -> Vec<Vec<DeltaEvent>> {
    let mut chunks = Vec::new();
    let mut rest = events;
    while !rest.is_empty() {
        let take = rng.random_range(1..=rest.len().min(9));
        let tail = rest.split_off(take);
        chunks.push(rest);
        rest = tail;
    }
    chunks
}

/// The from-scratch optimum of `txns` over `levels`, by the
/// *monolithic* engine — an independent implementation of what every
/// batch must produce.
fn full_recompute(txns: &TransactionSet, levels: LevelSet) -> Option<Allocation> {
    let full = Allocator::new(txns).with_components(false);
    match levels {
        LevelSet::RcSiSsi => Some(full.optimal().0),
        LevelSet::RcSi => full.optimal_rc_si().0,
    }
}

/// The ground truth: the same events applied one at a time through the
/// sequential delta API. Returns per-event verdicts and the final
/// optimum.
fn sequential_baseline(
    events: &[DeltaEvent],
    levels: LevelSet,
) -> (Vec<Result<(), AllocError>>, Allocation) {
    let mut alloc = Allocator::from_owned(TransactionSet::default()).with_levels(levels);
    let mut verdicts = Vec::with_capacity(events.len());
    for ev in events {
        verdicts.push(match ev.clone() {
            DeltaEvent::Add(txn) => alloc.add_txn(txn).map(|_| ()),
            DeltaEvent::Remove(id) => alloc.remove_txn(id).map(|_| ()),
        });
    }
    let last = alloc
        .current()
        .expect("survivor set is allocatable")
        .clone();
    (verdicts, last)
}

fn check_equivalence(seed: u64, levels: LevelSet, threads: usize, components: bool) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let events = random_events(&mut rng, 36);
    let (expected_verdicts, expected_final) = sequential_baseline(&events, levels);
    assert!(
        expected_verdicts.iter().any(|v| v.is_err()),
        "seed {seed:#x}: no rejection exercised — tune the generator"
    );

    let chunks = random_chunks(&mut rng, events);
    assert!(
        chunks.iter().any(|c| c.len() > 1),
        "seed {seed:#x}: every chunk is a singleton — no coalescing exercised"
    );
    let mut alloc = Allocator::from_owned(TransactionSet::default())
        .with_levels(levels)
        .with_threads(threads)
        .with_components(components);
    let mut prev = alloc.current().expect("empty set is allocatable").clone();
    let mut verdicts = Vec::new();
    for (k, chunk) in chunks.into_iter().enumerate() {
        let n = chunk.len();
        let batch = alloc
            .apply_batch(chunk)
            .expect("no deadline is configured, so batches never time out");
        assert_eq!(
            batch.stats.batch_events, n as u64,
            "batch {k}: batch_events must count this drain's events"
        );
        assert_eq!(
            batch.changed,
            prev.diff(&batch.allocation),
            "batch {k}: changed list is not the diff of pre- and post-batch optima"
        );
        let expected = full_recompute(alloc.txns(), levels)
            .expect("batch reported success, so the surviving set is allocatable");
        assert_eq!(
            batch.allocation,
            expected,
            "batch {k}: batched optimum diverged from monolithic recomputation\n{}",
            mvmodel::fmt::transaction_set(alloc.txns())
        );
        prev = batch.allocation;
        verdicts.extend(batch.outcomes);
    }
    assert_eq!(
        verdicts, expected_verdicts,
        "seed {seed:#x}: batched verdicts diverged from the sequential delta API"
    );
    assert_eq!(
        prev, expected_final,
        "seed {seed:#x}: final batched optimum diverged from the sequential final optimum"
    );
}

#[test]
fn batched_equals_sequential_rc_si_ssi() {
    for seed in [0xBA7C80001u64, 0xBA7C80002, 0xBA7C80003] {
        check_equivalence(seed, LevelSet::RcSiSsi, 1, true);
    }
}

#[test]
fn batched_equals_sequential_rc_si() {
    for seed in [0xBA7C80011u64, 0xBA7C80012] {
        check_equivalence(seed, LevelSet::RcSi, 1, true);
    }
}

#[test]
fn batched_equivalence_across_threads_and_sharding() {
    for &(threads, components) in &[(2usize, true), (4, true), (1, false), (4, false)] {
        check_equivalence(0xBA7C80021, LevelSet::RcSiSsi, threads, components);
        check_equivalence(0xBA7C80022, LevelSet::RcSi, threads, components);
    }
}

/// An empty batch is a no-op with a trivial reply.
#[test]
fn empty_batch_is_a_noop() {
    let mut rng = SmallRng::seed_from_u64(0xBA7C80031);
    let mut alloc = Allocator::from_owned(TransactionSet::default());
    let warm: Vec<DeltaEvent> = (1..=4)
        .map(|id| DeltaEvent::Add(random_txn(&mut rng, id, 4)))
        .collect();
    alloc.apply_batch(warm).expect("warm-up batch applies");
    let before = alloc.current().unwrap().clone();
    let reply = alloc.apply_batch(Vec::new()).expect("empty batch succeeds");
    assert_eq!(reply.allocation, before);
    assert!(reply.outcomes.is_empty());
    assert!(reply.changed.is_empty());
    assert_eq!(reply.stats.batch_events, 0);
}

/// The chaos round: a deadline that is already expired when the batch
/// arrives (how the registry injects a scripted realloc timeout) must
/// reject the whole batch, leave the pre-batch set and optimum serving
/// (last-known-good), and let the identical batch apply cleanly
/// afterwards.
#[test]
fn expired_deadline_rolls_back_the_whole_batch() {
    for levels in [LevelSet::RcSiSsi, LevelSet::RcSi] {
        let mut rng = SmallRng::seed_from_u64(0xBA7C80041);
        let mut alloc = Allocator::from_owned(TransactionSet::default()).with_levels(levels);
        let warm: Vec<DeltaEvent> = (1..=6)
            .map(|id| DeltaEvent::Add(random_txn(&mut rng, id, 4)))
            .collect();
        alloc.apply_batch(warm).expect("warm-up batch applies");
        let good_alloc = alloc.current().unwrap().clone();
        let good_len = alloc.txns().len();

        let batch = vec![
            DeltaEvent::Add(random_txn(&mut rng, 7, 4)),
            DeltaEvent::Remove(TxnId(2)),
            DeltaEvent::Add(random_txn(&mut rng, 8, 4)),
        ];
        let err = alloc
            .apply_batch_by(batch.clone(), Some(Instant::now()))
            .expect_err("an expired deadline must reject the batch");
        assert_eq!(err, AllocError::Timeout);
        assert_eq!(alloc.txns().len(), good_len, "{levels}: set must roll back");
        assert!(
            alloc.txns().contains(TxnId(2)),
            "{levels}: removal rolled back"
        );
        assert!(
            !alloc.txns().contains(TxnId(7)),
            "{levels}: add rolled back"
        );
        assert_eq!(
            alloc.current().unwrap(),
            &good_alloc,
            "{levels}: last-known-good optimum must keep serving"
        );

        // After the rollback the batched allocator's set is identical
        // to a sequential allocator's after warm-up, so the recovery
        // batch must produce exactly the sequential verdicts (over
        // {RC, SI} an add may legitimately be unallocatable).
        let mut seq = Allocator::from_owned(alloc.txns().clone()).with_levels(levels);
        let seq_verdicts: Vec<Result<(), AllocError>> = batch
            .iter()
            .map(|ev| match ev.clone() {
                DeltaEvent::Add(txn) => seq.add_txn(txn).map(|_| ()),
                DeltaEvent::Remove(id) => seq.remove_txn(id).map(|_| ()),
            })
            .collect();
        let ok = alloc
            .apply_batch(batch)
            .expect("the same batch without the fault applies");
        assert_eq!(
            ok.outcomes, seq_verdicts,
            "{levels}: post-recovery verdicts diverged from the sequential delta API"
        );
        assert_eq!(
            ok.allocation,
            full_recompute(alloc.txns(), levels).expect("post-batch set is allocatable"),
            "{levels}: post-recovery optimum diverged from monolithic recomputation"
        );
    }
}
