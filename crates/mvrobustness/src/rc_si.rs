//! The `{RC, SI}` restriction (paper §5) — the isolation levels available
//! in Oracle, where no serializable level exists and a robust allocation
//! may fail to exist.

use crate::algorithm1::is_robust;
use crate::allocate::Allocator;
use mvisolation::Allocation;
use mvmodel::TransactionSet;

/// Whether `txns` is *robustly allocatable* against `{RC, SI}`
/// (Definition 5.3): some `{RC, SI}`-allocation is robust.
///
/// By Proposition 5.4 this holds iff `txns` is robust against `𝒜_SI`
/// (upward closure, Proposition 4.1(1), makes `𝒜_SI` the best candidate).
pub fn robustly_allocatable_rc_si(txns: &TransactionSet) -> bool {
    is_robust(txns, &Allocation::uniform_si(txns)).robust()
}

/// Computes the unique optimal robust `{RC, SI}`-allocation, or `None`
/// when none exists (Theorem 5.5).
///
/// When `txns` is robust against `𝒜_SI`, Algorithm 2 is run starting from
/// `𝒜_SI` instead of `𝒜_SSI`.
pub fn optimal_allocation_rc_si(txns: &TransactionSet) -> Option<Allocation> {
    Allocator::new(txns).optimal_rc_si().0
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvisolation::IsolationLevel;
    use mvmodel::{TxnId, TxnSetBuilder};

    #[test]
    fn write_skew_has_no_rc_si_allocation() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).read(y).write(x).finish();
        let txns = b.build().unwrap();
        assert!(!robustly_allocatable_rc_si(&txns));
        assert_eq!(optimal_allocation_rc_si(&txns), None);
    }

    #[test]
    fn lost_update_allocatable_at_si() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        b.txn(1).read(x).write(x).finish();
        b.txn(2).read(x).write(x).finish();
        let txns = b.build().unwrap();
        assert!(robustly_allocatable_rc_si(&txns));
        let a = optimal_allocation_rc_si(&txns).unwrap();
        assert!(is_robust(&txns, &a).robust());
        assert_eq!(a.counts(), (0, 2, 0));
    }

    #[test]
    fn disjoint_workload_all_rc() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).write(x).finish();
        b.txn(2).write(y).finish();
        let txns = b.build().unwrap();
        let a = optimal_allocation_rc_si(&txns).unwrap();
        assert_eq!(a, Allocation::uniform_rc(&txns));
    }

    #[test]
    fn mixed_rc_si_optimum() {
        // T3 only reads a private object: it can drop to RC even when
        // T1/T2 need SI.
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let z = b.object("z");
        b.txn(1).read(x).write(x).finish();
        b.txn(2).read(x).write(x).finish();
        b.txn(3).read(z).finish();
        let txns = b.build().unwrap();
        let a = optimal_allocation_rc_si(&txns).unwrap();
        assert_eq!(a.level(TxnId(1)), IsolationLevel::SI);
        assert_eq!(a.level(TxnId(2)), IsolationLevel::SI);
        assert_eq!(a.level(TxnId(3)), IsolationLevel::RC);
    }

    #[test]
    fn rc_si_optimum_never_uses_ssi() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).write(x).finish();
        b.txn(2).read(y).write(y).finish();
        b.txn(3).read(x).read(y).finish();
        let txns = b.build().unwrap();
        if let Some(a) = optimal_allocation_rc_si(&txns) {
            assert!(a.iter().all(|(_, l)| l <= IsolationLevel::SI));
            assert!(is_robust(&txns, &a).robust());
        } else {
            panic!("expected an {{RC, SI}} allocation to exist");
        }
    }

    /// Proposition 5.1: robustness against 𝒜_RC implies robustness
    /// against 𝒜_SI (spot-check; the property test in the integration
    /// suite covers random workloads).
    #[test]
    fn prop_5_1_spot_check() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).write(x).read(y).finish();
        b.txn(2).write(y).finish();
        let txns = b.build().unwrap();
        let rc_robust = is_robust(&txns, &Allocation::uniform_rc(&txns)).robust();
        let si_robust = is_robust(&txns, &Allocation::uniform_si(&txns)).robust();
        assert!(!rc_robust || si_robust);
    }
}
