//! Connected components of the transaction-level conflict graph — the
//! foundation of the component-sharded engine.
//!
//! **Component-locality lemma.** A multiversion split schedule
//! (Def. 3.1) is a cycle of transactions in which `T₂` and `T_m`
//! conflict with `T₁` and every consecutive chain pair conflicts, so
//! all transactions mentioned by a counterexample lie in one connected
//! component of the conflict graph (union-find over the symmetric
//! `any` relation). Hence
//!
//! > `is_robust(𝒯, 𝒜)  ⇔  ∀C ∈ components(𝒯): is_robust(C, 𝒜|C)`
//!
//! and, because the optimal allocation is unique (Prop. 4.2),
//!
//! > `optimal(𝒯) = ⊎_C optimal(C)` — the union over components is
//! > well-defined and independent of refinement order.
//!
//! Counterexamples need no translation when lifted back: the engine's
//! [`crate::SplitSpec`]s address transactions by global [`TxnId`], which
//! sub-problems preserve.
//!
//! [`Components`] provides the decomposition with stable component ids
//! (ascending first-member order) and a content fingerprint per
//! component; the fingerprint keys the cross-realloc component cache
//! ([`CompCache`]), so a component untouched by a workload delta is a
//! pure cache hit even though dense indices shifted underneath it.

use crate::allocate::LevelSet;
use crate::conflict_index::{ConflictIndex, SetBits};
use mvisolation::IsolationLevel;
use mvmodel::{TransactionSet, TxnId};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// 64-bit FNV-1a, fed 8 bytes at a time.
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new(offset: u64) -> Self {
        Fnv(offset)
    }

    fn feed(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }
}

/// Content fingerprint of a set of transactions: two independent FNV-1a
/// passes over `(id, op kind, object id)` in member order, packed into a
/// `u128`. Depends only on transaction ids and operation lists — never
/// on dense indices — so it is stable across workload deltas that leave
/// the component's members untouched (the per-allocator object table is
/// append-only, keeping raw object ids stable too).
pub fn fingerprint_members(txns: &TransactionSet, members: &[usize]) -> u128 {
    let mut h1 = Fnv::new(0xcbf2_9ce4_8422_2325);
    let mut h2 = Fnv::new(0x9e37_79b9_7f4a_7c15);
    let mut feed = |v: u64| {
        h1.feed(v);
        h2.feed(v);
    };
    for &i in members {
        let t = txns.by_index(i);
        feed(t.id().0 as u64);
        feed(t.ops().len() as u64);
        for op in t.ops() {
            feed(((op.is_write() as u64) << 32) | op.object.0 as u64);
        }
    }
    ((h1.0 as u128) << 64) | h2.0 as u128
}

/// The connected components of a [`ConflictIndex`]'s `any` graph.
///
/// Component ids are dense and stable: components are numbered in
/// ascending order of their smallest member's dense index, and members
/// within a component are kept in ascending dense order. Iterating
/// components in id order therefore visits candidate split transactions
/// in exactly the order the unsharded search would.
#[derive(Debug, Clone)]
pub struct Components {
    /// Component id per dense txn index.
    comp_of: Vec<usize>,
    /// Members (ascending dense indices) per component.
    members: Vec<Vec<usize>>,
    /// Content fingerprint per component.
    fingerprints: Vec<u128>,
}

impl Components {
    /// Decomposes in `O(n²/64 + Σ ops)`: a word-parallel union-find
    /// sweep over the packed `any` rows, then one fingerprint pass.
    pub fn new(txns: &TransactionSet, index: &ConflictIndex) -> Self {
        let n = index.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut r = x;
            while parent[r] != r {
                r = parent[r];
            }
            let mut c = x;
            while parent[c] != r {
                let next = parent[c];
                parent[c] = r;
                c = next;
            }
            r
        }
        for i in 0..n {
            let row = index.any_row(i);
            let wi = i / 64;
            for (w, &word) in row.iter().enumerate().skip(wi) {
                let mut m = word;
                if w == wi {
                    // Only j > i: the relation is symmetric.
                    m &= if i % 64 == 63 {
                        0
                    } else {
                        !0u64 << (i % 64 + 1)
                    };
                }
                while m != 0 {
                    let j = w * 64 + m.trailing_zeros() as usize;
                    m &= m - 1;
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
            }
        }
        let mut comp_of = vec![usize::MAX; n];
        let mut members: Vec<Vec<usize>> = Vec::new();
        let mut root_to_comp = vec![usize::MAX; n];
        for (i, slot) in comp_of.iter_mut().enumerate() {
            let r = find(&mut parent, i);
            let c = if root_to_comp[r] == usize::MAX {
                root_to_comp[r] = members.len();
                members.push(Vec::new());
                members.len() - 1
            } else {
                root_to_comp[r]
            };
            *slot = c;
            members[c].push(i);
        }
        let fingerprints = members
            .iter()
            .map(|m| fingerprint_members(txns, m))
            .collect();
        Components {
            comp_of,
            members,
            fingerprints,
        }
    }

    /// Number of components.
    pub fn count(&self) -> usize {
        self.members.len()
    }

    /// Component id of the `i`-th transaction (dense index).
    pub fn comp_of_index(&self, i: usize) -> usize {
        self.comp_of[i]
    }

    /// Component id of a transaction by id.
    pub fn comp_of(&self, txns: &TransactionSet, id: TxnId) -> usize {
        self.comp_of[txns.index_of(id)]
    }

    /// Members of component `c`, ascending dense indices.
    pub fn members(&self, c: usize) -> &[usize] {
        &self.members[c]
    }

    /// Content fingerprint of component `c`.
    pub fn fingerprint(&self, c: usize) -> u128 {
        self.fingerprints[c]
    }

    /// Size of the largest component (0 when empty).
    pub fn largest(&self) -> usize {
        self.members.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Whether component `c` is a single conflict-free transaction. Such
    /// a transaction can never appear in a split schedule, so Algorithm 2
    /// assigns it the lowest level of the menu directly.
    pub fn is_singleton(&self, c: usize) -> bool {
        self.members[c].len() == 1
    }

    /// Component ids ordered largest-first (ties by id): the work-
    /// stealing schedule that keeps the critical path — the biggest
    /// component — started first.
    pub fn largest_first(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.count()).collect();
        order.sort_by_key(|&c| (std::cmp::Reverse(self.members[c].len()), c));
        order
    }

    /// The members of `c` as a word-packed bitset over dense indices —
    /// the scope mask format
    /// [`IsoReach::new_scoped`](crate::conflict_index::IsoReach::new_scoped)
    /// consumes (which takes the member list itself, not the words).
    pub fn member_words(&self, c: usize, n: usize) -> Vec<u64> {
        let mut words = vec![0u64; n.div_ceil(64).max(1)];
        for &i in &self.members[c] {
            words[i / 64] |= 1 << (i % 64);
        }
        words
    }

    /// Iterates `(component id, members)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[usize])> {
        self.members.iter().enumerate().map(|(c, m)| (c, &m[..]))
    }
}

/// A solved component: the unique optimal allocation of its members
/// under the active level menu, or `Unallocatable` when the menu (e.g.
/// `{RC, SI}`) admits no robust allocation.
#[derive(Debug, Clone, PartialEq)]
pub enum CompEntry {
    Robust(Vec<(TxnId, IsolationLevel)>),
    Unallocatable,
}

/// Content-addressed cache of solved components, keyed by
/// [`fingerprint_members`]. Entries never need invalidation — a
/// fingerprint identifies the component's exact transactions — so the
/// cache survives arbitrary workload deltas; FIFO eviction bounds it.
/// The owning [`crate::Allocator`] clears it when the level menu
/// changes (the menu is deliberately not part of the key).
#[derive(Debug, Default)]
pub struct CompCache {
    map: HashMap<u128, CompEntry>,
    order: VecDeque<u128>,
    cap: usize,
}

/// Default bound on cached solved components per allocator.
pub const COMP_CACHE_CAP: usize = 4096;

impl CompCache {
    pub fn new(cap: usize) -> Self {
        CompCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            cap: cap.max(1),
        }
    }

    pub fn get(&self, fp: u128) -> Option<&CompEntry> {
        self.map.get(&fp)
    }

    pub fn insert(&mut self, fp: u128, entry: CompEntry) {
        if self.map.insert(fp, entry).is_none() {
            self.order.push_back(fp);
            while self.order.len() > self.cap {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }
}

/// Re-exported iterator type used in scope masks (keeps callers off the
/// words' layout).
pub fn iter_member_words(words: &[u64]) -> SetBits<'_> {
    SetBits::over(words)
}

/// Default shard count of a [`SharedCompCache`].
pub const SHARED_CACHE_SHARDS: usize = 16;

/// Domain-separation salt folded into shared-cache keys, one per level
/// menu. A per-allocator [`CompCache`] can be *cleared* on a menu change
/// (the menu is deliberately absent from its key); a cache shared across
/// tenants cannot — one tenant switching menus must not evict every
/// other tenant's entries — so here the menu is made part of the key
/// instead. The salts are arbitrary odd constants; XOR keeps the key a
/// bijection of the fingerprint per menu.
fn menu_salt(levels: LevelSet) -> u128 {
    match levels {
        LevelSet::RcSiSsi => 0,
        LevelSet::RcSi => 0x9e37_79b9_7f4a_7c15_f39c_c060_5ced_c835,
    }
}

/// A content-addressed component cache shared across allocators (and,
/// through `mvservice`, across tenants): identical component shapes
/// admitted by different tenants are pure hits. Lock-sharded — each key
/// hashes to one of `shards` independent [`CompCache`]s, so concurrent
/// tenants rarely contend — with atomic hit/miss/insert counters for
/// the cross-tenant hit-rate metric.
///
/// Soundness is inherited from content addressing: an entry is the
/// *unique* optimum of the exact transactions its fingerprint hashes
/// (Proposition 4.2), so a hit from any tenant is bit-identical to
/// re-solving. The level menu is folded into the key ([`menu_salt`]),
/// never invalidated by a tenant's menu change.
#[derive(Debug)]
pub struct SharedCompCache {
    shards: Vec<Mutex<CompCache>>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
}

impl Default for SharedCompCache {
    fn default() -> Self {
        SharedCompCache::new(SHARED_CACHE_SHARDS, COMP_CACHE_CAP)
    }
}

impl SharedCompCache {
    /// `shards` independent FIFO caches of `cap_per_shard` entries each.
    pub fn new(shards: usize, cap_per_shard: usize) -> Self {
        let shards = shards.max(1);
        SharedCompCache {
            shards: (0..shards)
                .map(|_| Mutex::new(CompCache::new(cap_per_shard)))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u128) -> &Mutex<CompCache> {
        // High half of the dual-FNV fingerprint spreads well.
        &self.shards[(key >> 64) as u64 as usize % self.shards.len()]
    }

    /// Looks up a component by fingerprint under a level menu, cloning
    /// the entry out of the shard. Counts a hit or a miss; callers
    /// consult this only after their local cache missed, so the
    /// hit-rate below is exactly the cross-tenant (first-encounter)
    /// rate.
    pub fn get(&self, levels: LevelSet, fp: u128) -> Option<CompEntry> {
        let key = fp ^ menu_salt(levels);
        let found = self.shard(key).lock().unwrap().get(key).cloned();
        match found {
            Some(e) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Publishes a solved component for every other allocator sharing
    /// the handle.
    pub fn insert(&self, levels: LevelSet, fp: u128, entry: CompEntry) {
        let key = fp ^ menu_salt(levels);
        self.shard(key).lock().unwrap().insert(key, entry);
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }

    /// Pre-seeds an entry under its already-salted key (snapshot
    /// restore); does not count as an insert.
    pub fn restore(&self, key: u128, entry: CompEntry) {
        self.shard(key).lock().unwrap().insert(key, entry);
    }

    /// Every `(salted key, entry)` pair, ascending by key — the
    /// deterministic dump a snapshot persists and [`SharedCompCache::restore`]
    /// reloads.
    pub fn entries(&self) -> Vec<(u128, CompEntry)> {
        let mut all = Vec::new();
        for shard in &self.shards {
            let guard = shard.lock().unwrap();
            for key in guard.order.iter() {
                if let Some(e) = guard.map.get(key) {
                    all.push((*key, e.clone()));
                }
            }
        }
        all.sort_by_key(|&(k, _)| k);
        all
    }

    /// Cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from the cache (lifetime total).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing (lifetime total).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries published (lifetime total; re-publishing an existing key
    /// still counts).
    pub fn inserts(&self) -> u64 {
        self.inserts.load(Ordering::Relaxed)
    }

    /// `hits / (hits + misses)`, or 0 when never consulted.
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits(), self.misses());
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvmodel::TxnSetBuilder;

    /// T1–T5 one chain cluster, T6–T7 a second, T8 isolated.
    fn clustered() -> TransactionSet {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let p = b.object("p");
        let q = b.object("q");
        let r = b.object("r");
        let y = b.object("y");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).write(x).write(p).finish();
        b.txn(3).read(p).write(q).finish();
        b.txn(4).read(q).write(r).finish();
        b.txn(5).read(r).read(y).finish();
        let a = b.object("a");
        let bb = b.object("b");
        b.txn(6).read(a).write(bb).finish();
        b.txn(7).write(a).read(bb).finish();
        let z = b.object("z");
        b.txn(8).read(z).finish();
        b.build().unwrap()
    }

    #[test]
    fn decomposition_is_stable_and_complete() {
        let txns = clustered();
        let index = ConflictIndex::new(&txns);
        let comps = Components::new(&txns, &index);
        assert_eq!(comps.count(), 3);
        let i = |t: u32| txns.index_of(TxnId(t));
        // Ids in ascending first-member order.
        assert_eq!(comps.comp_of_index(i(1)), 0);
        assert_eq!(comps.comp_of_index(i(6)), 1);
        assert_eq!(comps.comp_of_index(i(8)), 2);
        for t in 1..=5u32 {
            assert_eq!(comps.comp_of(&txns, TxnId(t)), 0);
        }
        assert_eq!(comps.members(0).len(), 5);
        assert_eq!(comps.members(1), &[i(6), i(7)]);
        assert!(comps.is_singleton(2) && !comps.is_singleton(0));
        assert_eq!(comps.largest(), 5);
        assert_eq!(comps.largest_first(), vec![0, 1, 2]);
        // Scope masks round-trip through SetBits.
        let words = comps.member_words(1, txns.len());
        assert_eq!(
            iter_member_words(&words).collect::<Vec<_>>(),
            vec![i(6), i(7)]
        );
        // Every transaction is in exactly one component.
        let total: usize = (0..comps.count()).map(|c| comps.members(c).len()).sum();
        assert_eq!(total, txns.len());
    }

    #[test]
    fn fingerprints_are_content_addressed() {
        let txns = clustered();
        let index = ConflictIndex::new(&txns);
        let comps = Components::new(&txns, &index);
        // Distinct components have distinct fingerprints.
        assert_ne!(comps.fingerprint(0), comps.fingerprint(1));
        assert_ne!(comps.fingerprint(1), comps.fingerprint(2));

        // Adding an unrelated transaction shifts dense indices but keeps
        // untouched components' fingerprints identical (cache key
        // stability across deltas).
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let p = b.object("p");
        let q = b.object("q");
        let r = b.object("r");
        let y = b.object("y");
        // New low-id transaction: every dense index below shifts by one.
        b.txn(0).write(q).read(x).finish();
        b.txn(1).read(x).write(y).finish();
        b.txn(2).write(x).write(p).finish();
        b.txn(3).read(p).write(q).finish();
        b.txn(4).read(q).write(r).finish();
        b.txn(5).read(r).read(y).finish();
        let a = b.object("a");
        let bb = b.object("b");
        b.txn(6).read(a).write(bb).finish();
        b.txn(7).write(a).read(bb).finish();
        let z = b.object("z");
        b.txn(8).read(z).finish();
        let grown = b.build().unwrap();
        let gindex = ConflictIndex::new(&grown);
        let gcomps = Components::new(&grown, &gindex);
        let c67 = gcomps.comp_of(&grown, TxnId(6));
        assert_eq!(gcomps.fingerprint(c67), comps.fingerprint(1));
        let c8 = gcomps.comp_of(&grown, TxnId(8));
        assert_eq!(gcomps.fingerprint(c8), comps.fingerprint(2));
        // The touched cluster (T0 conflicts into it) changed fingerprint.
        let c1 = gcomps.comp_of(&grown, TxnId(1));
        assert_ne!(gcomps.fingerprint(c1), comps.fingerprint(0));
    }

    #[test]
    fn shared_cache_is_menu_keyed_and_counts() {
        let cache = SharedCompCache::new(4, 8);
        assert!(cache.is_empty());
        let entry = CompEntry::Robust(vec![(TxnId(1), IsolationLevel::RC)]);
        cache.insert(LevelSet::RcSiSsi, 42, entry.clone());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.inserts(), 1);
        // Hit under the inserting menu, miss under the other: the menu
        // is part of the key, so one tenant's {RC,SI} work never
        // answers another's {RC,SI,SSI} query.
        assert_eq!(cache.get(LevelSet::RcSiSsi, 42), Some(entry.clone()));
        assert_eq!(cache.get(LevelSet::RcSi, 42), None);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
        // entries()/restore() round-trip the salted keys verbatim.
        let dumped = cache.entries();
        assert_eq!(dumped.len(), 1);
        let other = SharedCompCache::new(4, 8);
        for (k, e) in dumped {
            other.restore(k, e);
        }
        assert_eq!(other.get(LevelSet::RcSiSsi, 42), Some(entry));
        assert_eq!(other.inserts(), 0, "restore is not an insert");
    }

    #[test]
    fn shared_cache_spreads_across_shards_and_bounds_each() {
        let cache = SharedCompCache::new(2, 2);
        for k in 0..64u128 {
            // Vary the shard-selecting high half too.
            cache.insert(LevelSet::RcSiSsi, k << 64 | k, CompEntry::Unallocatable);
        }
        assert!(cache.len() <= 4, "2 shards × cap 2, got {}", cache.len());
        assert!(!cache.is_empty());
        assert_eq!(cache.inserts(), 64);
    }

    #[test]
    fn comp_cache_fifo_eviction() {
        let mut cache = CompCache::new(2);
        cache.insert(1, CompEntry::Unallocatable);
        cache.insert(2, CompEntry::Robust(vec![]));
        assert_eq!(cache.len(), 2);
        // Re-inserting an existing key does not grow or reorder.
        cache.insert(1, CompEntry::Unallocatable);
        assert_eq!(cache.len(), 2);
        cache.insert(3, CompEntry::Unallocatable);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(1).is_none(), "oldest key evicted");
        assert!(cache.get(2).is_some() && cache.get(3).is_some());
        cache.clear();
        assert!(cache.is_empty());
    }
}
