//! Connected components of the transaction-level conflict graph — the
//! foundation of the component-sharded engine.
//!
//! **Component-locality lemma.** A multiversion split schedule
//! (Def. 3.1) is a cycle of transactions in which `T₂` and `T_m`
//! conflict with `T₁` and every consecutive chain pair conflicts, so
//! all transactions mentioned by a counterexample lie in one connected
//! component of the conflict graph (union-find over the symmetric
//! `any` relation). Hence
//!
//! > `is_robust(𝒯, 𝒜)  ⇔  ∀C ∈ components(𝒯): is_robust(C, 𝒜|C)`
//!
//! and, because the optimal allocation is unique (Prop. 4.2),
//!
//! > `optimal(𝒯) = ⊎_C optimal(C)` — the union over components is
//! > well-defined and independent of refinement order.
//!
//! Counterexamples need no translation when lifted back: the engine's
//! [`crate::SplitSpec`]s address transactions by global [`TxnId`], which
//! sub-problems preserve.
//!
//! [`Components`] provides the decomposition with stable component ids
//! (ascending first-member order) and a content fingerprint per
//! component; the fingerprint keys the cross-realloc component cache
//! ([`CompCache`]), so a component untouched by a workload delta is a
//! pure cache hit even though dense indices shifted underneath it.

use crate::conflict_index::{ConflictIndex, SetBits};
use mvisolation::IsolationLevel;
use mvmodel::{TransactionSet, TxnId};
use std::collections::{HashMap, VecDeque};

/// 64-bit FNV-1a, fed 8 bytes at a time.
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new(offset: u64) -> Self {
        Fnv(offset)
    }

    fn feed(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }
}

/// Content fingerprint of a set of transactions: two independent FNV-1a
/// passes over `(id, op kind, object id)` in member order, packed into a
/// `u128`. Depends only on transaction ids and operation lists — never
/// on dense indices — so it is stable across workload deltas that leave
/// the component's members untouched (the per-allocator object table is
/// append-only, keeping raw object ids stable too).
pub fn fingerprint_members(txns: &TransactionSet, members: &[usize]) -> u128 {
    let mut h1 = Fnv::new(0xcbf2_9ce4_8422_2325);
    let mut h2 = Fnv::new(0x9e37_79b9_7f4a_7c15);
    let mut feed = |v: u64| {
        h1.feed(v);
        h2.feed(v);
    };
    for &i in members {
        let t = txns.by_index(i);
        feed(t.id().0 as u64);
        feed(t.ops().len() as u64);
        for op in t.ops() {
            feed(((op.is_write() as u64) << 32) | op.object.0 as u64);
        }
    }
    ((h1.0 as u128) << 64) | h2.0 as u128
}

/// The connected components of a [`ConflictIndex`]'s `any` graph.
///
/// Component ids are dense and stable: components are numbered in
/// ascending order of their smallest member's dense index, and members
/// within a component are kept in ascending dense order. Iterating
/// components in id order therefore visits candidate split transactions
/// in exactly the order the unsharded search would.
#[derive(Debug, Clone)]
pub struct Components {
    /// Component id per dense txn index.
    comp_of: Vec<usize>,
    /// Members (ascending dense indices) per component.
    members: Vec<Vec<usize>>,
    /// Content fingerprint per component.
    fingerprints: Vec<u128>,
}

impl Components {
    /// Decomposes in `O(n²/64 + Σ ops)`: a word-parallel union-find
    /// sweep over the packed `any` rows, then one fingerprint pass.
    pub fn new(txns: &TransactionSet, index: &ConflictIndex) -> Self {
        let n = index.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut r = x;
            while parent[r] != r {
                r = parent[r];
            }
            let mut c = x;
            while parent[c] != r {
                let next = parent[c];
                parent[c] = r;
                c = next;
            }
            r
        }
        for i in 0..n {
            let row = index.any_row(i);
            let wi = i / 64;
            for (w, &word) in row.iter().enumerate().skip(wi) {
                let mut m = word;
                if w == wi {
                    // Only j > i: the relation is symmetric.
                    m &= if i % 64 == 63 {
                        0
                    } else {
                        !0u64 << (i % 64 + 1)
                    };
                }
                while m != 0 {
                    let j = w * 64 + m.trailing_zeros() as usize;
                    m &= m - 1;
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
            }
        }
        let mut comp_of = vec![usize::MAX; n];
        let mut members: Vec<Vec<usize>> = Vec::new();
        let mut root_to_comp = vec![usize::MAX; n];
        for (i, slot) in comp_of.iter_mut().enumerate() {
            let r = find(&mut parent, i);
            let c = if root_to_comp[r] == usize::MAX {
                root_to_comp[r] = members.len();
                members.push(Vec::new());
                members.len() - 1
            } else {
                root_to_comp[r]
            };
            *slot = c;
            members[c].push(i);
        }
        let fingerprints = members
            .iter()
            .map(|m| fingerprint_members(txns, m))
            .collect();
        Components {
            comp_of,
            members,
            fingerprints,
        }
    }

    /// Number of components.
    pub fn count(&self) -> usize {
        self.members.len()
    }

    /// Component id of the `i`-th transaction (dense index).
    pub fn comp_of_index(&self, i: usize) -> usize {
        self.comp_of[i]
    }

    /// Component id of a transaction by id.
    pub fn comp_of(&self, txns: &TransactionSet, id: TxnId) -> usize {
        self.comp_of[txns.index_of(id)]
    }

    /// Members of component `c`, ascending dense indices.
    pub fn members(&self, c: usize) -> &[usize] {
        &self.members[c]
    }

    /// Content fingerprint of component `c`.
    pub fn fingerprint(&self, c: usize) -> u128 {
        self.fingerprints[c]
    }

    /// Size of the largest component (0 when empty).
    pub fn largest(&self) -> usize {
        self.members.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Whether component `c` is a single conflict-free transaction. Such
    /// a transaction can never appear in a split schedule, so Algorithm 2
    /// assigns it the lowest level of the menu directly.
    pub fn is_singleton(&self, c: usize) -> bool {
        self.members[c].len() == 1
    }

    /// Component ids ordered largest-first (ties by id): the work-
    /// stealing schedule that keeps the critical path — the biggest
    /// component — started first.
    pub fn largest_first(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.count()).collect();
        order.sort_by_key(|&c| (std::cmp::Reverse(self.members[c].len()), c));
        order
    }

    /// The members of `c` as a word-packed bitset over dense indices —
    /// the scope mask format
    /// [`IsoReach::new_scoped`](crate::conflict_index::IsoReach::new_scoped)
    /// consumes (which takes the member list itself, not the words).
    pub fn member_words(&self, c: usize, n: usize) -> Vec<u64> {
        let mut words = vec![0u64; n.div_ceil(64).max(1)];
        for &i in &self.members[c] {
            words[i / 64] |= 1 << (i % 64);
        }
        words
    }

    /// Iterates `(component id, members)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[usize])> {
        self.members.iter().enumerate().map(|(c, m)| (c, &m[..]))
    }
}

/// A solved component: the unique optimal allocation of its members
/// under the active level menu, or `Unallocatable` when the menu (e.g.
/// `{RC, SI}`) admits no robust allocation.
#[derive(Debug, Clone, PartialEq)]
pub enum CompEntry {
    Robust(Vec<(TxnId, IsolationLevel)>),
    Unallocatable,
}

/// Content-addressed cache of solved components, keyed by
/// [`fingerprint_members`]. Entries never need invalidation — a
/// fingerprint identifies the component's exact transactions — so the
/// cache survives arbitrary workload deltas; FIFO eviction bounds it.
/// The owning [`crate::Allocator`] clears it when the level menu
/// changes (the menu is deliberately not part of the key).
#[derive(Debug, Default)]
pub struct CompCache {
    map: HashMap<u128, CompEntry>,
    order: VecDeque<u128>,
    cap: usize,
}

/// Default bound on cached solved components per allocator.
pub const COMP_CACHE_CAP: usize = 4096;

impl CompCache {
    pub fn new(cap: usize) -> Self {
        CompCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            cap: cap.max(1),
        }
    }

    pub fn get(&self, fp: u128) -> Option<&CompEntry> {
        self.map.get(&fp)
    }

    pub fn insert(&mut self, fp: u128, entry: CompEntry) {
        if self.map.insert(fp, entry).is_none() {
            self.order.push_back(fp);
            while self.order.len() > self.cap {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }
}

/// Re-exported iterator type used in scope masks (keeps callers off the
/// words' layout).
pub fn iter_member_words(words: &[u64]) -> SetBits<'_> {
    SetBits::over(words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvmodel::TxnSetBuilder;

    /// T1–T5 one chain cluster, T6–T7 a second, T8 isolated.
    fn clustered() -> TransactionSet {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let p = b.object("p");
        let q = b.object("q");
        let r = b.object("r");
        let y = b.object("y");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).write(x).write(p).finish();
        b.txn(3).read(p).write(q).finish();
        b.txn(4).read(q).write(r).finish();
        b.txn(5).read(r).read(y).finish();
        let a = b.object("a");
        let bb = b.object("b");
        b.txn(6).read(a).write(bb).finish();
        b.txn(7).write(a).read(bb).finish();
        let z = b.object("z");
        b.txn(8).read(z).finish();
        b.build().unwrap()
    }

    #[test]
    fn decomposition_is_stable_and_complete() {
        let txns = clustered();
        let index = ConflictIndex::new(&txns);
        let comps = Components::new(&txns, &index);
        assert_eq!(comps.count(), 3);
        let i = |t: u32| txns.index_of(TxnId(t));
        // Ids in ascending first-member order.
        assert_eq!(comps.comp_of_index(i(1)), 0);
        assert_eq!(comps.comp_of_index(i(6)), 1);
        assert_eq!(comps.comp_of_index(i(8)), 2);
        for t in 1..=5u32 {
            assert_eq!(comps.comp_of(&txns, TxnId(t)), 0);
        }
        assert_eq!(comps.members(0).len(), 5);
        assert_eq!(comps.members(1), &[i(6), i(7)]);
        assert!(comps.is_singleton(2) && !comps.is_singleton(0));
        assert_eq!(comps.largest(), 5);
        assert_eq!(comps.largest_first(), vec![0, 1, 2]);
        // Scope masks round-trip through SetBits.
        let words = comps.member_words(1, txns.len());
        assert_eq!(
            iter_member_words(&words).collect::<Vec<_>>(),
            vec![i(6), i(7)]
        );
        // Every transaction is in exactly one component.
        let total: usize = (0..comps.count()).map(|c| comps.members(c).len()).sum();
        assert_eq!(total, txns.len());
    }

    #[test]
    fn fingerprints_are_content_addressed() {
        let txns = clustered();
        let index = ConflictIndex::new(&txns);
        let comps = Components::new(&txns, &index);
        // Distinct components have distinct fingerprints.
        assert_ne!(comps.fingerprint(0), comps.fingerprint(1));
        assert_ne!(comps.fingerprint(1), comps.fingerprint(2));

        // Adding an unrelated transaction shifts dense indices but keeps
        // untouched components' fingerprints identical (cache key
        // stability across deltas).
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let p = b.object("p");
        let q = b.object("q");
        let r = b.object("r");
        let y = b.object("y");
        // New low-id transaction: every dense index below shifts by one.
        b.txn(0).write(q).read(x).finish();
        b.txn(1).read(x).write(y).finish();
        b.txn(2).write(x).write(p).finish();
        b.txn(3).read(p).write(q).finish();
        b.txn(4).read(q).write(r).finish();
        b.txn(5).read(r).read(y).finish();
        let a = b.object("a");
        let bb = b.object("b");
        b.txn(6).read(a).write(bb).finish();
        b.txn(7).write(a).read(bb).finish();
        let z = b.object("z");
        b.txn(8).read(z).finish();
        let grown = b.build().unwrap();
        let gindex = ConflictIndex::new(&grown);
        let gcomps = Components::new(&grown, &gindex);
        let c67 = gcomps.comp_of(&grown, TxnId(6));
        assert_eq!(gcomps.fingerprint(c67), comps.fingerprint(1));
        let c8 = gcomps.comp_of(&grown, TxnId(8));
        assert_eq!(gcomps.fingerprint(c8), comps.fingerprint(2));
        // The touched cluster (T0 conflicts into it) changed fingerprint.
        let c1 = gcomps.comp_of(&grown, TxnId(1));
        assert_ne!(gcomps.fingerprint(c1), comps.fingerprint(0));
    }

    #[test]
    fn comp_cache_fifo_eviction() {
        let mut cache = CompCache::new(2);
        cache.insert(1, CompEntry::Unallocatable);
        cache.insert(2, CompEntry::Robust(vec![]));
        assert_eq!(cache.len(), 2);
        // Re-inserting an existing key does not grow or reorder.
        cache.insert(1, CompEntry::Unallocatable);
        assert_eq!(cache.len(), 2);
        cache.insert(3, CompEntry::Unallocatable);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(1).is_none(), "oldest key evicted");
        assert!(cache.get(2).is_some() && cache.get(3).is_some());
        cache.clear();
        assert!(cache.is_empty());
    }
}
