//! Brute-force ground truth for the robustness problem.
//!
//! Enumerates **every** schedule over the transaction set that is allowed
//! under the allocation and checks each for conflict serializability. As
//! argued in `mvisolation::derive` (and DESIGN.md §4), the version order
//! and version function of an allowed schedule are uniquely determined by
//! the operation interleaving and the allocation, so enumerating
//! interleavings enumerates allowed schedules exactly.
//!
//! The interleaving count is the multinomial coefficient of the
//! transaction lengths — exponential. This module exists to validate
//! Algorithm 1 (both directions of Theorem 3.2) on small workloads and to
//! quantify the brute-force/polynomial gap in the benchmark suite.

use crate::algorithm1::find_counterexample;
use crate::witness::{materialize, verify_witness};
use mvisolation::derive::{derive_schedule, for_each_interleaving};
use mvisolation::{allowed_under, violations, Allocation, Violation};
use mvmodel::serializability::is_conflict_serializable;
use mvmodel::{Schedule, TransactionSet};
use std::sync::Arc;

/// Decides robustness by exhaustive enumeration. Use only for small
/// workloads (≲ 12 total operations).
pub fn oracle_is_robust(txns: &Arc<TransactionSet>, alloc: &Allocation) -> bool {
    oracle_counterexample(txns, alloc).is_none()
}

/// Finds a non-serializable allowed schedule by exhaustive enumeration,
/// or proves none exists.
pub fn oracle_counterexample(txns: &Arc<TransactionSet>, alloc: &Allocation) -> Option<Schedule> {
    let mut found: Option<Schedule> = None;
    for_each_interleaving(txns, |order| {
        let s = derive_schedule(Arc::clone(txns), order.to_vec(), alloc)
            .expect("enumerated interleavings are valid");
        if allowed_under(&s, alloc) && !is_conflict_serializable(&s) {
            found = Some(s);
            false // stop
        } else {
            true
        }
    });
    found
}

/// Statistics from a full enumeration: how many interleavings exist, how
/// many are allowed under the allocation, and how many of those are
/// serializable. Used by the evaluation harness.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct OracleStats {
    pub interleavings: usize,
    pub allowed: usize,
    pub serializable: usize,
}

/// Exhaustively enumerates all interleavings and tallies [`OracleStats`].
pub fn oracle_stats(txns: &Arc<TransactionSet>, alloc: &Allocation) -> OracleStats {
    let mut stats = OracleStats::default();
    for_each_interleaving(txns, |order| {
        stats.interleavings += 1;
        let s = derive_schedule(Arc::clone(txns), order.to_vec(), alloc)
            .expect("enumerated interleavings are valid");
        if allowed_under(&s, alloc) {
            stats.allowed += 1;
            if is_conflict_serializable(&s) {
                stats.serializable += 1;
            }
        }
        true
    });
    stats
}

// ---------------------------------------------------------------------
// Trace conformance: the executed second oracle.
//
// The functions below close the allocate→execute loop: a multiversion
// engine (mvsim, or any other) exports its committed execution as a
// `Schedule` plus the `Allocation` it ran under, and the theory makes two
// falsifiable predictions about that trace —
//
//   1. the trace is *allowed under* the allocation (Definition 2.4): the
//      engine faithfully implements RC/SI/SSI semantics;
//   2. when the allocation is robust (Theorem 3.2), the trace is conflict
//      serializable.
//
// When execution instead *finds* an anomaly, `corroborate_anomaly`
// cross-checks it against Algorithm 1: the static checker must agree the
// allocation is non-robust, and its counterexample split schedule must
// itself verify as a genuine allowed non-serializable witness. The two
// oracles — symbolic search over split schedules and randomized
// execution — must never disagree.
// ---------------------------------------------------------------------

/// Outcome of validating one executed trace against the allocation it
/// ran under.
#[derive(Clone, Debug)]
pub struct TraceVerdict {
    /// Allowed under the allocation (Definition 2.4).
    pub allowed: bool,
    /// Conflict serializable.
    pub serializable: bool,
    /// The specific per-transaction violations when not allowed.
    pub violations: Vec<Violation>,
}

impl TraceVerdict {
    /// Allowed *and* serializable — what a robust allocation promises.
    pub fn conformant(&self) -> bool {
        self.allowed && self.serializable
    }
}

/// Validates an executed trace: allowed-under-allocation and conflict
/// serializability, with the violation list when the former fails.
pub fn validate_trace(s: &Schedule, alloc: &Allocation) -> TraceVerdict {
    let vs = violations(s, alloc);
    TraceVerdict {
        allowed: vs.is_empty(),
        serializable: is_conflict_serializable(s),
        violations: vs,
    }
}

/// Why an executed trace failed the conformance contract.
#[derive(Clone, Debug)]
pub enum TraceError {
    /// The engine emitted a schedule its own allocation forbids — an
    /// engine bug, regardless of robustness.
    NotAllowed {
        violations: Vec<Violation>,
        schedule: String,
    },
    /// The allocation was certified robust but the execution is not
    /// serializable — a refutation of the robustness certificate (or of
    /// the engine's level enforcement).
    NotSerializable { schedule: String },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::NotAllowed {
                violations,
                schedule,
            } => write!(
                f,
                "trace not allowed under its allocation ({} violation(s)):\n{}\nfirst: {:?}",
                violations.len(),
                schedule,
                violations.first()
            ),
            TraceError::NotSerializable { schedule } => write!(
                f,
                "robust-allocated trace is not conflict serializable:\n{schedule}"
            ),
        }
    }
}

/// The conformance contract for one executed trace: it must be allowed
/// under `alloc`; when `expect_serializable` (the allocation was
/// certified robust), it must also be conflict serializable.
///
/// Returns the verdict on success so callers can still inspect
/// serializability of non-robust runs (where either outcome conforms).
pub fn check_trace(
    s: &Schedule,
    alloc: &Allocation,
    expect_serializable: bool,
) -> Result<TraceVerdict, TraceError> {
    let verdict = validate_trace(s, alloc);
    if !verdict.allowed {
        return Err(TraceError::NotAllowed {
            violations: verdict.violations.clone(),
            schedule: mvmodel::fmt::schedule_full(s),
        });
    }
    if expect_serializable && !verdict.serializable {
        return Err(TraceError::NotSerializable {
            schedule: mvmodel::fmt::schedule_full(s),
        });
    }
    Ok(verdict)
}

/// How the static and executed oracles can disagree about an anomaly.
#[derive(Clone, Debug)]
pub enum AnomalyMismatch {
    /// Execution produced a non-serializable trace but Algorithm 1
    /// certifies the allocation robust — one of the two oracles is wrong.
    StaticallyRobust,
    /// Algorithm 1 produced a counterexample whose materialized split
    /// schedule does not verify as a genuine anomaly.
    WitnessInvalid(String),
}

impl std::fmt::Display for AnomalyMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnomalyMismatch::StaticallyRobust => f.write_str(
                "execution found an anomaly but Algorithm 1 certifies the allocation robust",
            ),
            AnomalyMismatch::WitnessInvalid(e) => {
                write!(f, "Algorithm 1's counterexample failed verification: {e}")
            }
        }
    }
}

/// Cross-checks an executed anomaly against Algorithm 1: the checker must
/// report non-robust, and its counterexample split schedule (Definition
/// 3.1, materialized) must verify as an allowed, non-serializable
/// schedule. Returns that witness schedule.
pub fn corroborate_anomaly(
    txns: &Arc<TransactionSet>,
    alloc: &Allocation,
) -> Result<Schedule, AnomalyMismatch> {
    let Some(spec) = find_counterexample(txns, alloc) else {
        return Err(AnomalyMismatch::StaticallyRobust);
    };
    let witness = materialize(Arc::clone(txns), alloc, &spec);
    verify_witness(&witness, alloc)
        .map_err(|e| AnomalyMismatch::WitnessInvalid(format!("{e:?}")))?;
    Ok(witness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm1::is_robust;
    use mvisolation::IsolationLevel;
    use mvmodel::TxnSetBuilder;

    fn write_skew() -> Arc<TransactionSet> {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).read(y).write(x).finish();
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn oracle_matches_algorithm_on_write_skew() {
        let txns = write_skew();
        for lvl in IsolationLevel::ALL {
            let a = Allocation::uniform(&txns, lvl);
            assert_eq!(
                oracle_is_robust(&txns, &a),
                is_robust(&txns, &a).robust(),
                "disagreement at {lvl}"
            );
        }
    }

    #[test]
    fn oracle_counterexample_is_verified() {
        let txns = write_skew();
        let si = Allocation::uniform_si(&txns);
        let s = oracle_counterexample(&txns, &si).expect("write skew breaks SI");
        assert!(allowed_under(&s, &si));
        assert!(!is_conflict_serializable(&s));
    }

    #[test]
    fn oracle_stats_totals() {
        let txns = write_skew();
        let si = Allocation::uniform_si(&txns);
        let stats = oracle_stats(&txns, &si);
        // Two 3-op sequences: C(6, 3) = 20 interleavings.
        assert_eq!(stats.interleavings, 20);
        assert!(stats.allowed > 0);
        assert!(stats.allowed <= stats.interleavings);
        assert!(
            stats.serializable < stats.allowed,
            "some allowed schedule is non-serializable"
        );
    }

    #[test]
    fn oracle_stats_all_serializable_when_robust() {
        let txns = write_skew();
        let ssi = Allocation::uniform_ssi(&txns);
        let stats = oracle_stats(&txns, &ssi);
        assert_eq!(stats.allowed, stats.serializable, "SSI workload is robust");
        assert!(oracle_is_robust(&txns, &ssi));
    }

    #[test]
    fn oracle_on_mixed_allocations() {
        // Lost update: robust at SI, not at RC; mixing one RC breaks it.
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        b.txn(1).read(x).write(x).finish();
        b.txn(2).read(x).write(x).finish();
        let txns = Arc::new(b.build().unwrap());
        for alloc_str in ["T1=SI T2=SI", "T1=RC T2=SI", "T1=SI T2=RC", "T1=RC T2=RC"] {
            let a = Allocation::parse(alloc_str).unwrap();
            assert_eq!(
                oracle_is_robust(&txns, &a),
                is_robust(&txns, &a).robust(),
                "disagreement at {alloc_str}"
            );
        }
        assert!(oracle_is_robust(
            &txns,
            &Allocation::parse("T1=SI T2=SI").unwrap()
        ));
        assert!(!oracle_is_robust(
            &txns,
            &Allocation::parse("T1=RC T2=SI").unwrap()
        ));
    }

    #[test]
    fn validate_trace_verdicts() {
        let txns = write_skew();
        let si = Allocation::uniform_si(&txns);
        // An anomaly found by enumeration: allowed, not serializable.
        let bad = oracle_counterexample(&txns, &si).unwrap();
        let v = validate_trace(&bad, &si);
        assert!(v.allowed);
        assert!(!v.serializable);
        assert!(!v.conformant());
        assert!(v.violations.is_empty());
        // The same schedule under all-SSI is *not* allowed (SSI forbids it).
        let ssi = Allocation::uniform_ssi(&txns);
        let v2 = validate_trace(&bad, &ssi);
        assert!(!v2.allowed);
        assert!(!v2.violations.is_empty());
    }

    #[test]
    fn check_trace_contract() {
        let txns = write_skew();
        let si = Allocation::uniform_si(&txns);
        let bad = oracle_counterexample(&txns, &si).unwrap();
        // Non-robust allocation: anomaly conforms when serializability is
        // not expected…
        let v = check_trace(&bad, &si, false).expect("allowed trace conforms");
        assert!(!v.serializable);
        // …but refutes a (false) robustness claim, with the schedule in
        // the error message.
        let err = check_trace(&bad, &si, true).unwrap_err();
        match &err {
            TraceError::NotSerializable { schedule } => assert!(schedule.contains("W1[")),
            other => panic!("expected NotSerializable, got {other:?}"),
        }
        assert!(err.to_string().contains("not conflict serializable"));
        // Trace forbidden by its allocation fails regardless.
        let ssi = Allocation::uniform_ssi(&txns);
        let err = check_trace(&bad, &ssi, false).unwrap_err();
        match &err {
            TraceError::NotAllowed { violations, .. } => assert!(!violations.is_empty()),
            other => panic!("expected NotAllowed, got {other:?}"),
        }
        assert!(err.to_string().contains("not allowed"));
    }

    #[test]
    fn corroborate_anomaly_agrees_with_algorithm1() {
        let txns = write_skew();
        // Non-robust: Algorithm 1 yields a verified witness schedule.
        let si = Allocation::uniform_si(&txns);
        let witness = corroborate_anomaly(&txns, &si).expect("write skew at SI is non-robust");
        assert!(allowed_under(&witness, &si));
        assert!(!is_conflict_serializable(&witness));
        // Robust: the oracles would disagree — reported as such.
        let ssi = Allocation::uniform_ssi(&txns);
        match corroborate_anomaly(&txns, &ssi) {
            Err(AnomalyMismatch::StaticallyRobust) => {}
            other => panic!("expected StaticallyRobust, got {other:?}"),
        }
        assert!(AnomalyMismatch::StaticallyRobust
            .to_string()
            .contains("robust"));
    }
}
