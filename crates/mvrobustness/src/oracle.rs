//! Brute-force ground truth for the robustness problem.
//!
//! Enumerates **every** schedule over the transaction set that is allowed
//! under the allocation and checks each for conflict serializability. As
//! argued in `mvisolation::derive` (and DESIGN.md §4), the version order
//! and version function of an allowed schedule are uniquely determined by
//! the operation interleaving and the allocation, so enumerating
//! interleavings enumerates allowed schedules exactly.
//!
//! The interleaving count is the multinomial coefficient of the
//! transaction lengths — exponential. This module exists to validate
//! Algorithm 1 (both directions of Theorem 3.2) on small workloads and to
//! quantify the brute-force/polynomial gap in the benchmark suite.

use mvisolation::derive::{derive_schedule, for_each_interleaving};
use mvisolation::{allowed_under, Allocation};
use mvmodel::serializability::is_conflict_serializable;
use mvmodel::{Schedule, TransactionSet};
use std::sync::Arc;

/// Decides robustness by exhaustive enumeration. Use only for small
/// workloads (≲ 12 total operations).
pub fn oracle_is_robust(txns: &Arc<TransactionSet>, alloc: &Allocation) -> bool {
    oracle_counterexample(txns, alloc).is_none()
}

/// Finds a non-serializable allowed schedule by exhaustive enumeration,
/// or proves none exists.
pub fn oracle_counterexample(txns: &Arc<TransactionSet>, alloc: &Allocation) -> Option<Schedule> {
    let mut found: Option<Schedule> = None;
    for_each_interleaving(txns, |order| {
        let s = derive_schedule(Arc::clone(txns), order.to_vec(), alloc)
            .expect("enumerated interleavings are valid");
        if allowed_under(&s, alloc) && !is_conflict_serializable(&s) {
            found = Some(s);
            false // stop
        } else {
            true
        }
    });
    found
}

/// Statistics from a full enumeration: how many interleavings exist, how
/// many are allowed under the allocation, and how many of those are
/// serializable. Used by the evaluation harness.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct OracleStats {
    pub interleavings: usize,
    pub allowed: usize,
    pub serializable: usize,
}

/// Exhaustively enumerates all interleavings and tallies [`OracleStats`].
pub fn oracle_stats(txns: &Arc<TransactionSet>, alloc: &Allocation) -> OracleStats {
    let mut stats = OracleStats::default();
    for_each_interleaving(txns, |order| {
        stats.interleavings += 1;
        let s = derive_schedule(Arc::clone(txns), order.to_vec(), alloc)
            .expect("enumerated interleavings are valid");
        if allowed_under(&s, alloc) {
            stats.allowed += 1;
            if is_conflict_serializable(&s) {
                stats.serializable += 1;
            }
        }
        true
    });
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm1::is_robust;
    use mvisolation::IsolationLevel;
    use mvmodel::TxnSetBuilder;

    fn write_skew() -> Arc<TransactionSet> {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).read(y).write(x).finish();
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn oracle_matches_algorithm_on_write_skew() {
        let txns = write_skew();
        for lvl in IsolationLevel::ALL {
            let a = Allocation::uniform(&txns, lvl);
            assert_eq!(
                oracle_is_robust(&txns, &a),
                is_robust(&txns, &a).robust(),
                "disagreement at {lvl}"
            );
        }
    }

    #[test]
    fn oracle_counterexample_is_verified() {
        let txns = write_skew();
        let si = Allocation::uniform_si(&txns);
        let s = oracle_counterexample(&txns, &si).expect("write skew breaks SI");
        assert!(allowed_under(&s, &si));
        assert!(!is_conflict_serializable(&s));
    }

    #[test]
    fn oracle_stats_totals() {
        let txns = write_skew();
        let si = Allocation::uniform_si(&txns);
        let stats = oracle_stats(&txns, &si);
        // Two 3-op sequences: C(6, 3) = 20 interleavings.
        assert_eq!(stats.interleavings, 20);
        assert!(stats.allowed > 0);
        assert!(stats.allowed <= stats.interleavings);
        assert!(
            stats.serializable < stats.allowed,
            "some allowed schedule is non-serializable"
        );
    }

    #[test]
    fn oracle_stats_all_serializable_when_robust() {
        let txns = write_skew();
        let ssi = Allocation::uniform_ssi(&txns);
        let stats = oracle_stats(&txns, &ssi);
        assert_eq!(stats.allowed, stats.serializable, "SSI workload is robust");
        assert!(oracle_is_robust(&txns, &ssi));
    }

    #[test]
    fn oracle_on_mixed_allocations() {
        // Lost update: robust at SI, not at RC; mixing one RC breaks it.
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        b.txn(1).read(x).write(x).finish();
        b.txn(2).read(x).write(x).finish();
        let txns = Arc::new(b.build().unwrap());
        for alloc_str in ["T1=SI T2=SI", "T1=RC T2=SI", "T1=SI T2=RC", "T1=RC T2=RC"] {
            let a = Allocation::parse(alloc_str).unwrap();
            assert_eq!(
                oracle_is_robust(&txns, &a),
                is_robust(&txns, &a).robust(),
                "disagreement at {alloc_str}"
            );
        }
        assert!(oracle_is_robust(
            &txns,
            &Allocation::parse("T1=SI T2=SI").unwrap()
        ));
        assert!(!oracle_is_robust(
            &txns,
            &Allocation::parse("T1=RC T2=SI").unwrap()
        ));
    }
}
