//! Algorithm 1: deciding robustness against a (mixed) allocation.
//!
//! The procedure searches for a multiversion split schedule
//! (Definition 3.1). By Theorem 3.2 one exists iff the workload is not
//! robust; by Theorem 3.3 the search runs in time
//! `O(|𝒯|³ · max{|𝒯|³, k²ℓ², ℓ⁶})`.
//!
//! Rather than enumerating quadruple sequences (exponentially many), the
//! algorithm iterates over triples `(T₁, T₂, T_m)`, answers the chain
//! existence query with the `mixed-iso-graph` reachability structure
//! ([`crate::conflict_index::IsoReach`]), and then searches operations
//! `b₁, a₁ ∈ T₁`, `a₂ ∈ T₂`, `b_m ∈ T_m` satisfying conditions (2)–(8).

use crate::conflict_index::{some_conflicting_pair, ConflictIndex, IsoReach};
use crate::split_schedule::SplitSpec;
use mvisolation::{Allocation, IsolationLevel};
use mvmodel::{OpAddr, TransactionSet, TxnId};

/// The outcome of a robustness check.
#[derive(Clone, Debug)]
pub struct RobustnessReport {
    counterexample: Option<SplitSpec>,
}

impl RobustnessReport {
    /// Whether the workload is robust against the allocation.
    pub fn robust(&self) -> bool {
        self.counterexample.is_none()
    }

    /// The split-schedule specification witnessing non-robustness, if any.
    pub fn counterexample(&self) -> Option<&SplitSpec> {
        self.counterexample.as_ref()
    }

    /// Consumes the report, yielding the counterexample.
    pub fn into_counterexample(self) -> Option<SplitSpec> {
        self.counterexample
    }
}

/// Decides whether `txns` is robust against `alloc` (Definition 2.7),
/// returning a counterexample specification when it is not.
///
/// Panics when `alloc` does not cover every transaction.
pub fn is_robust(txns: &TransactionSet, alloc: &Allocation) -> RobustnessReport {
    RobustnessChecker::new(txns).is_robust(alloc)
}

/// The search underlying [`is_robust`]: finds a valid [`SplitSpec`] or
/// proves none exists.
pub fn find_counterexample(txns: &TransactionSet, alloc: &Allocation) -> Option<SplitSpec> {
    RobustnessChecker::new(txns).find_counterexample(alloc)
}

/// A reusable robustness checker: precomputes the transaction-level
/// conflict matrices once and answers [`RobustnessChecker::is_robust`]
/// for many allocations over the *same* transaction set — the access
/// pattern of Algorithm 2, which probes ~2·|𝒯| allocations.
pub struct RobustnessChecker<'a> {
    txns: &'a TransactionSet,
    index: ConflictIndex,
}

impl<'a> RobustnessChecker<'a> {
    pub fn new(txns: &'a TransactionSet) -> Self {
        RobustnessChecker { txns, index: ConflictIndex::new(txns) }
    }

    /// As the free function [`is_robust`], reusing the precomputed index.
    pub fn is_robust(&self, alloc: &Allocation) -> RobustnessReport {
        assert!(
            alloc.covers(self.txns),
            "allocation must cover every transaction of the set"
        );
        RobustnessReport { counterexample: self.find_counterexample(alloc) }
    }

    /// As the free function [`find_counterexample`].
    pub fn find_counterexample(&self, alloc: &Allocation) -> Option<SplitSpec> {
        find_counterexample_with(self.txns, &self.index, alloc)
    }
}

fn find_counterexample_with(
    txns: &TransactionSet,
    index: &ConflictIndex,
    alloc: &Allocation,
) -> Option<SplitSpec> {
    let n = txns.len();
    if n < 2 {
        return None;
    }
    let ssi = IsolationLevel::SSI;

    for t1 in txns.iter() {
        let t1_id = t1.id();
        let i1 = txns.index_of(t1_id);
        let l1 = alloc.level(t1_id);
        // T1 must have at least one read (b₁ is rw-conflicting with a₂).
        if t1.reads().next().is_none() {
            continue;
        }
        let reach = IsoReach::new(txns, index, t1_id);
        for t2 in txns.iter() {
            let t2_id = t2.id();
            let i2 = txns.index_of(t2_id);
            if t2_id == t1_id || !index.any(i1, i2) {
                continue;
            }
            let l2 = alloc.level(t2_id);
            // Condition (7): T1, T2 both SSI with a W(T1)-R(T2) conflict
            // can never participate.
            if l1 == ssi && l2 == ssi && index.wr(i1, i2) {
                continue;
            }
            for tm in txns.iter() {
                let tm_id = tm.id();
                let im = txns.index_of(tm_id);
                if tm_id == t1_id || !index.any(im, i1) {
                    continue;
                }
                let lm = alloc.level(tm_id);
                // Condition (6).
                if l1 == ssi && l2 == ssi && lm == ssi {
                    continue;
                }
                // Condition (8): no read of T1 rw-conflicting with a write
                // of Tm ⇔ no write of Tm wr-conflicting with a read of T1.
                if l1 == ssi && lm == ssi && index.wr(im, i1) {
                    continue;
                }
                if !reach.reachable(t2_id, tm_id) {
                    continue;
                }
                if let Some(spec) = find_operations(txns, alloc, &reach, t1_id, t2_id, tm_id) {
                    debug_assert_eq!(spec.check(txns, alloc), Ok(()));
                    return Some(spec);
                }
            }
        }
    }
    None
}

/// Searches operations `b₁, a₁ ∈ T₁`, `a₂ ∈ T₂`, `b_m ∈ T_m` satisfying
/// conditions (2)–(5) of Definition 3.1 for a fixed reachable triple, and
/// assembles the full spec (reconstructing the middle chain).
fn find_operations(
    txns: &TransactionSet,
    alloc: &Allocation,
    reach: &IsoReach<'_>,
    t1_id: TxnId,
    t2_id: TxnId,
    tm_id: TxnId,
) -> Option<SplitSpec> {
    let t1 = txns.txn(t1_id);
    let t2 = txns.txn(t2_id);
    let tm = txns.txn(tm_id);
    let l1 = alloc.level(t1_id);

    for (b1, b1_object) in t1.reads() {
        // Condition (4): a₂ is T2's write on b₁'s object.
        let Some(a2_idx) = t2.write_of(b1_object) else { continue };
        let a2 = OpAddr::new(t2_id, a2_idx);
        // Conditions (2)+(3): Algorithm 1's ww-conflict-free(b₁,T₁,T₂,T_m).
        let ww_free = t1.writes().all(|(c1, object)| {
            let applies = c1.idx <= b1.idx || l1 >= IsolationLevel::SI;
            !applies
                || (t2.write_of(object).is_none() && tm.write_of(object).is_none())
        });
        if !ww_free {
            continue;
        }
        // Condition (5): find (b_m, a₁) with b_m conflicting with a₁ and
        // (b_m rw-conflicting a₁, or 𝒜(T1)=RC with b₁ <_{T1} a₁).
        for (idx, op) in t1.ops().iter().enumerate() {
            let a1 = OpAddr::new(t1_id, idx as u16);
            let rc_postfix = l1 == IsolationLevel::RC && b1.idx < a1.idx;
            // Candidate b_m operations in T_m conflicting with a₁.
            let mut candidates: [Option<OpAddr>; 2] = [None, None];
            if op.is_write() {
                // rw: a read of T_m on the object.
                candidates[0] = tm.read_of(op.object).map(|i| OpAddr::new(tm_id, i));
                // ww (only usable via the RC-postfix disjunct).
                if rc_postfix {
                    candidates[1] = tm.write_of(op.object).map(|i| OpAddr::new(tm_id, i));
                }
            } else if rc_postfix {
                // wr: a write of T_m observed by T1's postfix read.
                candidates[0] = tm.write_of(op.object).map(|i| OpAddr::new(tm_id, i));
            }
            // Note: a ww pair (b_m, a₁) never contradicts ww_free — it is
            // only offered when rc_postfix holds, i.e. a₁ lies in T1's
            // postfix and 𝒜(T1) = RC, which is exactly the case
            // ww-conflict-free does not cover.
            if let Some(bm) = candidates.into_iter().flatten().next() {
                let chain = reach
                    .chain(t2_id, tm_id)
                    .expect("reachable(t2, tm) held, chain must exist");
                let links = build_links(txns, t1_id, b1, a2, a1, bm, &chain);
                return Some(SplitSpec { t1: t1_id, b1, a1, chain, links });
            }
        }
    }
    None
}

/// Assembles the quadruple links along `C`: `(b₁, a₂)`, one conflicting
/// pair per consecutive chain pair, then `(b_m, a₁)`.
fn build_links(
    txns: &TransactionSet,
    _t1: TxnId,
    b1: OpAddr,
    a2: OpAddr,
    a1: OpAddr,
    bm: OpAddr,
    chain: &[TxnId],
) -> Vec<(OpAddr, OpAddr)> {
    let mut links = Vec::with_capacity(chain.len() + 1);
    links.push((b1, a2));
    for w in chain.windows(2) {
        let (b, a) = some_conflicting_pair(txns, w[0], w[1])
            .expect("consecutive chain transactions conflict");
        links.push((b, a));
    }
    links.push((bm, a1));
    links
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvmodel::TxnSetBuilder;

    fn write_skew() -> TransactionSet {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).read(y).write(x).finish();
        b.build().unwrap()
    }

    #[test]
    fn write_skew_not_robust_against_si() {
        let txns = write_skew();
        let si = Allocation::uniform_si(&txns);
        let report = is_robust(&txns, &si);
        assert!(!report.robust());
        let spec = report.counterexample().unwrap();
        spec.check(&txns, &si).unwrap();
        assert!(is_robust(&txns, &Allocation::uniform_rc(&txns)).counterexample().is_some());
    }

    #[test]
    fn write_skew_robust_against_ssi() {
        let txns = write_skew();
        let ssi = Allocation::uniform_ssi(&txns);
        assert!(is_robust(&txns, &ssi).robust());
        // One SSI transaction is not enough here: the dangerous structure
        // filter only removes structures whose three txns are all SSI.
        let mixed = Allocation::parse("T1=SSI T2=SI").unwrap();
        assert!(!is_robust(&txns, &mixed).robust());
    }

    #[test]
    fn disjoint_txns_robust_under_anything() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).write(x).finish();
        b.txn(2).read(y).write(y).finish();
        let txns = b.build().unwrap();
        for lvl in IsolationLevel::ALL {
            assert!(is_robust(&txns, &Allocation::uniform(&txns, lvl)).robust());
        }
    }

    #[test]
    fn single_txn_always_robust() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        b.txn(1).read(x).write(x).finish();
        let txns = b.build().unwrap();
        assert!(is_robust(&txns, &Allocation::uniform_rc(&txns)).robust());
    }

    #[test]
    fn lost_update_pair() {
        // T1 = R[x] W[x], T2 = R[x] W[x]: the classic lost update.
        // Under SI both exhibit first-committer-wins (concurrent writes
        // forbidden) — the pair is robust against SI (folklore: SI
        // precludes lost update). Under RC it is not robust.
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        b.txn(1).read(x).write(x).finish();
        b.txn(2).read(x).write(x).finish();
        let txns = b.build().unwrap();
        assert!(is_robust(&txns, &Allocation::uniform_si(&txns)).robust());
        let rc = Allocation::uniform_rc(&txns);
        let report = is_robust(&txns, &rc);
        assert!(!report.robust());
        report.counterexample().unwrap().check(&txns, &rc).unwrap();
        // Mixed: one RC transaction suffices to break robustness.
        let mixed = Allocation::parse("T1=RC T2=SSI").unwrap();
        assert!(!is_robust(&txns, &mixed).robust());
    }

    #[test]
    fn three_txn_cycle_with_interior() {
        // T1 = R[x] W[y]; T2 = W[x] R[p]; T3 = W[p] R[y].
        // Cycle T1 →rw T2 →rw? … T2–T3 via p, T3–T1 via y.
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        let p = b.object("p");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).write(x).read(p).finish();
        b.txn(3).write(p).read(y).finish();
        let txns = b.build().unwrap();
        let si = Allocation::uniform_si(&txns);
        let report = is_robust(&txns, &si);
        assert!(!report.robust());
        let spec = report.counterexample().unwrap();
        spec.check(&txns, &si).unwrap();
        // All SSI restores robustness.
        assert!(is_robust(&txns, &Allocation::uniform_ssi(&txns)).robust());
    }

    #[test]
    #[should_panic(expected = "allocation must cover")]
    fn uncovered_allocation_panics() {
        let txns = write_skew();
        let partial = Allocation::parse("T1=RC").unwrap();
        let _ = is_robust(&txns, &partial);
    }
}
