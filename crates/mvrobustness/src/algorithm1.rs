//! Algorithm 1: deciding robustness against a (mixed) allocation.
//!
//! The procedure searches for a multiversion split schedule
//! (Definition 3.1). By Theorem 3.2 one exists iff the workload is not
//! robust; by Theorem 3.3 the search runs in time
//! `O(|𝒯|³ · max{|𝒯|³, k²ℓ², ℓ⁶})`.
//!
//! Rather than enumerating quadruple sequences (exponentially many), the
//! algorithm iterates over triples `(T₁, T₂, T_m)`, answers the chain
//! existence query with the `mixed-iso-graph` reachability structure
//! ([`crate::conflict_index::IsoReach`]), and then searches operations
//! `b₁, a₁ ∈ T₁`, `a₂ ∈ T₂`, `b_m ∈ T_m` satisfying conditions (2)–(8).
//!
//! # Engine
//!
//! [`RobustnessChecker`] is the reusable engine behind the free
//! functions and Algorithm 2:
//!
//! - **Cached iso graphs.** `IsoReach` depends only on `(txns, T₁)`,
//!   never on the allocation, so the checker holds one lazily-built
//!   (`OnceLock`) slot per transaction; the ~2·|𝒯| probes of Algorithm 2
//!   each reuse them instead of paying the union-find construction
//!   again. Within a probe, a `T₁`'s structure is only built once some
//!   `(T₂, T_m)` candidate survives the isolation-level filters.
//! - **Bitset candidate iteration.** The `t2`/`tm` loops iterate set
//!   bits of the packed `any(t1, ·)` conflict row, skipping
//!   non-conflicting pairs wholesale.
//! - **Parallel outer search.** With [`RobustnessChecker::with_threads`]
//!   `> 1`, split-transaction candidates are claimed from an atomic
//!   counter by worker threads; a found counterexample stops workers
//!   from claiming later candidates. The returned spec is always the
//!   one the *sequential* search would find (smallest dense `t1`
//!   index), so verdicts and witnesses are deterministic at every
//!   thread count.
//!
//! The pre-engine implementation is retained in [`crate::reference`] as
//! the ground truth for equivalence tests and before/after benchmarks.

use crate::components::Components;
use crate::conflict_index::{some_conflicting_pair, ConflictIndex, IsoReach};
use crate::split_schedule::SplitSpec;
use mvisolation::{Allocation, IsolationLevel};
use mvmodel::{OpAddr, TransactionSet, TxnId};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// The outcome of a robustness check.
#[derive(Clone, Debug)]
pub struct RobustnessReport {
    counterexample: Option<SplitSpec>,
}

impl RobustnessReport {
    /// Whether the workload is robust against the allocation.
    pub fn robust(&self) -> bool {
        self.counterexample.is_none()
    }

    /// The split-schedule specification witnessing non-robustness, if any.
    pub fn counterexample(&self) -> Option<&SplitSpec> {
        self.counterexample.as_ref()
    }

    /// Consumes the report, yielding the counterexample.
    pub fn into_counterexample(self) -> Option<SplitSpec> {
        self.counterexample
    }
}

/// Decides whether `txns` is robust against `alloc` (Definition 2.7),
/// returning a counterexample specification when it is not.
///
/// Panics when `alloc` does not cover every transaction.
pub fn is_robust(txns: &TransactionSet, alloc: &Allocation) -> RobustnessReport {
    RobustnessChecker::new(txns).is_robust(alloc)
}

/// The search underlying [`is_robust`]: finds a valid [`SplitSpec`] or
/// proves none exists.
pub fn find_counterexample(txns: &TransactionSet, alloc: &Allocation) -> Option<SplitSpec> {
    RobustnessChecker::new(txns).find_counterexample(alloc)
}

/// Monotone counters describing the work a [`RobustnessChecker`] has
/// performed (atomics: updated from search threads without locking).
#[derive(Debug, Default)]
pub struct SearchStats {
    /// Full Algorithm 1 searches executed.
    pub probes: AtomicU64,
    /// `IsoReach` structures constructed (cache misses; cached probes
    /// reuse earlier builds).
    pub iso_builds: AtomicU64,
    /// Conflict-graph components actually searched (sharded paths only;
    /// skipped singletons and pruned components are not counted).
    pub components_checked: AtomicU64,
    /// Components answered from a content-addressed cache without any
    /// search (bumped by [`crate::Allocator`]'s component cache).
    pub components_cached: AtomicU64,
    /// `u64` words processed by the bit-parallel closure kernels:
    /// iso-graph construction sweeps plus one adjacency-row AND per
    /// reachability query.
    pub kernel_row_ops: AtomicU64,
}

impl SearchStats {
    pub fn probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    pub fn iso_builds(&self) -> u64 {
        self.iso_builds.load(Ordering::Relaxed)
    }

    pub fn components_checked(&self) -> u64 {
        self.components_checked.load(Ordering::Relaxed)
    }

    pub fn components_cached(&self) -> u64 {
        self.components_cached.load(Ordering::Relaxed)
    }

    pub fn kernel_row_ops(&self) -> u64 {
        self.kernel_row_ops.load(Ordering::Relaxed)
    }
}

/// A reusable robustness engine: precomputes the transaction-level
/// conflict matrices once, caches per-`T₁` iso-graph reachability across
/// probes, and optionally parallelizes the outer search — the access
/// pattern of Algorithm 2, which probes ~2·|𝒯| allocations over the
/// *same* transaction set.
pub struct RobustnessChecker<'a> {
    txns: &'a TransactionSet,
    index: ConflictIndex,
    /// Lazily-built per-split-transaction reachability, keyed by dense
    /// index. Allocation-independent, hence shared across probes and
    /// threads. When sharding is on, each structure is scoped to its
    /// split transaction's conflict component.
    iso: Vec<OnceLock<IsoReach>>,
    /// Conflict-graph decomposition, built on first sharded search (or
    /// on [`RobustnessChecker::components`]).
    comps: OnceLock<Components>,
    use_components: bool,
    threads: usize,
    stats: SearchStats,
}

impl<'a> RobustnessChecker<'a> {
    pub fn new(txns: &'a TransactionSet) -> Self {
        let iso = (0..txns.len()).map(|_| OnceLock::new()).collect();
        RobustnessChecker {
            txns,
            index: ConflictIndex::new(txns),
            iso,
            comps: OnceLock::new(),
            use_components: true,
            threads: 1,
            stats: SearchStats::default(),
        }
    }

    /// Sets the number of worker threads for the outer `T₁` search
    /// (clamped to ≥ 1). Results are identical at every thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables or disables component sharding (on by default). With
    /// sharding off, the outer search scans every `T₁` candidate against
    /// the whole set — the pre-sharding engine, kept as an escape hatch
    /// (`--no-components`) and an equivalence baseline. Results are
    /// identical either way.
    pub fn with_components(mut self, on: bool) -> Self {
        self.use_components = on;
        self
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether component sharding is enabled.
    pub fn components_enabled(&self) -> bool {
        self.use_components
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> &SearchStats {
        &self.stats
    }

    /// The precomputed conflict matrices.
    pub fn conflict_index(&self) -> &ConflictIndex {
        &self.index
    }

    /// The conflict-graph decomposition (built on first use).
    pub fn components(&self) -> &Components {
        self.comps
            .get_or_init(|| Components::new(self.txns, &self.index))
    }

    /// As the free function [`is_robust`], reusing the precomputed index.
    pub fn is_robust(&self, alloc: &Allocation) -> RobustnessReport {
        assert!(
            alloc.covers(self.txns),
            "allocation must cover every transaction of the set"
        );
        RobustnessReport {
            counterexample: self.find_counterexample(alloc),
        }
    }

    /// As the free function [`find_counterexample`].
    pub fn find_counterexample(&self, alloc: &Allocation) -> Option<SplitSpec> {
        self.stats.probes.fetch_add(1, Ordering::Relaxed);
        let n = self.txns.len();
        if n < 2 {
            return None;
        }
        if self.use_components && self.components().count() > 1 {
            return if self.threads == 1 {
                self.find_sharded_sequential(alloc)
            } else {
                self.find_sharded_parallel(alloc)
            };
        }
        if self.threads == 1 || n < 8 {
            (0..n).find_map(|i1| self.probe_t1(alloc, i1))
        } else {
            self.find_parallel(alloc)
        }
    }

    /// Sharded sequential search: probe each component's `T₁` candidates
    /// (ascending) until its first hit, keeping the globally smallest
    /// hit. Singleton components cannot host a counterexample (a split
    /// transaction needs conflicting `T₂`/`T_m`) and are skipped;
    /// components whose smallest member exceeds the best hit so far are
    /// pruned.
    ///
    /// The unsharded search returns the spec of the smallest dense `t1`
    /// index; every index below the returned minimum is probed here too
    /// (its component was searched up to that bound), so the result is
    /// bit-identical to the unsharded engine.
    fn find_sharded_sequential(&self, alloc: &Allocation) -> Option<SplitSpec> {
        let comps = self.components();
        let mut best: Option<(usize, SplitSpec)> = None;
        for (_, members) in comps.iter() {
            if members.len() < 2 {
                continue;
            }
            let bound = best.as_ref().map_or(usize::MAX, |(i, _)| *i);
            if members[0] > bound {
                // Components are in ascending first-member order: no
                // later component can beat `bound` either.
                break;
            }
            self.stats
                .components_checked
                .fetch_add(1, Ordering::Relaxed);
            for &i1 in members {
                if i1 > bound {
                    break;
                }
                if let Some(spec) = self.probe_t1(alloc, i1) {
                    best = Some((i1, spec));
                    break;
                }
            }
        }
        best.map(|(_, spec)| spec)
    }

    /// Sharded parallel search: workers claim whole components from a
    /// largest-first schedule (the biggest component is the critical
    /// path, so it starts immediately); within a component, `T₁`
    /// candidates are probed ascending. `best_i1` carries the smallest
    /// hit so far for cross-component pruning.
    ///
    /// Determinism: a component is only skipped when *all* its members
    /// exceed the current best hit, and within a component the scan only
    /// stops past that bound — so the final minimum-index candidate is
    /// always fully probed and the returned spec equals the sequential
    /// (and unsharded) result.
    fn find_sharded_parallel(&self, alloc: &Allocation) -> Option<SplitSpec> {
        let comps = self.components();
        let order = comps.largest_first();
        // Largest-first also puts every multi-member component before the
        // singleton tail, which workers then skip in O(1) each.
        let next = AtomicUsize::new(0);
        let best_i1 = AtomicUsize::new(usize::MAX);
        let best: Mutex<Option<(usize, SplitSpec)>> = Mutex::new(None);
        let workers = self.threads.min(order.len()).max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= order.len() {
                        break;
                    }
                    let members = comps.members(order[k]);
                    if members.len() < 2 || members[0] > best_i1.load(Ordering::Relaxed) {
                        continue;
                    }
                    self.stats
                        .components_checked
                        .fetch_add(1, Ordering::Relaxed);
                    for &i1 in members {
                        if i1 > best_i1.load(Ordering::Relaxed) {
                            break;
                        }
                        if let Some(spec) = self.probe_t1(alloc, i1) {
                            best_i1.fetch_min(i1, Ordering::Relaxed);
                            let mut slot = best.lock().expect("no panics while holding lock");
                            if slot.as_ref().is_none_or(|(j, _)| i1 < *j) {
                                *slot = Some((i1, spec));
                            }
                            break;
                        }
                    }
                });
            }
        });
        let found = best.into_inner().expect("search threads joined");
        found.map(|(_, spec)| spec)
    }

    /// Parallel outer search. Workers claim ascending `t1` candidates
    /// from `next`; `found_upto` records the smallest candidate index
    /// with a counterexample so far, letting workers stop claiming
    /// candidates that can no longer win.
    ///
    /// Determinism: indices are claimed in ascending order, and a
    /// candidate `i < found_upto` is never skipped — so every index
    /// below the final minimum was fully (and fruitlessly) probed, and
    /// the minimum-index spec is exactly the sequential result.
    fn find_parallel(&self, alloc: &Allocation) -> Option<SplitSpec> {
        let n = self.txns.len();
        let workers = self.threads.min(n);
        let next = AtomicUsize::new(0);
        let found_upto = AtomicUsize::new(usize::MAX);
        let best: Mutex<Option<(usize, SplitSpec)>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i1 = next.fetch_add(1, Ordering::Relaxed);
                    if i1 >= n || i1 > found_upto.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Some(spec) = self.probe_t1(alloc, i1) {
                        found_upto.fetch_min(i1, Ordering::Relaxed);
                        let mut slot = best.lock().expect("no panics while holding lock");
                        if slot.as_ref().is_none_or(|(j, _)| i1 < *j) {
                            *slot = Some((i1, spec));
                        }
                    }
                });
            }
        });
        let found = best.into_inner().expect("search threads joined");
        found.map(|(_, spec)| spec)
    }

    /// The per-split-transaction reachability structure, built on first
    /// use and cached for the checker's lifetime. With sharding on, the
    /// structure is scoped to `i1`'s conflict component — every `T₂`,
    /// `T_m` and chain interior the search can query lies there, so
    /// answers are unchanged while construction shrinks to the
    /// component.
    fn iso_for(&self, i1: usize) -> &IsoReach {
        self.iso[i1].get_or_init(|| {
            self.stats.iso_builds.fetch_add(1, Ordering::Relaxed);
            let id = self.txns.by_index(i1).id();
            let reach = if self.use_components {
                let comps = self.components();
                let scope = comps.members(comps.comp_of_index(i1));
                IsoReach::new_scoped(self.txns, &self.index, id, Some(scope))
            } else {
                IsoReach::new(self.txns, &self.index, id)
            };
            self.stats
                .kernel_row_ops
                .fetch_add(reach.build_row_ops(), Ordering::Relaxed);
            reach
        })
    }

    /// Searches all `(T₂, T_m)` candidates for a fixed split transaction
    /// (dense index `i1`). Candidate loops iterate set bits of the
    /// `any(i1, ·)` conflict row; `IsoReach` is only touched — and hence
    /// only built — once a candidate pair survives the level filters.
    fn probe_t1(&self, alloc: &Allocation, i1: usize) -> Option<SplitSpec> {
        // Query-side kernel accounting is tallied locally and flushed in
        // one atomic add per probe (hot loop, shared counter).
        let mut row_ops = 0u64;
        let spec = self.probe_t1_inner(alloc, i1, &mut row_ops);
        if row_ops > 0 {
            self.stats
                .kernel_row_ops
                .fetch_add(row_ops, Ordering::Relaxed);
        }
        spec
    }

    fn probe_t1_inner(
        &self,
        alloc: &Allocation,
        i1: usize,
        row_ops: &mut u64,
    ) -> Option<SplitSpec> {
        let txns = self.txns;
        let index = &self.index;
        let ssi = IsolationLevel::SSI;
        let t1 = txns.by_index(i1);
        let t1_id = t1.id();
        let l1 = alloc.level(t1_id);
        // T1 must have at least one read (b₁ is rw-conflicting with a₂).
        t1.reads().next()?;
        let mut reach: Option<&IsoReach> = None;
        // `any` is symmetric, so the same row yields the `t2` candidates
        // (any(i1, i2)) and the `tm` candidates (any(im, i1)).
        for i2 in index.conflicting_with(i1) {
            let t2_id = txns.by_index(i2).id();
            let l2 = alloc.level(t2_id);
            // Condition (7): T1, T2 both SSI with a W(T1)-R(T2) conflict
            // can never participate.
            if l1 == ssi && l2 == ssi && index.wr(i1, i2) {
                continue;
            }
            for im in index.conflicting_with(i1) {
                let tm_id = txns.by_index(im).id();
                let lm = alloc.level(tm_id);
                // Condition (6).
                if l1 == ssi && l2 == ssi && lm == ssi {
                    continue;
                }
                // Condition (8): no read of T1 rw-conflicting with a write
                // of Tm ⇔ no write of Tm wr-conflicting with a read of T1.
                if l1 == ssi && lm == ssi && index.wr(im, i1) {
                    continue;
                }
                let reach = *reach.get_or_insert_with(|| self.iso_for(i1));
                *row_ops += reach.stride_words();
                if !reach.reachable_idx(index, i2, im) {
                    continue;
                }
                if let Some(spec) = find_operations(txns, index, alloc, reach, t1_id, t2_id, tm_id)
                {
                    debug_assert_eq!(spec.check(txns, alloc), Ok(()));
                    return Some(spec);
                }
            }
        }
        None
    }
}

/// Searches operations `b₁, a₁ ∈ T₁`, `a₂ ∈ T₂`, `b_m ∈ T_m` satisfying
/// conditions (2)–(5) of Definition 3.1 for a fixed reachable triple, and
/// assembles the full spec (reconstructing the middle chain).
///
/// Shared by the engine and the [`crate::reference`] implementation.
pub(crate) fn find_operations(
    txns: &TransactionSet,
    index: &ConflictIndex,
    alloc: &Allocation,
    reach: &IsoReach,
    t1_id: TxnId,
    t2_id: TxnId,
    tm_id: TxnId,
) -> Option<SplitSpec> {
    let t1 = txns.txn(t1_id);
    let t2 = txns.txn(t2_id);
    let tm = txns.txn(tm_id);
    let l1 = alloc.level(t1_id);

    for (b1, b1_object) in t1.reads() {
        // Condition (4): a₂ is T2's write on b₁'s object.
        let Some(a2_idx) = t2.write_of(b1_object) else {
            continue;
        };
        let a2 = OpAddr::new(t2_id, a2_idx);
        // Conditions (2)+(3): Algorithm 1's ww-conflict-free(b₁,T₁,T₂,T_m).
        let ww_free = t1.writes().all(|(c1, object)| {
            let applies = c1.idx <= b1.idx || l1 >= IsolationLevel::SI;
            !applies || (t2.write_of(object).is_none() && tm.write_of(object).is_none())
        });
        if !ww_free {
            continue;
        }
        // Condition (5): find (b_m, a₁) with b_m conflicting with a₁ and
        // (b_m rw-conflicting a₁, or 𝒜(T1)=RC with b₁ <_{T1} a₁).
        for (idx, op) in t1.ops().iter().enumerate() {
            let a1 = OpAddr::new(t1_id, idx as u16);
            let rc_postfix = l1 == IsolationLevel::RC && b1.idx < a1.idx;
            // Candidate b_m operations in T_m conflicting with a₁.
            let mut candidates: [Option<OpAddr>; 2] = [None, None];
            if op.is_write() {
                // rw: a read of T_m on the object.
                candidates[0] = tm.read_of(op.object).map(|i| OpAddr::new(tm_id, i));
                // ww (only usable via the RC-postfix disjunct).
                if rc_postfix {
                    candidates[1] = tm.write_of(op.object).map(|i| OpAddr::new(tm_id, i));
                }
            } else if rc_postfix {
                // wr: a write of T_m observed by T1's postfix read.
                candidates[0] = tm.write_of(op.object).map(|i| OpAddr::new(tm_id, i));
            }
            // Note: a ww pair (b_m, a₁) never contradicts ww_free — it is
            // only offered when rc_postfix holds, i.e. a₁ lies in T1's
            // postfix and 𝒜(T1) = RC, which is exactly the case
            // ww-conflict-free does not cover.
            if let Some(bm) = candidates.into_iter().flatten().next() {
                let chain = reach
                    .chain(txns, index, t2_id, tm_id)
                    .expect("reachable(t2, tm) held, chain must exist");
                let links = build_links(txns, t1_id, b1, a2, a1, bm, &chain);
                return Some(SplitSpec {
                    t1: t1_id,
                    b1,
                    a1,
                    chain,
                    links,
                });
            }
        }
    }
    None
}

/// Assembles the quadruple links along `C`: `(b₁, a₂)`, one conflicting
/// pair per consecutive chain pair, then `(b_m, a₁)`.
fn build_links(
    txns: &TransactionSet,
    _t1: TxnId,
    b1: OpAddr,
    a2: OpAddr,
    a1: OpAddr,
    bm: OpAddr,
    chain: &[TxnId],
) -> Vec<(OpAddr, OpAddr)> {
    let mut links = Vec::with_capacity(chain.len() + 1);
    links.push((b1, a2));
    for w in chain.windows(2) {
        let (b, a) = some_conflicting_pair(txns, w[0], w[1])
            .expect("consecutive chain transactions conflict");
        links.push((b, a));
    }
    links.push((bm, a1));
    links
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvmodel::TxnSetBuilder;

    fn write_skew() -> TransactionSet {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).read(y).write(x).finish();
        b.build().unwrap()
    }

    #[test]
    fn write_skew_not_robust_against_si() {
        let txns = write_skew();
        let si = Allocation::uniform_si(&txns);
        let report = is_robust(&txns, &si);
        assert!(!report.robust());
        let spec = report.counterexample().unwrap();
        spec.check(&txns, &si).unwrap();
        assert!(is_robust(&txns, &Allocation::uniform_rc(&txns))
            .counterexample()
            .is_some());
    }

    #[test]
    fn write_skew_robust_against_ssi() {
        let txns = write_skew();
        let ssi = Allocation::uniform_ssi(&txns);
        assert!(is_robust(&txns, &ssi).robust());
        // One SSI transaction is not enough here: the dangerous structure
        // filter only removes structures whose three txns are all SSI.
        let mixed = Allocation::parse("T1=SSI T2=SI").unwrap();
        assert!(!is_robust(&txns, &mixed).robust());
    }

    #[test]
    fn disjoint_txns_robust_under_anything() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).write(x).finish();
        b.txn(2).read(y).write(y).finish();
        let txns = b.build().unwrap();
        for lvl in IsolationLevel::ALL {
            assert!(is_robust(&txns, &Allocation::uniform(&txns, lvl)).robust());
        }
    }

    #[test]
    fn single_txn_always_robust() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        b.txn(1).read(x).write(x).finish();
        let txns = b.build().unwrap();
        assert!(is_robust(&txns, &Allocation::uniform_rc(&txns)).robust());
    }

    #[test]
    fn lost_update_pair() {
        // T1 = R[x] W[x], T2 = R[x] W[x]: the classic lost update.
        // Under SI both exhibit first-committer-wins (concurrent writes
        // forbidden) — the pair is robust against SI (folklore: SI
        // precludes lost update). Under RC it is not robust.
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        b.txn(1).read(x).write(x).finish();
        b.txn(2).read(x).write(x).finish();
        let txns = b.build().unwrap();
        assert!(is_robust(&txns, &Allocation::uniform_si(&txns)).robust());
        let rc = Allocation::uniform_rc(&txns);
        let report = is_robust(&txns, &rc);
        assert!(!report.robust());
        report.counterexample().unwrap().check(&txns, &rc).unwrap();
        // Mixed: one RC transaction suffices to break robustness.
        let mixed = Allocation::parse("T1=RC T2=SSI").unwrap();
        assert!(!is_robust(&txns, &mixed).robust());
    }

    #[test]
    fn three_txn_cycle_with_interior() {
        // T1 = R[x] W[y]; T2 = W[x] R[p]; T3 = W[p] R[y].
        // Cycle T1 →rw T2 →rw? … T2–T3 via p, T3–T1 via y.
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        let p = b.object("p");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).write(x).read(p).finish();
        b.txn(3).write(p).read(y).finish();
        let txns = b.build().unwrap();
        let si = Allocation::uniform_si(&txns);
        let report = is_robust(&txns, &si);
        assert!(!report.robust());
        let spec = report.counterexample().unwrap();
        spec.check(&txns, &si).unwrap();
        // All SSI restores robustness.
        assert!(is_robust(&txns, &Allocation::uniform_ssi(&txns)).robust());
    }

    #[test]
    #[should_panic(expected = "allocation must cover")]
    fn uncovered_allocation_panics() {
        let txns = write_skew();
        let partial = Allocation::parse("T1=RC").unwrap();
        let _ = is_robust(&txns, &partial);
    }

    #[test]
    fn checker_reuses_iso_graphs_across_probes() {
        let txns = write_skew();
        let checker = RobustnessChecker::new(&txns);
        let si = Allocation::uniform_si(&txns);
        let rc = Allocation::uniform_rc(&txns);
        assert!(!checker.is_robust(&si).robust());
        assert!(!checker.is_robust(&rc).robust());
        assert!(checker.is_robust(&Allocation::uniform_ssi(&txns)).robust());
        assert_eq!(checker.stats().probes(), 3);
        // Two transactions → at most two IsoReach builds total, shared by
        // the three probes.
        assert!(checker.stats().iso_builds() <= 2);
    }

    #[test]
    fn parallel_verdicts_match_sequential() {
        let txns = write_skew();
        for threads in [1, 2, 4] {
            let checker = RobustnessChecker::new(&txns).with_threads(threads);
            assert_eq!(checker.threads(), threads);
            let spec = checker.find_counterexample(&Allocation::uniform_si(&txns));
            let seq =
                RobustnessChecker::new(&txns).find_counterexample(&Allocation::uniform_si(&txns));
            assert_eq!(spec, seq);
        }
    }

    /// Three write-skew clusters plus isolated singletons: the sharded
    /// search (any thread count) returns the identical spec as the
    /// unsharded engine, and the component counters advance.
    #[test]
    fn sharded_search_matches_unsharded() {
        let mut b = TxnSetBuilder::new();
        for k in 0..3u32 {
            let x = b.object(&format!("x{k}"));
            let y = b.object(&format!("y{k}"));
            b.txn(10 * k + 1).read(x).write(y).finish();
            b.txn(10 * k + 2).read(y).write(x).finish();
        }
        let z = b.object("z");
        b.txn(40).read(z).finish();
        let w = b.object("w");
        b.txn(41).write(w).finish();
        let txns = b.build().unwrap();
        for alloc in [
            Allocation::uniform_si(&txns),
            Allocation::uniform_rc(&txns),
            Allocation::uniform_ssi(&txns),
        ] {
            let unsharded = RobustnessChecker::new(&txns).with_components(false);
            assert!(!unsharded.components_enabled());
            let expected = unsharded.find_counterexample(&alloc);
            for threads in [1, 2, 4] {
                let sharded = RobustnessChecker::new(&txns).with_threads(threads);
                assert_eq!(sharded.find_counterexample(&alloc), expected);
                if expected.is_some() {
                    assert!(sharded.stats().components_checked() >= 1);
                }
            }
        }
        // Kernel accounting: a non-robust probe walks adjacency rows.
        let sharded = RobustnessChecker::new(&txns);
        assert!(sharded
            .find_counterexample(&Allocation::uniform_si(&txns))
            .is_some());
        assert!(sharded.stats().kernel_row_ops() > 0);
        assert_eq!(sharded.components().count(), 5);
        assert_eq!(sharded.components().largest(), 2);
    }

    /// The spec returned by the sharded engine is the minimum-`t1` spec
    /// even when an *earlier-probed* (larger) component also contains a
    /// counterexample at a higher dense index.
    #[test]
    fn sharded_search_returns_minimum_t1_spec() {
        // Cluster A = {T5, T6} (write skew, higher ids), cluster B =
        // {T1, T2, T3} (three-way chain, lower ids, larger component).
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        let p = b.object("p");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).write(x).read(p).finish();
        b.txn(3).write(p).read(y).finish();
        let u = b.object("u");
        let v = b.object("v");
        b.txn(5).read(u).write(v).finish();
        b.txn(6).read(v).write(u).finish();
        let txns = b.build().unwrap();
        let si = Allocation::uniform_si(&txns);
        let expected = RobustnessChecker::new(&txns)
            .with_components(false)
            .find_counterexample(&si)
            .expect("both clusters break under SI");
        for threads in [1, 3] {
            let got = RobustnessChecker::new(&txns)
                .with_threads(threads)
                .find_counterexample(&si)
                .unwrap();
            assert_eq!(got, expected);
            assert_eq!(got.t1, TxnId(1), "minimum-index split transaction");
        }
    }
}
