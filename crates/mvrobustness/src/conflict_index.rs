//! Precomputed transaction-level conflict structure and the paper's
//! `mixed-iso-graph` reachability.
//!
//! The conflict matrices are packed `u64` bitset rows ([`BitMatrix`]),
//! so Algorithm 1 drives its `t2`/`tm` loops by iterating the set bits
//! of `any(t1, ·)` instead of scanning all `n` transactions — on sparse
//! workloads the triple loop skips non-conflicting pairs wholesale.
//!
//! [`IsoReach`] owns its data (no borrows into the transaction set or
//! the index), so [`crate::RobustnessChecker`] can cache one instance
//! per split transaction across the ~2·|𝒯| probes of Algorithm 2 and
//! share them between search threads.
// Dense node indices address several parallel arrays at once here;
// index-style loops are clearer than zipped iterators.
#![allow(clippy::needless_range_loop)]

use mvmodel::{OpAddr, TransactionSet, TxnId};

/// A dense `n × n` boolean matrix packed into `u64` rows.
#[derive(Debug, Clone)]
pub struct BitMatrix {
    n: usize,
    /// Words per row.
    stride: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    pub fn new(n: usize) -> Self {
        let stride = n.div_ceil(64).max(1);
        BitMatrix {
            n,
            stride,
            bits: vec![0; stride * n],
        }
    }

    #[inline]
    pub fn set(&mut self, i: usize, j: usize) {
        debug_assert!(i < self.n && j < self.n);
        self.bits[i * self.stride + j / 64] |= 1u64 << (j % 64);
    }

    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        debug_assert!(i < self.n && j < self.n);
        self.bits[i * self.stride + j / 64] & (1u64 << (j % 64)) != 0
    }

    /// The packed words of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[u64] {
        &self.bits[i * self.stride..(i + 1) * self.stride]
    }

    /// Iterates the set column indices of row `i` in ascending order.
    pub fn iter_row(&self, i: usize) -> SetBits<'_> {
        SetBits::over(self.row(i))
    }
}

/// Iterator over set bit positions of a packed row.
pub struct SetBits<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl<'a> SetBits<'a> {
    /// Iterates the set bit positions of an arbitrary packed word slice
    /// (bit `k` of word `w` is position `64·w + k`).
    pub fn over(words: &'a [u64]) -> Self {
        SetBits {
            words,
            word_idx: 0,
            current: words.first().copied().unwrap_or(0),
        }
    }
}

impl Iterator for SetBits<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * 64 + bit)
    }
}

/// Dense transaction-level conflict matrices over a [`TransactionSet`].
///
/// `any(i, j)` — some operation of `T_i` conflicts with some operation of
/// `T_j` (symmetric). `wr(i, j)` — some *write* of `T_i` is wr-conflicting
/// with some *read* of `T_j` (this is the check Algorithm 1's
/// `wr-conflict-free` performs; note `wr(i, j)` ⇔ "`T_j` has a read
/// rw-conflicting with a write of `T_i`"). `ww(i, j)` — some write of
/// `T_i` ww-conflicts with a write of `T_j` (symmetric).
#[derive(Debug)]
pub struct ConflictIndex {
    n: usize,
    any: BitMatrix,
    wr: BitMatrix,
    ww: BitMatrix,
}

impl ConflictIndex {
    /// Builds the matrices in `O(Σ_object (#writers · #touchers))` time.
    pub fn new(txns: &TransactionSet) -> Self {
        let n = txns.len();
        let mut any = BitMatrix::new(n);
        let mut wr = BitMatrix::new(n);
        let mut ww = BitMatrix::new(n);
        for object in txns.objects() {
            let writers: Vec<usize> = txns
                .writers_of(object)
                .iter()
                .map(|w| txns.index_of(w.txn))
                .collect();
            let readers: Vec<usize> = txns
                .readers_of(object)
                .iter()
                .map(|r| txns.index_of(r.txn))
                .collect();
            for &i in &writers {
                for &j in &writers {
                    if i != j {
                        any.set(i, j);
                        ww.set(i, j);
                    }
                }
                for &j in &readers {
                    if i != j {
                        any.set(i, j);
                        any.set(j, i);
                        wr.set(i, j);
                    }
                }
            }
        }
        ConflictIndex { n, any, wr, ww }
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Whether any operation of the `i`-th transaction conflicts with any
    /// operation of the `j`-th (dense indices).
    #[inline]
    pub fn any(&self, i: usize, j: usize) -> bool {
        self.any.get(i, j)
    }

    /// Whether some write of `i` wr-conflicts with some read of `j`.
    #[inline]
    pub fn wr(&self, i: usize, j: usize) -> bool {
        self.wr.get(i, j)
    }

    /// Whether some write of `i` ww-conflicts with some write of `j`.
    #[inline]
    pub fn ww(&self, i: usize, j: usize) -> bool {
        self.ww.get(i, j)
    }

    /// Iterates the dense indices of transactions conflicting with `i`
    /// (ascending). `any` is symmetric, so this serves both the `t2`
    /// loop (`any(i1, t2)`) and the `tm` loop (`any(tm, i1)`).
    pub fn conflicting_with(&self, i: usize) -> SetBits<'_> {
        self.any.iter_row(i)
    }

    /// The packed `any(i, ·)` row.
    #[inline]
    pub fn any_row(&self, i: usize) -> &[u64] {
        self.any.row(i)
    }
}

/// The paper's `mixed-iso-graph(T₁, 𝒯)` plus reachability support, built
/// for a fixed split transaction `T₁`.
///
/// Nodes are the transactions with **no** operation conflicting with an
/// operation of `T₁`; edges connect conflicting node pairs (the conflict
/// relation is symmetric at transaction level, so the graph is undirected
/// and reachability reduces to connected components).
///
/// For the Algorithm 1 query — is there a sequence of conflicting
/// quadruples from `T₂` to `T_m` whose interior transactions avoid
/// conflicts with `T₁`? — [`IsoReach::reachable`] checks, in order:
/// `T₂ = T_m`; a direct conflict `T₂ ~ T_m`; or a shared component `c`
/// with `T₂ ~ c` and `c ~ T_m`.
///
/// The structure depends only on `(txns, T₁)` — never on an allocation —
/// and owns all of its state, so one instance can be built once and
/// reused across every probe of Algorithm 2 (and shared by threads; the
/// query methods take `&self`). The `txns`/`index` passed to queries
/// must be the ones the structure was built from.
#[derive(Debug)]
pub struct IsoReach {
    /// Dense index of the split transaction.
    t1: usize,
    n_comps: usize,
    /// Flattened bitset per transaction (stride words each): which
    /// components it conflicts with.
    adj_comps: Vec<u64>,
    /// Words per transaction in `adj_comps`.
    stride: usize,
    /// Bitset over dense txn indices: the iso-graph nodes. Lets
    /// [`IsoReach::chain`] run its BFS a whole `u64` word at a time.
    node_words: Vec<u64>,
    /// `u64` words touched while building (union-find sweeps plus
    /// adjacency fills) — the construction half of `kernel_row_ops`.
    build_row_ops: u64,
}

impl IsoReach {
    pub fn new(txns: &TransactionSet, index: &ConflictIndex, t1: TxnId) -> Self {
        Self::new_scoped(txns, index, t1, None)
    }

    /// Builds the mixed-iso-graph for `t1`, optionally restricted to the
    /// dense indices in `scope`.
    ///
    /// When `scope` is the connected component of `t1` in the conflict
    /// graph, every query the search performs is unchanged: iso nodes
    /// outside `t1`'s component have no conflict path to any `t2`/`tm`
    /// (those conflict with `t1`, hence sit in its component), so they
    /// can never appear on a witness chain. Restricting shrinks the
    /// union-find domain and the BFS frontier to the component.
    pub fn new_scoped(
        txns: &TransactionSet,
        index: &ConflictIndex,
        t1: TxnId,
        scope: Option<&[usize]>,
    ) -> Self {
        let n = txns.len();
        let t1 = txns.index_of(t1);
        let words = index.any_row(t1).len();
        let mut row_ops: u64 = 0;

        // Node mask: (scope ∩ ¬conflicting-with-t1) \ {t1}, built a word
        // at a time. The last word of `any` rows has its high bits zero,
        // so the complement must be re-masked to n bits.
        let mut node_words: Vec<u64> = match scope {
            Some(members) => {
                let mut w = vec![0u64; words];
                for &i in members {
                    w[i / 64] |= 1 << (i % 64);
                }
                w
            }
            None => {
                let mut w = vec![u64::MAX; words];
                let rem = n % 64;
                if rem != 0 {
                    w[words - 1] = (1u64 << rem) - 1;
                }
                w
            }
        };
        let t1_row = index.any_row(t1);
        for w in 0..words {
            node_words[w] &= !t1_row[w];
        }
        node_words[t1 / 64] &= !(1 << (t1 % 64));
        row_ops += words as u64;

        // Union-find over iso nodes, sweeping each node's conflict row
        // word-parallel from its own word upward (j > i only).
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut r = x;
            while parent[r] != r {
                r = parent[r];
            }
            let mut c = x;
            while parent[c] != r {
                let next = parent[c];
                parent[c] = r;
                c = next;
            }
            r
        }
        let nodes: Vec<usize> = SetBits::over(&node_words).collect();
        for &i in &nodes {
            let row = index.any_row(i);
            let wi = i / 64;
            row_ops += (words - wi) as u64;
            for w in wi..words {
                let mut m = row[w] & node_words[w];
                if w == wi {
                    // Keep strictly-above-i bits of the first word.
                    m &= if i % 64 == 63 {
                        0
                    } else {
                        !0u64 << (i % 64 + 1)
                    };
                }
                while m != 0 {
                    let j = w * 64 + m.trailing_zeros() as usize;
                    m &= m - 1;
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
            }
        }
        // Dense component ids, in ascending first-member order.
        let mut comp = vec![usize::MAX; n];
        let mut n_comps = 0usize;
        let mut root_to_comp = vec![usize::MAX; n];
        for &i in &nodes {
            let r = find(&mut parent, i);
            if root_to_comp[r] == usize::MAX {
                root_to_comp[r] = n_comps;
                n_comps += 1;
            }
            comp[i] = root_to_comp[r];
        }
        // Component adjacency bitset per transaction. Only in-scope
        // transactions are ever queried, so only their rows are filled.
        let stride = n_comps.div_ceil(64).max(1);
        let mut adj_comps = vec![0u64; stride * n];
        let fill = |x: usize, adj: &mut [u64], ops: &mut u64| {
            let row = index.any_row(x);
            *ops += words as u64;
            for w in 0..words {
                let mut m = row[w] & node_words[w];
                while m != 0 {
                    let j = w * 64 + m.trailing_zeros() as usize;
                    m &= m - 1;
                    let c = comp[j];
                    adj[x * stride + c / 64] |= 1 << (c % 64);
                }
            }
        };
        match scope {
            Some(members) => {
                for &x in members {
                    if x != t1 {
                        fill(x, &mut adj_comps, &mut row_ops);
                    }
                }
            }
            None => {
                for x in 0..n {
                    if x != t1 {
                        fill(x, &mut adj_comps, &mut row_ops);
                    }
                }
            }
        }
        IsoReach {
            t1,
            n_comps,
            adj_comps,
            stride,
            node_words,
            build_row_ops: row_ops,
        }
    }

    /// Words per adjacency row — the per-query cost unit of
    /// [`IsoReach::reachable_idx`], used for `kernel_row_ops` accounting.
    pub(crate) fn stride_words(&self) -> u64 {
        self.stride as u64
    }

    /// `u64` words touched while building this structure.
    pub(crate) fn build_row_ops(&self) -> u64 {
        self.build_row_ops
    }

    /// Number of connected components of the iso graph.
    pub fn component_count(&self) -> usize {
        self.n_comps
    }

    /// Whether a chain of conflicting quadruples `T₂ → … → T_m` exists
    /// whose interior transactions do not conflict with `T₁`
    /// (Algorithm 1's `reachable(T₂, T_m, T₁)`). Dense-index form used
    /// by the search's hot loop.
    #[inline]
    pub fn reachable_idx(&self, index: &ConflictIndex, i2: usize, im: usize) -> bool {
        debug_assert!(i2 != self.t1 && im != self.t1);
        if i2 == im || index.any(i2, im) {
            return true;
        }
        let a = &self.adj_comps[i2 * self.stride..(i2 + 1) * self.stride];
        let b = &self.adj_comps[im * self.stride..(im + 1) * self.stride];
        a.iter().zip(b).any(|(x, y)| x & y != 0)
    }

    /// [`IsoReach::reachable_idx`] by transaction id.
    pub fn reachable(
        &self,
        txns: &TransactionSet,
        index: &ConflictIndex,
        t2: TxnId,
        tm: TxnId,
    ) -> bool {
        self.reachable_idx(index, txns.index_of(t2), txns.index_of(tm))
    }

    /// Reconstructs a concrete chain `T₂, …, T_m` (interior transactions
    /// in the iso graph) witnessing [`IsoReach::reachable`], or `None`.
    ///
    /// BFS through the iso nodes; the result is a simple path, so every
    /// transaction occurs in at most two quadruples as Definition 3.1
    /// requires.
    pub fn chain(
        &self,
        txns: &TransactionSet,
        index: &ConflictIndex,
        t2: TxnId,
        tm: TxnId,
    ) -> Option<Vec<TxnId>> {
        let (i2, im) = (txns.index_of(t2), txns.index_of(tm));
        if i2 == im {
            return Some(vec![t2]);
        }
        if index.any(i2, im) {
            return Some(vec![t2, tm]);
        }
        let n = txns.len();
        let words = self.node_words.len();
        // BFS from i2 over iso nodes, targeting any node adjacent to im.
        // Frontier expansion is word-parallel: the unseen iso neighbors
        // of `u` are `any(u,·) & nodes & !seen`, one AND-chain per word.
        // Bits are drained low-to-high per word, so discovery order (and
        // hence the witness path) matches the bit-at-a-time BFS exactly.
        let mut prev = vec![usize::MAX; n];
        let mut seen = vec![0u64; words];
        let mut queue = std::collections::VecDeque::new();
        let expand = |from: usize,
                      row: &[u64],
                      seen: &mut [u64],
                      prev: &mut [usize],
                      queue: &mut std::collections::VecDeque<usize>| {
            for w in 0..words {
                let mut m = row[w] & self.node_words[w] & !seen[w];
                seen[w] |= m;
                while m != 0 {
                    let j = w * 64 + m.trailing_zeros() as usize;
                    m &= m - 1;
                    prev[j] = from;
                    queue.push_back(j);
                }
            }
        };
        expand(i2, index.any_row(i2), &mut seen, &mut prev, &mut queue);
        while let Some(u) = queue.pop_front() {
            if index.any(u, im) {
                // Walk back to i2.
                let mut path = vec![im, u];
                let mut w = u;
                while prev[w] != i2 {
                    w = prev[w];
                    path.push(w);
                }
                path.push(i2);
                path.reverse();
                return Some(path.into_iter().map(|i| txns.by_index(i).id()).collect());
            }
            expand(u, index.any_row(u), &mut seen, &mut prev, &mut queue);
        }
        None
    }
}

/// Finds one conflicting operation pair `(b ∈ T_i, a ∈ T_j)` between two
/// transactions, preferring rw-conflicts (useful for quadruple
/// construction); `None` when the transactions do not conflict.
pub fn some_conflicting_pair(
    txns: &TransactionSet,
    ti: TxnId,
    tj: TxnId,
) -> Option<(OpAddr, OpAddr)> {
    let a = txns.txn(ti);
    let b = txns.txn(tj);
    let mut fallback = None;
    for (i, op) in a.ops().iter().enumerate() {
        let bi = OpAddr::new(ti, i as u16);
        if let Some(wj) = b.write_of(op.object) {
            let aj = OpAddr::new(tj, wj);
            if op.is_read() {
                return Some((bi, aj)); // rw-conflict
            }
            fallback.get_or_insert((bi, aj)); // ww
        }
        if op.is_write() {
            if let Some(rj) = b.read_of(op.object) {
                fallback.get_or_insert((bi, OpAddr::new(tj, rj))); // wr
            }
        }
    }
    fallback
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvmodel::TxnSetBuilder;

    fn chain_set() -> TransactionSet {
        // T1 conflicts with T2 and T5 only; T3, T4 form the iso interior:
        // T2 ~ T3 ~ T4 ~ T5 via distinct objects.
        let mut b = TxnSetBuilder::new();
        let x = b.object("x"); // T1–T2
        let p = b.object("p"); // T2–T3
        let q = b.object("q"); // T3–T4
        let r = b.object("r"); // T4–T5
        let y = b.object("y"); // T5–T1
        b.txn(1).read(x).write(y).finish();
        b.txn(2).write(x).write(p).finish();
        b.txn(3).read(p).write(q).finish();
        b.txn(4).read(q).write(r).finish();
        b.txn(5).read(r).read(y).finish();
        b.build().unwrap()
    }

    #[test]
    fn bit_matrix_set_get_iter() {
        let mut m = BitMatrix::new(130);
        m.set(0, 0);
        m.set(0, 63);
        m.set(0, 64);
        m.set(0, 129);
        m.set(129, 7);
        assert!(m.get(0, 64) && m.get(0, 129) && m.get(129, 7));
        assert!(!m.get(0, 1) && !m.get(1, 0));
        assert_eq!(m.iter_row(0).collect::<Vec<_>>(), vec![0, 63, 64, 129]);
        assert_eq!(m.iter_row(129).collect::<Vec<_>>(), vec![7]);
        assert_eq!(m.iter_row(64).count(), 0);
        assert_eq!(m.row(0).len(), 3);
    }

    #[test]
    fn conflict_matrix() {
        let txns = chain_set();
        let idx = ConflictIndex::new(&txns);
        let i = |t: u32| txns.index_of(TxnId(t));
        assert!(idx.any(i(1), i(2)));
        assert!(idx.any(i(2), i(1)), "conflict relation is symmetric");
        assert!(idx.any(i(1), i(5)));
        assert!(!idx.any(i(1), i(3)));
        assert!(!idx.any(i(1), i(4)));
        assert!(idx.any(i(2), i(3)));
        assert!(idx.any(i(3), i(4)));
        assert!(idx.any(i(4), i(5)));
        assert!(!idx.any(i(2), i(4)));
        // wr: write of T2 on p, read of T3 on p.
        assert!(idx.wr(i(2), i(3)));
        assert!(!idx.wr(i(3), i(2)));
        // wr: write of T1 on y, read of T5 on y.
        assert!(idx.wr(i(1), i(5)));
        assert!(!idx.ww(i(1), i(2)));
        assert!(!idx.is_empty());
        assert_eq!(idx.len(), 5);
        // Set-bit iteration matches the matrix.
        let row: Vec<usize> = idx.conflicting_with(i(1)).collect();
        assert_eq!(row, vec![i(2), i(5)]);
    }

    #[test]
    fn iso_reachability_through_interior() {
        let txns = chain_set();
        let idx = ConflictIndex::new(&txns);
        let reach = IsoReach::new(&txns, &idx, TxnId(1));
        // T3 and T4 are the iso nodes, connected: one component.
        assert_eq!(reach.component_count(), 1);
        assert!(reach.reachable(&txns, &idx, TxnId(2), TxnId(5)));
        let chain = reach.chain(&txns, &idx, TxnId(2), TxnId(5)).unwrap();
        assert_eq!(chain, vec![TxnId(2), TxnId(3), TxnId(4), TxnId(5)]);
        // Reverse direction also works (undirected conflicts).
        assert!(reach.reachable(&txns, &idx, TxnId(5), TxnId(2)));
        assert_eq!(
            reach.chain(&txns, &idx, TxnId(5), TxnId(2)).unwrap().len(),
            4
        );
    }

    #[test]
    fn iso_reachability_trivial_cases() {
        let txns = chain_set();
        let idx = ConflictIndex::new(&txns);
        let reach = IsoReach::new(&txns, &idx, TxnId(3));
        // T2 = Tm.
        assert!(reach.reachable(&txns, &idx, TxnId(2), TxnId(2)));
        assert_eq!(
            reach.chain(&txns, &idx, TxnId(2), TxnId(2)).unwrap(),
            vec![TxnId(2)]
        );
        // Direct conflict T1 ~ T2 (x).
        assert!(reach.reachable(&txns, &idx, TxnId(1), TxnId(2)));
        assert_eq!(
            reach.chain(&txns, &idx, TxnId(1), TxnId(2)).unwrap(),
            vec![TxnId(1), TxnId(2)]
        );
    }

    #[test]
    fn iso_interior_excludes_t1_conflicts() {
        let txns = chain_set();
        let idx = ConflictIndex::new(&txns);
        // With T3 as the split transaction, the iso nodes are T1 and T5
        // (T2 and T4 conflict with T3). T1 ~ T5 via y.
        let reach = IsoReach::new(&txns, &idx, TxnId(3));
        // T2 to T4: no direct conflict; interior would have to pass
        // through T1/T5 — T2 ~ T1 ~ T5 ~ T4: reachable.
        assert!(reach.reachable(&txns, &idx, TxnId(2), TxnId(4)));
        assert_eq!(
            reach.chain(&txns, &idx, TxnId(2), TxnId(4)).unwrap(),
            vec![TxnId(2), TxnId(1), TxnId(5), TxnId(4)]
        );
    }

    #[test]
    fn unreachable_pairs() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        let z = b.object("z");
        b.txn(1).write(x).write(y).finish();
        b.txn(2).read(x).finish();
        b.txn(3).read(y).finish();
        b.txn(4).read(z).finish(); // isolated
        let txns = b.build().unwrap();
        let idx = ConflictIndex::new(&txns);
        let reach = IsoReach::new(&txns, &idx, TxnId(1));
        // T2 and T3 both conflict only with T1; interior is {T4}, which
        // conflicts with neither: unreachable.
        assert!(!reach.reachable(&txns, &idx, TxnId(2), TxnId(3)));
        assert_eq!(reach.chain(&txns, &idx, TxnId(2), TxnId(3)), None);
        assert!(!reach.reachable(&txns, &idx, TxnId(2), TxnId(4)));
    }

    #[test]
    fn bit_matrix_word_boundaries() {
        for n in [1usize, 63, 64, 65, 127, 128] {
            let mut m = BitMatrix::new(n);
            let probes: Vec<usize> = [0, n / 2, n - 1].into_iter().collect();
            for &j in &probes {
                m.set(0, j);
            }
            let expect: Vec<usize> = {
                let mut v = probes.clone();
                v.sort_unstable();
                v.dedup();
                v
            };
            assert_eq!(m.iter_row(0).collect::<Vec<_>>(), expect, "n={n}");
            for j in 0..n {
                assert_eq!(m.get(0, j), expect.contains(&j), "n={n} j={j}");
            }
            assert_eq!(m.row(0).len(), n.div_ceil(64).max(1), "n={n}");
            // Bits above n-1 in the last word stay clear: the word-level
            // kernels rely on rows being exactly n-bit masks.
            let last = *m.row(0).last().unwrap();
            let rem = n % 64;
            if rem != 0 {
                assert_eq!(last & !((1u64 << rem) - 1), 0, "n={n} high bits");
            }
            // Rows other than 0 are untouched.
            if n > 1 {
                assert_eq!(m.iter_row(n - 1).count(), 0, "n={n}");
            }
        }
    }

    #[test]
    fn bit_matrix_all_set_row() {
        for n in [1usize, 63, 64, 65, 127, 128] {
            let mut m = BitMatrix::new(n);
            for j in 0..n {
                m.set(0, j);
            }
            assert_eq!(
                m.iter_row(0).collect::<Vec<_>>(),
                (0..n).collect::<Vec<_>>(),
                "n={n}"
            );
            assert_eq!(m.iter_row(0).count(), n);
        }
    }

    #[test]
    fn set_bits_over_arbitrary_words() {
        assert_eq!(SetBits::over(&[]).count(), 0);
        assert_eq!(SetBits::over(&[0, 0]).count(), 0);
        assert_eq!(
            SetBits::over(&[1 | (1 << 63), 1 << 5]).collect::<Vec<_>>(),
            vec![0, 63, 69]
        );
        assert_eq!(
            SetBits::over(&[u64::MAX]).collect::<Vec<_>>(),
            (0..64).collect::<Vec<_>>()
        );
    }

    /// A scoped iso-graph restricted to `t1`'s conflict component answers
    /// every reachability/chain query identically to the global one.
    #[test]
    fn scoped_iso_reach_matches_unscoped() {
        // Two disjoint clusters; chain_set is cluster A, a copy on fresh
        // objects is cluster B.
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let p = b.object("p");
        let q = b.object("q");
        let r = b.object("r");
        let y = b.object("y");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).write(x).write(p).finish();
        b.txn(3).read(p).write(q).finish();
        b.txn(4).read(q).write(r).finish();
        b.txn(5).read(r).read(y).finish();
        let x2 = b.object("x2");
        let p2 = b.object("p2");
        b.txn(6).read(x2).write(p2).finish();
        b.txn(7).write(x2).read(p2).finish();
        let txns = b.build().unwrap();
        let idx = ConflictIndex::new(&txns);
        let cluster_a: Vec<usize> = (1..=5).map(|t| txns.index_of(TxnId(t))).collect();
        for t1 in 1..=5u32 {
            let global = IsoReach::new(&txns, &idx, TxnId(t1));
            let scoped = IsoReach::new_scoped(&txns, &idx, TxnId(t1), Some(&cluster_a));
            for &i2 in &cluster_a {
                for &im in &cluster_a {
                    if i2 == txns.index_of(TxnId(t1)) || im == txns.index_of(TxnId(t1)) {
                        continue;
                    }
                    assert_eq!(
                        global.reachable_idx(&idx, i2, im),
                        scoped.reachable_idx(&idx, i2, im),
                        "t1={t1} i2={i2} im={im}"
                    );
                    let (t2, tm) = (txns.by_index(i2).id(), txns.by_index(im).id());
                    assert_eq!(
                        global.chain(&txns, &idx, t2, tm),
                        scoped.chain(&txns, &idx, t2, tm),
                        "t1={t1} t2={t2} tm={tm}"
                    );
                }
            }
        }
        // Construction accounting is non-trivial and scope-sensitive.
        let global = IsoReach::new(&txns, &idx, TxnId(1));
        let scoped = IsoReach::new_scoped(&txns, &idx, TxnId(1), Some(&cluster_a));
        assert!(global.build_row_ops() > 0);
        assert!(scoped.build_row_ops() <= global.build_row_ops());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig { cases: 64 })]

        /// `row`/`iter_row` agree with `get` bit-for-bit on random
        /// matrices across word-boundary sizes.
        #[test]
        fn prop_row_get_agree(seed in proptest::prelude::any::<u64>(), n in 1..=130usize) {
            use rand::rngs::SmallRng;
            use rand::{RngExt, SeedableRng};
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut m = BitMatrix::new(n);
            let mut expect = vec![Vec::new(); n];
            for i in 0..n {
                for _ in 0..rng.random_range(0..8usize) {
                    let j = rng.random_range(0..n);
                    m.set(i, j);
                    if !expect[i].contains(&j) {
                        expect[i].push(j);
                    }
                }
                expect[i].sort_unstable();
            }
            for i in 0..n {
                let from_iter: Vec<usize> = m.iter_row(i).collect();
                proptest::prop_assert_eq!(&from_iter, &expect[i]);
                let from_get: Vec<usize> = (0..n).filter(|&j| m.get(i, j)).collect();
                proptest::prop_assert_eq!(&from_get, &expect[i]);
                // Reconstruct the packed row from `get` and compare words.
                let mut words = vec![0u64; m.row(i).len()];
                for j in 0..n {
                    if m.get(i, j) {
                        words[j / 64] |= 1 << (j % 64);
                    }
                }
                proptest::prop_assert_eq!(m.row(i), &words[..]);
            }
        }
    }

    #[test]
    fn conflicting_pair_prefers_rw() {
        let txns = chain_set();
        // T1 reads x, T2 writes x → rw preferred.
        let (b, a) = some_conflicting_pair(&txns, TxnId(1), TxnId(2)).unwrap();
        assert!(txns.op_at(b).is_read());
        assert!(txns.op_at(a).is_write());
        // T2 writes p, T3 reads p → wr fallback.
        let (b, a) = some_conflicting_pair(&txns, TxnId(2), TxnId(3)).unwrap();
        assert!(txns.op_at(b).is_write());
        assert!(txns.op_at(a).is_read());
        assert_eq!(some_conflicting_pair(&txns, TxnId(1), TxnId(3)), None);
    }
}
