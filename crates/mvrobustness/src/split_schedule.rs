//! Multiversion split schedules (Definition 3.1): the canonical shape of
//! robustness counterexamples.

use mvisolation::{Allocation, IsolationLevel};
use mvmodel::conflict::{conflict_kind, ConflictKind};
use mvmodel::{OpAddr, TransactionSet, TxnId};
use std::fmt;

/// A *specification* of a multiversion split schedule for a transaction set
/// and allocation, based on a sequence of conflicting quadruples
///
/// ```text
/// C = (T₁, b₁, a₂, T₂), (T₂, b₂, a₃, T₃), …, (T_m, b_m, a₁, T₁)
/// ```
///
/// The induced schedule shape (Figure 1) is
///
/// ```text
/// prefix_{b₁}(T₁) · T₂ · … · T_m · postfix_{b₁}(T₁) · T_{m+1} · … · T_n
/// ```
///
/// [`SplitSpec::check`] verifies all eight side conditions of
/// Definition 3.1; [`crate::witness::materialize`] turns a valid spec into
/// a concrete [`mvmodel::Schedule`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SplitSpec {
    /// The split transaction `T₁`.
    pub t1: TxnId,
    /// `b₁ ∈ T₁`: the last operation of the prefix; rw-conflicting with
    /// `a₂`.
    pub b1: OpAddr,
    /// `a₁ ∈ T₁`: the operation the final quadruple targets.
    pub a1: OpAddr,
    /// The serial middle `T₂, …, T_m` in order (length `m−1 ≥ 1`; a single
    /// entry means `T₂ = T_m`).
    pub chain: Vec<TxnId>,
    /// The conflicting operation pairs along `C`:
    /// `links[0] = (b₁, a₂)`, then one `(b_i, a_{i+1})` per consecutive
    /// chain pair, finally `(b_m, a₁)`. So `links.len() == chain.len() + 1`.
    pub links: Vec<(OpAddr, OpAddr)>,
}

impl SplitSpec {
    /// `T₂`, the first transaction of the middle.
    pub fn t2(&self) -> TxnId {
        self.chain[0]
    }

    /// `T_m`, the last transaction of the middle (equal to `T₂` when the
    /// cycle has length two).
    pub fn tm(&self) -> TxnId {
        *self.chain.last().expect("chain is nonempty")
    }

    /// `b_m`, the source operation of the final quadruple.
    pub fn bm(&self) -> OpAddr {
        self.links.last().expect("links is nonempty").0
    }

    /// `a₂`, the target of the first quadruple.
    pub fn a2(&self) -> OpAddr {
        self.links[0].1
    }

    /// Validates the structural shape and all conditions (1)–(8) of
    /// Definition 3.1 against `txns` and `alloc`. Returns the first
    /// violated condition.
    pub fn check(&self, txns: &TransactionSet, alloc: &Allocation) -> Result<(), SplitSpecError> {
        use SplitSpecError::*;
        // Shape: links match the quadruple sequence.
        if self.chain.is_empty() || self.links.len() != self.chain.len() + 1 {
            return Err(Malformed("links must have chain.len() + 1 entries"));
        }
        if self.chain.contains(&self.t1) {
            return Err(Malformed("T1 must not occur in the chain"));
        }
        let mut sorted = self.chain.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != self.chain.len() {
            return Err(Malformed("chain transactions must be distinct"));
        }
        if self.b1.txn != self.t1 || self.a1.txn != self.t1 {
            return Err(Malformed("b1 and a1 must belong to T1"));
        }
        // Each link joins the expected transactions and conflicts.
        let owners: Vec<TxnId> = std::iter::once(self.t1)
            .chain(self.chain.iter().copied())
            .chain(std::iter::once(self.t1))
            .collect();
        for (i, &(b, a)) in self.links.iter().enumerate() {
            if b.txn != owners[i] || a.txn != owners[i + 1] {
                return Err(Malformed(
                    "link endpoints do not match the quadruple sequence",
                ));
            }
            if conflict_kind(txns, b, a).is_none() {
                return Err(NotConflicting(i));
            }
        }
        if self.links[0].0 != self.b1 || self.links.last().unwrap().1 != self.a1 {
            return Err(Malformed("links must start at b1 and end at a1"));
        }

        let t1 = txns.txn(self.t1);
        let l1 = alloc.level(self.t1);
        let (t2_id, tm_id) = (self.t2(), self.tm());
        let l2 = alloc.level(t2_id);
        let lm = alloc.level(tm_id);

        // (1) No operation of T1 conflicts with T3 … T_{m−1}.
        for &mid in &self.chain[..self.chain.len().saturating_sub(1)] {
            if mid == t2_id {
                continue;
            }
            if mvmodel::conflict::txns_conflict(txns, self.t1, mid) {
                return Err(Condition(1));
            }
        }
        // (2) No write in prefix_{b1}(T1) ww-conflicts with a write in T2
        // or Tm.
        // (3) If 𝒜(T1) ∈ {SI, SSI}, likewise for postfix writes.
        for (w, object) in t1.writes() {
            let in_prefix = w.idx <= self.b1.idx;
            let applies = in_prefix || l1 >= IsolationLevel::SI;
            if !applies {
                continue;
            }
            for other in [t2_id, tm_id] {
                if txns.txn(other).write_of(object).is_some() {
                    return Err(Condition(if in_prefix { 2 } else { 3 }));
                }
            }
        }
        // (4) b₁ rw-conflicting with a₂.
        if conflict_kind(txns, self.b1, self.a2()) != Some(ConflictKind::Rw) {
            return Err(Condition(4));
        }
        // (5) b_m rw-conflicting with a₁, or 𝒜(T1) = RC and b₁ <_{T1} a₁.
        let bm_rw = conflict_kind(txns, self.bm(), self.a1) == Some(ConflictKind::Rw);
        let rc_postfix = l1 == IsolationLevel::RC && self.b1.idx < self.a1.idx;
        if !bm_rw && !rc_postfix {
            return Err(Condition(5));
        }
        // (6) Not all of T1, T2, Tm allocated SSI.
        let ssi = IsolationLevel::SSI;
        if l1 == ssi && l2 == ssi && lm == ssi {
            return Err(Condition(6));
        }
        // (7) If T1 and T2 are SSI: no write of T1 wr-conflicts with a read
        // of T2.
        if l1 == ssi && l2 == ssi && has_wr_conflict(txns, self.t1, t2_id) {
            return Err(Condition(7));
        }
        // (8) If T1 and Tm are SSI: no read of T1 rw-conflicts with a write
        // of Tm (equivalently, no write of Tm wr-conflicts with a read of
        // T1).
        if l1 == ssi && lm == ssi && has_wr_conflict(txns, tm_id, self.t1) {
            return Err(Condition(8));
        }
        Ok(())
    }
}

/// Whether some write of `ti` wr-conflicts with some read of `tj`.
pub fn has_wr_conflict(txns: &TransactionSet, ti: TxnId, tj: TxnId) -> bool {
    let a = txns.txn(ti);
    let b = txns.txn(tj);
    a.writes().any(|(_, object)| b.read_of(object).is_some())
}

/// Why a [`SplitSpec`] is invalid.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SplitSpecError {
    /// Structural problem with the quadruple sequence.
    Malformed(&'static str),
    /// `links[i]` does not join conflicting operations.
    NotConflicting(usize),
    /// Condition (n) of Definition 3.1 is violated.
    Condition(u8),
}

impl fmt::Display for SplitSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SplitSpecError::Malformed(m) => write!(f, "malformed split spec: {m}"),
            SplitSpecError::NotConflicting(i) => {
                write!(f, "link {i} does not join conflicting operations")
            }
            SplitSpecError::Condition(n) => {
                write!(f, "condition ({n}) of Definition 3.1 is violated")
            }
        }
    }
}

impl std::error::Error for SplitSpecError {}

impl fmt::Display for SplitSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "split {} at {}; cycle {}", self.t1, self.b1, self.t1)?;
        for t in &self.chain {
            write!(f, " → {t}")?;
        }
        write!(f, " → {}", self.t1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvmodel::TxnSetBuilder;

    /// Write skew: T1 = R[x] W[y], T2 = R[y] W[x].
    fn write_skew() -> TransactionSet {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).read(y).write(x).finish();
        b.build().unwrap()
    }

    fn skew_spec() -> SplitSpec {
        let b1 = OpAddr {
            txn: TxnId(1),
            idx: 0,
        }; // R1[x]
        let a2 = OpAddr {
            txn: TxnId(2),
            idx: 1,
        }; // W2[x]
        let b2 = OpAddr {
            txn: TxnId(2),
            idx: 0,
        }; // R2[y]
        let a1 = OpAddr {
            txn: TxnId(1),
            idx: 1,
        }; // W1[y]
        SplitSpec {
            t1: TxnId(1),
            b1,
            a1,
            chain: vec![TxnId(2)],
            links: vec![(b1, a2), (b2, a1)],
        }
    }

    #[test]
    fn write_skew_spec_valid_under_si() {
        let txns = write_skew();
        let spec = skew_spec();
        let si = Allocation::uniform_si(&txns);
        spec.check(&txns, &si).unwrap();
        let rc = Allocation::uniform_rc(&txns);
        spec.check(&txns, &rc).unwrap();
        assert_eq!(spec.t2(), TxnId(2));
        assert_eq!(spec.tm(), TxnId(2));
        assert_eq!(
            spec.bm(),
            OpAddr {
                txn: TxnId(2),
                idx: 0
            }
        );
        assert_eq!(
            spec.a2(),
            OpAddr {
                txn: TxnId(2),
                idx: 1
            }
        );
        assert!(spec.to_string().contains("T1"));
    }

    #[test]
    fn write_skew_spec_rejected_under_all_ssi() {
        let txns = write_skew();
        let spec = skew_spec();
        let ssi = Allocation::uniform_ssi(&txns);
        assert_eq!(spec.check(&txns, &ssi), Err(SplitSpecError::Condition(6)));
    }

    #[test]
    fn condition_7_and_8_fire_for_mixed_ssi() {
        // T1 = R[x] W[y], T2 = R[y] W[x]: T1's write on y wr-conflicts
        // with T2's read on y → condition 7 when both SSI. Make T1 SSI,
        // T2 SSI but break condition 6 first… with only two transactions
        // condition 6 already rejects. Use a 3-cycle instead:
        // T1 = R[x] W[z], T2 = W[x] R[y]?? — craft so that only (7) trips.
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        let z = b.object("z");
        b.txn(1).read(x).write(y).finish(); // T1
        b.txn(2).write(x).read(y).read(z).finish(); // T2 reads y (wr with T1)
        b.txn(3).write(z).read(y).finish(); // Tm
        let txns = b.build().unwrap();
        let b1 = OpAddr {
            txn: TxnId(1),
            idx: 0,
        }; // R1[x]
        let a2 = OpAddr {
            txn: TxnId(2),
            idx: 0,
        }; // W2[x]
        let b2 = OpAddr {
            txn: TxnId(2),
            idx: 2,
        }; // R2[z]
        let a3 = OpAddr {
            txn: TxnId(3),
            idx: 0,
        }; // W3[z]
        let b3 = OpAddr {
            txn: TxnId(3),
            idx: 1,
        }; // R3[y]
        let a1 = OpAddr {
            txn: TxnId(1),
            idx: 1,
        }; // W1[y]
        let spec = SplitSpec {
            t1: TxnId(1),
            b1,
            a1,
            chain: vec![TxnId(2), TxnId(3)],
            links: vec![(b1, a2), (b2, a3), (b3, a1)],
        };
        let ok = Allocation::parse("T1=SI T2=SI T3=SI").unwrap();
        spec.check(&txns, &ok).unwrap();
        // T1, T2 SSI (Tm=T3 not): condition 7 — W1[y] wr-conflicts R2[y].
        let a = Allocation::parse("T1=SSI T2=SSI T3=SI").unwrap();
        assert_eq!(spec.check(&txns, &a), Err(SplitSpecError::Condition(7)));
        // T1, T3 SSI (T2 not): condition 8 — R1[x]?? Tm=T3 writes z, T1
        // reads x,… no read of T1 on z: condition 8 does NOT fire; but
        // condition 1 does? T1 conflicts only with T2 (x), T3 (y). Chain
        // interior is T2 — wait chain = [T2, T3], interior (T3…T_{m−1}) is
        // empty for m=3? chain[..len-1] = [T2] and T2 is skipped. So the
        // check passes.
        let a = Allocation::parse("T1=SSI T2=SI T3=SSI").unwrap();
        spec.check(&txns, &a).unwrap();
    }

    #[test]
    fn condition_8_fires() {
        // Tm writes an object T1 reads (beyond the cycle objects).
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        let w = b.object("w");
        b.txn(1).read(x).read(w).write(y).finish();
        b.txn(2).write(x).read(y).write(w).finish();
        let txns = b.build().unwrap();
        let b1 = OpAddr {
            txn: TxnId(1),
            idx: 0,
        }; // R1[x]
        let a2 = OpAddr {
            txn: TxnId(2),
            idx: 0,
        }; // W2[x]
        let b2 = OpAddr {
            txn: TxnId(2),
            idx: 1,
        }; // R2[y]
        let a1 = OpAddr {
            txn: TxnId(1),
            idx: 2,
        }; // W1[y]
        let spec = SplitSpec {
            t1: TxnId(1),
            b1,
            a1,
            chain: vec![TxnId(2)],
            links: vec![(b1, a2), (b2, a1)],
        };
        // Under SI/SI fine.
        spec.check(&txns, &Allocation::parse("T1=SI T2=SI").unwrap())
            .unwrap();
        // Under SSI/SSI condition 6 fires first.
        assert_eq!(
            spec.check(&txns, &Allocation::parse("T1=SSI T2=SSI").unwrap()),
            Err(SplitSpecError::Condition(6))
        );
    }

    #[test]
    fn malformed_specs_rejected() {
        let txns = write_skew();
        let si = Allocation::uniform_si(&txns);
        let good = skew_spec();
        let mut bad = good.clone();
        bad.chain = vec![];
        assert!(matches!(
            bad.check(&txns, &si),
            Err(SplitSpecError::Malformed(_))
        ));
        let mut bad = good.clone();
        bad.chain = vec![TxnId(1)];
        assert!(matches!(
            bad.check(&txns, &si),
            Err(SplitSpecError::Malformed(_))
        ));
        let mut bad = good.clone();
        bad.b1 = OpAddr {
            txn: TxnId(2),
            idx: 0,
        };
        assert!(matches!(
            bad.check(&txns, &si),
            Err(SplitSpecError::Malformed(_))
        ));
        // Non-conflicting link: R1[x] with R2[y].
        let mut bad = good.clone();
        bad.links[0] = (
            good.b1,
            OpAddr {
                txn: TxnId(2),
                idx: 0,
            },
        );
        assert!(matches!(
            bad.check(&txns, &si),
            Err(SplitSpecError::NotConflicting(0)) | Err(SplitSpecError::Malformed(_))
        ));
    }

    #[test]
    fn condition_4_requires_rw_start() {
        // b1 a write → condition 4.
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).write(x).write(y).finish();
        b.txn(2).write(x).read(y).finish();
        let txns = b.build().unwrap();
        let b1 = OpAddr {
            txn: TxnId(1),
            idx: 0,
        }; // W1[x]
        let a2 = OpAddr {
            txn: TxnId(2),
            idx: 0,
        }; // W2[x] (ww, not rw)
        let b2 = OpAddr {
            txn: TxnId(2),
            idx: 1,
        }; // R2[y]
        let a1 = OpAddr {
            txn: TxnId(1),
            idx: 1,
        }; // W1[y]
        let spec = SplitSpec {
            t1: TxnId(1),
            b1,
            a1,
            chain: vec![TxnId(2)],
            links: vec![(b1, a2), (b2, a1)],
        };
        let rc = Allocation::uniform_rc(&txns);
        // Condition 2 fires first (prefix write W1[x] ww-conflicts W2[x]),
        // or condition 4 — either way the spec is invalid.
        assert!(spec.check(&txns, &rc).is_err());
    }

    #[test]
    fn display_error_variants() {
        assert!(SplitSpecError::Malformed("x")
            .to_string()
            .contains("malformed"));
        assert!(SplitSpecError::NotConflicting(2)
            .to_string()
            .contains("link 2"));
        assert!(SplitSpecError::Condition(5).to_string().contains("(5)"));
    }
}
