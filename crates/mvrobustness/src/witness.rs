//! Materializing split-schedule specifications into concrete,
//! machine-checked counterexample schedules.
//!
//! This module is the constructive (2)→(1) direction of Theorem 3.2: given
//! a valid [`SplitSpec`], it builds the multiversion schedule
//!
//! ```text
//! prefix_{b₁}(T₁) · T₂ · … · T_m · postfix_{b₁}(T₁) · T_{m+1} · … · T_n
//! ```
//!
//! with the commit-order version order and the anchored read-last-committed
//! version function forced by the allocation
//! ([`mvisolation::derive_schedule`]). Conditions (1)–(3) of Definition 3.1
//! guarantee the result exhibits no dirty or concurrent writes the
//! allocation forbids; conditions (6)–(8) guarantee no dangerous structure
//! among SSI transactions; conditions (4)–(5) guarantee the dependency
//! cycle `T₁ → T₂ → … → T_m → T₁`, so the schedule is not conflict
//! serializable. [`verify_witness`] machine-checks both properties.

use crate::split_schedule::SplitSpec;
use mvisolation::{allowed_under, violations, Allocation};
use mvmodel::serializability::is_conflict_serializable;
use mvmodel::{OpId, Schedule, TransactionSet, TxnId};
use std::fmt;
use std::sync::Arc;

/// Errors from witness verification.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WitnessError {
    /// The materialized schedule is not allowed under the allocation —
    /// the spec violates Definition 3.1 (first violation shown).
    NotAllowed(String),
    /// The materialized schedule is conflict serializable — the spec does
    /// not witness non-robustness.
    Serializable,
}

impl fmt::Display for WitnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WitnessError::NotAllowed(v) => {
                write!(
                    f,
                    "witness schedule is not allowed under the allocation: {v}"
                )
            }
            WitnessError::Serializable => {
                write!(f, "witness schedule is conflict serializable")
            }
        }
    }
}

impl std::error::Error for WitnessError {}

/// Builds the concrete counterexample schedule for a split spec.
///
/// The operation order follows Figure 1; the version order and version
/// function are the unique completion forced by `alloc`.
pub fn materialize(txns: Arc<TransactionSet>, alloc: &Allocation, spec: &SplitSpec) -> Schedule {
    let mut order: Vec<OpId> = Vec::with_capacity(txns.total_ops() + txns.len());
    let t1 = txns.txn(spec.t1);

    // prefix_{b₁}(T₁): operations up to and including b₁.
    for idx in 0..=spec.b1.idx {
        order.push(OpId::op(spec.t1, idx));
    }
    // T₂ … T_m serially.
    for &mid in &spec.chain {
        order.extend(txns.txn(mid).op_ids());
    }
    // postfix_{b₁}(T₁) and C₁.
    for idx in (spec.b1.idx + 1)..t1.len() as u16 {
        order.push(OpId::op(spec.t1, idx));
    }
    order.push(OpId::Commit(spec.t1));
    // Remaining transactions serially, in id order.
    let mentioned: Vec<TxnId> = std::iter::once(spec.t1)
        .chain(spec.chain.iter().copied())
        .collect();
    for t in txns.iter() {
        if !mentioned.contains(&t.id()) {
            order.extend(t.op_ids());
        }
    }

    mvisolation::derive_schedule(txns, order, alloc)
        .expect("split-schedule order is a valid interleaving")
}

/// Machine-checks that a schedule witnesses non-robustness: it must be
/// allowed under `alloc` and not conflict serializable.
pub fn verify_witness(s: &Schedule, alloc: &Allocation) -> Result<(), WitnessError> {
    if !allowed_under(s, alloc) {
        let vs = violations(s, alloc);
        return Err(WitnessError::NotAllowed(
            vs.first().map(|v| v.to_string()).unwrap_or_default(),
        ));
    }
    if is_conflict_serializable(s) {
        return Err(WitnessError::Serializable);
    }
    Ok(())
}

/// Convenience: runs the robustness check and, when non-robust, returns
/// the *verified* counterexample schedule.
///
/// Panics if the materialized witness fails verification — that would
/// falsify Theorem 3.2 (or reveal an implementation bug), and the test
/// suite treats it as such.
pub fn counterexample_schedule(
    txns: &Arc<TransactionSet>,
    alloc: &Allocation,
) -> Option<(SplitSpec, Schedule)> {
    let spec = crate::algorithm1::find_counterexample(txns, alloc)?;
    let s = materialize(Arc::clone(txns), alloc, &spec);
    verify_witness(&s, alloc)
        .unwrap_or_else(|e| panic!("Theorem 3.2 witness failed verification: {e}\nspec: {spec}"));
    Some((spec, s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvisolation::IsolationLevel;
    use mvmodel::fmt::schedule_order;
    use mvmodel::TxnSetBuilder;

    fn write_skew() -> Arc<TransactionSet> {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).read(y).write(x).finish();
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn write_skew_witness_under_si() {
        let txns = write_skew();
        let si = Allocation::uniform_si(&txns);
        let (spec, s) = counterexample_schedule(&txns, &si).expect("not robust");
        assert_eq!(spec.t1, TxnId(1));
        // Shape: prefix of T1 (R1[x]), then all of T2, then W1[y] C1.
        let rendered = schedule_order(&s);
        assert_eq!(rendered, "R1[x] R2[y] W2[x] C2 W1[y] C1");
        verify_witness(&s, &si).unwrap();
    }

    #[test]
    fn witness_includes_remaining_transactions() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        let z = b.object("z");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).read(y).write(x).finish();
        b.txn(3).read(z).write(z).finish(); // unrelated
        let txns = Arc::new(b.build().unwrap());
        let si = Allocation::uniform_si(&txns);
        let (spec, s) = counterexample_schedule(&txns, &si).expect("not robust");
        assert!(!spec.chain.contains(&TxnId(3)));
        // T3 appears (serially) and the schedule is complete.
        assert_eq!(s.order().len(), txns.total_ops() + txns.len());
        verify_witness(&s, &si).unwrap();
    }

    #[test]
    fn verify_rejects_serializable_schedules() {
        let txns = write_skew();
        let si = Allocation::uniform_si(&txns);
        let serial =
            Schedule::single_version_serial(Arc::clone(&txns), &[TxnId(1), TxnId(2)]).unwrap();
        assert_eq!(
            verify_witness(&serial, &si),
            Err(WitnessError::Serializable)
        );
    }

    #[test]
    fn verify_rejects_disallowed_schedules() {
        // Under all-SSI the write-skew witness is not allowed (dangerous
        // structure), and indeed the workload is robust.
        let txns = write_skew();
        let si = Allocation::uniform_si(&txns);
        let ssi = Allocation::uniform_ssi(&txns);
        let spec = crate::algorithm1::find_counterexample(&txns, &si).unwrap();
        let s = materialize(Arc::clone(&txns), &ssi, &spec);
        match verify_witness(&s, &ssi) {
            Err(WitnessError::NotAllowed(msg)) => {
                assert!(msg.contains("dangerous"), "unexpected violation: {msg}")
            }
            other => panic!("expected NotAllowed, got {other:?}"),
        }
    }

    #[test]
    fn witnesses_verified_for_all_nonrobust_uniform_levels() {
        // Lost update pair: not robust under RC; robust under SI/SSI.
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        b.txn(1).read(x).write(x).finish();
        b.txn(2).read(x).write(x).finish();
        let txns = Arc::new(b.build().unwrap());
        for lvl in IsolationLevel::ALL {
            let a = Allocation::uniform(&txns, lvl);
            match counterexample_schedule(&txns, &a) {
                Some((_, s)) => {
                    assert_eq!(lvl, IsolationLevel::RC);
                    verify_witness(&s, &a).unwrap();
                }
                None => assert_ne!(lvl, IsolationLevel::RC),
            }
        }
    }

    /// The materialized witness has exactly Figure 1's shape:
    /// prefix_{b1}(T1) · T2 · … · Tm · postfix_{b1}(T1) · C1 · rest.
    #[test]
    fn split_schedule_shape_matches_figure_1() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        let p = b.object("p");
        let z = b.object("z");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).write(x).read(p).finish();
        b.txn(3).write(p).read(y).finish();
        b.txn(4).read(z).write(z).finish(); // remaining transaction
        let txns = Arc::new(b.build().unwrap());
        let si = Allocation::uniform_si(&txns);
        let (spec, s) = counterexample_schedule(&txns, &si).expect("3-cycle breaks SI");

        // Partition the operation order into the five segments.
        let order = s.order();
        let split_pos = s.pos(mvmodel::OpId::Op(spec.b1)) as usize;
        // 1. Prefix: operations of T1 up to b1.
        for &op in &order[..=split_pos] {
            assert_eq!(op.txn(), Some(spec.t1), "prefix is T1-only");
        }
        // 2. Middle: each chain transaction's ops are contiguous (serial)
        //    and in chain order.
        let mut cursor = split_pos + 1;
        for &mid in &spec.chain {
            let t = s.txns().txn(mid);
            for expected in t.op_ids() {
                assert_eq!(order[cursor], expected, "chain transactions run serially");
                cursor += 1;
            }
        }
        // 3. Postfix: the rest of T1, ending with C1.
        let t1 = s.txns().txn(spec.t1);
        for idx in (spec.b1.idx + 1)..t1.len() as u16 {
            assert_eq!(order[cursor], mvmodel::OpId::op(spec.t1, idx));
            cursor += 1;
        }
        assert_eq!(order[cursor], mvmodel::OpId::Commit(spec.t1));
        cursor += 1;
        // 4. Remaining transactions, serially.
        let t4 = s.txns().txn(TxnId(4));
        assert!(!spec.chain.contains(&TxnId(4)));
        for expected in t4.op_ids() {
            assert_eq!(
                order[cursor], expected,
                "remaining transactions appended serially"
            );
            cursor += 1;
        }
        assert_eq!(cursor, order.len());
    }

    #[test]
    fn error_display() {
        assert!(WitnessError::Serializable
            .to_string()
            .contains("serializable"));
        assert!(WitnessError::NotAllowed("x".into())
            .to_string()
            .contains("not allowed"));
    }
}
